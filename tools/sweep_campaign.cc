/**
 * @file
 * Crash-resumable sweep driver over sim::CampaignRunner. Runs a set of
 * named sweep points inside a campaign directory with periodic
 * checkpoints and a JSONL journal; re-running the same command line
 * after a crash (or kill -9) resumes: finished points are replayed
 * from the journal, the in-flight point restores its checkpoint, and
 * the consolidated --json report comes out byte-identical to an
 * uninterrupted run's.
 *
 * Usage:
 *   sweep_campaign --dir=DIR [options]
 *
 * Options:
 *   --points=N            number of sweep points (default 4)
 *   --app=NAME            application profile (default fft)
 *   --net=KIND            fsoi|mesh|l0|lr1|lr2 (default fsoi)
 *   --cores=N             core count (default 16)
 *   --seed=N              base seed; point i runs seed+i (default 42)
 *   --scale=F             app scale factor (default 0.5)
 *   --jobs=N              concurrent points, 0 = host CPUs (default 1)
 *   --threads=N           tick-engine threads per point (default 1)
 *   --checkpoint-every=N  per-point checkpoint period (default 20000)
 *   --max-attempts=N      quarantine threshold (default 3)
 *   --json=FILE           consolidated report ("-" = stdout)
 *
 * Warm-start mode (--warmup): a horizon sweep sharing one warmed-up
 * snapshot. All points then use the SAME seed (warmup prefixes must be
 * identical) and point i runs to warmup + (i+1) * horizon cycles:
 *   --warmup=N            shared warmup window in cycles
 *   --horizon=N           per-point horizon step (default 20000)
 *   --no-warm-reuse       same horizon points, but every point
 *                         re-simulates its own warmup (the cold
 *                         baseline for the warm-start speedup)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/campaign.hh"
#include "workload/apps.hh"

using namespace fsoi;

namespace {

const char *
matchValue(const char *arg, const char *name)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

std::uint64_t
parseU64(const char *flag, const char *v)
{
    char *end = nullptr;
    const std::uint64_t n = std::strtoull(v, &end, 0);
    if (end == v || *end != '\0')
        fatal("%s wants an integer, got '%s'", flag, v);
    return n;
}

sim::NetKind
parseNet(const std::string &name)
{
    if (name == "fsoi")
        return sim::NetKind::Fsoi;
    if (name == "mesh")
        return sim::NetKind::Mesh;
    if (name == "l0")
        return sim::NetKind::L0;
    if (name == "lr1")
        return sim::NetKind::Lr1;
    if (name == "lr2")
        return sim::NetKind::Lr2;
    fatal("unknown network '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    sim::CampaignConfig cc;
    cc.checkpoint_every = 20'000;
    int points = 4;
    std::string app_name = "fft";
    std::string net_name = "fsoi";
    int cores = 16;
    std::uint64_t seed = 42;
    double scale = 0.5;
    int threads = 1;
    Cycle horizon = 20'000;
    bool warm_reuse = true;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (const char *v = matchValue(arg, "--dir"))
            cc.dir = v;
        else if (const char *v = matchValue(arg, "--points"))
            points = static_cast<int>(parseU64("--points", v));
        else if (const char *v = matchValue(arg, "--app"))
            app_name = v;
        else if (const char *v = matchValue(arg, "--net"))
            net_name = v;
        else if (const char *v = matchValue(arg, "--cores"))
            cores = static_cast<int>(parseU64("--cores", v));
        else if (const char *v = matchValue(arg, "--seed"))
            seed = parseU64("--seed", v);
        else if (const char *v = matchValue(arg, "--scale"))
            scale = std::atof(v);
        else if (const char *v = matchValue(arg, "--jobs"))
            cc.jobs = static_cast<int>(parseU64("--jobs", v));
        else if (const char *v = matchValue(arg, "--threads"))
            threads = static_cast<int>(parseU64("--threads", v));
        else if (const char *v = matchValue(arg, "--checkpoint-every"))
            cc.checkpoint_every = parseU64("--checkpoint-every", v);
        else if (const char *v = matchValue(arg, "--max-attempts"))
            cc.max_attempts =
                static_cast<int>(parseU64("--max-attempts", v));
        else if (const char *v = matchValue(arg, "--warmup"))
            cc.warmup_cycles = parseU64("--warmup", v);
        else if (const char *v = matchValue(arg, "--horizon"))
            horizon = parseU64("--horizon", v);
        else if (std::strcmp(arg, "--no-warm-reuse") == 0)
            warm_reuse = false;
        else if (const char *v = matchValue(arg, "--json"))
            json_path = v;
        else
            fatal("unknown argument '%s' (see the file header for "
                  "usage)", arg);
    }
    if (cc.dir.empty())
        fatal("sweep_campaign needs --dir=DIR for its journal and "
              "checkpoints");
    if (points < 1)
        fatal("--points wants at least 1");

    const workload::AppProfile app = workload::appByName(app_name);
    const sim::NetKind net = parseNet(net_name);

    std::vector<sim::CampaignPoint> plan;
    plan.reserve(points);
    for (int i = 0; i < points; ++i) {
        sim::CampaignPoint p;
        p.name = "p" + std::to_string(i);
        p.job.config = sim::SystemConfig::paperConfig(cores, net);
        p.job.config.threads = threads;
        p.job.app = app;
        p.job.scale = scale;
        if (cc.warmup_cycles > 0) {
            // Horizon sweep off one shared warm snapshot: identical
            // seed (the warmup prefixes must match), growing horizon.
            p.job.config.seed = seed;
            p.job.config.max_cycles =
                cc.warmup_cycles
                + static_cast<Cycle>(i + 1) * horizon;
            if (warm_reuse)
                p.warm_family = "f0";
        } else {
            p.job.config.seed = seed + static_cast<std::uint64_t>(i);
        }
        plan.push_back(std::move(p));
    }

    sim::CampaignRunner runner(cc);
    const auto outcomes = runner.run(std::move(plan));

    int quarantined = 0;
    for (const auto &o : outcomes)
        quarantined += o.quarantined ? 1 : 0;
    std::fprintf(stderr, "campaign: %zu points, %d quarantined\n",
                 outcomes.size(), quarantined);

    if (!json_path.empty()) {
        if (json_path == "-") {
            sim::CampaignRunner::writeJson(std::cout, outcomes);
        } else {
            std::ofstream os(json_path);
            if (!os)
                fatal("cannot write '%s'", json_path.c_str());
            sim::CampaignRunner::writeJson(os, outcomes);
        }
    }
    return quarantined == 0 ? 0 : 1;
}
