#!/bin/sh
# CI entry point: Release build, full test suite, and the simulator
# performance gate.
#
#   tools/ci.sh [build-dir]
#
# The perf gate runs bench/perf_harness in --quick mode and compares
# cycle counts (must match exactly -- any drift is a simulation-result
# change) and cycles/sec (must not regress more than 10%) against the
# committed BENCH_perf.json. The baseline is host-dependent; after an
# intentional perf change or a CI-machine move, regenerate it with
#
#   build/bench/perf_harness --quick --json=BENCH_perf.json
#
# and commit the result.
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build-ci"}

echo "== configure (Release) =="
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release

echo "== build =="
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 2)"

echo "== test =="
ctest --test-dir "$build" --output-on-failure

echo "== golden stats gate =="
# Re-run the instrumented 16-core quickstart config and require its
# stats JSON to match the committed golden file exactly (host.* wall
# -clock stats are excluded by stats_report's default ignore list).
# Any diff is a simulation-result or stat-name change; if intentional,
# regenerate with
#
#   rm -f tools/golden_stats_16core.json
#   build/examples/quickstart fft 16 \
#       --stats-json=tools/golden_stats_16core.json
#
# and commit the result.
rm -f "$build/ci_stats_16core.json"
"$build/examples/quickstart" fft 16 \
    --stats-json="$build/ci_stats_16core.json" > /dev/null
"$build/tools/stats_report" --diff "$repo/tools/golden_stats_16core.json" \
    "$build/ci_stats_16core.json"

echo "== golden snapshot manifest gate =="
# Checkpoint the same 16-core quickstart config mid-run (fixed period,
# so the final checkpoint lands at a fixed cycle) and require the
# snapshot's section manifest -- format version, root hash, and every
# section's size and FNV-1a hash -- to match the committed golden
# manifest byte for byte. Any diff is a serialization-format or
# simulation-state change; if intentional, regenerate with
#
#   build/examples/quickstart fft 16 \
#       --checkpoint=ci_snap.ckpt --checkpoint-every=60000
#   build/tools/stats_report --snapshot ci_snap.ckpt --manifest \
#       > tools/golden_snapshot_16core.manifest
#
# and commit the result (then delete ci_snap.ckpt).
rm -f "$build/ci_snap.ckpt"
"$build/examples/quickstart" fft 16 \
    --checkpoint="$build/ci_snap.ckpt" --checkpoint-every=60000 \
    > /dev/null
"$build/tools/stats_report" --snapshot "$build/ci_snap.ckpt" --manifest \
    > "$build/ci_snap.manifest"
diff -u "$repo/tools/golden_snapshot_16core.manifest" \
    "$build/ci_snap.manifest"

echo "== crash-resume gate =="
# Kill a sweep campaign mid-flight with SIGKILL, resume it with the
# same command line, and require the consolidated JSON report to be
# byte-identical to an uninterrupted run's -- at tick-engine threads 1
# and 4. The kill lands after the first point's done record hits the
# journal, so the resume exercises both journal replay (finished
# points) and checkpoint restore (the in-flight point). If the
# campaign finishes before the kill lands, the resume degenerates to
# pure journal replay, which must still reproduce the report exactly.
for t in 1 4; do
    camp_args="--points=4 --app=fft --scale=0.3 --threads=$t \
        --checkpoint-every=10000 --seed=42"
    rm -rf "$build/ci_camp_full_t$t" "$build/ci_camp_kill_t$t"
    # shellcheck disable=SC2086
    "$build/tools/sweep_campaign" --dir="$build/ci_camp_full_t$t" \
        $camp_args --json="$build/ci_camp_full_t$t.json" 2> /dev/null
    # shellcheck disable=SC2086
    "$build/tools/sweep_campaign" --dir="$build/ci_camp_kill_t$t" \
        $camp_args --json="$build/ci_camp_kill_t$t.json" \
        2> /dev/null &
    camp_pid=$!
    while kill -0 "$camp_pid" 2> /dev/null; do
        if grep -q '"event":"done"' \
            "$build/ci_camp_kill_t$t/campaign.jsonl" 2> /dev/null; then
            kill -9 "$camp_pid" 2> /dev/null || true
            break
        fi
        sleep 0.05
    done
    wait "$camp_pid" 2> /dev/null || true
    rm -f "$build/ci_camp_kill_t$t.json"
    # shellcheck disable=SC2086
    "$build/tools/sweep_campaign" --dir="$build/ci_camp_kill_t$t" \
        $camp_args --json="$build/ci_camp_kill_t$t.json" 2> /dev/null
    cmp "$build/ci_camp_full_t$t.json" "$build/ci_camp_kill_t$t.json"
    echo "  threads=$t: resumed report byte-identical"
done

echo "== telemetry overhead gate =="
# The observability layer (flight recorder + self-profiler + link
# telemetry) must cost < 3% cycles/sec against the same config with
# the tunable parts disabled, and must not change simulated cycles.
# Full scale keeps each timed run long enough to ride out scheduler
# jitter on small CI hosts; the bench itself re-measures (--rounds)
# when a round catches a throttling spike.
"$build/bench/obs_overhead" --max=3 --reps=5 1.0

echo "== sanitizer leg (ASan + UBSan) =="
# The whole test suite again under AddressSanitizer + UBSan
# (-fno-sanitize-recover=all: any finding is fatal). A separate build
# tree keeps the instrumented objects away from the perf-gated ones.
# The fault-injection paths get their deepest coverage here: the fault
# tests drive dead channels, route-around tables, and retransmission
# queues, exactly the pointer-heavy code a latent lifetime bug hides in.
sanbuild="$build-asan"
cmake -B "$sanbuild" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFSOI_SANITIZE=ON
cmake --build "$sanbuild" -j "$(nproc 2>/dev/null || echo 2)"
ctest --test-dir "$sanbuild" --output-on-failure

echo "== sanitizer leg (TSan, threaded tick engine) =="
# The determinism and scheduler suites again under ThreadSanitizer,
# which exercises the intra-run parallel tick engine (shard workers,
# staged-send merge, wake bitmaps) at threads={2,4} x jobs={1,4} and
# the per-shard event calendar at threads=4 (cross-shard wakes on
# epoch boundaries, calendar rebuild on snapshot restore). Scoped to
# those suites: TSan slows runs ~10x and the threading surface is
# exactly what these tests drive.
tsanbuild="$build-tsan"
cmake -B "$tsanbuild" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFSOI_SANITIZE=thread
cmake --build "$tsanbuild" -j "$(nproc 2>/dev/null || echo 2)" \
    --target test_determinism test_scheduler
ctest --test-dir "$tsanbuild" -R "Determinism|Scheduler|Calendar" \
    --output-on-failure

echo "== perf gate =="
# Warmup pass (discarded): absorbs post-build CPU-quota throttling and
# cold caches so the gated measurement reflects steady state. The
# gated pass takes best-of-5 per matrix point, interleaved to ride out
# transient host load. The matrix includes the idle-heavy point
# (fsoi.idle), so the event calendar's skip-path throughput is gated
# alongside the busy-matrix cycles/sec.
"$build/bench/perf_harness" --quick --reps=1 > /dev/null
"$build/bench/perf_harness" --quick --reps=5 \
    --check="$repo/BENCH_perf.json" --tolerance=0.10

echo "== ci passed =="
