#!/bin/sh
# CI entry point: Release build, full test suite, and the simulator
# performance gate.
#
#   tools/ci.sh [build-dir]
#
# The perf gate runs bench/perf_harness in --quick mode and compares
# cycle counts (must match exactly -- any drift is a simulation-result
# change) and cycles/sec (must not regress more than 10%) against the
# committed BENCH_perf.json. The baseline is host-dependent; after an
# intentional perf change or a CI-machine move, regenerate it with
#
#   build/bench/perf_harness --quick --json=BENCH_perf.json
#
# and commit the result.
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build-ci"}

echo "== configure (Release) =="
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release

echo "== build =="
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 2)"

echo "== test =="
ctest --test-dir "$build" --output-on-failure

echo "== perf gate =="
# Warmup pass (discarded): absorbs post-build CPU-quota throttling and
# cold caches so the gated measurement reflects steady state. The
# gated pass takes best-of-5 per matrix point, interleaved to ride out
# transient host load.
"$build/bench/perf_harness" --quick --reps=1 > /dev/null
"$build/bench/perf_harness" --quick --reps=5 \
    --check="$repo/BENCH_perf.json" --tolerance=0.10

echo "== ci passed =="
