/**
 * @file
 * Offline viewer for --stats-json output: renders a human-readable
 * summary (headline scalars, latency percentiles, a mesh link-traffic
 * heatmap, FSOI channel utilization) and diffs two stats files for the
 * golden-stats CI gate.
 *
 * Usage:
 *   stats_report FILE                      summary + heatmaps
 *   stats_report --diff A B [options]      compare two stats files
 *   stats_report --snapshot FILE           inspect a checkpoint file
 *
 * Options (diff mode):
 *   --tolerance=F    relative tolerance per value (default 0 = exact)
 *   --ignore=PREFIX  skip keys with this prefix (repeatable)
 *   --include-host   do not auto-ignore the "host." wall-clock stats
 *
 * Options (snapshot mode):
 *   --manifest       machine-readable "name size hash" lines (plus a
 *                    version header) for the golden-manifest CI gate
 *
 * The parser flattens the stats JSON tree into dotted scalar names
 * (arrays become name.0, name.1, ...), so it is robust to the exact
 * nesting the registry writer produces.
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "snapshot/archive.hh"

namespace {

// --- minimal JSON reader, flattening numbers to dotted keys ---------

struct FlatStats
{
    std::map<std::string, double> values;
};

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    FlatStats &out;
    bool ok = true;

    void
    fail(const char *what)
    {
        if (ok)
            std::fprintf(stderr, "parse error at byte %zu: %s\n", pos,
                         what);
        ok = false;
    }

    void
    skipWs()
    {
        while (pos < text.size()
               && std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &s)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return false;
        ++pos;
        s.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\' && pos < text.size()) {
                char e = text[pos++];
                switch (e) {
                  case 'n': s += '\n'; break;
                  case 't': s += '\t'; break;
                  case 'u':
                    pos += std::min<std::size_t>(4, text.size() - pos);
                    s += '?';
                    break;
                  default: s += e; break;
                }
            } else {
                s += c;
            }
        }
        if (pos >= text.size()) {
            fail("unterminated string");
            return false;
        }
        ++pos; // closing quote
        return true;
    }

    void
    parseValue(const std::string &key)
    {
        skipWs();
        if (pos >= text.size()) {
            fail("unexpected end of input");
            return;
        }
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            if (consume('}'))
                return;
            do {
                std::string name;
                if (!parseString(name)) {
                    fail("expected object key");
                    return;
                }
                if (!consume(':')) {
                    fail("expected ':'");
                    return;
                }
                parseValue(key.empty() ? name : key + "." + name);
                if (!ok)
                    return;
            } while (consume(','));
            if (!consume('}'))
                fail("expected '}'");
        } else if (c == '[') {
            ++pos;
            if (consume(']'))
                return;
            std::size_t index = 0;
            do {
                parseValue(key + "." + std::to_string(index++));
                if (!ok)
                    return;
            } while (consume(','));
            if (!consume(']'))
                fail("expected ']'");
        } else if (c == '"') {
            std::string s;
            if (!parseString(s))
                fail("bad string");
        } else if (std::strncmp(text.c_str() + pos, "true", 4) == 0) {
            pos += 4;
            out.values[key] = 1.0;
        } else if (std::strncmp(text.c_str() + pos, "false", 5) == 0) {
            pos += 5;
            out.values[key] = 0.0;
        } else if (std::strncmp(text.c_str() + pos, "null", 4) == 0) {
            pos += 4;
        } else {
            char *end = nullptr;
            const double v = std::strtod(text.c_str() + pos, &end);
            if (end == text.c_str() + pos) {
                fail("expected a value");
                return;
            }
            pos = static_cast<std::size_t>(end - text.c_str());
            out.values[key] = v;
        }
    }
};

bool
loadStats(const std::string &path, FlatStats &out)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "stats_report: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();
    // Stats files can hold several concatenated documents (the writers
    // append: one doc per instrumented run). Report the last one --
    // the most recent run's final state.
    Parser p{text, 0, out};
    int docs = 0;
    for (;;) {
        p.skipWs();
        if (p.pos >= text.size())
            break;
        out.values.clear();
        p.parseValue("");
        if (!p.ok)
            return false;
        ++docs;
    }
    if (docs == 0) {
        std::fprintf(stderr, "stats_report: %s holds no JSON document\n",
                     path.c_str());
        return false;
    }
    return true;
}

double
lookup(const FlatStats &s, const std::string &key, double fallback)
{
    const auto it = s.values.find(key);
    return it == s.values.end() ? fallback : it->second;
}

// --- summary rendering ----------------------------------------------

/** Shade ramp for the link heatmap, light to heavy. */
const char *const kShades[] = {" ", ".", ":", "-", "=", "+", "*",
                               "#", "%", "@"};

const char *
shade(double value, double max)
{
    if (max <= 0.0 || value <= 0.0)
        return kShades[0];
    const double frac = value / max;
    const int idx = std::min(9, 1 + static_cast<int>(frac * 8.999));
    return kShades[idx];
}

/** Collect mesh.links.rN.{east,...} into per-router totals. */
bool
meshLinkTotals(const FlatStats &s, std::vector<double> &totals)
{
    const std::string prefix = "mesh.links.r";
    bool any = false;
    for (const auto &[key, value] : s.values) {
        if (key.compare(0, prefix.size(), prefix) != 0)
            continue;
        char *end = nullptr;
        const long id = std::strtol(key.c_str() + prefix.size(), &end,
                                    10);
        if (end == key.c_str() + prefix.size() || *end != '.')
            continue;
        if (static_cast<std::size_t>(id) >= totals.size())
            totals.resize(static_cast<std::size_t>(id) + 1, 0.0);
        totals[static_cast<std::size_t>(id)] += value;
        any = true;
    }
    return any;
}

void
printMeshHeatmap(const FlatStats &s)
{
    std::vector<double> totals;
    if (!meshLinkTotals(s, totals))
        return;
    int side = 1;
    while (side * side < static_cast<int>(totals.size()))
        ++side;
    const double max = *std::max_element(totals.begin(), totals.end());
    std::printf("\nmesh link traffic (flits per router, max %.0f)\n",
                max);
    for (int y = 0; y < side; ++y) {
        std::printf("  ");
        for (int x = 0; x < side; ++x) {
            const std::size_t id =
                static_cast<std::size_t>(y * side + x);
            const double v = id < totals.size() ? totals[id] : 0.0;
            std::printf("%s%s", shade(v, max), shade(v, max));
        }
        std::printf("   ");
        for (int x = 0; x < side; ++x) {
            const std::size_t id =
                static_cast<std::size_t>(y * side + x);
            const double v = id < totals.size() ? totals[id] : 0.0;
            std::printf(" %7.0f", v);
        }
        std::printf("\n");
    }
}

void
printFsoiChannels(const FlatStats &s)
{
    const std::string prefix = "fsoi.channels.n";
    std::vector<double> util;
    for (const auto &[key, value] : s.values) {
        if (key.compare(0, prefix.size(), prefix) != 0)
            continue;
        char *end = nullptr;
        const long id = std::strtol(key.c_str() + prefix.size(), &end,
                                    10);
        if (end == key.c_str() + prefix.size()
            || std::strcmp(end, ".util") != 0)
            continue;
        if (static_cast<std::size_t>(id) >= util.size())
            util.resize(static_cast<std::size_t>(id) + 1, 0.0);
        util[static_cast<std::size_t>(id)] = value;
    }
    if (util.empty())
        return;
    std::printf("\nFSOI channel utilization\n");
    for (std::size_t n = 0; n < util.size(); ++n) {
        const int bars =
            static_cast<int>(std::min(1.0, util[n]) * 40.0 + 0.5);
        std::printf("  n%-3zu %6.2f%% |", n, util[n] * 100.0);
        for (int b = 0; b < 40; ++b)
            std::putchar(b < bars ? '#' : ' ');
        std::printf("|\n");
    }
}

/**
 * Fault-injection section: the scheduled fault plan (fault.schedule.*)
 * and the recovery counters (fault.*, <net>.retx.*). Printed only when
 * the run carried a FaultInjector; healthy runs have no fault.* keys.
 * The generic diff below covers these keys like any other, so the
 * golden-stats gate extends to fault counters for free.
 */
void
printFaultSummary(const FlatStats &s)
{
    bool any = false;
    for (const auto &[key, value] : s.values) {
        (void)value;
        if (key.compare(0, 6, "fault.") == 0) {
            any = true;
            break;
        }
    }
    if (!any)
        return;
    std::printf("\nfault injection\n");
    std::printf("  schedule: dead rx %.0f  dead tx %.0f  dead links "
                "%.0f  effective BER %.3g\n",
                lookup(s, "fault.schedule.dead_rx", 0.0),
                lookup(s, "fault.schedule.dead_tx", 0.0),
                lookup(s, "fault.schedule.dead_links", 0.0),
                lookup(s, "fault.schedule.effective_ber", 0.0));
    std::printf("  bit errors %.0f  dead-channel losses %.0f  "
                "blacklists %.0f  redirects %.0f\n",
                lookup(s, "fault.bit_errors", 0.0),
                lookup(s, "fault.dead_channel_losses", 0.0),
                lookup(s, "fault.blacklists", 0.0),
                lookup(s, "fault.redirects", 0.0));
    std::printf("  unroutable drops %.0f  retx budget exhausted %.0f\n",
                lookup(s, "fault.unroutable_drops", 0.0),
                lookup(s, "fault.retx_exhausted", 0.0));
    for (const char *net : {"mesh", "fsoi", "net"}) {
        const std::string base = std::string(net) + ".retx.";
        if (!s.values.count(base + "packets"))
            continue;
        std::printf("  %s retx: packets %.0f  crc drops %.0f  "
                    "dead losses %.0f\n",
                    net, lookup(s, base + "packets", 0.0),
                    lookup(s, base + "crc_drops", 0.0),
                    lookup(s, base + "dead_losses", 0.0));
    }
}

void
printLatency(const FlatStats &s, const char *net)
{
    const std::string base = std::string(net) + ".latency.";
    if (!s.values.count(base + "p50"))
        return;
    std::printf("  %s latency: p50 %.1f  p99 %.1f  p999 %.1f cycles\n",
                net, lookup(s, base + "p50", 0.0),
                lookup(s, base + "p99", 0.0),
                lookup(s, base + "p999", 0.0));
}

int
summarize(const std::string &path)
{
    FlatStats s;
    if (!loadStats(path, s))
        return 1;
    std::printf("%s: %zu scalar values\n", path.c_str(),
                s.values.size());
    const double cycles = lookup(s, "system.cycles", 0.0);
    const double instr = lookup(s, "system.instructions", 0.0);
    if (cycles > 0.0)
        std::printf("  cycles %.0f  instructions %.0f  ipc %.3f"
                    "  l1 miss rate %.4f\n",
                    cycles, instr, instr / cycles,
                    lookup(s, "system.l1.miss_rate", 0.0));
    for (const char *net : {"mesh", "fsoi", "net"})
        printLatency(s, net);
    printFaultSummary(s);
    printMeshHeatmap(s);
    printFsoiChannels(s);
    return 0;
}

// --- diff -----------------------------------------------------------

bool
ignored(const std::string &key,
        const std::vector<std::string> &prefixes)
{
    for (const auto &p : prefixes) {
        if (key.compare(0, p.size(), p) == 0)
            return true;
    }
    return false;
}

bool
numbersMatch(double a, double b, double tolerance)
{
    if (a == b)
        return true;
    if (std::isnan(a) && std::isnan(b))
        return true;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= tolerance * scale;
}

int
diff(const std::string &pathA, const std::string &pathB,
     double tolerance, const std::vector<std::string> &ignore)
{
    FlatStats a, b;
    if (!loadStats(pathA, a) || !loadStats(pathB, b))
        return 1;

    int mismatches = 0;
    const int kMaxPrinted = 40;
    auto report = [&](const std::string &line) {
        if (mismatches < kMaxPrinted)
            std::printf("  %s\n", line.c_str());
        else if (mismatches == kMaxPrinted)
            std::printf("  ... further mismatches suppressed\n");
        ++mismatches;
    };

    char buf[256];
    for (const auto &[key, va] : a.values) {
        if (ignored(key, ignore))
            continue;
        const auto it = b.values.find(key);
        if (it == b.values.end()) {
            std::snprintf(buf, sizeof(buf), "only in A: %s = %g",
                          key.c_str(), va);
            report(buf);
        } else if (!numbersMatch(va, it->second, tolerance)) {
            std::snprintf(buf, sizeof(buf),
                          "differs: %s  A=%.12g  B=%.12g", key.c_str(),
                          va, it->second);
            report(buf);
        }
    }
    for (const auto &[key, vb] : b.values) {
        if (ignored(key, ignore))
            continue;
        if (!a.values.count(key)) {
            std::snprintf(buf, sizeof(buf), "only in B: %s = %g",
                          key.c_str(), vb);
            report(buf);
        }
    }

    if (mismatches == 0) {
        std::printf("stats match: %s vs %s (%zu keys, tolerance %g)\n",
                    pathA.c_str(), pathB.c_str(), a.values.size(),
                    tolerance);
        return 0;
    }
    std::printf("stats differ: %d mismatching keys (tolerance %g)\n",
                mismatches, tolerance);
    return 1;
}

// --- snapshot inspection --------------------------------------------

/**
 * Print a checkpoint file's section table. Opening the reader verifies
 * the magic, version, section table and every per-section hash, so a
 * zero exit already certifies the file's integrity; a corrupt file
 * exits nonzero with the named-section diagnosis from the loader.
 */
int
inspectSnapshot(const std::string &path, bool manifest)
{
    using fsoi::snapshot::SnapshotReader;
    try {
        const SnapshotReader snap = SnapshotReader::fromFile(path);
        if (manifest) {
            // Stable machine format for the golden-manifest gate:
            // header line, then one "name size hash" line per section.
            std::printf("snapshot v%u root %016llx\n", snap.version(),
                        static_cast<unsigned long long>(snap.rootHash()));
            for (const auto &s : snap.sections())
                std::printf("%s %llu %016llx\n", s.name.c_str(),
                            static_cast<unsigned long long>(s.size),
                            static_cast<unsigned long long>(s.hash));
            return 0;
        }
        std::uint64_t payload = 0;
        for (const auto &s : snap.sections())
            payload += s.size;
        std::printf("%s: snapshot format v%u, %zu sections, %llu "
                    "payload bytes\n", path.c_str(), snap.version(),
                    snap.sections().size(),
                    static_cast<unsigned long long>(payload));
        std::printf("  root hash %016llx (all sections verified)\n",
                    static_cast<unsigned long long>(snap.rootHash()));
        std::printf("  %-16s %12s  %s\n", "section", "bytes", "hash");
        for (const auto &s : snap.sections())
            std::printf("  %-16s %12llu  %016llx\n", s.name.c_str(),
                        static_cast<unsigned long long>(s.size),
                        static_cast<unsigned long long>(s.hash));
        return 0;
    } catch (const fsoi::snapshot::SnapshotError &e) {
        std::fprintf(stderr, "stats_report: %s: %s\n", path.c_str(),
                     e.what());
        return 1;
    }
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: stats_report FILE\n"
        "       stats_report --diff A B [--tolerance=F]"
        " [--ignore=PREFIX] [--include-host]\n"
        "       stats_report --snapshot FILE [--manifest]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool diffMode = false;
    bool snapshotMode = false;
    bool manifest = false;
    bool includeHost = false;
    double tolerance = 0.0;
    std::vector<std::string> ignore;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--diff") {
            diffMode = true;
        } else if (arg == "--snapshot") {
            snapshotMode = true;
        } else if (arg == "--manifest") {
            manifest = true;
        } else if (arg.rfind("--tolerance=", 0) == 0) {
            tolerance = std::atof(arg.c_str() + 12);
        } else if (arg.rfind("--ignore=", 0) == 0) {
            ignore.push_back(arg.substr(9));
        } else if (arg == "--include-host") {
            includeHost = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            usage();
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    // Wall-clock self-profile stats are nondeterministic by nature;
    // keep them out of golden comparisons unless explicitly asked.
    if (!includeHost)
        ignore.push_back("host.");

    if (snapshotMode) {
        if (files.size() != 1) {
            usage();
            return 2;
        }
        return inspectSnapshot(files[0], manifest);
    }
    if (diffMode) {
        if (files.size() != 2) {
            usage();
            return 2;
        }
        return diff(files[0], files[1], tolerance, ignore);
    }
    if (files.size() != 1) {
        usage();
        return 2;
    }
    return summarize(files[0]);
}
