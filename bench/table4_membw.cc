/**
 * @file
 * Regenerates Table 4: speedups over the mesh baseline at the default
 * 8.8 GB/s off-chip bandwidth versus a 6x higher 52.8 GB/s, for the
 * 16-core and 64-core systems. A higher memory bandwidth removes an
 * interconnect-independent bottleneck and widens every gap.
 */

#include <cstdio>

#include <iostream>

#include "bench_util.hh"

using namespace fsoi;

namespace {

using Runs = std::vector<std::future<sim::RunResult>>;

/** Enqueue one run per app at (cores, kind, off-chip bandwidth). */
Runs
enqueueApps(bench::Sweep &sweep, int cores, sim::NetKind kind,
            double gbps, double scale)
{
    Runs runs;
    for (const auto &app : bench::apps()) {
        auto cfg = bench::paperConfig(cores, kind);
        cfg.mem_gbytes_per_sec = gbps;
        runs.push_back(sweep.run(cfg, app, scale));
    }
    return runs;
}

/** Mesh-baseline cycle counts per app, computed once per (cores, bw). */
std::vector<double>
collectCycles(Runs &runs)
{
    std::vector<double> cycles;
    for (auto &run : runs)
        cycles.push_back(static_cast<double>(run.get().cycles));
    return cycles;
}

double
gmeanSpeedup(Runs &runs, const std::vector<double> &mesh_cycles)
{
    std::vector<double> speedups;
    std::size_t i = 0;
    for (auto &run : runs)
        speedups.push_back(mesh_cycles[i++] / run.get().cycles);
    return geometricMean(speedups);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FigureJson json(argc, argv, "table4");
    bench::Sweep sweep(argc, argv);
    const double scale16 = bench::scaleArg(argc, argv, 0.15);
    const double scale64 = scale16 / 3.0;
    bench::banner("Table 4", "speedups vs off-chip memory bandwidth");

    struct Row
    {
        const char *name;
        sim::NetKind kind;
    };
    const Row rows[] = {{"FSOI", sim::NetKind::Fsoi},
                        {"L0", sim::NetKind::L0},
                        {"Lr1", sim::NetKind::Lr1},
                        {"Lr2", sim::NetKind::Lr2}};
    constexpr int kRows = 4;

    // Enqueue the whole table before collecting anything so every
    // configuration is in flight at once.
    auto q16_base_slow = enqueueApps(sweep, 16, sim::NetKind::Mesh, 8.8,
                                     scale16);
    auto q16_base_fast = enqueueApps(sweep, 16, sim::NetKind::Mesh, 52.8,
                                     scale16);
    Runs q16_slow[kRows], q16_fast[kRows];
    for (int r = 0; r < kRows; ++r) {
        q16_slow[r] = enqueueApps(sweep, 16, rows[r].kind, 8.8, scale16);
        q16_fast[r] = enqueueApps(sweep, 16, rows[r].kind, 52.8, scale16);
    }
    auto q64_base_slow = enqueueApps(sweep, 64, sim::NetKind::Mesh, 8.8,
                                     scale64);
    auto q64_base_fast = enqueueApps(sweep, 64, sim::NetKind::Mesh, 52.8,
                                     scale64);
    Runs q64_slow[kRows], q64_fast[kRows];
    for (int r = 0; r < kRows; ++r) {
        q64_slow[r] = enqueueApps(sweep, 64, rows[r].kind, 8.8, scale64);
        q64_fast[r] = enqueueApps(sweep, 64, rows[r].kind, 52.8, scale64);
    }

    std::printf("16-core system (geometric-mean speedup over mesh):\n\n");
    const auto base16_slow = collectCycles(q16_base_slow);
    const auto base16_fast = collectCycles(q16_base_fast);
    TextTable t16({"config", "8.8 GB/s", "52.8 GB/s"});
    for (int r = 0; r < kRows; ++r)
        t16.addRow({rows[r].name,
                    TextTable::num(gmeanSpeedup(q16_slow[r], base16_slow),
                                   2),
                    TextTable::num(gmeanSpeedup(q16_fast[r], base16_fast),
                                   2)});
    t16.print(std::cout);
    std::printf("(paper: FSOI 1.32 / 1.36, L0 1.37 / 1.43, Lr1 1.27 / "
                "1.32, Lr2 1.18 / 1.22)\n\n");

    std::printf("64-core system:\n\n");
    const auto base64_slow = collectCycles(q64_base_slow);
    const auto base64_fast = collectCycles(q64_base_fast);
    TextTable t64({"config", "8.8 GB/s", "52.8 GB/s"});
    for (int r = 0; r < kRows; ++r)
        t64.addRow({rows[r].name,
                    TextTable::num(gmeanSpeedup(q64_slow[r], base64_slow),
                                   2),
                    TextTable::num(gmeanSpeedup(q64_fast[r], base64_fast),
                                   2)});
    t64.print(std::cout);
    std::printf("(paper: FSOI 1.61 / 1.75, L0 1.75 / 1.91, Lr1 1.41 / "
                "1.55, Lr2 1.26 / 1.29)\n");
    json.table(t16);
    json.table(t64);
    return 0;
}
