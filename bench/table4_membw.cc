/**
 * @file
 * Regenerates Table 4: speedups over the mesh baseline at the default
 * 8.8 GB/s off-chip bandwidth versus a 6x higher 52.8 GB/s, for the
 * 16-core and 64-core systems. A higher memory bandwidth removes an
 * interconnect-independent bottleneck and widens every gap.
 */

#include <cstdio>

#include <iostream>

#include "bench_util.hh"

using namespace fsoi;

namespace {

/** Mesh-baseline cycle counts per app, computed once per (cores, bw). */
std::vector<double>
meshBaseline(int cores, double gbps, double scale)
{
    std::vector<double> cycles;
    for (const auto &app : bench::apps()) {
        auto base = bench::paperConfig(cores, sim::NetKind::Mesh);
        base.mem_gbytes_per_sec = gbps;
        cycles.push_back(static_cast<double>(
            bench::runConfig(base, app, scale).cycles));
    }
    return cycles;
}

double
gmeanSpeedup(int cores, sim::NetKind kind, double gbps, double scale,
             const std::vector<double> &mesh_cycles)
{
    std::vector<double> speedups;
    std::size_t i = 0;
    for (const auto &app : bench::apps()) {
        auto cfg = bench::paperConfig(cores, kind);
        cfg.mem_gbytes_per_sec = gbps;
        const auto res = bench::runConfig(cfg, app, scale);
        speedups.push_back(mesh_cycles[i++] / res.cycles);
    }
    return geometricMean(speedups);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FigureJson json(argc, argv, "table4");
    const double scale16 = bench::scaleArg(argc, argv, 0.15);
    const double scale64 = scale16 / 3.0;
    bench::banner("Table 4", "speedups vs off-chip memory bandwidth");

    struct Row
    {
        const char *name;
        sim::NetKind kind;
    };
    const Row rows[] = {{"FSOI", sim::NetKind::Fsoi},
                        {"L0", sim::NetKind::L0},
                        {"Lr1", sim::NetKind::Lr1},
                        {"Lr2", sim::NetKind::Lr2}};

    std::printf("16-core system (geometric-mean speedup over mesh):\n\n");
    const auto base16_slow = meshBaseline(16, 8.8, scale16);
    const auto base16_fast = meshBaseline(16, 52.8, scale16);
    TextTable t16({"config", "8.8 GB/s", "52.8 GB/s"});
    for (const auto &row : rows)
        t16.addRow({row.name,
                    TextTable::num(gmeanSpeedup(16, row.kind, 8.8,
                                                scale16, base16_slow), 2),
                    TextTable::num(gmeanSpeedup(16, row.kind, 52.8,
                                                scale16, base16_fast),
                                   2)});
    t16.print(std::cout);
    std::printf("(paper: FSOI 1.32 / 1.36, L0 1.37 / 1.43, Lr1 1.27 / "
                "1.32, Lr2 1.18 / 1.22)\n\n");

    std::printf("64-core system:\n\n");
    const auto base64_slow = meshBaseline(64, 8.8, scale64);
    const auto base64_fast = meshBaseline(64, 52.8, scale64);
    TextTable t64({"config", "8.8 GB/s", "52.8 GB/s"});
    for (const auto &row : rows)
        t64.addRow({row.name,
                    TextTable::num(gmeanSpeedup(64, row.kind, 8.8,
                                                scale64, base64_slow), 2),
                    TextTable::num(gmeanSpeedup(64, row.kind, 52.8,
                                                scale64, base64_fast),
                                   2)});
    t64.print(std::cout);
    std::printf("(paper: FSOI 1.61 / 1.75, L0 1.75 / 1.91, Lr1 1.41 / "
                "1.55, Lr2 1.26 / 1.29)\n");
    json.table(t16);
    json.table(t64);
    return 0;
}
