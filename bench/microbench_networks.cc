/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: cycles of
 * simulated interconnect per second of host time, for the mesh router
 * pipeline and the FSOI slot engine, and the analytic models. Useful
 * to catch performance regressions in the simulator core.
 */

#include <benchmark/benchmark.h>

#include "analytic/backoff_model.hh"
#include "analytic/collision_model.hh"
#include "common/rng.hh"
#include "fsoi/fsoi_network.hh"
#include "noc/mesh_network.hh"

using namespace fsoi;

namespace {

template <typename Net>
void
driveNetwork(benchmark::State &state, Net &net, double load)
{
    for (NodeId n = 0; n < static_cast<NodeId>(net.numEndpoints()); ++n)
        net.setHandler(n, [](noc::Packet &) {});
    Rng rng(7);
    Cycle t = 0;
    for (auto _ : state) {
        net.tick(t);
        for (NodeId n = 0; n < 16; ++n) {
            if (!rng.nextBool(load))
                continue;
            NodeId dst = rng.nextBelow(15);
            if (dst >= n)
                ++dst;
            if (net.canAccept(n, noc::PacketClass::Meta))
                net.send(noc::makePacket(n, dst, noc::PacketClass::Meta,
                                         noc::PacketKind::Request));
        }
        ++t;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_MeshTick(benchmark::State &state)
{
    noc::MeshLayout layout(16, 4);
    noc::MeshNetwork net(layout, noc::MeshConfig{});
    driveNetwork(state, net, 0.02);
}
BENCHMARK(BM_MeshTick);

void
BM_FsoiTick(benchmark::State &state)
{
    noc::MeshLayout layout(16, 4);
    ::fsoi::fsoi::FsoiNetwork net(layout, ::fsoi::fsoi::FsoiConfig{});
    driveNetwork(state, net, 0.02);
}
BENCHMARK(BM_FsoiTick);

/**
 * Saturated mesh: every node injects whenever its lane can accept, so
 * routers stay full and credits stream back every cycle. This is the
 * regression guard for Router::applyCredits -- with the old mid-vector
 * erase the credit pass was quadratic in queued credits and dominated
 * exactly this workload.
 */
void
BM_MeshTickSaturated(benchmark::State &state)
{
    noc::MeshLayout layout(16, 4);
    noc::MeshNetwork net(layout, noc::MeshConfig{});
    driveNetwork(state, net, 1.0);
}
BENCHMARK(BM_MeshTickSaturated);

void
BM_CollisionClosedForm(benchmark::State &state)
{
    double p = 0.01;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analytic::collisionProbability(16, p, 2));
        p = p < 0.3 ? p + 0.001 : 0.01;
    }
}
BENCHMARK(BM_CollisionClosedForm);

void
BM_BackoffEpisode(benchmark::State &state)
{
    analytic::BackoffParams params;
    std::uint64_t seed = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            analytic::simulateBackoff(params, 1, seed++));
}
BENCHMARK(BM_BackoffEpisode);

} // namespace

BENCHMARK_MAIN();
