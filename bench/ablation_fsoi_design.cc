/**
 * @file
 * Ablation study of the FSOI design choices called out in DESIGN.md:
 *
 *  - receivers per node (R = 1, 2, 3): Section 4.3.1 predicts
 *    diminishing returns past R = 2;
 *  - backoff base B (1.1 vs 2.0): Figure 4's over-correction argument
 *    at the system level;
 *  - Section 5 optimizations one at a time (confirmation-as-ack,
 *    ll/sc subscription, data-collision measures);
 *  - per-line confirmation gating (the point-to-point ordering cost).
 *
 * Each row runs a sync- and sharing-heavy subset of the workloads on
 * the 16-node system and reports execution cycles (normalized to the
 * full paper configuration), packet latency and collision rates.
 */

#include <cstdio>

#include <iostream>

#include "bench_util.hh"

using namespace fsoi;

namespace {

struct Variant
{
    const char *name;
    std::function<void(sim::SystemConfig &)> tweak;
};

struct Row
{
    double cycles = 0;
    double latency = 0;
    double meta_coll = 0;
    double data_coll = 0;
};

std::vector<std::future<sim::RunResult>>
enqueueVariant(bench::Sweep &sweep, const Variant &variant, double scale)
{
    const char *subset[] = {"ws", "mp3d", "tsp", "fft", "barnes"};
    std::vector<std::future<sim::RunResult>> runs;
    for (const char *name : subset) {
        auto cfg = bench::paperConfig(16, sim::NetKind::Fsoi, 3);
        variant.tweak(cfg);
        runs.push_back(sweep.run(cfg, workload::appByName(name), scale));
    }
    return runs;
}

Row
collectVariant(std::vector<std::future<sim::RunResult>> &runs)
{
    Row row;
    int n = 0;
    for (auto &run : runs) {
        const auto res = run.get();
        row.cycles += static_cast<double>(res.cycles);
        row.latency += res.avg_packet_latency;
        row.meta_coll += res.meta_collision_rate;
        row.data_coll += res.data_collision_rate;
        ++n;
    }
    row.latency /= n;
    row.meta_coll /= n;
    row.data_coll /= n;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FigureJson json(argc, argv, "ablation");
    bench::Sweep sweep(argc, argv);
    const double scale = bench::scaleArg(argc, argv, 0.2);
    bench::banner("Ablation", "FSOI design choices (16 nodes)");

    const Variant variants[] = {
        {"paper config (R=2, B=1.1, all opts)",
         [](sim::SystemConfig &) {}},
        {"R=1 receiver per lane",
         [](sim::SystemConfig &cfg) {
             cfg.fsoi.receivers_per_lane = 1;
         }},
        {"R=3 receivers per lane",
         [](sim::SystemConfig &cfg) {
             cfg.fsoi.receivers_per_lane = 3;
         }},
        {"backoff B=2.0 (over-correction)",
         [](sim::SystemConfig &cfg) { cfg.fsoi.backoff_base = 2.0; }},
        {"backoff W=1 B=1.1 (window too small)",
         [](sim::SystemConfig &cfg) { cfg.fsoi.backoff_window = 1.0; }},
        {"no confirmation-as-ack",
         [](sim::SystemConfig &cfg) {
             cfg.opt_confirmation_ack = false;
         }},
        {"no ll/sc subscription",
         [](sim::SystemConfig &cfg) {
             cfg.opt_sync_subscription = false;
         }},
        {"no data-collision measures",
         [](sim::SystemConfig &cfg) { cfg.opt_data_collision = false; }},
        {"no optimizations at all",
         [](sim::SystemConfig &cfg) {
             cfg.opt_confirmation_ack = false;
             cfg.opt_sync_subscription = false;
             cfg.opt_data_collision = false;
         }},
    };

    TextTable table({"variant", "rel. time", "pkt lat", "meta coll",
                     "data coll"});
    std::vector<std::vector<std::future<sim::RunResult>>> queued;
    for (const auto &variant : variants)
        queued.push_back(enqueueVariant(sweep, variant, scale));

    double base_cycles = 0;
    for (std::size_t v = 0; v < queued.size(); ++v) {
        const auto &variant = variants[v];
        const Row row = collectVariant(queued[v]);
        if (base_cycles == 0)
            base_cycles = row.cycles;
        table.addRow({variant.name,
                      TextTable::num(row.cycles / base_cycles, 3),
                      TextTable::num(row.latency, 2),
                      TextTable::pct(row.meta_coll, 2),
                      TextTable::pct(row.data_coll, 2)});
    }
    json.table(table);
    table.print(std::cout);
    std::printf("\n(rel. time: summed cycles over a sync-heavy subset, "
                "normalized to the paper configuration; R=2 should sit "
                "near the knee, B=2 and the no-opt variants should "
                "lose ground)\n");
    return 0;
}
