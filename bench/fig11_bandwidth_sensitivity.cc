/**
 * @file
 * Regenerates Figure 11: relative performance of the FSOI and mesh
 * systems as the interconnect bandwidth is progressively reduced to
 * half (FSOI: fewer VCSELs per lane / longer slots; mesh: narrower
 * links / more flits per packet). Each curve is normalized to its own
 * full-bandwidth configuration.
 *
 * Paper: both networks degrade noticeably, FSOI no more than the mesh
 * -- accepting collisions does not demand extra over-provisioning.
 */

#include <cstdio>

#include <iostream>

#include "bench_util.hh"

using namespace fsoi;

int
main(int argc, char **argv)
{
    bench::FigureJson json(argc, argv, "fig11");
    bench::Sweep sweep(argc, argv);
    const double scale = bench::scaleArg(argc, argv, 0.2);
    bench::banner("Figure 11", "performance vs relative bandwidth");

    // A representative subset keeps the sweep fast; override the scale
    // argument for full-suite runs.
    const char *subset[] = {"barnes", "fft", "ocean", "raytrace",
                            "em3d", "mp3d"};
    const double levels[] = {1.0, 0.9, 0.8, 0.7, 0.6, 0.5};

    struct LevelRuns
    {
        double bw;
        std::vector<std::future<sim::RunResult>> fsoi, mesh;
    };
    std::vector<LevelRuns> queued;
    for (double bw : levels) {
        LevelRuns runs;
        runs.bw = bw;
        for (const char *name : subset) {
            const auto app = workload::appByName(name);
            auto fcfg = bench::paperConfig(16, sim::NetKind::Fsoi);
            fcfg.fsoi.bandwidth_scale = bw;
            auto mcfg = bench::paperConfig(16, sim::NetKind::Mesh);
            mcfg.mesh.bandwidth_scale = bw;
            runs.fsoi.push_back(sweep.run(fcfg, app, scale));
            runs.mesh.push_back(sweep.run(mcfg, app, scale));
        }
        queued.push_back(std::move(runs));
    }

    TextTable table({"bandwidth", "FSOI", "mesh"});
    double fsoi_full = 0, mesh_full = 0;
    for (auto &runs : queued) {
        double fsoi_cycles = 0, mesh_cycles = 0;
        for (std::size_t i = 0; i < runs.fsoi.size(); ++i) {
            fsoi_cycles += static_cast<double>(runs.fsoi[i].get().cycles);
            mesh_cycles += static_cast<double>(runs.mesh[i].get().cycles);
        }
        if (runs.bw == 1.0) {
            fsoi_full = fsoi_cycles;
            mesh_full = mesh_cycles;
        }
        table.addRow({TextTable::pct(runs.bw, 0),
                      TextTable::pct(fsoi_full / fsoi_cycles, 1),
                      TextTable::pct(mesh_full / mesh_cycles, 1)});
    }
    table.print(std::cout);
    std::printf("\n(each column normalized to its own full-bandwidth "
                "configuration; paper: both fall off, FSOI no faster "
                "than mesh)\n");
    json.table(table);
    return 0;
}
