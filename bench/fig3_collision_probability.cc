/**
 * @file
 * Regenerates Figure 3: collision probability (normalized to the
 * packet transmission probability) as a function of transmission
 * probability p and receivers per node R, for N = 16.
 *
 * Three sources, as in the paper: the closed form, a Monte Carlo of
 * the slotted process, and "experimental" points measured on the full
 * FSOI network driven at matched load (meta and data lanes separated).
 *
 * Also prints the Section 4.3.1 bandwidth-allocation curve whose
 * optimum (B_M ~= 0.285) motivated the 3/6 VCSEL lane split.
 */

#include <cstdio>

#include "analytic/bandwidth_alloc.hh"
#include "analytic/collision_model.hh"
#include <iostream>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "fsoi/fsoi_network.hh"

using namespace fsoi;

namespace {

/** Drive the real FSOI network at per-slot probability p, measure. */
double
measuredCollisionRate(double p, noc::PacketClass cls, std::uint64_t seed)
{
    noc::MeshLayout layout(16, 4);
    ::fsoi::fsoi::FsoiConfig cfg;
    cfg.seed = seed;
    ::fsoi::fsoi::FsoiNetwork net(layout, cfg);
    for (NodeId n = 0; n < 20; ++n)
        net.setHandler(n, [](noc::Packet &) {});
    Rng rng(seed * 3 + 1);
    const int slot = net.slotCycles(cls);

    Cycle t = 0;
    for (; t < 120000; ++t) {
        net.tick(t);
        if (t % slot != 0)
            continue;
        for (NodeId n = 0; n < 16; ++n) {
            if (!rng.nextBool(p))
                continue;
            NodeId dst = rng.nextBelow(15);
            if (dst >= n)
                ++dst;
            if (net.canAccept(n, cls))
                net.send(noc::makePacket(n, dst, cls,
                                         cls == noc::PacketClass::Meta
                                             ? noc::PacketKind::Request
                                             : noc::PacketKind::Reply));
        }
    }
    while (!net.idle())
        net.tick(t++);
    // Per-node per-slot collision probability, normalized by p as in
    // the figure: use collisions per attempt as the per-packet view.
    return net.stats().collisionRate(cls);
}

double
packetTheory(double p, int receivers)
{
    // Per-packet collision probability: another sender sharing my
    // receiver picks my destination in my slot.
    const double q = p / 15.0;
    const double others = 15.0 / receivers - 1.0;
    return 1.0 - std::pow(1.0 - q, others);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FigureJson json(argc, argv, "fig3");
    bench::Sweep sweep(argc, argv);
    bench::banner("Figure 3",
                  "collision probability vs transmission probability");

    // The experimental points drive standalone FsoiNetwork instances,
    // not whole Systems, so they fan out over a plain thread pool.
    // Each measurement owns its network and RNG; results are collected
    // in submission order, keeping output identical at any --jobs.
    common::ThreadPool pool(sweep.jobs());
    struct LanePair
    {
        std::future<double> meta, data;
    };
    std::vector<LanePair> measured;
    const double exp_ps[] = {0.02, 0.05, 0.10, 0.15};
    for (double p : exp_ps)
        measured.push_back(LanePair{
            pool.submit([p] {
                return measuredCollisionRate(p, noc::PacketClass::Meta, 7);
            }),
            pool.submit([p] {
                return measuredCollisionRate(p, noc::PacketClass::Data, 9);
            })});

    std::printf("Normalized node collision probability Pc/p (theory, "
                "N=16):\n\n");
    TextTable theory({"p", "R=1", "R=2", "R=3", "R=4", "MC(R=2)"});
    const double ps[] = {0.33, 0.25, 0.20, 0.15, 0.10,
                         0.07, 0.05, 0.04, 0.03, 0.02, 0.01};
    for (double p : ps) {
        std::vector<std::string> row{TextTable::pct(p, 0)};
        for (int r = 1; r <= 4; ++r)
            row.push_back(TextTable::pct(
                analytic::normalizedCollisionProbability(16, p, r), 1));
        const auto mc = analytic::simulateCollisions(16, p, 2, 30000, 42);
        row.push_back(TextTable::pct(mc.node_collision_prob / p, 1));
        theory.addRow(row);
    }
    theory.print(std::cout);

    std::printf("\nExperimental points on the full FSOI network "
                "(per-packet collision rate vs first-order theory):\n\n");
    TextTable exp({"p", "meta lane", "data lane", "theory(R=2)"});
    for (std::size_t i = 0; i < measured.size(); ++i) {
        const double p = exp_ps[i];
        exp.addRow({TextTable::pct(p, 0),
                    TextTable::pct(measured[i].meta.get(), 2),
                    TextTable::pct(measured[i].data.get(), 2),
                    TextTable::pct(packetTheory(p, 2), 2)});
    }
    exp.print(std::cout);

    std::printf("\nSection 4.3.1 bandwidth allocation: expected latency "
                "vs meta share B_M\n\n");
    const auto constants = analytic::paperConstants();
    TextTable alloc({"B_M", "latency (a.u.)"});
    for (double m : {0.1, 0.2, 0.25, 0.285, 0.3, 0.4, 0.5, 0.7})
        alloc.addRow({TextTable::num(m, 3),
                      TextTable::num(analytic::expectedLatency(constants,
                                                               m), 2)});
    alloc.print(std::cout);
    std::printf("\noptimal B_M = %.3f (paper: 0.285 -> 3 meta / 6 data "
                "VCSELs)\n",
                analytic::optimalMetaShare(constants));
    json.table(theory);
    json.table(exp);
    json.table(alloc);
    json.scalar("optimal_meta_share",
                analytic::optimalMetaShare(constants));
    return 0;
}
