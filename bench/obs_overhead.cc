/**
 * @file
 * Observability overhead gate: runs the same FSOI workload with the
 * telemetry layer at its defaults (flight recorder ring + sampled
 * self-profiler + link counters) and with the tunable parts disabled,
 * then compares wall-clock cycles/sec. CI asserts the overhead stays
 * under a budget (default 3%).
 *
 * The two configs must also produce bit-identical simulated cycle
 * counts -- telemetry never touches simulation state -- and the bench
 * fails loudly if they diverge.
 *
 * Host noise only ever inflates a measurement, so a round that lands
 * under the budget is trustworthy while a round over it may just have
 * caught a throttling spike: the gate re-measures up to --rounds times
 * and fails only if every round exceeds the budget.
 *
 * Usage: obs_overhead [--max=PCT] [--reps=N] [--rounds=N] [scale]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "bench_util.hh"

using namespace fsoi;
using Clock = std::chrono::steady_clock;

namespace {

struct Timed
{
    sim::RunResult result;
    double seconds = 0.0;
};

Timed
timedRun(const sim::SystemConfig &cfg, const workload::AppProfile &app,
         double scale)
{
    const auto t0 = Clock::now();
    Timed t;
    t.result = bench::runConfig(cfg, app, scale);
    t.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    double max_pct = 3.0;
    int reps = 3;
    int rounds = 3;
    int keep = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--max=", 0) == 0)
            max_pct = std::atof(arg.data() + 6);
        else if (arg.rfind("--reps=", 0) == 0)
            reps = std::max(1, std::atoi(arg.data() + 7));
        else if (arg.rfind("--rounds=", 0) == 0)
            rounds = std::max(1, std::atoi(arg.data() + 9));
        else
            argv[keep++] = argv[i];
    }
    argv[keep] = nullptr;
    argc = keep;
    const double scale = bench::scaleArg(argc, argv, 0.25);

    bench::banner("obs_overhead",
                  "telemetry cost: defaults vs telemetry off");

    const auto app = workload::appByName("fft");
    auto telemetry = bench::paperConfig(16, sim::NetKind::Fsoi);
    auto bare = telemetry;
    bare.flight_recorder_events = 0;
    bare.profile_stride = 0;
    auto recorder_only = bare;
    recorder_only.flight_recorder_events =
        telemetry.flight_recorder_events;
    auto profiler_only = bare;
    profiler_only.profile_stride = telemetry.profile_stride;

    // Interleave the variants and keep the best rep of each, so one
    // background hiccup cannot charge all its noise to one side. The
    // single-feature runs are informational: they attribute the
    // overhead, the gate compares only all-on vs all-off.
    Timed best_tel, best_bare, best_rec, best_prof;
    double overhead_pct = 0.0;
    bool within_budget = false;
    for (int round = 0; round < rounds && !within_budget; ++round) {
        for (int r = 0; r < reps; ++r) {
            const Timed tel = timedRun(telemetry, app, scale);
            const Timed none = timedRun(bare, app, scale);
            const Timed rec = timedRun(recorder_only, app, scale);
            const Timed prof = timedRun(profiler_only, app, scale);
            if (r == 0 || tel.seconds < best_tel.seconds)
                best_tel = tel;
            if (r == 0 || none.seconds < best_bare.seconds)
                best_bare = none;
            if (r == 0 || rec.seconds < best_rec.seconds)
                best_rec = rec;
            if (r == 0 || prof.seconds < best_prof.seconds)
                best_prof = prof;
        }

        if (best_tel.result.cycles != best_bare.result.cycles
            || best_tel.result.instructions
                   != best_bare.result.instructions) {
            std::fprintf(
                stderr,
                "FAIL: telemetry changed simulation results "
                "(cycles %llu vs %llu, instructions %llu vs %llu)\n",
                static_cast<unsigned long long>(best_tel.result.cycles),
                static_cast<unsigned long long>(best_bare.result.cycles),
                static_cast<unsigned long long>(
                    best_tel.result.instructions),
                static_cast<unsigned long long>(
                    best_bare.result.instructions));
            return 1;
        }

        overhead_pct =
            (static_cast<double>(best_bare.result.cycles)
                 / best_bare.seconds
             / (static_cast<double>(best_tel.result.cycles)
                / best_tel.seconds)
             - 1.0)
            * 100.0;
        within_budget = overhead_pct <= max_pct;
        if (!within_budget && round + 1 < rounds)
            std::fprintf(stderr,
                         "note: round %d measured %.2f%% (> %.2f%% "
                         "budget), re-measuring\n",
                         round + 1, overhead_pct, max_pct);
    }

    // One keep-run for context: how many events the recorder actually
    // absorbed over the run (the per-event cost drives the overhead).
    const auto kept = sim::SweepRunner::runJob(
        sim::SweepJob{telemetry, app, scale}, true);
    const double events =
        static_cast<double>(kept.system->flightRecorder().recorded());

    const double cps_tel =
        static_cast<double>(best_tel.result.cycles) / best_tel.seconds;
    const double cps_bare =
        static_cast<double>(best_bare.result.cycles) / best_bare.seconds;

    std::printf("cycles simulated     : %llu (identical both ways)\n",
                static_cast<unsigned long long>(best_tel.result.cycles));
    std::printf("events recorded      : %.0f (%.2f per cycle)\n", events,
                events / static_cast<double>(best_tel.result.cycles));
    std::printf("telemetry on         : %.2f Mcycles/s (%.3f s)\n",
                cps_tel / 1e6, best_tel.seconds);
    std::printf("flight recorder only : %.2f Mcycles/s (%.3f s)\n",
                best_rec.result.cycles / best_rec.seconds / 1e6,
                best_rec.seconds);
    std::printf("profiler only        : %.2f Mcycles/s (%.3f s)\n",
                best_prof.result.cycles / best_prof.seconds / 1e6,
                best_prof.seconds);
    std::printf("telemetry off        : %.2f Mcycles/s (%.3f s)\n",
                cps_bare / 1e6, best_bare.seconds);
    std::printf("overhead             : %.2f%% (budget %.2f%%)\n",
                overhead_pct, max_pct);

    if (!within_budget) {
        std::fprintf(stderr,
                     "FAIL: telemetry overhead %.2f%% exceeds budget "
                     "%.2f%% in all %d rounds\n",
                     overhead_pct, max_pct, rounds);
        return 1;
    }
    std::printf("\nPASS\n");
    return 0;
}
