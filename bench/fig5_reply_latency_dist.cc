/**
 * @file
 * Regenerates Figure 5: probability distribution of the overall
 * latency of a read-miss request (queuing + request + directory +
 * memory + reply), measured over all applications on the 16-node FSOI
 * system. The paper's point: the mass is concentrated in a few slots,
 * which is what makes receiver-side reply-slot reservation (request
 * spacing) effective.
 */

#include <cstdio>

#include <iostream>

#include "bench_util.hh"

using namespace fsoi;

int
main(int argc, char **argv)
{
    bench::FigureJson json(argc, argv, "fig5");
    bench::Sweep sweep(argc, argv);
    const double scale = bench::scaleArg(argc, argv, 0.1);
    bench::banner("Figure 5", "read-miss reply latency distribution");

    std::vector<std::future<sim::SweepOutcome>> queued;
    for (const auto &app : bench::apps())
        queued.push_back(sweep.runKeep(
            bench::paperConfig(16, sim::NetKind::Fsoi), app, scale));

    Histogram hist(5.0, 60);
    for (auto &run : queued) {
        const auto outcome = run.get();
        sim::System *sys = outcome.system.get();
        for (int n = 0; n < 16; ++n) {
            const auto &ml = sys->l1(n).stats().miss_latency;
            for (std::size_t b = 0; b <= ml.numBins(); ++b) {
                const auto count = ml.bin(b);
                for (std::uint64_t k = 0; k < count; ++k)
                    hist.add((b + 0.5) * ml.binWidth());
            }
        }
    }

    std::printf("miss latency histogram (bin width %.0f cycles, %llu "
                "misses):\n\n", hist.binWidth(),
                (unsigned long long)hist.count());
    std::printf("%-12s %-8s %s\n", "latency", "frac", "");
    double peak = 0.0;
    for (std::size_t b = 0; b < 24; ++b)
        peak = std::max(peak, hist.fraction(b));
    TextTable bins({"bin_lo", "bin_hi", "fraction"});
    for (std::size_t b = 0; b < 24; ++b) {
        const double frac = hist.fraction(b);
        const int bar = peak > 0 ? static_cast<int>(50 * frac / peak) : 0;
        std::printf("%3.0f-%-3.0f cyc  %5.1f%%  %s\n", b * hist.binWidth(),
                    (b + 1) * hist.binWidth(), 100 * frac,
                    std::string(bar, '#').c_str());
        bins.addRow({TextTable::num(b * hist.binWidth(), 0),
                     TextTable::num((b + 1) * hist.binWidth(), 0),
                     TextTable::num(frac, 4)});
    }
    json.table(bins);
    std::printf(">120 cyc     %5.1f%%\n",
                100.0 * (1.0 - [&] {
                    double s = 0;
                    for (std::size_t b = 0; b < 24; ++b)
                        s += hist.fraction(b);
                    return s;
                }()));
    std::printf("\nmean %.1f cycles, p50 %.0f, p90 %.0f, p99 %.0f\n",
                hist.mean(), hist.percentile(0.5), hist.percentile(0.9),
                hist.percentile(0.99));
    json.scalar("mean", hist.mean());
    json.scalar("p50", hist.percentile(0.5));
    json.scalar("p90", hist.percentile(0.9));
    json.scalar("p99", hist.percentile(0.99));
    std::printf("(paper: probability heavily concentrated in a few "
                "choices; peak ~41%% in one bin)\n");
    return 0;
}
