/**
 * @file
 * Regenerates Table 1: optical link parameters of the single-bit FSOI
 * link of Figure 2 (2 cm diagonal hop, 980 nm, 40 Gbps), computed from
 * the device models rather than copied.
 */

#include <cstdio>

#include "bench_util.hh"
#include "photonics/link_budget.hh"
#include "photonics/units.hh"

using namespace fsoi;
using namespace ::fsoi::photonics;

int
main()
{
    bench::banner("Table 1", "optical link parameters (computed)");

    OpticalLink optical;
    const LinkReport r = optical.evaluate();

    std::printf("Free-Space Optics\n");
    std::printf("  Trans. distance        %.1f cm      (paper: 2 cm)\n",
                r.distance_m * 100);
    std::printf("  Optical wavelength     %.0f nm      (paper: 980 nm)\n",
                r.wavelength_m * 1e9);
    std::printf("  Optical path loss      %.2f dB     (paper: 2.6 dB)\n",
                r.path_loss_db);
    std::printf("  Propagation delay      %.1f ps     (sub-cycle at "
                "3.3 GHz)\n",
                r.propagation_delay_s * 1e12);
    std::printf("  Microlens aperture     %.0f um tx / %.0f um rx\n",
                optical.path().params().tx_aperture_m * 1e6,
                optical.path().params().rx_aperture_m * 1e6);

    std::printf("\nTransmitter & Receiver\n");
    std::printf("  VCSEL aperture         %.0f um, threshold %.2f mA, "
                "parasitics %.0f ohm / %.0f fF\n",
                optical.vcsel().params().aperture_m * 1e6,
                optical.vcsel().params().threshold_a * 1e3,
                optical.vcsel().params().parasitic_r_ohm,
                optical.vcsel().params().parasitic_c_f * 1e15);
    std::printf("  Extinction ratio       %.0f:1      (paper: 11:1)\n",
                optical.linkParams().extinction_ratio);
    std::printf("  PD responsivity        %.2f A/W, capacitance %.0f fF\n",
                optical.photodetector().params().responsivity_a_per_w,
                optical.photodetector().params().capacitance_f * 1e15);
    std::printf("  TIA + limiting amp     bandwidth %.0f GHz, gain "
                "%.0f V/A\n",
                optical.tia().params().bandwidth_hz / 1e9,
                optical.tia().params().gain_v_per_a);

    std::printf("\nLink\n");
    std::printf("  Data rate              %.0f Gbps    (paper: 40 Gbps)\n",
                optical.linkParams().data_rate_bps / 1e9);
    std::printf("  Signal-to-noise ratio  %.1f dB     (paper: 7.5 dB)\n",
                r.snr_db);
    std::printf("  Bit-error-rate (BER)   %.1e  (paper: 1e-10)\n",
                r.bit_error_rate);
    std::printf("  Cycle-to-cycle jitter  %.1f ps     (paper: 1.7 ps)\n",
                r.jitter_rms_s * 1e12);
    std::printf("  Q factor               %.2f\n", r.q_factor);
    std::printf("  Received swing         %.1f uA -> %.0f mV after TIA\n",
                r.photocurrent_swing_a * 1e6, r.output_swing_v * 1e3);

    std::printf("\nPower Consumption\n");
    std::printf("  Laser driver           %.1f mW     (paper: 6.3 mW)\n",
                r.laser_driver_power_w * 1e3);
    std::printf("  VCSEL                  %.2f mW    (paper: 0.96 mW)\n",
                r.vcsel_power_w * 1e3);
    std::printf("  Transmitter (standby)  %.2f mW    (paper: 0.43 mW)\n",
                r.tx_standby_power_w * 1e3);
    std::printf("  Receiver               %.1f mW     (paper: 4.2 mW)\n",
                r.receiver_power_w * 1e3);
    std::printf("  Energy per bit         %.2f pJ\n",
                r.energy_per_bit_j * 1e12);
    return 0;
}
