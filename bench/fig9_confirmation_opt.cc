/**
 * @file
 * Regenerates Figure 9: change in meta-lane packet transmission
 * probability and collision rate when the confirmation signal
 * substitutes invalidation acknowledgments (and carries ll/sc
 * booleans), Section 5.1.
 *
 * The paper's observations: traffic drops only ~5%, but meta
 * collisions drop ~31.5%, because the eliminated acknowledgments were
 * quasi-synchronized (bursts answering an invalidation storm) and
 * collided far more than independent-arrival theory predicts. With
 * the optimization, the measured points move close to the theoretical
 * curve.
 */

#include <cmath>
#include <cstdio>

#include "analytic/collision_model.hh"
#include <iostream>

#include "bench_util.hh"

using namespace fsoi;

namespace {

double
packetTheory(double p)
{
    const double q = p / 15.0;
    const double others = 15.0 / 2.0 - 1.0;
    return 1.0 - std::pow(1.0 - q, others);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FigureJson json(argc, argv, "fig9");
    bench::Sweep sweep(argc, argv);
    const double scale = bench::scaleArg(argc, argv, 0.25);
    bench::banner("Figure 9",
                  "meta collisions with/without confirmation-as-ack");

    TextTable table({"app", "p_base", "coll_base", "p_opt", "coll_opt",
                     "theory@p_opt"});
    double coll_base_sum = 0, coll_opt_sum = 0;
    double pkts_base = 0, pkts_opt = 0;
    int n = 0;

    auto base_cfg = bench::paperConfig(16, sim::NetKind::Fsoi, 5);
    base_cfg.opt_confirmation_ack = false;
    base_cfg.opt_sync_subscription = false;
    base_cfg.opt_data_collision = false;
    auto opt_cfg = bench::paperConfig(16, sim::NetKind::Fsoi, 5);
    opt_cfg.opt_data_collision = false; // isolate Section 5.1

    const auto apps = bench::apps();
    std::vector<std::future<sim::RunResult>> base_runs, opt_runs;
    for (const auto &app : apps) {
        base_runs.push_back(sweep.run(base_cfg, app, scale));
        opt_runs.push_back(sweep.run(opt_cfg, app, scale));
    }

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &app = apps[i];
        const auto base = base_runs[i].get();
        const auto opt = opt_runs[i].get();

        table.addRow({app.name,
                      TextTable::pct(base.meta_tx_probability, 2),
                      TextTable::pct(base.meta_collision_rate, 2),
                      TextTable::pct(opt.meta_tx_probability, 2),
                      TextTable::pct(opt.meta_collision_rate, 2),
                      TextTable::pct(packetTheory(
                          opt.meta_tx_probability), 2)});
        coll_base_sum += base.meta_collision_rate;
        coll_opt_sum += opt.meta_collision_rate;
        pkts_base += static_cast<double>(base.packets_delivered);
        pkts_opt += static_cast<double>(opt.packets_delivered);
        ++n;
    }
    table.print(std::cout);
    std::printf("\ntraffic reduction: %.1f%% of packets eliminated "
                "(paper: ~5.1%%)\n",
                100.0 * (1.0 - pkts_opt / pkts_base));
    if (coll_base_sum > 0)
        std::printf("meta collision rate reduction: %.1f%% "
                    "(paper: ~31.5%% of meta collisions eliminated)\n",
                    100.0 * (1.0 - coll_opt_sum / coll_base_sum));
    json.table(table);
    json.scalar("traffic_reduction", 1.0 - pkts_opt / pkts_base);
    if (coll_base_sum > 0)
        json.scalar("meta_collision_reduction",
                    1.0 - coll_opt_sum / coll_base_sum);
    return 0;
}
