/**
 * @file
 * Regenerates Figure 10: breakdown of data-packet collision events by
 * type (involving memory packets / between replies / involving
 * writebacks / involving retransmissions), with and without the
 * Section 5.2 optimizations (request spacing, split-transaction
 * writebacks, receiver hints in collision resolution).
 *
 * Paper: the optimizations remove ~38% of data collisions; the
 * average data collision rate drops 9.4% -> 5.8%, and receiver hints
 * cut the data collision-resolution latency from ~41 to ~29 cycles.
 */

#include <cstdio>

#include <iostream>

#include "bench_util.hh"
#include "fsoi/fsoi_network.hh"

using namespace fsoi;

namespace {

struct Sums
{
    std::uint64_t by_cat[5] = {0, 0, 0, 0, 0};
    double coll_rate = 0.0;
    double resolution = 0.0;
    int resolution_n = 0;

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (auto v : by_cat)
            t += v;
        return t;
    }
};

std::vector<std::future<sim::RunResult>>
enqueueSweep(bench::Sweep &sweep, bool optimized, double scale)
{
    std::vector<std::future<sim::RunResult>> runs;
    for (const auto &app : bench::apps()) {
        auto cfg = bench::paperConfig(16, sim::NetKind::Fsoi, 5);
        cfg.opt_data_collision = optimized;
        runs.push_back(sweep.run(cfg, app, scale));
    }
    return runs;
}

Sums
collectSweep(std::vector<std::future<sim::RunResult>> &runs)
{
    Sums sums;
    int n = 0;
    for (auto &run : runs) {
        const auto res = run.get();
        for (int c = 0; c < 5; ++c)
            sums.by_cat[c] += res.data_collisions_by_cat[c];
        sums.coll_rate += res.data_collision_rate;
        if (res.data_resolution_delay > 0) {
            sums.resolution += res.data_resolution_delay;
            sums.resolution_n++;
        }
        ++n;
    }
    sums.coll_rate /= n;
    if (sums.resolution_n)
        sums.resolution /= sums.resolution_n;
    return sums;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::FigureJson json(argc, argv, "fig10");
    bench::Sweep sweep(argc, argv);
    const double scale = bench::scaleArg(argc, argv, 0.25);
    bench::banner("Figure 10",
                  "data-lane collision breakdown, before/after opts");

    auto before_runs = enqueueSweep(sweep, false, scale);
    auto after_runs = enqueueSweep(sweep, true, scale);
    const Sums before = collectSweep(before_runs);
    const Sums after = collectSweep(after_runs);

    TextTable table({"category", "baseline", "optimized"});
    const char *names[5] = {"Memory packets", "Reply", "WriteBack",
                            "Retransmission", "Other"};
    // Enum order: Memory, Reply, WriteBack, Retransmission, Other.
    for (int c : {0, 1, 2, 3, 4}) {
        table.addRow({names[c],
                      before.total()
                          ? TextTable::pct(
                                static_cast<double>(before.by_cat[c])
                                / before.total(), 1)
                          : "-",
                      after.total()
                          ? TextTable::pct(
                                static_cast<double>(after.by_cat[c])
                                / after.total(), 1)
                          : "-"});
    }
    table.print(std::cout);

    std::printf("\ntotal data collision events: %llu -> %llu "
                "(%.1f%% removed; paper: ~38%%)\n",
                (unsigned long long)before.total(),
                (unsigned long long)after.total(),
                before.total()
                    ? 100.0 * (1.0 - static_cast<double>(after.total())
                               / before.total())
                    : 0.0);
    std::printf("average data collision rate: %.1f%% -> %.1f%% "
                "(paper: 9.4%% -> 5.8%%)\n",
                100 * before.coll_rate, 100 * after.coll_rate);
    std::printf("mean data collision resolution delay: %.0f -> %.0f "
                "cycles (paper: ~41 -> ~29)\n",
                before.resolution, after.resolution);
    json.table(table);
    json.scalar("events_baseline", static_cast<double>(before.total()));
    json.scalar("events_optimized", static_cast<double>(after.total()));
    json.scalar("collision_rate_baseline", before.coll_rate);
    json.scalar("collision_rate_optimized", after.coll_rate);
    json.scalar("resolution_delay_baseline", before.resolution);
    json.scalar("resolution_delay_optimized", after.resolution);
    return 0;
}
