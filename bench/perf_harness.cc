/**
 * @file
 * Simulator-performance harness: times a fixed 16-core matrix
 * (mesh + FSOI interconnects x fft + radix workloads, seed 7, plus an
 * idle-heavy FSOI point that stresses the event calendar's skip path)
 * and reports simulated cycles per second of host time, wall time,
 * and peak RSS. The same matrix is then re-run through the parallel
 * SweepRunner to time the multi-job path.
 *
 * Usage:
 *   perf_harness [--quick] [--jobs=N] [--threads=N] [--reps=N]
 *                [--json=FILE] [--check=FILE] [--tolerance=F]
 *
 *   --quick        scale the workloads down (the configuration the
 *                  committed BENCH_perf.json and tools/ci.sh use)
 *   --threads=N    intra-run tick-engine threads for every timed
 *                  System (default 1, the gated configuration; 0 =
 *                  one per host CPU). Cycle counts are identical at
 *                  any N, so the gate still validates determinism.
 *   --reps=N       time each run N times and keep the fastest
 *                  (default 3; cycle counts must agree across reps)
 *   --json=FILE    write the measurements as JSON (schema below)
 *   --check=FILE   compare against a previously written JSON file:
 *                  per-run cycle counts must match exactly (stat
 *                  drift) and cycles/sec must be within the tolerance
 *                  (default 0.10 = +/-10%); exit non-zero on failure.
 *                  The sweep speedup is also compared, informationally
 *                  on a single-CPU host (no parallelism to measure).
 *
 * JSON schema:
 *   {"schema":"fsoi-perf-1","quick":true,"jobs":4,"threads":1,
 *    "host_cpus":8,
 *    "runs":[{"name":"mesh.fft","cycles":123,"wall_s":1.5,
 *             "cycles_per_sec":82.0},...],
 *    "profile":[{"name":"mesh.fft","sampled_cycles":123,
 *                "total_ns":456,"phases":{"network":0.31,...}},...],
 *    "total":{"cycles":...,"wall_s":...,"cycles_per_sec":...},
 *    "sweep":{"jobs":4,"wall_s":...,"speedup_vs_serial":...},
 *    "peak_rss_mb":123.4}
 *
 * The cycles/sec gate is a same-machine regression guard: host speed
 * varies across machines, so regenerate the committed baseline
 * (`perf_harness --quick --json=BENCH_perf.json`) when moving CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "bench_util.hh"

using namespace fsoi;

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch()).count();
}

double
peakRssMb()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) / 1024.0; // KiB on Linux
}

struct RunSpec
{
    const char *name;
    sim::NetKind kind;
    const char *app;
};

struct RunMeasurement
{
    std::string name;
    std::uint64_t cycles = 0;
    double wall_s = 0;
    double cps = 0;
};

/** Pull the number following `"key":` after position @p from. */
bool
extractNumber(const std::string &doc, const std::string &key,
              std::size_t from, double &out, std::size_t *at = nullptr)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t pos = doc.find(needle, from);
    if (pos == std::string::npos)
        return false;
    out = std::atof(doc.c_str() + pos + needle.size());
    if (at)
        *at = pos;
    return true;
}

int
checkAgainst(const std::string &path, double tolerance,
             const std::vector<RunMeasurement> &runs, double speedup,
             unsigned host_cpus)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "perf_harness: cannot read baseline '%s'\n",
                     path.c_str());
        return 1;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string doc = ss.str();

    int failures = 0;
    for (const auto &run : runs) {
        const std::size_t at = doc.find("\"name\":\"" + run.name + "\"");
        if (at == std::string::npos) {
            std::fprintf(stderr, "CHECK FAIL %-12s missing from %s\n",
                         run.name.c_str(), path.c_str());
            ++failures;
            continue;
        }
        double base_cycles = 0, base_cps = 0;
        if (!extractNumber(doc, "cycles", at, base_cycles)
            || !extractNumber(doc, "cycles_per_sec", at, base_cps)) {
            std::fprintf(stderr, "CHECK FAIL %-12s malformed entry\n",
                         run.name.c_str());
            ++failures;
            continue;
        }
        if (static_cast<std::uint64_t>(base_cycles) != run.cycles) {
            std::fprintf(stderr,
                         "CHECK FAIL %-12s cycle drift: baseline %llu, "
                         "now %llu\n", run.name.c_str(),
                         (unsigned long long)base_cycles,
                         (unsigned long long)run.cycles);
            ++failures;
            continue;
        }
        const double rel = run.cps / base_cps - 1.0;
        if (rel < -tolerance) {
            std::fprintf(stderr,
                         "CHECK FAIL %-12s cycles/sec %.0f vs baseline "
                         "%.0f (%.1f%%, tolerance -%.0f%%)\n",
                         run.name.c_str(), run.cps, base_cps, 100 * rel,
                         100 * tolerance);
            ++failures;
            continue;
        }
        std::printf("check ok   %-12s cycles match, cycles/sec %+.1f%%\n",
                    run.name.c_str(), 100 * rel);
    }

    // Sweep speedup: only meaningful with real parallel hardware. On
    // a single-CPU host the sweep measures pool overhead, so report
    // the comparison without letting it gate.
    double base_speedup = 0;
    std::size_t sweep_at = doc.find("\"sweep\":");
    if (sweep_at != std::string::npos
        && extractNumber(doc, "speedup_vs_serial", sweep_at,
                         base_speedup)
        && base_speedup > 0) {
        const double rel = speedup / base_speedup - 1.0;
        if (host_cpus <= 1) {
            std::printf("check info sweep speedup %.2fx vs baseline "
                        "%.2fx (single-CPU host, informational)\n",
                        speedup, base_speedup);
        } else if (rel < -tolerance) {
            std::fprintf(stderr,
                         "CHECK FAIL sweep speedup %.2fx vs baseline "
                         "%.2fx (%.1f%%, tolerance -%.0f%%)\n",
                         speedup, base_speedup, 100 * rel,
                         100 * tolerance);
            ++failures;
        } else {
            std::printf("check ok   sweep speedup %.2fx vs baseline "
                        "%.2fx (%+.1f%%)\n", speedup, base_speedup,
                        100 * rel);
        }
    }
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    int jobs = 0; // 0 = hardware concurrency
    int threads = 1; // gated configuration is single-threaded
    int reps = 3;
    std::string json_path, check_path;
    double tolerance = 0.10;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg.rfind("--jobs=", 0) == 0)
            jobs = std::atoi(arg.data() + 7);
        else if (arg.rfind("--threads=", 0) == 0)
            threads = std::atoi(arg.data() + 10);
        else if (arg.rfind("--reps=", 0) == 0)
            reps = std::max(1, std::atoi(arg.data() + 7));
        else if (arg.rfind("--json=", 0) == 0)
            json_path = std::string(arg.substr(7));
        else if (arg.rfind("--check=", 0) == 0)
            check_path = std::string(arg.substr(8));
        else if (arg.rfind("--tolerance=", 0) == 0)
            tolerance = std::atof(arg.data() + 12);
        else {
            std::fprintf(stderr,
                         "usage: perf_harness [--quick] [--jobs=N] "
                         "[--threads=N] [--reps=N] [--json=FILE] "
                         "[--check=FILE] [--tolerance=F]\n");
            return 2;
        }
    }
    const double scale = quick ? 0.25 : 1.0;
    const int sweep_jobs = common::resolveJobs(jobs);
    const unsigned host_cpus =
        std::max(1u, std::thread::hardware_concurrency());

    const auto timedConfig = [&](sim::NetKind kind) {
        auto cfg = bench::paperConfig(16, kind, 7);
        cfg.threads = threads;
        return cfg;
    };

    // The first four points are the busy-matrix cycles/sec gate; the
    // idle-heavy point stresses the event calendar's skip path (long
    // compute bursts, near-quiescent memory system) and is gated
    // separately in tools/ci.sh.
    const RunSpec specs[] = {
        {"mesh.fft", sim::NetKind::Mesh, "fft"},
        {"mesh.radix", sim::NetKind::Mesh, "radix"},
        {"fsoi.fft", sim::NetKind::Fsoi, "fft"},
        {"fsoi.radix", sim::NetKind::Fsoi, "radix"},
        {"fsoi.idle", sim::NetKind::Fsoi, "idle"},
    };

    bench::banner("perf harness",
                  quick ? "16-core matrix, quick scale"
                        : "16-core matrix, full scale");

    // Serial section: each run timed individually on this thread,
    // best-of-reps to shrug off transient host load. Reps are
    // interleaved round-robin across the matrix (rep 0 of every run,
    // then rep 1, ...) so a throttled window on a shared host cannot
    // poison all samples of one run. This is the single-thread
    // hot-path number the CI gate tracks.
    std::vector<RunMeasurement> runs;
    for (const auto &spec : specs) {
        RunMeasurement m;
        m.name = spec.name;
        runs.push_back(std::move(m));
    }
    for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const auto cfg = timedConfig(specs[i].kind);
            const auto app = workload::appByName(specs[i].app);
            const double t0 = nowSeconds();
            const auto res = bench::runConfig(cfg, app, scale);
            const double wall = nowSeconds() - t0;
            if (rep == 0) {
                runs[i].cycles = res.cycles;
                runs[i].wall_s = wall;
            } else if (res.cycles != runs[i].cycles) {
                std::fprintf(stderr,
                             "perf_harness: nondeterministic cycle "
                             "count on %s\n", specs[i].name);
                return 1;
            }
            runs[i].wall_s = std::min(runs[i].wall_s, wall);
        }
    }
    std::uint64_t total_cycles = 0;
    double total_wall = 0;
    for (auto &m : runs) {
        m.cps = m.wall_s > 0
                    ? static_cast<double>(m.cycles) / m.wall_s : 0;
        std::printf("%-12s %9llu cycles  %7.3f s  %10.0f cyc/s\n",
                    m.name.c_str(), (unsigned long long)m.cycles,
                    m.wall_s, m.cps);
        total_cycles += m.cycles;
        total_wall += m.wall_s;
    }
    const double total_cps =
        total_wall > 0 ? static_cast<double>(total_cycles) / total_wall
                       : 0;
    std::printf("%-12s %9llu cycles  %7.3f s  %10.0f cyc/s\n", "total",
                (unsigned long long)total_cycles, total_wall, total_cps);

    // Parallel section: the same matrix fanned across the sweep
    // runner. On a multi-core host the wall time approaches
    // total_wall / min(jobs, 4); with one hardware thread it only
    // measures pool overhead.
    double sweep_wall = 0;
    {
        sim::SweepRunner runner(sweep_jobs);
        std::vector<std::future<sim::RunResult>> futs;
        const double t0 = nowSeconds();
        for (const auto &spec : specs)
            futs.push_back(runner.submit(sim::SweepJob{
                timedConfig(spec.kind),
                workload::appByName(spec.app), scale}));
        for (std::size_t i = 0; i < futs.size(); ++i) {
            const auto res = futs[i].get();
            if (res.cycles != runs[i].cycles) {
                std::fprintf(stderr,
                             "perf_harness: parallel run diverged on "
                             "%s\n", specs[i].name);
                return 1;
            }
        }
        sweep_wall = nowSeconds() - t0;
    }
    const double speedup = sweep_wall > 0 ? total_wall / sweep_wall : 0;
    std::printf("sweep        --jobs=%-2d          %7.3f s  "
                "(%.2fx vs serial)\n", sweep_jobs, sweep_wall, speedup);
    std::printf("peak RSS     %.1f MiB\n", peakRssMb());

    // Self-profile section: re-run the matrix untimed, keeping each
    // System so its phase profiler can attribute host time across the
    // tick phases. Separate from the timed loops above so the report
    // never perturbs the cycles/sec gate.
    struct ProfileRow
    {
        std::string name;
        std::uint64_t sampled_cycles = 0;
        double total_ns = 0;
        double frac[obs::kNumTickPhases] = {};
        // host.sched.* scheduler counters: how many cycles the event
        // calendar executed vs skipped outright.
        double executed = 0;
        double skipped = 0;
        double dispatched = 0;
    };
    std::vector<ProfileRow> profiles;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto outcome = sim::SweepRunner::runJob(
            sim::SweepJob{timedConfig(specs[i].kind),
                          workload::appByName(specs[i].app), scale},
            true);
        const obs::PhaseProfiler &prof = outcome.system->profiler();
        ProfileRow row;
        row.name = runs[i].name;
        row.sampled_cycles = prof.sampledCycles();
        row.total_ns = static_cast<double>(prof.totalNs());
        for (int p = 0; p < obs::kNumTickPhases; ++p)
            row.frac[p] = prof.fraction(static_cast<obs::TickPhase>(p));
        const auto &reg = outcome.system->statRegistry();
        const auto sched = [&reg](const char *name) {
            const auto *e = reg.find(name);
            return e && e->derived ? e->derived() : 0.0;
        };
        row.executed = sched("host.sched.cycles_executed");
        row.skipped = sched("host.sched.cycles_skipped");
        row.dispatched = sched("host.sched.events_dispatched");
        profiles.push_back(std::move(row));
    }
    std::printf("\nphase profile (fraction of sampled tick time)\n");
    std::printf("%-12s", "");
    for (int p = 0; p < obs::kNumTickPhases; ++p)
        std::printf(" %11s",
                    obs::tickPhaseName(static_cast<obs::TickPhase>(p)));
    std::printf("\n");
    for (const auto &row : profiles) {
        std::printf("%-12s", row.name.c_str());
        for (int p = 0; p < obs::kNumTickPhases; ++p)
            std::printf(" %10.1f%%", 100.0 * row.frac[p]);
        std::printf("\n");
    }

    std::printf("\nevent calendar (host.sched.*)\n");
    std::printf("%-12s %12s %12s %9s %14s\n", "", "executed", "skipped",
                "skip%", "dispatched");
    for (const auto &row : profiles) {
        const double total = row.executed + row.skipped;
        std::printf("%-12s %12.0f %12.0f %8.1f%% %14.0f\n",
                    row.name.c_str(), row.executed, row.skipped,
                    total > 0 ? 100.0 * row.skipped / total : 0.0,
                    row.dispatched);
    }

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::fprintf(stderr, "cannot open '%s'\n", json_path.c_str());
            return 1;
        }
        os << "{\"schema\":\"fsoi-perf-1\",\"quick\":"
           << (quick ? "true" : "false") << ",\"jobs\":" << sweep_jobs
           << ",\"threads\":" << threads
           << ",\"host_cpus\":" << host_cpus << ",\"runs\":[";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "%s{\"name\":\"%s\",\"cycles\":%llu,"
                          "\"wall_s\":%.4f,\"cycles_per_sec\":%.0f}",
                          i ? "," : "", runs[i].name.c_str(),
                          (unsigned long long)runs[i].cycles,
                          runs[i].wall_s, runs[i].cps);
            os << buf;
        }
        os << "],\"profile\":[";
        for (std::size_t i = 0; i < profiles.size(); ++i) {
            const auto &row = profiles[i];
            os << (i ? "," : "") << "{\"name\":\"" << row.name
               << "\",\"sampled_cycles\":" << row.sampled_cycles
               << ",\"total_ns\":" << row.total_ns << ",\"phases\":{";
            for (int p = 0; p < obs::kNumTickPhases; ++p) {
                char cell[64];
                std::snprintf(cell, sizeof(cell), "%s\"%s\":%.4f",
                              p ? "," : "",
                              obs::tickPhaseName(
                                  static_cast<obs::TickPhase>(p)),
                              row.frac[p]);
                os << cell;
            }
            os << "}}";
        }
        char tail[256];
        std::snprintf(tail, sizeof(tail),
                      "],\"total\":{\"cycles\":%llu,\"wall_s\":%.4f,"
                      "\"cycles_per_sec\":%.0f},"
                      "\"sweep\":{\"jobs\":%d,\"wall_s\":%.4f,"
                      "\"speedup_vs_serial\":%.3f},"
                      "\"peak_rss_mb\":%.1f}\n",
                      (unsigned long long)total_cycles, total_wall,
                      total_cps, sweep_jobs, sweep_wall, speedup,
                      peakRssMb());
        os << tail;
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (!check_path.empty()) {
        const int failures = checkAgainst(check_path, tolerance, runs,
                                          speedup, host_cpus);
        if (failures) {
            std::fprintf(stderr, "perf_harness: %d check failure(s)\n",
                         failures);
            return 1;
        }
        std::printf("all checks passed (tolerance %.0f%%)\n",
                    100 * tolerance);
    }
    return 0;
}
