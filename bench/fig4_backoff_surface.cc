/**
 * @file
 * Regenerates Figure 4: average collision-resolution delay for meta
 * packets as a function of the starting window W and back-off base B,
 * for background transmission rates G = 1% and G = 10%, plus the
 * pathological 64-node case discussed in Section 4.3.2.
 */

#include <cstdio>

#include "analytic/backoff_model.hh"
#include <iostream>

#include "bench_util.hh"

using namespace fsoi;
using analytic::BackoffParams;
using analytic::simulateBackoff;

int
main(int argc, char **argv)
{
    bench::FigureJson json(argc, argv, "fig4");
    bench::banner("Figure 4",
                  "collision resolution delay vs (W, B) surface");

    const double ws[] = {1.0, 1.5, 2.0, 2.7, 3.0, 4.0, 5.0};
    const double bs[] = {1.0, 1.1, 1.25, 1.5, 1.75, 2.0};

    for (double g : {0.01, 0.10}) {
        std::printf("G = %.0f%% background transmission rate "
                    "(mean delay, cycles):\n\n", g * 100);
        std::vector<std::string> header{"W \\ B"};
        for (double b : bs)
            header.push_back(TextTable::num(b, 2));
        TextTable table(header);
        double best = 1e9, best_w = 0, best_b = 0;
        for (double w : ws) {
            std::vector<std::string> row{TextTable::num(w, 1)};
            for (double b : bs) {
                BackoffParams params;
                params.window = w;
                params.base = b;
                params.background_rate = g;
                const auto res = simulateBackoff(params, 30000, 11);
                row.push_back(TextTable::num(res.mean_delay_cycles, 2));
                if (res.mean_delay_cycles < best) {
                    best = res.mean_delay_cycles;
                    best_w = w;
                    best_b = b;
                }
            }
            table.addRow(row);
        }
        json.table(table);
        table.print(std::cout);
        BackoffParams paper;
        paper.background_rate = g;
        const auto at_paper = simulateBackoff(paper, 30000, 11);
        json.scalar(g < 0.05 ? "paper_point_delay_g1"
                             : "paper_point_delay_g10",
                    at_paper.mean_delay_cycles);
        std::printf("\n  minimum %.2f cycles at (W=%.1f, B=%.2f); "
                    "paper point (W=2.7, B=1.1) = %.2f cycles "
                    "(paper: computed 7.26, simulated ~7.4)\n\n",
                    best, best_w, best_b, at_paper.mean_delay_cycles);
    }

    std::printf("Pathological case: 63 simultaneous senders to one node "
                "(64-node system)\n\n");
    TextTable path({"policy", "mean retries", "mean delay (cycles)"});
    for (auto [label, base, window] :
         {std::tuple<const char *, double, double>{"W=2.7, B=1.1", 1.1,
                                                   2.7},
          {"W=2.7, B=2.0", 2.0, 2.7},
          {"fixed W=3 (B=1)", 1.0, 3.0}}) {
        BackoffParams params;
        params.window = window;
        params.base = base;
        params.background_rate = 0.0;
        params.initial_contenders = 63;
        params.max_retries = base > 1.0 ? 10000 : 60;
        const auto res = simulateBackoff(params, 20, 17);
        std::printf("  %-18s retries %.1f%s delay %.0f cycles\n", label,
                    res.mean_retries,
                    base > 1.0 ? "," : " (capped; paper: 8.2e10),",
                    res.mean_delay_cycles);
    }
    std::printf("\n(paper: B=1.1 -> ~26 retries / 416 cycles; B=2 -> ~5 "
                "retries / 199 cycles; fixed window never converges)\n");
    return 0;
}
