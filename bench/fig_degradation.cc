/**
 * @file
 * Degradation study (robustness companion to the paper's evaluation):
 * throughput and p99 packet latency of the FSOI and mesh systems as
 * injected faults get worse, along two axes each:
 *
 *  - FSOI: fraction of dead receiver channels (VCSEL/photodetector
 *    pairs), then uniform per-bit error rate. A lane with one live
 *    receiver left degrades gracefully (the blacklist steers senders
 *    to it); a lane with both receivers dead wedges its destination
 *    and the run ends with a watchdog fault diagnosis.
 *  - Mesh: fraction of dead bidirectional links (BFS route-around
 *    until the network partitions), then the same BER sweep (CRC
 *    drop at ejection + NACK retransmission).
 *
 * Dead sets are nested across fractions (one permutation per class,
 * prefix-killed), so the FSOI throughput curve is monotone in the
 * dead fraction by construction, not merely on average.
 *
 * Usage: fig_degradation [scale] [--json=FILE] [--jobs=N] [--seed=N]
 */

#include <cstdio>

#include <iostream>

#include "bench_util.hh"
#include "fault/fault_model.hh"
#include "fsoi/fsoi_network.hh"
#include "obs/cli.hh"

using namespace fsoi;

namespace {

/** Apps for the sweep: one compute-, one memory-, one sync-heavy. */
const char *kApps[] = {"fft", "ocean", "em3d"};

/** Aggregated metrics of one fault level across the app subset. */
struct LevelMetrics
{
    double throughput = 0.0; //!< delivered packets per kilocycle
    double p99 = 0.0;        //!< mean p99 end-to-end latency (cycles)
    std::uint64_t retx = 0;
    std::uint64_t blacklists = 0;
    std::uint64_t unroutable = 0;
    int diagnosed = 0; //!< runs ending in a watchdog fault diagnosis
};

/**
 * Base config for a degradation point: paper system with the fault
 * plan applied and the watchdog tightened so a wedged (partitioned /
 * dead-destination) run is diagnosed quickly instead of burning the
 * full default stall budget at every sweep level.
 */
sim::SystemConfig
faultedConfig(sim::NetKind kind, std::uint64_t seed,
              const fault::FaultConfig &fault)
{
    auto cfg = bench::paperConfig(16, kind, seed);
    cfg.fault = fault;
    cfg.progress_stall_limit = 200'000;
    cfg.max_cycles = 20'000'000;
    return cfg;
}

/**
 * Aggregate lane capacity under a fault plan, probed one receive lane
 * (destination x packet class) at a time -- the optical analog of a
 * link BIST scan. For each lane, a fresh network is driven at full
 * blast by two senders of opposite parity (so each healthy receiver
 * serves exactly one sender and the probe measures hardware capacity,
 * not contention), and the delivered count over a fixed window is
 * summed across lanes.
 *
 * Why this is the headline degradation curve: a lane untouched by the
 * fault plan reproduces bit-identically across sweep levels (own
 * network, own RNG, no cross-lane interference), and a newly faulted
 * lane can only lose capacity -- one dead receiver forces both probe
 * senders through the survivor (collisions + blacklist redirect),
 * two dead receivers wedge it entirely. With the injector's nested
 * dead sets the sum is therefore monotone non-increasing in the dead
 * fraction by construction, not merely on average. The closed-loop
 * application throughput reported next to it is *not* monotone at low
 * fractions, deliberately: the blacklist steers traffic to the
 * surviving receiver and recovers nearly all of it.
 */
double
probedLaneCapacity(const fault::FaultConfig &plan, std::uint64_t seed)
{
    noc::MeshLayout layout(16, 4);
    const int endpoints = layout.numEndpoints();
    const Cycle window = 4000;
    fault::FaultConfig fc = plan;
    if (fc.seed == 0)
        fc.seed = seed * 0x9e3779b9ULL + 29; // System's derivation

    std::uint64_t delivered = 0;
    for (NodeId dst = 0; dst < static_cast<NodeId>(endpoints); ++dst) {
        for (auto cls : {noc::PacketClass::Meta,
                         noc::PacketClass::Data}) {
            ::fsoi::fsoi::FsoiConfig net_cfg;
            fault::FaultInjector injector(
                fc, fault::FaultTopology{endpoints,
                                         net_cfg.receivers_per_lane,
                                         layout.side()});
            ::fsoi::fsoi::FsoiNetwork net(layout, net_cfg, &injector);
            for (NodeId n = 0; n < static_cast<NodeId>(endpoints); ++n)
                net.setHandler(n, [](noc::Packet &) {});
            // Consecutive ids = opposite parity = distinct default rx.
            const NodeId senders[2] = {
                static_cast<NodeId>((dst + 1) % endpoints),
                static_cast<NodeId>((dst + 2) % endpoints)};
            for (Cycle t = 0; t < window; ++t) {
                net.tick(t);
                for (NodeId s : senders)
                    if (net.canAccept(s, cls))
                        net.send(noc::makePacket(
                            s, dst, cls, noc::PacketKind::Request));
            }
            delivered += net.stats().deliveredTotal();
        }
    }
    return 1000.0 * static_cast<double>(delivered)
           / static_cast<double>(window);
}

LevelMetrics
collect(std::vector<std::future<sim::SweepOutcome>> &futures)
{
    LevelMetrics m;
    double cycles = 0, delivered = 0, p99_sum = 0;
    for (auto &f : futures) {
        auto outcome = f.get();
        const auto &res = outcome.result;
        cycles += static_cast<double>(res.cycles);
        delivered += static_cast<double>(res.packets_delivered);
        p99_sum += outcome.system->network().stats().latencyPercentile(0.99);
        m.retx += res.retransmissions;
        m.blacklists += res.blacklisted_channels;
        m.unroutable += res.unroutable_drops;
        if (!res.fault_diagnosis.empty())
            m.diagnosed += 1;
    }
    m.throughput = cycles > 0 ? 1000.0 * delivered / cycles : 0.0;
    m.p99 = p99_sum / static_cast<double>(futures.size());
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    const obs::CliOptions obs_opts = obs::parseCliOptions(argc, argv);
    bench::FigureJson json(argc, argv, "fig_degradation");
    bench::Sweep sweep(argc, argv);
    const double scale = bench::scaleArg(argc, argv, 0.1);
    const std::uint64_t seed = obs_opts.seed ? obs_opts.seed : 1;
    bench::banner("Degradation study",
                  "throughput / p99 latency vs injected faults");

    using Futures = std::vector<std::future<sim::SweepOutcome>>;
    auto enqueue = [&](sim::NetKind kind,
                       const fault::FaultConfig &fault) {
        Futures futures;
        for (const char *name : kApps) {
            const auto cfg = faultedConfig(kind, seed, fault);
            futures.push_back(
                sweep.runKeep(cfg, workload::appByName(name), scale));
        }
        return futures;
    };

    // --- sweep definitions (all enqueued before any collection, so
    // --jobs=N overlaps every run of the whole figure) ---

    const double dead_rx[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25};
    std::vector<Futures> fsoi_dead;
    for (double frac : dead_rx) {
        fault::FaultConfig fc;
        fc.dead_rx_fraction = frac;
        fsoi_dead.push_back(enqueue(sim::NetKind::Fsoi, fc));
    }

    const double bers[] = {0.0, 1e-6, 1e-5, 1e-4, 1e-3};
    std::vector<Futures> fsoi_ber, mesh_ber;
    for (double ber : bers) {
        fault::FaultConfig fc;
        fc.ber = ber;
        fsoi_ber.push_back(enqueue(sim::NetKind::Fsoi, fc));
        mesh_ber.push_back(enqueue(sim::NetKind::Mesh, fc));
    }

    // 16 cores = 4x4 routers = 24 bidirectional edges; express the
    // fraction as k/24 so each level kills exactly k more links.
    const int kMeshEdges = 24;
    const int dead_links[] = {0, 1, 2, 4};
    std::vector<Futures> mesh_dead;
    for (int k : dead_links) {
        fault::FaultConfig fc;
        fc.dead_link_fraction = static_cast<double>(k) / kMeshEdges;
        mesh_dead.push_back(enqueue(sim::NetKind::Mesh, fc));
    }

    // --- collect + report, in submission order ---

    TextTable t1({"dead rx frac", "lane-cap pkts/kcycle",
                  "app pkts/kcycle", "p99 (cyc)", "retx", "blacklists",
                  "diagnosed"});
    for (std::size_t i = 0; i < fsoi_dead.size(); ++i) {
        fault::FaultConfig fc;
        fc.dead_rx_fraction = dead_rx[i];
        const double cap = probedLaneCapacity(fc, seed);
        const auto m = collect(fsoi_dead[i]);
        t1.addRow({TextTable::pct(dead_rx[i], 0),
                   TextTable::num(cap, 3),
                   TextTable::num(m.throughput, 3),
                   TextTable::num(m.p99, 1),
                   std::to_string(m.retx),
                   std::to_string(m.blacklists),
                   std::to_string(m.diagnosed)});
        json.scalar("fsoi.dead_rx." + std::to_string(i) + ".capacity",
                    cap);
        json.scalar("fsoi.dead_rx." + std::to_string(i) + ".throughput",
                    m.throughput);
    }
    std::printf("FSOI vs dead receiver channels (nested dead sets)\n");
    t1.print(std::cout);
    json.table(t1);

    TextTable t2({"BER", "FSOI pkts/kcycle", "FSOI p99", "FSOI retx",
                  "mesh pkts/kcycle", "mesh p99", "mesh retx"});
    for (std::size_t i = 0; i < fsoi_ber.size(); ++i) {
        const auto fm = collect(fsoi_ber[i]);
        const auto mm = collect(mesh_ber[i]);
        char ber[32];
        std::snprintf(ber, sizeof(ber), "%.0e", bers[i]);
        t2.addRow({ber,
                   TextTable::num(fm.throughput, 3),
                   TextTable::num(fm.p99, 1),
                   std::to_string(fm.retx),
                   TextTable::num(mm.throughput, 3),
                   TextTable::num(mm.p99, 1),
                   std::to_string(mm.retx)});
    }
    std::printf("\nFSOI and mesh vs per-bit error rate\n");
    t2.print(std::cout);
    json.table(t2);

    TextTable t3({"dead links", "pkts/kcycle", "p99 (cyc)", "retx",
                  "unroutable", "diagnosed"});
    for (std::size_t i = 0; i < mesh_dead.size(); ++i) {
        const auto m = collect(mesh_dead[i]);
        t3.addRow({std::to_string(dead_links[i]) + "/24",
                   TextTable::num(m.throughput, 3),
                   TextTable::num(m.p99, 1),
                   std::to_string(m.retx),
                   std::to_string(m.unroutable),
                   std::to_string(m.diagnosed)});
    }
    std::printf("\nMesh vs dead links (BFS route-around)\n");
    t3.print(std::cout);
    json.table(t3);

    std::printf("\n(throughput = delivered packets per kilocycle "
                "summed over %zu apps; a diagnosed run ended with the "
                "watchdog naming the faulted channel/link)\n",
                std::size(kApps));
    return 0;
}
