/**
 * @file
 * Regenerates Figure 8: total energy of the 16-node FSOI system
 * relative to the mesh baseline, broken into network, processor
 * core + cache (dynamic), and leakage. The paper reports ~20x lower
 * interconnect energy, ~40.6% average total-energy savings, and a 22%
 * average power reduction (156 W -> 121 W).
 */

#include <cstdio>

#include <iostream>

#include "bench_util.hh"

using namespace fsoi;

int
main(int argc, char **argv)
{
    bench::FigureJson json(argc, argv, "fig8");
    bench::Sweep sweep(argc, argv);
    const double scale = bench::scaleArg(argc, argv, 0.25);
    bench::banner("Figure 8", "energy relative to the mesh baseline");

    TextTable table({"app", "net", "core+cache", "leak", "total",
                     "P_mesh(W)", "P_fsoi(W)"});
    double total_ratio = 0.0, net_ratio = 0.0;
    double p_mesh = 0.0, p_fsoi = 0.0;
    int n = 0;

    const auto apps = bench::apps();
    std::vector<std::future<sim::RunResult>> mesh_runs, fsoi_runs;
    for (const auto &app : apps) {
        mesh_runs.push_back(sweep.run(
            bench::paperConfig(16, sim::NetKind::Mesh), app, scale));
        fsoi_runs.push_back(sweep.run(
            bench::paperConfig(16, sim::NetKind::Fsoi), app, scale));
    }

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &app = apps[i];
        const auto mesh = mesh_runs[i].get();
        const auto fso = fsoi_runs[i].get();

        const double base = mesh.energy.total();
        const double net = fso.energy.network_j / base;
        const double core = (fso.energy.core_j + fso.energy.cache_j
                             + fso.energy.memory_j) / base;
        const double leak = fso.energy.leakage_j / base;
        table.addRow({app.name, TextTable::pct(net, 1),
                      TextTable::pct(core, 1), TextTable::pct(leak, 1),
                      TextTable::pct(net + core + leak, 1),
                      TextTable::num(mesh.avg_power_w, 1),
                      TextTable::num(fso.avg_power_w, 1)});
        total_ratio += net + core + leak;
        net_ratio += fso.energy.network_j / mesh.energy.network_j;
        p_mesh += mesh.avg_power_w;
        p_fsoi += fso.avg_power_w;
        ++n;
    }
    table.print(std::cout);
    std::printf("\naverage FSOI energy = %.1f%% of mesh baseline "
                "(paper: 59.4%%, i.e. 40.6%% savings)\n",
                100.0 * total_ratio / n);
    std::printf("average interconnect energy ratio = %.1fx lower "
                "(paper: ~20x)\n", n / net_ratio);
    std::printf("average power: mesh %.0f W -> FSOI %.0f W "
                "(paper: 156 W -> 121 W)\n", p_mesh / n, p_fsoi / n);
    json.table(table);
    json.scalar("avg_energy_ratio", total_ratio / n);
    json.scalar("avg_network_energy_reduction", n / net_ratio);
    json.scalar("avg_power_mesh_w", p_mesh / n);
    json.scalar("avg_power_fsoi_w", p_fsoi / n);
    return 0;
}
