/**
 * @file
 * Shared helpers for the experiment benches. Every bench binary
 * regenerates one table or figure of the paper's evaluation section
 * and prints the same rows/series the paper reports.
 *
 * All benches accept an optional first argument scaling the workload
 * (default chosen so the whole bench suite finishes in minutes).
 */

#ifndef FSOI_BENCH_BENCH_UTIL_HH
#define FSOI_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "obs/stat_registry.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "workload/apps.hh"

namespace fsoi::bench {

/** Workload scale from argv[1] (fraction of the full budget). */
inline double
scaleArg(int argc, char **argv, double dflt)
{
    if (argc > 1) {
        const double s = std::atof(argv[1]);
        if (s > 0.0)
            return s;
    }
    return dflt;
}

/**
 * Machine-readable figure output: when the bench is invoked with
 * `--json=FILE` (stripped from argv before the positional scale
 * argument is read), the tables and headline scalars the bench prints
 * are also written as one JSON document:
 *
 *   {"figure":"fig10","scalars":{...},
 *    "tables":[{"headers":[...],"rows":[[...],...]}]}
 *
 * so plotting scripts stop scraping stdout.
 */
class FigureJson
{
  public:
    FigureJson(int &argc, char **argv, std::string figure_id)
        : figure_(std::move(figure_id))
    {
        int keep = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.rfind("--json=", 0) == 0)
                path_ = std::string(arg.substr(7));
            else
                argv[keep++] = argv[i];
        }
        argv[keep] = nullptr;
        argc = keep;
    }

    bool enabled() const { return !path_.empty(); }

    void
    scalar(const std::string &name, double value)
    {
        scalars_.emplace_back(name, value);
    }

    void
    table(const TextTable &t)
    {
        tables_.push_back(t);
    }

    ~FigureJson()
    {
        if (!enabled())
            return;
        std::ofstream os(path_);
        if (!os) {
            std::fprintf(stderr, "cannot open '%s' for figure JSON\n",
                         path_.c_str());
            return;
        }
        os << "{\"figure\":\"" << obs::jsonEscape(figure_) << "\"";
        os << ",\"scalars\":{";
        for (std::size_t i = 0; i < scalars_.size(); ++i) {
            os << (i ? "," : "") << "\""
               << obs::jsonEscape(scalars_[i].first) << "\":";
            jsonNumber(os, scalars_[i].second);
        }
        os << "},\"tables\":[";
        for (std::size_t t = 0; t < tables_.size(); ++t) {
            os << (t ? "," : "") << "{\"headers\":[";
            writeCells(os, tables_[t].headers());
            os << "],\"rows\":[";
            const auto &rows = tables_[t].rows();
            for (std::size_t r = 0; r < rows.size(); ++r) {
                os << (r ? "," : "") << "[";
                writeCells(os, rows[r]);
                os << "]";
            }
            os << "]}";
        }
        os << "]}\n";
    }

  private:
    static void
    jsonNumber(std::ostream &os, double v)
    {
        if (std::isnan(v) || std::isinf(v)) {
            os << "null";
            return;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        os << buf;
    }

    static void
    writeCells(std::ostream &os, const std::vector<std::string> &cells)
    {
        for (std::size_t i = 0; i < cells.size(); ++i)
            os << (i ? "," : "") << "\"" << obs::jsonEscape(cells[i])
               << "\"";
    }

    std::string figure_;
    std::string path_;
    std::vector<std::pair<std::string, double>> scalars_;
    std::vector<TextTable> tables_;
};

/**
 * Shared sweep front-end for the figure drivers: parses (and strips)
 * `--jobs=N` and `--threads=N` from argv before the positional scale
 * argument is read, and fans submitted runs across a sim::SweepRunner.
 * Jobs defaults to the hardware concurrency; `--jobs=1` executes
 * inline, serially. `--threads=N` sets each submitted System's
 * intra-run tick-engine width (SystemConfig::threads) and composes
 * with `--jobs`: jobs parallelism is across independent runs, threads
 * parallelism is inside each run, and both preserve bit-identical
 * results.
 *
 * Drivers enqueue every run of a figure first and then collect the
 * futures in submission order, so stdout and `--json=FILE` output are
 * byte-identical at any jobs/threads level (each run is an
 * independent, seeded System; see sim/sweep_runner.hh).
 */
class Sweep
{
  public:
    Sweep(int &argc, char **argv)
    {
        int jobs = 0; // 0 = hardware concurrency
        int keep = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.rfind("--jobs=", 0) == 0)
                jobs = std::atoi(arg.data() + 7);
            else if (arg.rfind("--threads=", 0) == 0)
                threads_ = std::atoi(arg.data() + 10);
            else
                argv[keep++] = argv[i];
        }
        argv[keep] = nullptr;
        argc = keep;
        runner_ = std::make_unique<sim::SweepRunner>(jobs);
    }

    int jobs() const { return runner_->jobs(); }
    int threads() const { return threads_; }
    sim::SweepRunner &runner() { return *runner_; }

    /** Enqueue one run; collect the future in submission order. */
    std::future<sim::RunResult>
    run(const sim::SystemConfig &cfg, const workload::AppProfile &app,
        double scale)
    {
        sim::SystemConfig c = cfg;
        c.threads = threads_;
        return runner_->submit(sim::SweepJob{c, app, scale});
    }

    /** Enqueue one run and keep its System for inspection. */
    std::future<sim::SweepOutcome>
    runKeep(const sim::SystemConfig &cfg, const workload::AppProfile &app,
            double scale)
    {
        sim::SystemConfig c = cfg;
        c.threads = threads_;
        return runner_->submitKeep(sim::SweepJob{c, app, scale});
    }

  private:
    std::unique_ptr<sim::SweepRunner> runner_;
    int threads_ = 1; //!< per-run tick-engine width; 0 = host CPUs
};

/** Run one application on one system configuration, synchronously. */
inline sim::RunResult
runConfig(const sim::SystemConfig &cfg, const workload::AppProfile &app,
          double scale)
{
    return sim::SweepRunner::runJob(sim::SweepJob{cfg, app, scale},
                                    false).result;
}

/** Paper config for (cores, kind) with a chosen seed. */
inline sim::SystemConfig
paperConfig(int cores, sim::NetKind kind, std::uint64_t seed = 1)
{
    auto cfg = sim::SystemConfig::paperConfig(cores, kind);
    cfg.seed = seed;
    return cfg;
}

/** Short names of the applications, in the paper's figure order. */
inline std::vector<workload::AppProfile>
apps()
{
    return workload::paperApps();
}

inline void
banner(const char *id, const char *what)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id, what);
    std::printf("==============================================================\n\n");
}

} // namespace fsoi::bench

#endif // FSOI_BENCH_BENCH_UTIL_HH
