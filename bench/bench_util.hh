/**
 * @file
 * Shared helpers for the experiment benches. Every bench binary
 * regenerates one table or figure of the paper's evaluation section
 * and prints the same rows/series the paper reports.
 *
 * All benches accept an optional first argument scaling the workload
 * (default chosen so the whole bench suite finishes in minutes).
 */

#ifndef FSOI_BENCH_BENCH_UTIL_HH
#define FSOI_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/system.hh"
#include "workload/apps.hh"

namespace fsoi::bench {

/** Workload scale from argv[1] (fraction of the full budget). */
inline double
scaleArg(int argc, char **argv, double dflt)
{
    if (argc > 1) {
        const double s = std::atof(argv[1]);
        if (s > 0.0)
            return s;
    }
    return dflt;
}

/** Run one application on one system configuration. */
inline sim::RunResult
runConfig(const sim::SystemConfig &cfg, const workload::AppProfile &app,
          double scale, sim::System **out_sys = nullptr)
{
    static std::unique_ptr<sim::System> keeper;
    auto sys = std::make_unique<sim::System>(cfg);
    sys->loadApp(app.scaled(scale));
    auto res = sys->run();
    if (out_sys) {
        keeper = std::move(sys);
        *out_sys = keeper.get();
    }
    return res;
}

/** Paper config for (cores, kind) with a chosen seed. */
inline sim::SystemConfig
paperConfig(int cores, sim::NetKind kind, std::uint64_t seed = 1)
{
    auto cfg = sim::SystemConfig::paperConfig(cores, kind);
    cfg.seed = seed;
    return cfg;
}

/** Short names of the applications, in the paper's figure order. */
inline std::vector<workload::AppProfile>
apps()
{
    return workload::paperApps();
}

inline void
banner(const char *id, const char *what)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id, what);
    std::printf("==============================================================\n\n");
}

} // namespace fsoi::bench

#endif // FSOI_BENCH_BENCH_UTIL_HH
