/**
 * @file
 * Regenerates Figure 7: 64-node system performance with the
 * phase-array-based FSOI transmitters (1-cycle re-steer delay).
 * Paper geometric means: FSOI 1.75, L0 1.91, Lr1 1.55, Lr2 1.29, and
 * FSOI latency rising to ~12.6 cycles mostly through queuing.
 */

#include <cstdio>

#include <iostream>

#include "bench_util.hh"

using namespace fsoi;

int
main(int argc, char **argv)
{
    bench::FigureJson json(argc, argv, "fig7");
    bench::Sweep sweep(argc, argv);
    const double scale = bench::scaleArg(argc, argv, 0.08);
    const int cores = 64;
    bench::banner("Figure 7",
                  "64-node latency breakdown and speedups (phase array)");

    TextTable lat({"app", "queue", "sched", "net", "coll", "total",
                   "mesh"});
    TextTable spd({"app", "FSOI", "L0", "Lr1", "Lr2"});
    std::vector<double> s_fsoi, s_l0, s_lr1, s_lr2;

    const auto apps = bench::apps();
    struct AppRuns
    {
        std::future<sim::RunResult> mesh, fso, l0, lr1, lr2;
    };
    std::vector<AppRuns> queued;
    for (const auto &app : apps) {
        queued.push_back(AppRuns{
            sweep.run(bench::paperConfig(cores, sim::NetKind::Mesh),
                      app, scale),
            sweep.run(bench::paperConfig(cores, sim::NetKind::Fsoi),
                      app, scale),
            sweep.run(bench::paperConfig(cores, sim::NetKind::L0),
                      app, scale),
            sweep.run(bench::paperConfig(cores, sim::NetKind::Lr1),
                      app, scale),
            sweep.run(bench::paperConfig(cores, sim::NetKind::Lr2),
                      app, scale)});
    }

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &app = apps[i];
        const auto mesh = queued[i].mesh.get();
        const auto fso = queued[i].fso.get();
        const auto l0 = queued[i].l0.get();
        const auto lr1 = queued[i].lr1.get();
        const auto lr2 = queued[i].lr2.get();

        lat.addRow({app.name, TextTable::num(fso.queuing, 1),
                    TextTable::num(fso.scheduling, 1),
                    TextTable::num(fso.network, 1),
                    TextTable::num(fso.collision_resolution, 1),
                    TextTable::num(fso.avg_packet_latency, 1),
                    TextTable::num(mesh.avg_packet_latency, 1)});

        const double base = static_cast<double>(mesh.cycles);
        s_fsoi.push_back(base / fso.cycles);
        s_l0.push_back(base / l0.cycles);
        s_lr1.push_back(base / lr1.cycles);
        s_lr2.push_back(base / lr2.cycles);
        spd.addRow({app.name, TextTable::num(s_fsoi.back(), 2),
                    TextTable::num(s_l0.back(), 2),
                    TextTable::num(s_lr1.back(), 2),
                    TextTable::num(s_lr2.back(), 2)});
    }

    std::printf("(a) FSOI packet latency breakdown vs mesh (cycles):\n\n");
    lat.print(std::cout);
    std::printf("\n(b) speedup over the mesh baseline:\n\n");
    spd.print(std::cout);
    std::printf("\ngeometric means:  FSOI %.2f   L0 %.2f   Lr1 %.2f   "
                "Lr2 %.2f\n",
                geometricMean(s_fsoi), geometricMean(s_l0),
                geometricMean(s_lr1), geometricMean(s_lr2));
    std::printf("(paper:           FSOI 1.75   L0 1.91   Lr1 1.55   "
                "Lr2 1.29)\n");
    json.table(lat);
    json.table(spd);
    json.scalar("geomean_fsoi", geometricMean(s_fsoi));
    json.scalar("geomean_l0", geometricMean(s_l0));
    json.scalar("geomean_lr1", geometricMean(s_lr1));
    json.scalar("geomean_lr2", geometricMean(s_lr2));
    return 0;
}
