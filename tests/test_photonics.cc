/**
 * @file
 * Tests for the photonics library: device models, free-space path, and
 * the Table 1 link budget.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "photonics/free_space_path.hh"
#include "photonics/link_budget.hh"
#include "photonics/receiver.hh"
#include "photonics/units.hh"
#include "photonics/vcsel.hh"

namespace fsoi::photonics {
namespace {

TEST(Units, DbRoundTrip)
{
    for (double db : {-10.0, -2.6, 0.0, 3.0, 20.0})
        EXPECT_NEAR(toDb(fromDb(db)), db, 1e-9);
    EXPECT_NEAR(wattsToDbm(1e-3), 0.0, 1e-9);
    EXPECT_NEAR(dbmToWatts(10.0), 1e-2, 1e-12);
}

TEST(Vcsel, ThresholdBehaviour)
{
    Vcsel vcsel;
    EXPECT_EQ(vcsel.opticalPower(0.0), 0.0);
    EXPECT_EQ(vcsel.opticalPower(vcsel.params().threshold_a), 0.0);
    EXPECT_GT(vcsel.opticalPower(2 * vcsel.params().threshold_a), 0.0);
}

TEST(Vcsel, LiCurveIsLinearAboveThreshold)
{
    Vcsel vcsel;
    const double i1 = 0.5e-3, i2 = 1.0e-3;
    const double p1 = vcsel.opticalPower(i1);
    const double p2 = vcsel.opticalPower(i2);
    const double ith = vcsel.params().threshold_a;
    EXPECT_NEAR(p2 / p1, (i2 - ith) / (i1 - ith), 1e-9);
}

TEST(Vcsel, ElectricalPowerMatchesTable1)
{
    // Table 1: VCSEL 0.96 mW at 0.48 mA @ 2 V (plus small parasitic).
    Vcsel vcsel;
    const double p = vcsel.electricalPower(0.48e-3);
    EXPECT_NEAR(p, 0.96e-3, 0.1e-3);
}

TEST(Vcsel, OokPointHitsExtinctionRatio)
{
    Vcsel vcsel;
    const auto ook = vcsel.ookPoint(0.48e-3, 11.0);
    EXPECT_NEAR(ook.extinction_ratio, 11.0, 1e-6);
    EXPECT_NEAR(0.5 * (ook.current_one_a + ook.current_zero_a), 0.48e-3,
                1e-9);
    EXPECT_GT(ook.current_zero_a, vcsel.params().threshold_a);
}

TEST(Vcsel, BandwidthLimits)
{
    Vcsel vcsel;
    // Parasitic RC limit: 1/(2 pi * 235 ohm * 90 fF) ~ 7.5 GHz... the
    // driver equalizes past this; the model reports the raw pole.
    EXPECT_NEAR(vcsel.parasiticBandwidth(), 7.5e9, 0.5e9);
    EXPECT_GT(vcsel.relaxationFrequency(1.0e-3),
              vcsel.relaxationFrequency(0.5e-3));
}

TEST(FreeSpacePath, Table1ReferenceLoss)
{
    // 2 cm diagonal, 90/190 um apertures, 980 nm -> ~2.6 dB.
    FreeSpacePath path;
    EXPECT_NEAR(path.pathLossDb(), 2.6, 0.5);
}

TEST(FreeSpacePath, LossMonotonicInDistance)
{
    double prev = 0.0;
    for (double d : {0.005, 0.01, 0.02, 0.03}) {
        PathParams params;
        params.distance_m = d;
        FreeSpacePath path(params);
        EXPECT_GT(path.pathLossDb(), prev);
        prev = path.pathLossDb();
    }
}

TEST(FreeSpacePath, BiggerReceiverCapturesMore)
{
    PathParams small, big;
    small.rx_aperture_m = 100e-6;
    big.rx_aperture_m = 300e-6;
    EXPECT_GT(FreeSpacePath(small).pathLossDb(),
              FreeSpacePath(big).pathLossDb());
}

TEST(FreeSpacePath, PropagationDelayIsSpeedOfLight)
{
    FreeSpacePath path;
    EXPECT_NEAR(path.propagationDelay(), 0.02 / 3e8, 1e-12);
    // Less than a single 3.3 GHz cycle: the "speed of light" claim.
    EXPECT_LT(path.propagationDelay(), 1.0 / 3.3e9);
}

TEST(Photodetector, ResponsivityAndNoise)
{
    Photodetector pd;
    EXPECT_NEAR(pd.photocurrent(100e-6), 50e-6, 1e-9);
    const double shot = pd.shotNoise(50e-6, 36e9);
    EXPECT_GT(shot, 0.0);
    EXPECT_LT(shot, 1e-5);
    EXPECT_GT(pd.shotNoise(100e-6, 36e9), shot);
}

TEST(Tia, GainAndRiseTime)
{
    Tia tia;
    EXPECT_NEAR(tia.outputSwing(50e-6), 0.75, 1e-9); // 15 kV/A * 50 uA
    EXPECT_NEAR(tia.riseTime(), 0.35 / 36e9, 1e-15);
}

TEST(LinkBudget, QToBerInversion)
{
    for (double ber : {1e-5, 1e-10, 1e-12}) {
        const double q = OpticalLink::berToQ(ber);
        EXPECT_NEAR(std::log10(OpticalLink::qToBer(q)), std::log10(ber),
                    1e-6);
    }
    // Classic anchor: BER 1e-10 needs Q ~ 6.36.
    EXPECT_NEAR(OpticalLink::berToQ(1e-10), 6.36, 0.05);
}

TEST(LinkBudget, Table1OperatingPoint)
{
    OpticalLink link;
    const auto r = link.evaluate();

    EXPECT_NEAR(r.path_loss_db, 2.6, 0.5);
    // SNR ~7.5 dB and BER ~1e-10 in the paper's convention.
    EXPECT_NEAR(r.snr_db, 7.5, 1.5);
    EXPECT_LT(r.bit_error_rate, 1e-7);
    EXPECT_GT(r.bit_error_rate, 1e-16);
    // Jitter in the low picoseconds (paper: 1.7 ps).
    EXPECT_GT(r.jitter_rms_s, 0.2e-12);
    EXPECT_LT(r.jitter_rms_s, 5e-12);
    // Power rows.
    EXPECT_NEAR(r.vcsel_power_w, 0.96e-3, 0.15e-3);
    EXPECT_NEAR(r.receiver_power_w, 4.2e-3, 1e-9);
    EXPECT_NEAR(r.laser_driver_power_w, 6.3e-3, 1e-9);
    // Energy per bit: ~0.3 pJ at 40 Gbps.
    EXPECT_LT(r.energy_per_bit_j, 1e-12);
    EXPECT_GT(r.energy_per_bit_j, 0.05e-12);
}

TEST(LinkBudget, LongerPathDegradesBer)
{
    PathParams near_path, far_path;
    near_path.distance_m = 0.01;
    far_path.distance_m = 0.04;
    OpticalLink near_link(VcselParams{}, near_path);
    OpticalLink far_link(VcselParams{}, far_path);
    EXPECT_LT(near_link.evaluate().bit_error_rate,
              far_link.evaluate().bit_error_rate);
    EXPECT_GT(near_link.evaluate().q_factor,
              far_link.evaluate().q_factor);
}

/** Property sweep: more optical power never hurts the link. */
class LinkPowerSweep : public ::testing::TestWithParam<double>
{};

TEST_P(LinkPowerSweep, QImprovesWithDrive)
{
    LinkParams base;
    LinkParams more = base;
    more.average_current_a = GetParam();
    OpticalLink weak(VcselParams{}, PathParams{}, PhotodetectorParams{},
                     TiaParams{}, base);
    OpticalLink strong(VcselParams{}, PathParams{}, PhotodetectorParams{},
                       TiaParams{}, more);
    if (more.average_current_a > base.average_current_a)
        EXPECT_GE(strong.evaluate().q_factor, weak.evaluate().q_factor);
    else
        EXPECT_LE(strong.evaluate().q_factor, weak.evaluate().q_factor);
}

INSTANTIATE_TEST_SUITE_P(DriveCurrents, LinkPowerSweep,
                         ::testing::Values(0.3e-3, 0.4e-3, 0.48e-3,
                                           0.6e-3, 0.8e-3, 1.0e-3));

} // namespace
} // namespace fsoi::photonics
