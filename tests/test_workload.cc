/**
 * @file
 * Tests for the synthetic workload generators.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "workload/apps.hh"

namespace fsoi::workload {
namespace {

std::vector<Instr>
drain(InstrStream &stream, std::size_t limit = 1u << 20)
{
    std::vector<Instr> out;
    while (out.size() < limit) {
        Instr instr = stream.next();
        out.push_back(instr);
        if (instr.op == Op::End)
            break;
    }
    return out;
}

TEST(Apps, SixteenProfiles)
{
    const auto apps = paperApps();
    EXPECT_EQ(apps.size(), 16u);
    std::map<std::string, int> names;
    for (const auto &app : apps)
        names[app.name]++;
    EXPECT_EQ(names.size(), 16u); // unique names
    EXPECT_TRUE(names.count("fft"));
    EXPECT_TRUE(names.count("mp3d"));
    EXPECT_TRUE(names.count("tsp"));
}

TEST(Apps, LookupByName)
{
    EXPECT_EQ(appByName("ocean").name, "ocean");
    EXPECT_DEATH(appByName("no-such-app"), "");
}

TEST(Apps, ScaledAdjustsBudget)
{
    const auto app = appByName("lu");
    EXPECT_EQ(app.scaled(0.5).instructions, app.instructions / 2);
    EXPECT_GE(app.scaled(1e-9).instructions, 1u);
}

TEST(Stream, DeterministicPerSeedAndThread)
{
    const auto app = appByName("barnes").scaled(0.1);
    auto s1 = makeAppStream(app, 3, 16, 42);
    auto s2 = makeAppStream(app, 3, 16, 42);
    auto s3 = makeAppStream(app, 4, 16, 42);
    const auto a = drain(*s1);
    const auto b = drain(*s2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].addr, b[i].addr);
    }
    // Different thread -> different stream (compare op sequence).
    const auto c = drain(*s3);
    bool differs = a.size() != c.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].addr != c[i].addr || a[i].op != c[i].op;
    EXPECT_TRUE(differs);
}

TEST(Stream, EndsAndStaysEnded)
{
    const auto app = appByName("ws").scaled(0.02);
    auto stream = makeAppStream(app, 0, 16, 1);
    auto instrs = drain(*stream);
    ASSERT_FALSE(instrs.empty());
    EXPECT_EQ(instrs.back().op, Op::End);
    EXPECT_EQ(stream->next().op, Op::End);
    EXPECT_EQ(stream->next().op, Op::End);
}

TEST(Stream, AddressesInDeclaredSpaces)
{
    const auto app = appByName("raytrace").scaled(0.1);
    auto stream = makeAppStream(app, 5, 16, 9);
    for (const auto &instr : drain(*stream)) {
        switch (instr.op) {
          case Op::Load:
          case Op::Store:
            EXPECT_TRUE(
                (instr.addr >= kPrivateBase
                 && instr.addr < kPrivateBase + 16 * kPrivateStride)
                || (instr.addr >= kSharedBase
                    && instr.addr < kLockBase))
                << std::hex << instr.addr;
            break;
          case Op::Lock:
          case Op::Unlock:
            EXPECT_GE(instr.addr, kLockBase);
            EXPECT_LT(instr.addr, kBarrierBase);
            break;
          case Op::Barrier:
            EXPECT_GE(instr.addr, kBarrierBase);
            EXPECT_EQ(instr.value, 16u);
            break;
          default:
            break;
        }
    }
}

TEST(Stream, PrivateAddressesAreThreadLocal)
{
    const auto app = appByName("lu").scaled(0.1);
    auto s0 = makeAppStream(app, 0, 16, 7);
    auto s1 = makeAppStream(app, 1, 16, 7);
    auto in_private = [](Addr a, int tid) {
        const Addr base = kPrivateBase + tid * kPrivateStride;
        return a >= base && a < base + kPrivateStride;
    };
    for (const auto &instr : drain(*s0)) {
        if ((instr.op == Op::Load || instr.op == Op::Store)
            && instr.addr < kSharedBase) {
            EXPECT_TRUE(in_private(instr.addr, 0));
        }
    }
    for (const auto &instr : drain(*s1)) {
        if ((instr.op == Op::Load || instr.op == Op::Store)
            && instr.addr < kSharedBase) {
            EXPECT_TRUE(in_private(instr.addr, 1));
        }
    }
}

TEST(Stream, LockUnlockBalanced)
{
    const auto app = appByName("tsp").scaled(0.2);
    auto stream = makeAppStream(app, 2, 16, 3);
    int depth = 0;
    Addr held = 0;
    for (const auto &instr : drain(*stream)) {
        if (instr.op == Op::Lock) {
            EXPECT_EQ(depth, 0);
            ++depth;
            held = instr.addr;
        } else if (instr.op == Op::Unlock) {
            EXPECT_EQ(depth, 1);
            EXPECT_EQ(instr.addr, held);
            --depth;
        }
    }
    EXPECT_EQ(depth, 0);
}

/**
 * The livelock regression: every thread of an application must emit
 * exactly the same barrier sequence, or threads deadlock at different
 * barriers.
 */
class BarrierAgreement : public ::testing::TestWithParam<const char *>
{};

TEST_P(BarrierAgreement, SameSequenceAcrossThreads)
{
    const auto app = appByName(GetParam()).scaled(0.3);
    std::vector<std::vector<Addr>> sequences;
    for (int t = 0; t < 16; ++t) {
        auto stream = makeAppStream(app, t, 16, 77);
        std::vector<Addr> seq;
        for (const auto &instr : drain(*stream))
            if (instr.op == Op::Barrier)
                seq.push_back(instr.addr);
        sequences.push_back(std::move(seq));
    }
    for (int t = 1; t < 16; ++t)
        EXPECT_EQ(sequences[t], sequences[0]) << "thread " << t;
}

INSTANTIATE_TEST_SUITE_P(AllBarrierApps, BarrierAgreement,
                         ::testing::Values("fft", "lu", "ocean", "radix",
                                           "ws", "em3d", "ilink",
                                           "jacobi", "mp3d", "shallow"));

TEST(Stream, MemoryRatioApproximatelyHonored)
{
    const auto app = appByName("ocean").scaled(0.5);
    auto stream = makeAppStream(app, 0, 16, 5);
    std::uint64_t compute_cycles = 0, mem_ops = 0;
    for (const auto &instr : drain(*stream)) {
        if (instr.op == Op::Compute)
            compute_cycles += instr.cycles;
        else if (instr.op == Op::Load || instr.op == Op::Store)
            ++mem_ops;
    }
    const double ratio = static_cast<double>(mem_ops)
        / (compute_cycles + mem_ops);
    EXPECT_NEAR(ratio, app.mem_ratio, 0.08);
}

} // namespace
} // namespace fsoi::workload
