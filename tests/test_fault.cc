/**
 * @file
 * Fault-injection subsystem tests, in three layers:
 *
 *  - FaultInjector unit tests: deterministic schedules, nested dead
 *    sets across fractions, explicit kill lists, misalignment-driven
 *    BER degradation, blacklist/redirect policy, and the bounded
 *    backoff budget the watchdog grace period is derived from.
 *  - Datapath survival: a mesh routes around an explicitly killed
 *    link, BER runs complete through CRC-drop retransmission on both
 *    interconnects, and a dead FSOI receiver is blacklisted with its
 *    traffic redistributed to the survivor.
 *  - Diagnosed failure: a dead FSOI transmit lane wedges its node and
 *    the run ends with a watchdog fault diagnosis (not a panic) that
 *    names the lane, as does the flight-recorder post-mortem; a fully
 *    partitioned mesh is diagnosed before the first cycle runs.
 *
 * Faulted runs must stay exactly as deterministic as healthy ones:
 * the same fault matrix is executed at --jobs=1/4/8 and every
 * RunResult field, fault counters included, must be bit-identical.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analytic/backoff_model.hh"
#include "fault/fault_model.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "workload/apps.hh"

#include "json_validator.hh"

namespace fsoi {
namespace {

using fault::FaultConfig;
using fault::FaultInjector;
using fault::FaultTopology;

const FaultTopology kTopo16{20, 2, 4}; // 16 cores + 4 memctls, 4x4 mesh

// --- injector unit tests --------------------------------------------

TEST(FaultInjector, ScheduleIsDeterministic)
{
    FaultConfig fc;
    fc.dead_rx_fraction = 0.2;
    fc.dead_tx_fraction = 0.1;
    fc.dead_link_fraction = 0.15;
    fc.seed = 42;
    FaultInjector a(fc, kTopo16), b(fc, kTopo16);
    EXPECT_EQ(a.deadRxCount(), b.deadRxCount());
    EXPECT_EQ(a.deadTxCount(), b.deadTxCount());
    EXPECT_EQ(a.deadLinkCount(), b.deadLinkCount());
    EXPECT_GT(a.deadRxCount(), 0u);
    for (NodeId n = 0; n < 20; ++n) {
        for (int cls = 0; cls < 2; ++cls) {
            EXPECT_EQ(a.txDead(n, cls), b.txDead(n, cls));
            for (int rx = 0; rx < 2; ++rx)
                EXPECT_EQ(a.rxDead(n, cls, rx), b.rxDead(n, cls, rx));
        }
    }
    for (int router = 0; router < 16; ++router)
        for (int dir = 0; dir < 4; ++dir)
            EXPECT_EQ(a.linkDead(router, dir), b.linkDead(router, dir));
}

TEST(FaultInjector, DeadSetsAreNestedAcrossFractions)
{
    // Victims are a prefix of one permutation: everything dead at a
    // lower fraction stays dead at any higher one (same seed), so
    // degradation sweeps never re-roll their victims.
    double fractions[] = {0.1, 0.2, 0.4};
    std::vector<FaultInjector> injectors;
    for (double f : fractions) {
        FaultConfig fc;
        fc.dead_rx_fraction = f;
        fc.seed = 7;
        injectors.emplace_back(fc, kTopo16);
    }
    EXPECT_LT(injectors[0].deadRxCount(), injectors[1].deadRxCount());
    EXPECT_LT(injectors[1].deadRxCount(), injectors[2].deadRxCount());
    for (std::size_t i = 1; i < injectors.size(); ++i)
        for (NodeId n = 0; n < 20; ++n)
            for (int cls = 0; cls < 2; ++cls)
                for (int rx = 0; rx < 2; ++rx) {
                    if (injectors[i - 1].rxDead(n, cls, rx)) {
                        EXPECT_TRUE(injectors[i].rxDead(n, cls, rx));
                    }
                }
}

TEST(FaultInjector, ExplicitKillListsApply)
{
    FaultConfig fc;
    fc.killRx(3, 1, 0, 2);
    fc.killTx(2, 0);
    fc.killLink(5, 0, 4); // edge east of router 5 (= west of router 6)
    FaultInjector inj(fc, kTopo16);
    EXPECT_TRUE(inj.rxDead(3, 1, 0));
    EXPECT_FALSE(inj.rxDead(3, 1, 1));
    EXPECT_TRUE(inj.txDead(2, 0));
    EXPECT_FALSE(inj.txDead(2, 1));
    // Both directions of the edge die together.
    EXPECT_TRUE(inj.linkDead(5, 0));
    EXPECT_TRUE(inj.linkDead(6, 1));
    EXPECT_FALSE(inj.linkDead(5, 1));
    EXPECT_EQ(inj.deadLinkCount(), 1u);
    const std::string diag = inj.diagnose();
    EXPECT_NE(diag.find("n2.meta"), std::string::npos) << diag;
    EXPECT_NE(diag.find("n3.data.rx0"), std::string::npos) << diag;
    EXPECT_NE(diag.find("r5-east(r6)"), std::string::npos) << diag;
}

TEST(FaultInjector, MisalignmentDegradesBerThroughLinkBudget)
{
    FaultConfig off;
    off.misalignment_m = 2e-6;
    FaultInjector misaligned(off, kTopo16);

    FaultConfig worse;
    worse.misalignment_m = 4e-6;
    FaultInjector very_misaligned(worse, kTopo16);

    // The reference link has plenty of margin: a small offset gives a
    // tiny but nonzero BER, and the degradation grows with the offset.
    EXPECT_GT(misaligned.effectiveBer(), 0.0);
    EXPECT_GT(very_misaligned.effectiveBer(), misaligned.effectiveBer());

    // Independent error sources combine: misalignment on top of an
    // electrical BER floor only raises the effective rate.
    FaultConfig both = off;
    both.ber = 1e-9;
    FaultInjector combined(both, kTopo16);
    EXPECT_GT(combined.effectiveBer(), misaligned.effectiveBer());
    EXPECT_GT(combined.effectiveBer(), 1e-9);
}

TEST(FaultInjector, CorruptsDrawsOnlyWhenBerEnabled)
{
    FaultConfig dead_only;
    dead_only.dead_rx_fraction = 0.5;
    FaultInjector inj(dead_only, kTopo16);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(inj.corrupts(i % 2));
    EXPECT_EQ(inj.bitErrors(), 0u);

    FaultConfig noisy;
    noisy.ber = 1e-3; // data packets corrupt with p ~ 30%
    FaultInjector loud(noisy, kTopo16);
    int hits = 0;
    for (int i = 0; i < 1000; ++i)
        hits += loud.corrupts(1);
    EXPECT_GT(hits, 0);
    EXPECT_EQ(loud.bitErrors(), static_cast<std::uint64_t>(hits));
}

TEST(FaultInjector, BlacklistRedirectsToSurvivingReceiver)
{
    FaultConfig fc;
    fc.max_retx = 4;
    fc.killRx(5, 1, 1, 2); // dst 5, data lane, receiver 1
    FaultInjector inj(fc, kTopo16);

    // Odd senders default to rx 1; until the failure streak exhausts
    // the retry budget the partition stands.
    EXPECT_EQ(inj.redirectRx(1, 5, 1), 1);
    for (int i = 0; i < fc.max_retx; ++i)
        inj.noteChannelFailure(5, 1, 1);
    EXPECT_TRUE(inj.blacklisted(5, 1, 1));
    EXPECT_EQ(inj.blacklists(), 1u);
    // Traffic redistributes to the surviving receiver...
    EXPECT_EQ(inj.redirectRx(1, 5, 1), 0);
    // ...and a success on a live channel resets nothing fatal: the
    // default partition still applies for senders already on rx 0.
    EXPECT_EQ(inj.redirectRx(2, 5, 1), 0);

    // Kill the survivor too: redirect falls back to the default so the
    // sender keeps failing visibly and the watchdog can diagnose it.
    for (int i = 0; i < fc.max_retx; ++i)
        inj.noteChannelFailure(5, 1, 0);
    EXPECT_EQ(inj.redirectRx(1, 5, 1), 1);
}

TEST(FaultInjector, SuccessResetsFailureStreak)
{
    FaultConfig fc;
    fc.max_retx = 4;
    fc.ber = 1e-6; // enabled() without any permanent faults
    FaultInjector inj(fc, kTopo16);
    for (int round = 0; round < 8; ++round) {
        // max_retx - 1 failures, then a clean delivery: never
        // blacklists, however often the pattern repeats.
        for (int i = 0; i < fc.max_retx - 1; ++i)
            inj.noteChannelFailure(2, 0, 0);
        inj.noteChannelSuccess(2, 0, 0);
    }
    EXPECT_FALSE(inj.blacklisted(2, 0, 0));
    EXPECT_EQ(inj.blacklists(), 0u);
}

TEST(FaultInjector, FaultContextJsonIsValid)
{
    FaultConfig fc;
    fc.killTx(0, 0);
    fc.killRx(3, 1, 1, 2);
    fc.killLink(1, 0, 4);
    fc.ber = 1e-6;
    FaultInjector inj(fc, kTopo16);
    std::ostringstream os;
    inj.writeJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(testsupport::jsonValid(json)) << json;
    EXPECT_NE(json.find("\"dead_tx\":[{\"node\":0,\"class\":\"meta\"}]"),
              std::string::npos)
        << json;
}

TEST(BackoffModel, BoundedResolutionBudgetGrowsWithRetryBudget)
{
    const analytic::BackoffParams params;
    const Cycle one = analytic::boundedResolutionBudget(params, 1);
    const Cycle four = analytic::boundedResolutionBudget(params, 4);
    const Cycle sixteen = analytic::boundedResolutionBudget(params, 16);
    EXPECT_GT(one, 0u);
    EXPECT_LT(one, four);
    EXPECT_LT(four, sixteen);
    // The budget bounds every per-retry window below the cap, so it
    // grows slower than linearly in nothing -- sanity: 16 retries cost
    // less than 16x the worst single window but more than 16 minimal
    // slots.
    EXPECT_GE(sixteen, 16u * one / 4u);
}

// --- system-level fault runs ----------------------------------------

sim::SweepJob
faultPoint(sim::NetKind kind, const char *app, std::uint64_t seed)
{
    sim::SweepJob job;
    job.config = sim::SystemConfig::paperConfig(16, kind);
    job.config.seed = seed;
    job.app = workload::appByName(app);
    job.scale = 0.03;
    return job;
}

void
expectIdentical(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.packets_delivered, b.packets_delivered);
    EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.fault_bit_errors, b.fault_bit_errors);
    EXPECT_EQ(a.blacklisted_channels, b.blacklisted_channels);
    EXPECT_EQ(a.unroutable_drops, b.unroutable_drops);
    EXPECT_EQ(a.fault_diagnosis, b.fault_diagnosis);
}

TEST(FaultSystem, HealthyConfigConstructsNoInjector)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperConfig(16,
                                                  sim::NetKind::Fsoi);
    EXPECT_FALSE(cfg.fault.enabled());
    sim::System system(cfg);
    EXPECT_EQ(system.faultInjector(), nullptr);
}

TEST(FaultSystem, FaultedRunsBitIdenticalAcrossJobs)
{
    std::vector<sim::SweepJob> jobs;
    auto fsoi_dead = faultPoint(sim::NetKind::Fsoi, "fft", 5);
    fsoi_dead.config.fault.dead_rx_fraction = 0.1;
    jobs.push_back(fsoi_dead);
    auto fsoi_ber = faultPoint(sim::NetKind::Fsoi, "barnes", 5);
    fsoi_ber.config.fault.ber = 1e-4;
    jobs.push_back(fsoi_ber);
    auto mesh_faulty = faultPoint(sim::NetKind::Mesh, "fft", 5);
    mesh_faulty.config.fault.ber = 1e-4;
    mesh_faulty.config.fault.killLink(5, 0, 4);
    jobs.push_back(mesh_faulty);

    auto runAll = [&](int n) {
        sim::SweepRunner runner(n);
        std::vector<std::future<sim::RunResult>> futs;
        for (const auto &job : jobs)
            futs.push_back(runner.submit(job));
        std::vector<sim::RunResult> out;
        for (auto &f : futs)
            out.push_back(f.get());
        return out;
    };
    const auto serial = runAll(1);
    for (int n : {4, 8}) {
        const auto parallel = runAll(n);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectIdentical(serial[i], parallel[i]);
    }
}

TEST(FaultSystem, MeshRoutesAroundExplicitDeadLink)
{
    auto job = faultPoint(sim::NetKind::Mesh, "fft", 3);
    job.config.fault.killLink(5, 0, 4); // r5 <-> r6
    const auto outcome = sim::SweepRunner::runJob(job, true);
    EXPECT_TRUE(outcome.result.completed)
        << outcome.result.fault_diagnosis;
    EXPECT_EQ(outcome.result.unroutable_drops, 0u);
    auto *mesh = outcome.system->meshNetwork();
    ASSERT_NE(mesh, nullptr);
    EXPECT_TRUE(mesh->fullyConnected());
    EXPECT_TRUE(mesh->reachable(5, 6));
}

TEST(FaultSystem, FsoiBerRunCompletesWithRetransmissions)
{
    const auto healthy =
        sim::SweepRunner::runJob(faultPoint(sim::NetKind::Fsoi, "fft", 3),
                                 false).result;
    auto job = faultPoint(sim::NetKind::Fsoi, "fft", 3);
    job.config.fault.ber = 1e-4;
    const auto res = sim::SweepRunner::runJob(job, false).result;
    EXPECT_TRUE(res.completed) << res.fault_diagnosis;
    EXPECT_GT(res.fault_bit_errors, 0u);
    EXPECT_GT(res.retransmissions, healthy.retransmissions);
}

TEST(FaultSystem, MeshBerRunCompletesWithRetransmissions)
{
    auto job = faultPoint(sim::NetKind::Mesh, "fft", 3);
    job.config.fault.ber = 1e-3;
    const auto res = sim::SweepRunner::runJob(job, false).result;
    EXPECT_TRUE(res.completed) << res.fault_diagnosis;
    EXPECT_GT(res.fault_bit_errors, 0u);
    EXPECT_GT(res.retransmissions, 0u);
}

TEST(FaultSystem, DeadReceiverIsBlacklistedAndRunCompletes)
{
    auto job = faultPoint(sim::NetKind::Fsoi, "fft", 3);
    // Kill receiver 0 of node 2's data lane: even senders fail onto it
    // until the blacklist steers them to the surviving receiver 1.
    job.config.fault.killRx(2, 1, 0, 2);
    const auto res = sim::SweepRunner::runJob(job, false).result;
    EXPECT_TRUE(res.completed) << res.fault_diagnosis;
    EXPECT_GE(res.blacklisted_channels, 1u);
}

TEST(FaultSystem, WedgedTxLaneDiagnosedAndNamedInFlightDump)
{
    auto job = faultPoint(sim::NetKind::Fsoi, "fft", 3);
    job.config.fault.killTx(0, 0); // node 0's meta VCSEL array
    // Tight stall budget: the wedge is structural, no need to wait out
    // the default two million cycles to prove it.
    job.config.progress_stall_limit = 50'000;
    const auto outcome = sim::SweepRunner::runJob(job, true);

    // The run ends with a diagnosis, not a panic, and the diagnosis
    // names the dead lane.
    EXPECT_FALSE(outcome.result.completed);
    const auto &diag = outcome.result.fault_diagnosis;
    ASSERT_FALSE(diag.empty());
    EXPECT_NE(diag.find("dead fsoi tx lanes"), std::string::npos)
        << diag;
    EXPECT_NE(diag.find("n0.meta"), std::string::npos) << diag;

    // The flight-recorder post-mortem carries the same fault context.
    std::ostringstream os;
    outcome.system->flightRecorder().dumpJson(os, "test:wedged-tx",
                                              outcome.result.cycles);
    const std::string dump = os.str();
    EXPECT_TRUE(testsupport::jsonValid(dump)) << dump;
    EXPECT_NE(
        dump.find("\"dead_tx\":[{\"node\":0,\"class\":\"meta\"}]"),
        std::string::npos)
        << dump;
}

TEST(FaultSystem, FullyPartitionedMeshDiagnosedWithoutRunning)
{
    auto job = faultPoint(sim::NetKind::Mesh, "fft", 3);
    job.config.fault.dead_link_fraction = 1.0;
    const auto res = sim::SweepRunner::runJob(job, false).result;
    EXPECT_FALSE(res.completed);
    // Diagnosed before simulating (cycles clamps to 1, never 0).
    EXPECT_EQ(res.cycles, 1u);
    EXPECT_NE(res.fault_diagnosis.find("partitioned mesh"),
              std::string::npos)
        << res.fault_diagnosis;
}

TEST(FaultSystem, FaultStatsPublishedInRegistry)
{
    auto job = faultPoint(sim::NetKind::Fsoi, "fft", 3);
    job.config.fault.ber = 1e-4;
    const auto outcome = sim::SweepRunner::runJob(job, true);
    std::ostringstream os;
    outcome.system->writeStatsJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(testsupport::jsonValid(json)) << json.substr(0, 400);
    EXPECT_NE(json.find("\"fault\""), std::string::npos);
    EXPECT_NE(json.find("\"bit_errors\""), std::string::npos);
    EXPECT_NE(json.find("\"retx\""), std::string::npos);
}

} // namespace
} // namespace fsoi
