/**
 * @file
 * JSON validator CLI used by the observability smoke test: parses each
 * input file as either one JSON document or, with --lines, as
 * JSON-lines (one document per non-empty line). Exits non-zero with a
 * message on the first malformed document, so ctest can assert that
 * the files the simulator emits actually parse.
 *
 *   check_json [--lines] FILE...
 *
 * The parser itself lives in json_validator.hh so unit tests can
 * validate generated documents in-process.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "json_validator.hh"

namespace {

bool
checkDocument(const std::string &text, const char *what)
{
    fsoi::testsupport::JsonParser p(text, /*report=*/true);
    if (!p.document()) {
        std::fprintf(stderr, "  while parsing %s\n", what);
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool lines = false;
    int first = 1;
    if (argc > 1 && std::strcmp(argv[1], "--lines") == 0) {
        lines = true;
        first = 2;
    }
    if (first >= argc) {
        std::fprintf(stderr, "usage: check_json [--lines] FILE...\n");
        return 2;
    }
    for (int i = first; i < argc; ++i) {
        std::ifstream in(argv[i]);
        if (!in) {
            std::fprintf(stderr, "cannot open '%s'\n", argv[i]);
            return 1;
        }
        if (lines) {
            std::string line;
            int lineno = 0;
            int documents = 0;
            while (std::getline(in, line)) {
                ++lineno;
                if (line.empty())
                    continue;
                char what[256];
                std::snprintf(what, sizeof(what), "%s line %d", argv[i],
                              lineno);
                if (!checkDocument(line, what))
                    return 1;
                ++documents;
            }
            if (documents == 0) {
                std::fprintf(stderr, "'%s' contains no documents\n",
                             argv[i]);
                return 1;
            }
            std::printf("%s: %d JSON documents OK\n", argv[i], documents);
        } else {
            std::ostringstream buf;
            buf << in.rdbuf();
            if (!checkDocument(buf.str(), argv[i]))
                return 1;
            std::printf("%s: JSON OK\n", argv[i]);
        }
    }
    return 0;
}
