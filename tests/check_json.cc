/**
 * @file
 * Tiny dependency-free JSON validator used by the observability smoke
 * test: parses each input file as either one JSON document or, with
 * --lines, as JSON-lines (one document per non-empty line). Exits
 * non-zero with a message on the first malformed document, so ctest
 * can assert that the files the simulator emits actually parse.
 *
 *   check_json [--lines] FILE...
 */

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct Parser
{
    const std::string &s;
    std::size_t pos = 0;

    explicit Parser(const std::string &text) : s(text) {}

    [[nodiscard]] bool
    fail(const char *what)
    {
        std::fprintf(stderr, "JSON error at offset %zu: %s\n", pos, what);
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size()
               && std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s.compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        return true;
    }

    bool
    string()
    {
        if (s[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("truncated escape");
                if (s[pos] == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= s.size()
                            || !std::isxdigit(
                                   static_cast<unsigned char>(s[pos])))
                            return fail("bad \\u escape");
                    }
                }
            }
            ++pos;
        }
        if (pos >= s.size())
            return fail("unterminated string");
        ++pos;
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size()
               && (std::isdigit(static_cast<unsigned char>(s[pos]))
                   || s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E'
                   || s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected number");
        return true;
    }

    bool
    value()
    {
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case '{': {
            ++pos;
            skipWs();
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (pos >= s.size() || s[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                if (!value())
                    return false;
                skipWs();
                if (pos < s.size() && s[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < s.size() && s[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos;
            skipWs();
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                if (!value())
                    return false;
                skipWs();
                if (pos < s.size() && s[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < s.size() && s[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    document()
    {
        if (!value())
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing content");
        return true;
    }
};

bool
checkDocument(const std::string &text, const char *what)
{
    Parser p(text);
    if (!p.document()) {
        std::fprintf(stderr, "  while parsing %s\n", what);
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool lines = false;
    int first = 1;
    if (argc > 1 && std::strcmp(argv[1], "--lines") == 0) {
        lines = true;
        first = 2;
    }
    if (first >= argc) {
        std::fprintf(stderr, "usage: check_json [--lines] FILE...\n");
        return 2;
    }
    for (int i = first; i < argc; ++i) {
        std::ifstream in(argv[i]);
        if (!in) {
            std::fprintf(stderr, "cannot open '%s'\n", argv[i]);
            return 1;
        }
        if (lines) {
            std::string line;
            int lineno = 0;
            int documents = 0;
            while (std::getline(in, line)) {
                ++lineno;
                if (line.empty())
                    continue;
                char what[256];
                std::snprintf(what, sizeof(what), "%s line %d", argv[i],
                              lineno);
                if (!checkDocument(line, what))
                    return 1;
                ++documents;
            }
            if (documents == 0) {
                std::fprintf(stderr, "'%s' contains no documents\n",
                             argv[i]);
                return 1;
            }
            std::printf("%s: %d JSON documents OK\n", argv[i], documents);
        } else {
            std::ostringstream buf;
            buf << in.rdbuf();
            if (!checkDocument(buf.str(), argv[i]))
                return 1;
            std::printf("%s: JSON OK\n", argv[i]);
        }
    }
    return 0;
}
