/**
 * @file
 * Tests for the interconnect models: topology, the ideal (L0/Lr1/Lr2)
 * networks and the electrical mesh baseline.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "noc/ideal_network.hh"
#include "noc/mesh_network.hh"
#include "noc/topology.hh"

namespace fsoi::noc {
namespace {

/** Collects deliveries per destination. */
struct Harness
{
    explicit Harness(Network &net) : network(net)
    {
        for (NodeId n = 0; n < static_cast<NodeId>(net.numEndpoints());
             ++n) {
            net.setHandler(n, [this, n](Packet &pkt) {
                delivered.push_back(pkt);
                (void)n;
            });
        }
    }

    void
    runUntilIdle(Cycle max_cycles = 100000)
    {
        while (now < max_cycles) {
            network.tick(now++);
            if (network.idle())
                return;
        }
        FAIL() << "network did not drain";
    }

    Network &network;
    Cycle now = 0;
    std::vector<Packet> delivered;
};

TEST(Topology, GridPlacement)
{
    MeshLayout layout(16, 4);
    EXPECT_EQ(layout.side(), 4);
    EXPECT_EQ(layout.numEndpoints(), 20);
    EXPECT_EQ(layout.hopDistance(0, 3), 3);  // same row
    EXPECT_EQ(layout.hopDistance(0, 15), 6); // opposite corners
    EXPECT_EQ(layout.hopDistance(5, 5), 0);
    EXPECT_EQ(layout.routersTraversed(0, 15), 7);
    EXPECT_TRUE(layout.isMemctl(16));
    EXPECT_FALSE(layout.isMemctl(15));
}

TEST(Topology, MemctlAttachmentsSpread)
{
    MeshLayout layout(16, 4);
    std::map<int, int> routers;
    for (NodeId m = 16; m < 20; ++m)
        routers[layout.routerOf(m)]++;
    EXPECT_EQ(routers.size(), 4u); // all on distinct routers
}

TEST(Topology, EuclideanDiagonal)
{
    MeshLayout layout(16, 4);
    // 2 cm die: corner-to-corner ~ 2.1 cm for a 4x4 grid of 5 mm cells.
    const double d = layout.euclideanDistance(0, 15, 0.02);
    EXPECT_NEAR(d, std::sqrt(2.0) * 0.015, 1e-6);
}

TEST(IdealNetwork, L0LatencyIsSerializationOnly)
{
    MeshLayout layout(16, 4);
    IdealNetwork net(layout, makeL0Config());
    Harness harness(net);

    net.tick(0);
    Packet meta = makePacket(0, 15, PacketClass::Meta,
                             PacketKind::Request);
    ASSERT_TRUE(net.send(std::move(meta)));
    Packet data = makePacket(3, 9, PacketClass::Data, PacketKind::Reply);
    ASSERT_TRUE(net.send(std::move(data)));
    harness.now = 1;
    harness.runUntilIdle();

    ASSERT_EQ(harness.delivered.size(), 2u);
    for (const auto &pkt : harness.delivered) {
        const Cycle expected = pkt.cls == PacketClass::Meta ? 1 : 5;
        // +1 because serialization starts at the next tick.
        EXPECT_EQ(pkt.totalLatency(), expected + 1);
    }
}

TEST(IdealNetwork, LrChargesPerHop)
{
    MeshLayout layout(16, 4);
    IdealNetwork lr1(layout, makeLr1Config());
    IdealNetwork lr2(layout, makeLr2Config());
    Harness h1(lr1), h2(lr2);

    lr1.tick(0);
    lr2.tick(0);
    ASSERT_TRUE(lr1.send(makePacket(0, 15, PacketClass::Meta,
                                    PacketKind::Request)));
    ASSERT_TRUE(lr2.send(makePacket(0, 15, PacketClass::Meta,
                                    PacketKind::Request)));
    h1.now = h2.now = 1;
    h1.runUntilIdle();
    h2.runUntilIdle();

    // 0 -> 15: 6 links, 7 routers.
    EXPECT_EQ(h1.delivered.at(0).totalLatency(),
              1u + 1u + 7u * 1u + 6u * 1u);
    EXPECT_EQ(h2.delivered.at(0).totalLatency(),
              1u + 1u + 7u * 2u + 6u * 1u);
}

TEST(IdealNetwork, SerializerBackpressure)
{
    MeshLayout layout(16, 4);
    IdealConfig cfg = makeL0Config();
    cfg.queue_capacity = 2;
    IdealNetwork net(layout, cfg);
    Harness harness(net);

    net.tick(0);
    EXPECT_TRUE(net.send(makePacket(0, 1, PacketClass::Data,
                                    PacketKind::Reply)));
    EXPECT_TRUE(net.send(makePacket(0, 2, PacketClass::Data,
                                    PacketKind::Reply)));
    EXPECT_FALSE(net.canAccept(0, PacketClass::Data));
    EXPECT_FALSE(net.send(makePacket(0, 3, PacketClass::Data,
                                     PacketKind::Reply)));
    // The meta lane is independent.
    EXPECT_TRUE(net.canAccept(0, PacketClass::Meta));
    harness.now = 1;
    harness.runUntilIdle();
    EXPECT_EQ(harness.delivered.size(), 2u);
}

TEST(MeshNetwork, SinglePacketLatency)
{
    MeshLayout layout(16, 4);
    MeshNetwork net(layout, MeshConfig{});
    Harness harness(net);

    net.tick(0);
    ASSERT_TRUE(net.send(makePacket(0, 1, PacketClass::Meta,
                                    PacketKind::Request)));
    harness.now = 1;
    harness.runUntilIdle();
    ASSERT_EQ(harness.delivered.size(), 1u);
    // 1 hop: inject + 2 routers x 4 cycles + 1 link + eject; the exact
    // constant depends on pipeline charging -- just bound it.
    EXPECT_GE(harness.delivered[0].totalLatency(), 10u);
    EXPECT_LE(harness.delivered[0].totalLatency(), 16u);
}

TEST(MeshNetwork, FarPacketsTakeLonger)
{
    MeshLayout layout(16, 4);
    MeshNetwork net(layout, MeshConfig{});
    Harness harness(net);

    net.tick(0);
    ASSERT_TRUE(net.send(makePacket(0, 1, PacketClass::Meta,
                                    PacketKind::Request)));
    ASSERT_TRUE(net.send(makePacket(4, 11, PacketClass::Meta,
                                    PacketKind::Request)));
    harness.now = 1;
    harness.runUntilIdle();
    ASSERT_EQ(harness.delivered.size(), 2u);
    std::map<NodeId, Cycle> lat;
    for (const auto &pkt : harness.delivered)
        lat[pkt.dst] = pkt.totalLatency();
    EXPECT_GT(lat[11], lat[1]);
}

TEST(MeshNetwork, NoLossUnderRandomTraffic)
{
    MeshLayout layout(16, 4);
    MeshNetwork net(layout, MeshConfig{});
    Harness harness(net);
    Rng rng(2024);

    int sent = 0;
    for (Cycle t = 0; t < 6000; ++t) {
        net.tick(t);
        harness.now = t + 1;
        if (t < 4000) {
            for (int k = 0; k < 2; ++k) {
                const NodeId src = rng.nextBelow(20);
                NodeId dst = rng.nextBelow(19);
                if (dst >= src)
                    ++dst;
                const PacketClass cls = rng.nextBool(0.3)
                    ? PacketClass::Data : PacketClass::Meta;
                if (net.canAccept(src, cls)) {
                    ASSERT_TRUE(net.send(makePacket(
                        src, dst, cls, PacketKind::Request)));
                    ++sent;
                }
            }
        }
    }
    harness.runUntilIdle(200000);
    EXPECT_EQ(static_cast<int>(harness.delivered.size()), sent);
    EXPECT_GT(sent, 1000);
    // Activity counters moved.
    EXPECT_GT(net.activity().link_traversals.value(), 0u);
    EXPECT_GT(net.activity().buffer_writes.value(),
              net.activity().link_traversals.value());
}

TEST(MeshNetwork, BandwidthScalingStretchesSerialization)
{
    MeshLayout layout(16, 4);
    MeshConfig half;
    half.bandwidth_scale = 0.5;
    MeshNetwork full(layout, MeshConfig{});
    MeshNetwork narrow(layout, half);
    EXPECT_EQ(full.flitsPerPacket(PacketClass::Data), 5);
    EXPECT_EQ(narrow.flitsPerPacket(PacketClass::Data), 10);
    EXPECT_EQ(narrow.flitsPerPacket(PacketClass::Meta), 2);
}

TEST(MeshNetwork, MemctlEndpointsReachable)
{
    MeshLayout layout(16, 4);
    MeshNetwork net(layout, MeshConfig{});
    Harness harness(net);

    net.tick(0);
    ASSERT_TRUE(net.send(makePacket(0, 17, PacketClass::Meta,
                                    PacketKind::MemRequest)));
    ASSERT_TRUE(net.send(makePacket(17, 5, PacketClass::Data,
                                    PacketKind::MemReply)));
    harness.now = 1;
    harness.runUntilIdle();
    EXPECT_EQ(harness.delivered.size(), 2u);
}

TEST(NetworkStats, BreakdownSumsToTotal)
{
    MeshLayout layout(16, 4);
    IdealNetwork net(layout, makeLr1Config());
    Harness harness(net);
    net.tick(0);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(net.send(makePacket(0, 10, PacketClass::Meta,
                                        PacketKind::Request)));
    harness.now = 1;
    harness.runUntilIdle();
    const auto &stats = net.stats();
    EXPECT_EQ(stats.deliveredTotal(), 5u);
    EXPECT_NEAR(stats.totalLatency().mean(),
                stats.queuing().mean() + stats.scheduling().mean()
                    + stats.network().mean()
                    + stats.collisionResolution().mean(),
                1e-9);
    // Serialized back-to-back: later packets queue.
    EXPECT_GT(stats.queuing().max(), 0.0);
}

} // namespace
} // namespace fsoi::noc
