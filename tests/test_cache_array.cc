/**
 * @file
 * Tests for the generic set-associative cache array.
 */

#include <gtest/gtest.h>

#include <map>

#include "coherence/cache_array.hh"

namespace fsoi::coherence {
namespace {

struct Meta
{
    int tag_value = 0;
};

CacheGeometry
smallGeom()
{
    return CacheGeometry{1024, 32, 2}; // 16 sets, 2 ways
}

TEST(CacheArray, MissThenHit)
{
    CacheArray<Meta> cache(smallGeom());
    EXPECT_EQ(cache.find(0x1000), nullptr);
    auto *slot = cache.victim(0x1000);
    ASSERT_NE(slot, nullptr);
    EXPECT_FALSE(slot->valid);
    cache.install(slot, 0x1000, Meta{7});
    auto *line = cache.find(0x1000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->meta.tag_value, 7);
}

TEST(CacheArray, LineAlignment)
{
    CacheArray<Meta> cache(smallGeom());
    auto *slot = cache.victim(0x1008);
    cache.install(slot, 0x1008, Meta{1});
    // Any address within the line hits.
    EXPECT_NE(cache.find(0x1000), nullptr);
    EXPECT_NE(cache.find(0x101F), nullptr);
    EXPECT_EQ(cache.find(0x1020), nullptr);
}

TEST(CacheArray, LruEviction)
{
    CacheArray<Meta> cache(smallGeom());
    // Three lines mapping to the same set (stride = sets * line).
    const Addr a = 0x0, b = 16 * 32, c = 2 * 16 * 32;
    cache.install(cache.victim(a), a, Meta{1});
    cache.install(cache.victim(b), b, Meta{2});
    // Touch a so b becomes LRU.
    cache.find(a);
    auto *slot = cache.victim(c);
    ASSERT_TRUE(slot->valid);
    EXPECT_EQ(slot->tag, b);
}

TEST(CacheArray, VictimIfRespectsPins)
{
    CacheArray<Meta> cache(smallGeom());
    const Addr a = 0x0, b = 16 * 32, c = 2 * 16 * 32;
    cache.install(cache.victim(a), a, Meta{1});
    cache.install(cache.victim(b), b, Meta{2});
    // Pin both: no victim available.
    EXPECT_EQ(cache.victimIf(c, [](const auto &) { return false; }),
              nullptr);
    // Allow only b.
    auto *slot = cache.victimIf(c, [&](const auto &line) {
        return line.tag == b;
    });
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(slot->tag, b);
}

TEST(CacheArray, Invalidate)
{
    CacheArray<Meta> cache(smallGeom());
    cache.install(cache.victim(0x40), 0x40, Meta{3});
    cache.invalidate(cache.find(0x40));
    EXPECT_EQ(cache.find(0x40), nullptr);
}

TEST(CacheArray, ForEachCountsValidLines)
{
    CacheArray<Meta> cache(smallGeom());
    for (int i = 0; i < 10; ++i) {
        const Addr addr = static_cast<Addr>(i) * 32;
        cache.install(cache.victim(addr), addr, Meta{i});
    }
    int count = 0;
    cache.forEach([&](const auto &) { ++count; });
    EXPECT_EQ(count, 10);
}

TEST(CacheArray, IndexSkipBitsSeparateInterleavedHomes)
{
    // With 16-way home interleaving, a slice sees only lines whose low
    // index bits are constant; skipping them must spread lines over
    // all sets.
    CacheGeometry geom{32 * 1024, 32, 2, 4}; // 512 sets, skip 4 bits
    CacheArray<Meta> cache(geom);
    std::map<Addr, int> per_set_conflicts;
    int installed = 0;
    for (int i = 0; i < 512; ++i) {
        // Lines of home slice 3 (line_index % 16 == 3).
        const Addr addr = (static_cast<Addr>(i) * 16 + 3) * 32;
        auto *slot = cache.victim(addr);
        if (!slot->valid) {
            cache.install(slot, addr, Meta{});
            ++installed;
        }
    }
    // 512 lines over 512 sets x 2 ways: virtually no capacity misses.
    EXPECT_GE(installed, 500);
}

TEST(CacheArray, HashedIndexBreaksPowerOfTwoStrides)
{
    // Without hashing, 4 MB-strided footprints collapse onto one set.
    CacheGeometry plain{8 * 1024, 32, 2, 0, false};
    CacheGeometry hashed{8 * 1024, 32, 2, 0, true};
    auto count_unique_sets = [](const CacheGeometry &geom) {
        CacheArray<Meta> cache(geom);
        int fresh = 0;
        for (int t = 0; t < 64; ++t) {
            const Addr addr = static_cast<Addr>(t) * 0x400000;
            auto *slot = cache.victim(addr);
            if (!slot->valid)
                ++fresh;
            cache.install(slot, addr, Meta{});
        }
        return fresh;
    };
    EXPECT_LE(count_unique_sets(plain), 2);
    EXPECT_GE(count_unique_sets(hashed), 32);
}

} // namespace
} // namespace fsoi::coherence
