/**
 * @file
 * Focused tests for the directory's L2-eviction transactions
 * (Table 2's DS.DIA / DM.DID rows) and NACK-based fetch-deadlock
 * avoidance, exercised through a full System with a deliberately tiny
 * L2 slice so evictions are frequent.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/system.hh"

namespace fsoi {
namespace {

using coherence::DirState;
using coherence::L1State;
using workload::Instr;
using workload::Op;

class ScriptedStream : public workload::InstrStream
{
  public:
    explicit ScriptedStream(std::vector<Instr> instrs)
        : instrs_(std::move(instrs))
    {}

    Instr
    next() override
    {
        if (pos_ >= instrs_.size())
            return Instr{};
        return instrs_[pos_++];
    }

  private:
    std::vector<Instr> instrs_;
    std::size_t pos_ = 0;
};

/** 16-core system with a 2 KB L2 slice (64 lines) to force evictions. */
std::unique_ptr<sim::System>
tinyL2System(sim::NetKind kind,
             const std::map<int, std::vector<Instr>> &scripts)
{
    auto cfg = sim::SystemConfig::paperConfig(16, kind);
    cfg.dir.geometry.size_bytes = 2 * 1024;
    cfg.dir.geometry.associativity = 4;
    cfg.max_cycles = 10'000'000;
    auto sys = std::make_unique<sim::System>(cfg);
    for (int n = 0; n < 16; ++n) {
        auto it = scripts.find(n);
        sys->bindStream(
            n, std::make_unique<ScriptedStream>(
                   it == scripts.end()
                       ? std::vector<Instr>{Instr{Op::End, 0, 0, 0}}
                       : it->second));
    }
    return sys;
}

/** A long streaming walk over many lines homed at one node. */
std::vector<Instr>
walk(int home, int lines, bool writes, int start_index = 0)
{
    std::vector<Instr> script;
    for (int i = start_index; i < start_index + lines; ++i) {
        const Addr addr =
            0x40000000ULL + (static_cast<Addr>(i) * 16 + home) * 32;
        script.push_back(Instr{writes ? Op::Store : Op::Load, addr, 0,
                               static_cast<std::uint64_t>(i)});
    }
    script.push_back(Instr{Op::End, 0, 0, 0});
    return script;
}

TEST(DirEviction, CleanStreamEvictsWithoutDeadlock)
{
    // 512 distinct read-only lines through a 64-line slice: ~8x the
    // capacity, forcing EvictShared/DV evictions throughout.
    auto sys = tinyL2System(sim::NetKind::Mesh,
                            {{3, walk(7, 512, false)}});
    ASSERT_TRUE(sys->run().completed);
    EXPECT_GT(sys->directory(7).stats().l2_evictions.value(), 300u);
}

TEST(DirEviction, DirtyStreamWritesBackToMemory)
{
    auto sys = tinyL2System(sim::NetKind::Mesh,
                            {{3, walk(7, 512, true)}});
    ASSERT_TRUE(sys->run().completed);
    // Owned-line evictions pull the data back (DM.DID) and push it to
    // DRAM.
    EXPECT_GT(sys->directory(7).stats().mem_writes.value(), 100u);
    std::uint64_t mem_writes = 0;
    for (int m = 0; m < 4; ++m)
        mem_writes += sys->memctl(m).stats().writes.value();
    EXPECT_GT(mem_writes, 100u);
}

TEST(DirEviction, SharedLineEvictionInvalidatesAllSharers)
{
    // Two cores share a victimized line; after the eviction storm both
    // copies must be gone or coherent (never stale-valid).
    const Addr shared_line = 0x40000000ULL + 7 * 32; // home 7, index 0
    std::map<int, std::vector<Instr>> scripts;
    scripts[2] = {Instr{Op::Load, shared_line, 0, 0},
                  Instr{Op::Compute, 0, 50, 0},
                  Instr{Op::End, 0, 0, 0}};
    scripts[9] = {Instr{Op::Load, shared_line, 0, 0},
                  Instr{Op::Compute, 0, 50, 0},
                  Instr{Op::End, 0, 0, 0}};
    // Core 3 then streams enough lines through home 7 to evict it.
    scripts[3] = walk(7, 512, false, 1);
    auto sys = tinyL2System(sim::NetKind::Mesh, scripts);
    ASSERT_TRUE(sys->run().completed);
    const auto dstate = sys->directory(7).lineState(shared_line);
    const auto s2 = sys->l1(2).lineState(shared_line);
    const auto s9 = sys->l1(9).lineState(shared_line);
    if (dstate == DirState::DI) {
        EXPECT_EQ(s2, L1State::I);
        EXPECT_EQ(s9, L1State::I);
    } else if (s2 == L1State::S || s9 == L1State::S) {
        EXPECT_EQ(dstate, DirState::DS);
    }
}

TEST(DirEviction, FsoiModeSurvivesEvictionStorm)
{
    // The same pressure under confirmation gating + conf-as-ack: the
    // eviction flows must interoperate with the optical-layer acks.
    std::map<int, std::vector<Instr>> scripts;
    for (int n = 0; n < 8; ++n)
        scripts[n] = walk((n + 3) % 16, 256, n % 2 == 0);
    auto sys = tinyL2System(sim::NetKind::Fsoi, scripts);
    ASSERT_TRUE(sys->run().completed);
}

TEST(DirEviction, NackRetryUnderTinyRequestQueue)
{
    // Shrink the directory request queue so bursts overflow and NACK;
    // forward progress must still hold (footnote 3's approach).
    auto cfg = sim::SystemConfig::paperConfig(16, sim::NetKind::Mesh);
    cfg.dir.request_queue = 2;
    cfg.dir.pending_per_line = 2;
    cfg.max_cycles = 10'000'000;
    sim::System sys(cfg);
    // Everyone hammers lines homed at node 0.
    for (int n = 0; n < 16; ++n) {
        sys.bindStream(n, std::make_unique<ScriptedStream>(
                              walk(0, 64, n % 2 == 0)));
    }
    const auto res = sys.run();
    ASSERT_TRUE(res.completed);
    std::uint64_t nacks = 0;
    for (int n = 0; n < 16; ++n)
        nacks += sys.l1(n).stats().nacks.value();
    EXPECT_GT(nacks, 0u);
}

TEST(DirEviction, EvictionStatsAreConsistent)
{
    auto sys = tinyL2System(sim::NetKind::Mesh,
                            {{3, walk(7, 512, true)},
                             {5, walk(7, 256, false, 600)}});
    ASSERT_TRUE(sys->run().completed);
    const auto &stats = sys->directory(7).stats();
    // Every eviction of a dirty line produced exactly one MemWrite;
    // clean evictions none -- so writes never exceed evictions plus
    // L1 writebacks absorbed.
    EXPECT_LE(stats.mem_writes.value(),
              stats.l2_evictions.value() + 1024);
    EXPECT_GT(stats.mem_reads.value(), 700u); // 512 + 256 cold fetches
}

} // namespace
} // namespace fsoi
