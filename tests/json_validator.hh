/**
 * @file
 * Tiny dependency-free JSON validity checker shared by the test suite:
 * the check_json CLI uses it to vet the files the simulator emits, and
 * unit tests use it to assert that generated documents (flight-recorder
 * dumps, link-state snapshots) actually parse.
 *
 * Validation only -- no DOM is built. For reading values back, see
 * tools/stats_report.cc's flattening parser.
 */

#ifndef FSOI_TESTS_JSON_VALIDATOR_HH
#define FSOI_TESTS_JSON_VALIDATOR_HH

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>

namespace fsoi::testsupport {

struct JsonParser
{
    const std::string &s;
    std::size_t pos = 0;
    /** When true, errors are reported on stderr (CLI use). */
    bool verbose = false;

    explicit JsonParser(const std::string &text, bool report = false)
        : s(text), verbose(report)
    {
    }

    [[nodiscard]] bool
    fail(const char *what)
    {
        if (verbose)
            std::fprintf(stderr, "JSON error at offset %zu: %s\n", pos,
                         what);
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size()
               && std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s.compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        return true;
    }

    bool
    string()
    {
        if (s[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("truncated escape");
                if (s[pos] == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= s.size()
                            || !std::isxdigit(
                                   static_cast<unsigned char>(s[pos])))
                            return fail("bad \\u escape");
                    }
                }
            }
            ++pos;
        }
        if (pos >= s.size())
            return fail("unterminated string");
        ++pos;
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size()
               && (std::isdigit(static_cast<unsigned char>(s[pos]))
                   || s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E'
                   || s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected number");
        return true;
    }

    bool
    value()
    {
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case '{': {
            ++pos;
            skipWs();
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (pos >= s.size() || s[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                if (!value())
                    return false;
                skipWs();
                if (pos < s.size() && s[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < s.size() && s[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos;
            skipWs();
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                if (!value())
                    return false;
                skipWs();
                if (pos < s.size() && s[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < s.size() && s[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    document()
    {
        if (!value())
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing content");
        return true;
    }
};

/** One complete JSON document and nothing else? */
inline bool
jsonValid(const std::string &text)
{
    JsonParser p(text);
    return p.document();
}

} // namespace fsoi::testsupport

#endif // FSOI_TESTS_JSON_VALIDATOR_HH
