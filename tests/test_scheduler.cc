/**
 * @file
 * Event-calendar scheduler guarantees (DESIGN.md §5e): the timing
 * wheel delivers exactly the entries a brute-force list would, in any
 * traffic pattern; waits longer than the wheel window spill to the
 * overflow list and come back on time; cross-shard wakes landing on an
 * epoch boundary reproduce the serial run bit-for-bit; and a snapshot
 * taken while the calendar holds pending wakes restores exactly, even
 * though the calendar itself is never serialized.
 */

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/calendar.hh"
#include "sim/sweep_runner.hh"
#include "workload/apps.hh"

namespace fsoi {
namespace {

using sim::EventCalendar;
using sim::WakeKind;

/** (kind, index) pair in a comparable form. */
using Wake = std::pair<int, std::uint32_t>;

struct RefEntry
{
    Cycle when;
    WakeKind kind;
    std::uint32_t index;
};

/** Brute-force reference: an unsorted list scanned on every pop. */
class ReferenceCalendar
{
  public:
    void
    schedule(Cycle when, WakeKind kind, std::uint32_t index)
    {
        entries_.push_back(RefEntry{when, kind, index});
    }

    std::vector<Wake>
    popDue(Cycle now)
    {
        std::vector<Wake> due;
        std::size_t keep = 0;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].when <= now)
                due.emplace_back(static_cast<int>(entries_[i].kind),
                                 entries_[i].index);
            else
                entries_[keep++] = entries_[i];
        }
        entries_.resize(keep);
        return due;
    }

    Cycle
    nextEventCycle() const
    {
        Cycle next = kNoCycle;
        for (const auto &e : entries_)
            next = std::min(next, e.when);
        return next;
    }

    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<RefEntry> entries_;
};

std::vector<Wake>
popWheel(EventCalendar &cal, Cycle now)
{
    std::vector<Wake> due;
    cal.popDue(now, [&](WakeKind kind, std::uint32_t index) {
        due.emplace_back(static_cast<int>(kind), index);
    });
    return due;
}

TEST(Calendar, MatchesBruteForceOnRandomTraffic)
{
    // Random schedule/advance interleaving: after every pop the wheel
    // must have delivered exactly the reference's due set (order
    // within a pop is not part of the contract — the run loop
    // re-checks component state on every wake) and must agree on the
    // next populated cycle.
    Rng rng(0x5eedULL);
    EventCalendar cal;
    ReferenceCalendar ref;
    Cycle now = 0;
    std::uint32_t next_index = 0;
    for (int step = 0; step < 4000; ++step) {
        const int burst = static_cast<int>(rng.nextBelow(4));
        for (int i = 0; i < burst; ++i) {
            // Mostly short waits, occasionally past the 512-cycle
            // wheel window so the overflow path sees steady traffic.
            const Cycle delay = rng.nextBool(0.1)
                ? rng.nextRange(EventCalendar::kSlots,
                                3 * EventCalendar::kSlots)
                : rng.nextRange(1, 40);
            const auto kind = static_cast<WakeKind>(rng.nextBelow(4));
            cal.schedule(now + delay, kind, next_index);
            ref.schedule(now + delay, kind, next_index);
            ++next_index;
        }
        now += rng.nextRange(1, rng.nextBool(0.05) ? 700 : 30);
        auto got = popWheel(cal, now);
        auto want = ref.popDue(now);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        ASSERT_EQ(got, want) << "pop at cycle " << now;
        ASSERT_EQ(cal.size(), ref.size());
        ASSERT_EQ(cal.nextEventCycle(), ref.nextEventCycle())
            << "next-event disagreement at cycle " << now;
    }
}

TEST(Calendar, WheelWraparoundAndOverflow)
{
    // A wait longer than the wheel window spills to the overflow
    // list, stays visible through nextEventCycle(), survives any
    // number of window advances, and is delivered exactly on time.
    EventCalendar cal;
    cal.schedule(600, WakeKind::Core, 7);   // past the 512-slot window
    cal.schedule(1500, WakeKind::Dir, 3);   // two windows out
    EXPECT_EQ(cal.nextEventCycle(), 600u);

    EXPECT_TRUE(popWheel(cal, 599).empty());
    EXPECT_EQ(cal.nextEventCycle(), 600u);
    EXPECT_EQ(popWheel(cal, 600),
              (std::vector<Wake>{{static_cast<int>(WakeKind::Core), 7}}));

    // The second entry is still beyond the (advanced) window; walk
    // the base across several wraparounds before it comes due.
    EXPECT_EQ(cal.nextEventCycle(), 1500u);
    for (Cycle c = 700; c < 1500; c += 100)
        EXPECT_TRUE(popWheel(cal, c).empty()) << "early pop at " << c;
    EXPECT_EQ(popWheel(cal, 1500),
              (std::vector<Wake>{{static_cast<int>(WakeKind::Dir), 3}}));
    EXPECT_TRUE(cal.empty());
    EXPECT_EQ(cal.nextEventCycle(), kNoCycle);

    // Entries on both sides of the window edge after the advance:
    // slot indices wrap modulo kSlots, delivery cycles must not.
    cal.schedule(1501 + EventCalendar::kSlots - 1, WakeKind::L1, 1);
    cal.schedule(1501 + EventCalendar::kSlots, WakeKind::Mem, 2);
    EXPECT_EQ(cal.nextEventCycle(), 1500u + EventCalendar::kSlots);
    EXPECT_EQ(popWheel(cal, 1500 + EventCalendar::kSlots),
              (std::vector<Wake>{{static_cast<int>(WakeKind::L1), 1}}));
    EXPECT_EQ(popWheel(cal, 1501 + EventCalendar::kSlots),
              (std::vector<Wake>{{static_cast<int>(WakeKind::Mem), 2}}));
}

sim::SweepJob
idlePoint(std::uint64_t seed)
{
    // The idle-heavy profile maximizes calendar skipping (mean
    // compute gap ~200 cycles), so epochs jump far and cross-shard
    // message deliveries land right on epoch boundaries.
    sim::SweepJob job;
    job.config = sim::SystemConfig::paperConfig(16, sim::NetKind::Fsoi);
    job.config.seed = seed;
    job.app = workload::idleHeavyProfile();
    job.scale = 0.01;
    return job;
}

void
expectSameRun(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.packets_delivered, b.packets_delivered);
    EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
    EXPECT_EQ(a.l1_miss_rate, b.l1_miss_rate);
    EXPECT_EQ(a.invalidations, b.invalidations);
    EXPECT_EQ(a.energy.total(), b.energy.total());
}

TEST(Scheduler, CrossShardWakeAtEpochBoundary)
{
    // Threaded shards advance in epochs of the global minimum wake;
    // a component on shard A waking a component on shard B exactly at
    // that minimum must behave as in the serial run. The idle-heavy
    // workload makes nearly every wake an epoch boundary.
    const auto job = idlePoint(11);
    const auto serial = sim::SweepRunner::runJob(job, false).result;
    ASSERT_TRUE(serial.completed);
    for (int threads : {2, 4}) {
        auto threaded_job = job;
        threaded_job.config.threads = threads;
        const auto threaded =
            sim::SweepRunner::runJob(threaded_job, false).result;
        expectSameRun(serial, threaded);
    }
}

TEST(Scheduler, SnapshotRoundTripWithPendingCalendar)
{
    // The calendar is rebuilt from component state on restore, never
    // serialized. Checkpoint mid-run — cores parked in long compute
    // bursts, so every shard's calendar holds pending wakes — and the
    // resumed run must still match the uninterrupted one at any
    // writer/reader thread-count combination.
    const auto job = idlePoint(11);
    const auto full = sim::SweepRunner::runJob(job, false).result;
    ASSERT_TRUE(full.completed);
    for (int save_threads : {1, 4}) {
        auto save_job = job;
        save_job.config.max_cycles = 1500;
        save_job.config.threads = save_threads;
        sim::System saver(save_job.config);
        saver.loadApp(save_job.app.scaled(save_job.scale));
        ASSERT_FALSE(saver.run().completed)
            << "checkpoint cycle must fall inside the run";
        const std::string path = testing::TempDir()
            + "fsoi_sched_t" + std::to_string(save_threads) + ".ckpt";
        saver.saveCheckpoint(path);
        for (int load_threads : {1, 4}) {
            auto load_job = job;
            load_job.config.threads = load_threads;
            sim::System sys(load_job.config);
            sys.loadApp(load_job.app.scaled(load_job.scale));
            sys.restoreCheckpoint(path);
            expectSameRun(full, sys.run());
        }
        std::filesystem::remove(path);
    }
}

} // namespace
} // namespace fsoi
