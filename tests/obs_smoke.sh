#!/bin/sh
# End-to-end smoke test for the observability layer: run the
# quickstart example with interval stats sampling and full tracing on,
# then validate that every emitted artifact is well-formed JSON.
#
#   obs_smoke.sh QUICKSTART_BIN CHECK_JSON_BIN WORK_DIR
set -eu

quickstart=$1
check_json=$2
workdir=$3

mkdir -p "$workdir"
stats="$workdir/obs_smoke_stats.jsonl"
trace="$workdir/obs_smoke_trace.json"
rm -f "$stats" "$trace"

FSOI_TRACE=all:1 FSOI_TRACE_FILE="$trace" \
    "$quickstart" fft 4 --stats-json="$stats" --stats-interval=10000 \
    > "$workdir/obs_smoke_stdout.txt"

test -s "$stats" || { echo "no stats emitted"; exit 1; }
test -s "$trace" || { echo "no trace emitted"; exit 1; }

"$check_json" --lines "$stats"
"$check_json" "$trace"

grep -q '"traceEvents"' "$trace" || {
    echo "trace missing traceEvents array"; exit 1;
}
echo "obs smoke OK"
