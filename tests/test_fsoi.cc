/**
 * @file
 * Tests for the free-space optical interconnect: slotting, the
 * OR-channel collision semantics, confirmations, backoff, the
 * Section 5 optimizations and the phase-array transmitter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "fsoi/fsoi_network.hh"

namespace fsoi::fsoi {
namespace {

using noc::MeshLayout;
using noc::makePacket;

struct Harness
{
    Harness(FsoiNetwork &net) : network(net)
    {
        for (NodeId n = 0; n < static_cast<NodeId>(net.numEndpoints());
             ++n) {
            net.setHandler(n, [this](noc::Packet &pkt) {
                delivered.push_back(pkt);
            });
            net.setConfirmHandler(n, [this](const noc::Packet &pkt) {
                confirmed.push_back(pkt);
            });
            net.setControlBitHandler(
                n, [this, n](NodeId src, std::uint64_t tag) {
                    control_bits.push_back({src, n, tag});
                });
        }
    }

    void
    runUntilIdle(Cycle max_cycles = 100000)
    {
        while (now < max_cycles) {
            network.tick(now++);
            if (network.idle() && now % 10 == 0)
                return;
        }
        FAIL() << "FSOI network did not drain";
    }

    struct Bit
    {
        NodeId src, dst;
        std::uint64_t tag;
    };

    FsoiNetwork &network;
    Cycle now = 0;
    std::vector<noc::Packet> delivered;
    std::vector<noc::Packet> confirmed;
    std::vector<Bit> control_bits;
};

FsoiConfig
baseConfig()
{
    return FsoiConfig{};
}

TEST(Fsoi, SlotLengthsMatchPaper)
{
    MeshLayout layout(16, 4);
    FsoiNetwork net(layout, baseConfig());
    // 72 bits over 3 VCSELs x 12 b/cycle = 2 cycles;
    // 360 bits over 6 VCSELs x 12 b/cycle = 5 cycles.
    EXPECT_EQ(net.slotCycles(noc::PacketClass::Meta), 2);
    EXPECT_EQ(net.slotCycles(noc::PacketClass::Data), 5);
}

TEST(Fsoi, BandwidthScalingStretchesSlots)
{
    MeshLayout layout(16, 4);
    FsoiConfig cfg;
    cfg.bandwidth_scale = 0.5;
    FsoiNetwork net(layout, cfg);
    EXPECT_EQ(net.slotCycles(noc::PacketClass::Meta), 4);
    EXPECT_EQ(net.slotCycles(noc::PacketClass::Data), 10);
}

TEST(Fsoi, SinglePacketLatency)
{
    MeshLayout layout(16, 4);
    FsoiNetwork net(layout, baseConfig());
    Harness harness(net);

    net.tick(0);
    ASSERT_TRUE(net.send(makePacket(3, 9, noc::PacketClass::Meta,
                                    noc::PacketKind::Request)));
    harness.now = 1;
    harness.runUntilIdle();
    ASSERT_EQ(harness.delivered.size(), 1u);
    // Sent at cycle 0, transmitted in the slot starting at 2,
    // delivered at slot end (4).
    EXPECT_EQ(harness.delivered[0].delivered, 4u);
    EXPECT_EQ(harness.delivered[0].retries, 0);
}

TEST(Fsoi, ConfirmationArrivesTwoCyclesAfterSlotEnd)
{
    MeshLayout layout(16, 4);
    FsoiNetwork net(layout, baseConfig());
    Harness harness(net);

    net.tick(0);
    ASSERT_TRUE(net.send(makePacket(3, 9, noc::PacketClass::Meta,
                                    noc::PacketKind::Request)));
    harness.now = 1;
    harness.runUntilIdle();
    ASSERT_EQ(harness.confirmed.size(), 1u);
    EXPECT_EQ(harness.confirmed[0].src, 3u);
}

TEST(Fsoi, CollisionDetectedAndResolved)
{
    MeshLayout layout(16, 4);
    FsoiConfig cfg;
    cfg.seed = 7;
    FsoiNetwork net(layout, cfg);
    Harness harness(net);

    net.tick(0);
    // Nodes 2 and 4 share destination 9's receiver 0 (even senders).
    ASSERT_TRUE(net.send(makePacket(2, 9, noc::PacketClass::Meta,
                                    noc::PacketKind::Request)));
    ASSERT_TRUE(net.send(makePacket(4, 9, noc::PacketClass::Meta,
                                    noc::PacketKind::Request)));
    harness.now = 1;
    harness.runUntilIdle();
    ASSERT_EQ(harness.delivered.size(), 2u);
    EXPECT_GE(net.stats().collisions(noc::PacketClass::Meta), 2u);
    int retried = 0;
    for (const auto &pkt : harness.delivered)
        retried += pkt.retries > 0;
    EXPECT_EQ(retried, 2);
    // Collision-resolution latency is visible in the breakdown.
    EXPECT_GT(net.stats().collisionResolution().max(), 0.0);
}

TEST(Fsoi, ReceiverPartitionAvoidsOddEvenCollision)
{
    MeshLayout layout(16, 4);
    FsoiNetwork net(layout, baseConfig());
    Harness harness(net);

    net.tick(0);
    // Nodes 2 (even) and 5 (odd) target different receivers at node 9.
    ASSERT_TRUE(net.send(makePacket(2, 9, noc::PacketClass::Meta,
                                    noc::PacketKind::Request)));
    ASSERT_TRUE(net.send(makePacket(5, 9, noc::PacketClass::Meta,
                                    noc::PacketKind::Request)));
    harness.now = 1;
    harness.runUntilIdle();
    EXPECT_EQ(net.stats().collisions(noc::PacketClass::Meta), 0u);
    for (const auto &pkt : harness.delivered)
        EXPECT_EQ(pkt.retries, 0);
}

TEST(Fsoi, MetaAndDataLanesIndependent)
{
    MeshLayout layout(16, 4);
    FsoiNetwork net(layout, baseConfig());
    Harness harness(net);

    net.tick(0);
    // Same (src, dst) pair on both lanes: no cross-lane collision.
    ASSERT_TRUE(net.send(makePacket(2, 9, noc::PacketClass::Meta,
                                    noc::PacketKind::Request)));
    ASSERT_TRUE(net.send(makePacket(4, 9, noc::PacketClass::Data,
                                    noc::PacketKind::Reply)));
    harness.now = 1;
    harness.runUntilIdle();
    EXPECT_EQ(net.stats().collisions(noc::PacketClass::Meta), 0u);
    EXPECT_EQ(net.stats().collisions(noc::PacketClass::Data), 0u);
}

TEST(Fsoi, ControlBitsDeliveredCollisionFree)
{
    MeshLayout layout(16, 4);
    FsoiNetwork net(layout, baseConfig());
    Harness harness(net);

    net.tick(0);
    for (NodeId n = 1; n < 8; ++n)
        net.sendControlBit(n, 0, 1000 + n);
    harness.now = 1;
    harness.runUntilIdle();
    ASSERT_EQ(harness.control_bits.size(), 7u);
    for (const auto &bit : harness.control_bits)
        EXPECT_EQ(bit.dst, 0u);
    EXPECT_EQ(net.activity().control_bits.value(), 7u);
}

TEST(Fsoi, HeavyContentionDrains)
{
    MeshLayout layout(16, 4);
    FsoiConfig cfg;
    cfg.seed = 11;
    FsoiNetwork net(layout, cfg);
    Harness harness(net);

    // Everyone hammers node 0 (the paper's pathological case).
    net.tick(0);
    int sent = 0;
    for (NodeId n = 1; n < 16; ++n) {
        if (net.canAccept(n, noc::PacketClass::Meta)) {
            ASSERT_TRUE(net.send(makePacket(n, 0, noc::PacketClass::Meta,
                                            noc::PacketKind::Request)));
            ++sent;
        }
    }
    harness.now = 1;
    harness.runUntilIdle();
    EXPECT_EQ(static_cast<int>(harness.delivered.size()), sent);
}

TEST(Fsoi, CollisionClassification)
{
    MeshLayout layout(16, 4);
    FsoiConfig cfg;
    cfg.seed = 3;
    FsoiNetwork net(layout, cfg);
    Harness harness(net);

    net.tick(0);
    // Two replies colliding at node 9 receiver 0.
    ASSERT_TRUE(net.send(makePacket(2, 9, noc::PacketClass::Data,
                                    noc::PacketKind::Reply)));
    ASSERT_TRUE(net.send(makePacket(4, 9, noc::PacketClass::Data,
                                    noc::PacketKind::Reply)));
    harness.now = 1;
    harness.runUntilIdle();
    EXPECT_GE(net.dataCollisionEvents(CollisionCategory::Reply), 1u);
    EXPECT_EQ(net.dataCollisionEvents(CollisionCategory::Memory), 0u);
}

TEST(Fsoi, MemoryPacketsClassified)
{
    MeshLayout layout(16, 4);
    FsoiConfig cfg;
    cfg.seed = 3;
    FsoiNetwork net(layout, cfg);
    Harness harness(net);

    net.tick(0);
    ASSERT_TRUE(net.send(makePacket(16, 9, noc::PacketClass::Data,
                                    noc::PacketKind::MemReply)));
    ASSERT_TRUE(net.send(makePacket(2, 9, noc::PacketClass::Data,
                                    noc::PacketKind::Reply)));
    harness.now = 1;
    harness.runUntilIdle();
    EXPECT_GE(net.dataCollisionEvents(CollisionCategory::Memory), 1u);
}

TEST(Fsoi, TransmissionProbabilityMeasured)
{
    MeshLayout layout(16, 4);
    FsoiNetwork net(layout, baseConfig());
    Harness harness(net);

    Cycle t = 0;
    for (; t < 2000; ++t) {
        net.tick(t);
        if (t % 10 == 0 && net.canAccept(t % 16, noc::PacketClass::Meta)) {
            NodeId src = t % 16;
            NodeId dst = (src + 5) % 16;
            ASSERT_TRUE(net.send(makePacket(src, dst,
                                            noc::PacketClass::Meta,
                                            noc::PacketKind::Request)));
        }
    }
    harness.now = t;
    harness.runUntilIdle();
    const double p = net.transmissionProbability(noc::PacketClass::Meta);
    // 200 packets over 1000 slots and 20 endpoints ~ 1%.
    EXPECT_NEAR(p, 0.01, 0.004);
}

TEST(Fsoi, PhaseArraySetupDelay)
{
    MeshLayout layout(64, 8);
    FsoiConfig steered;
    steered.phase_array = true;
    FsoiNetwork net(layout, steered);
    Harness harness(net);

    net.tick(0);
    // Alternating destinations force re-steering.
    ASSERT_TRUE(net.send(makePacket(0, 9, noc::PacketClass::Meta,
                                    noc::PacketKind::Request)));
    ASSERT_TRUE(net.send(makePacket(0, 22, noc::PacketClass::Meta,
                                    noc::PacketKind::Request)));
    ASSERT_TRUE(net.send(makePacket(0, 9, noc::PacketClass::Meta,
                                    noc::PacketKind::Request)));
    harness.now = 1;
    harness.runUntilIdle();
    EXPECT_EQ(harness.delivered.size(), 3u);
    EXPECT_GE(net.activity().phase_setups.value(), 3u);
}

TEST(Fsoi, RequestSpacingAddsSchedulingDelay)
{
    MeshLayout layout(16, 4);
    FsoiConfig cfg;
    cfg.request_spacing = true;
    FsoiNetwork net(layout, cfg);
    Harness harness(net);

    net.tick(0);
    // Several requests from the same node whose predicted replies
    // would land in the same data slot at the same receiver group.
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(net.send(makePacket(0, 2, noc::PacketClass::Meta,
                                        noc::PacketKind::Request)));
    harness.now = 1;
    harness.runUntilIdle();
    ASSERT_EQ(harness.delivered.size(), 4u);
    Cycle total_sched = 0;
    for (const auto &pkt : harness.delivered)
        total_sched += pkt.sched_delay;
    EXPECT_GT(total_sched, 0u);
}

TEST(Fsoi, CollisionHintsSpeedResolution)
{
    MeshLayout layout(16, 4);
    FsoiConfig plain, hinted;
    plain.seed = hinted.seed = 5;
    hinted.collision_hints = true;

    auto resolve_time = [&](const FsoiConfig &cfg) {
        FsoiNetwork net(layout, cfg);
        Harness harness(net);
        net.tick(0);
        // Three-way data collision at node 9 receiver 0.
        for (NodeId n : {2, 4, 6})
            EXPECT_TRUE(net.send(makePacket(n, 9, noc::PacketClass::Data,
                                            noc::PacketKind::Reply)));
        harness.now = 1;
        harness.runUntilIdle();
        return net.stats().collisionResolution().mean();
    };
    // Averaged over one episode the hint should not hurt; it usually
    // helps because the winner retransmits in the very next slot.
    EXPECT_LE(resolve_time(hinted), resolve_time(plain) + 1.0);
}

TEST(Fsoi, RetriesEventuallyExceedFirstWindow)
{
    // Sanity on the retry counter statistics under bursty load.
    MeshLayout layout(16, 4);
    FsoiConfig cfg;
    cfg.seed = 13;
    FsoiNetwork net(layout, cfg);
    Harness harness(net);

    net.tick(0);
    for (NodeId n : {2, 4, 6, 8, 10})
        ASSERT_TRUE(net.send(makePacket(n, 1, noc::PacketClass::Meta,
                                        noc::PacketKind::Request)));
    harness.now = 1;
    harness.runUntilIdle();
    int max_retries = 0;
    for (const auto &pkt : harness.delivered)
        max_retries = std::max(max_retries, pkt.retries);
    EXPECT_GE(max_retries, 1);
}

/** Property: no packets are ever lost, for a range of loads/seeds. */
class FsoiLoadSweep
    : public ::testing::TestWithParam<std::tuple<double, int>>
{};

TEST_P(FsoiLoadSweep, ConservationUnderLoad)
{
    const double load = std::get<0>(GetParam());
    const int seed = std::get<1>(GetParam());
    MeshLayout layout(16, 4);
    FsoiConfig cfg;
    cfg.seed = seed;
    FsoiNetwork net(layout, cfg);
    Harness harness(net);
    Rng rng(seed * 7 + 1);

    int sent = 0;
    Cycle t = 0;
    for (; t < 4000; ++t) {
        net.tick(t);
        for (NodeId n = 0; n < 20; ++n) {
            if (!rng.nextBool(load))
                continue;
            NodeId dst = rng.nextBelow(19);
            if (dst >= n)
                ++dst;
            const noc::PacketClass cls = rng.nextBool(0.3)
                ? noc::PacketClass::Data : noc::PacketClass::Meta;
            if (net.canAccept(n, cls)) {
                ASSERT_TRUE(net.send(makePacket(
                    n, dst, cls,
                    cls == noc::PacketClass::Data
                        ? noc::PacketKind::Reply
                        : noc::PacketKind::Request)));
                ++sent;
            }
        }
    }
    harness.now = t;
    harness.runUntilIdle(500000);
    EXPECT_EQ(static_cast<int>(harness.delivered.size()), sent);
}

INSTANTIATE_TEST_SUITE_P(
    Loads, FsoiLoadSweep,
    ::testing::Combine(::testing::Values(0.002, 0.01, 0.03, 0.08),
                       ::testing::Values(1, 2, 3)));

/**
 * Per-packet collision probability for N=16, R=2: the chance any of
 * the other senders wired to my receiver targets my destination in the
 * same slot. (Kept local so the fsoi tests only depend on noc+fsoi.)
 */
double
packetCollisionTheory(double p)
{
    const double q = p / 15.0;
    const double others = 15.0 / 2.0 - 1.0;
    return 1.0 - std::pow(1.0 - q, others);
}

/** Property: measured collision rate tracks the Figure 3 theory. */
class FsoiCollisionTheory : public ::testing::TestWithParam<double>
{};

TEST_P(FsoiCollisionTheory, MatchesAnalyticModel)
{
    const double p_target = GetParam();
    MeshLayout layout(16, 0 + 4);
    FsoiConfig cfg;
    cfg.seed = 17;
    FsoiNetwork net(layout, cfg);
    Harness harness(net);
    Rng rng(99);

    // Drive only the 16 cores at per-slot probability p_target on the
    // meta lane (slot = 2 cycles -> p/2 per cycle).
    Cycle t = 0;
    for (; t < 60000; ++t) {
        net.tick(t);
        if (t % 2 != 0)
            continue;
        for (NodeId n = 0; n < 16; ++n) {
            if (!rng.nextBool(p_target))
                continue;
            NodeId dst = rng.nextBelow(15);
            if (dst >= n)
                ++dst;
            if (net.canAccept(n, noc::PacketClass::Meta))
                net.send(makePacket(n, dst, noc::PacketClass::Meta,
                                    noc::PacketKind::Request));
        }
    }
    harness.now = t;
    harness.runUntilIdle(500000);

    const double measured_p =
        net.transmissionProbability(noc::PacketClass::Meta);
    const double rate = net.stats().collisionRate(noc::PacketClass::Meta);
    const double theory = packetCollisionTheory(measured_p);
    // Retransmission clustering inflates the measured rate a little.
    EXPECT_NEAR(rate, theory, 0.6 * theory + 0.01);
}

INSTANTIATE_TEST_SUITE_P(TxProbabilities, FsoiCollisionTheory,
                         ::testing::Values(0.02, 0.05, 0.10));

} // namespace
} // namespace fsoi::fsoi
