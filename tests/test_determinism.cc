/**
 * @file
 * Determinism guarantees of the sweep runner and the intra-run tick
 * engine: a (config, workload, seed) point produces field-identical
 * RunResults whether it is run inline, repeatedly, fanned across
 * worker threads at any --jobs level, or ticked by any number of
 * shard workers (SystemConfig::threads). Every System is constructed,
 * run, and read out entirely on one thread with its own RNGs, stat
 * registry, and allocation pools; inside a run, the staged-send merge
 * replays cross-shard traffic in program order, so nothing about
 * either level of threading may leak into the results.
 */

#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/sweep_runner.hh"
#include "workload/apps.hh"

namespace fsoi {
namespace {

sim::SweepJob
point(sim::NetKind kind, const char *app, std::uint64_t seed)
{
    sim::SweepJob job;
    job.config = sim::SystemConfig::paperConfig(16, kind);
    job.config.seed = seed;
    job.app = workload::appByName(app);
    job.scale = 0.03;
    return job;
}

/** Every scalar field of the result, including the energy report. */
void
expectIdentical(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
    EXPECT_EQ(a.queuing, b.queuing);
    EXPECT_EQ(a.scheduling, b.scheduling);
    EXPECT_EQ(a.network, b.network);
    EXPECT_EQ(a.collision_resolution, b.collision_resolution);
    EXPECT_EQ(a.packets_delivered, b.packets_delivered);
    EXPECT_EQ(a.meta_collision_rate, b.meta_collision_rate);
    EXPECT_EQ(a.data_collision_rate, b.data_collision_rate);
    EXPECT_EQ(a.meta_tx_probability, b.meta_tx_probability);
    for (int c = 0; c < 5; ++c)
        EXPECT_EQ(a.data_collisions_by_cat[c],
                  b.data_collisions_by_cat[c]);
    EXPECT_EQ(a.data_resolution_delay, b.data_resolution_delay);
    EXPECT_EQ(a.l1_miss_rate, b.l1_miss_rate);
    EXPECT_EQ(a.invalidations, b.invalidations);
    EXPECT_EQ(a.sync_packets, b.sync_packets);
    EXPECT_EQ(a.control_bits, b.control_bits);
    EXPECT_EQ(a.avg_power_w, b.avg_power_w);
    EXPECT_EQ(a.energy.total(), b.energy.total());
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.fault_bit_errors, b.fault_bit_errors);
    EXPECT_EQ(a.blacklisted_channels, b.blacklisted_channels);
    EXPECT_EQ(a.unroutable_drops, b.unroutable_drops);
    EXPECT_EQ(a.fault_diagnosis, b.fault_diagnosis);
}

std::vector<sim::SweepJob>
matrix()
{
    // Two faulted points ride along: the fault schedule, the transient
    // bit-error stream, and every recovery action must be exactly as
    // deterministic as the healthy simulation.
    auto fsoi_ber = point(sim::NetKind::Fsoi, "fft", 7);
    fsoi_ber.config.fault.ber = 1e-4;
    auto mesh_dead = point(sim::NetKind::Mesh, "fft", 7);
    mesh_dead.config.fault.dead_link_fraction = 1.0 / 24.0;
    return {
        point(sim::NetKind::Fsoi, "fft", 3),
        point(sim::NetKind::Mesh, "fft", 3),
        point(sim::NetKind::Fsoi, "barnes", 9),
        point(sim::NetKind::Mesh, "barnes", 9),
        point(sim::NetKind::Fsoi, "fft", 4),
        fsoi_ber,
        mesh_dead,
    };
}

std::vector<sim::RunResult>
runMatrix(int jobs, int threads = 1)
{
    sim::SweepRunner runner(jobs);
    std::vector<std::future<sim::RunResult>> futs;
    for (auto job : matrix()) {
        job.config.threads = threads;
        futs.push_back(runner.submit(job));
    }
    std::vector<sim::RunResult> out;
    for (auto &f : futs)
        out.push_back(f.get());
    return out;
}

/** Full stat-registry snapshot (flattened scalars), minus the host.*
 *  wall-clock stats that legitimately vary run to run. */
std::vector<std::pair<std::string, double>>
statSnapshot(sim::SweepJob job, int threads)
{
    job.config.threads = threads;
    const auto outcome = sim::SweepRunner::runJob(job, true);
    const obs::StatRegistry &reg = outcome.system->statRegistry();
    const auto names = reg.scalarNames();
    std::vector<double> values;
    reg.scalarValues(values);
    std::vector<std::pair<std::string, double>> out;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i].rfind("host.", 0) == 0)
            continue;
        out.emplace_back(names[i], values[i]);
    }
    return out;
}

TEST(Determinism, RepeatedSerialRunsIdentical)
{
    const auto a = runMatrix(1);
    const auto b = runMatrix(1);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);
}

TEST(Determinism, ParallelMatchesSerial)
{
    const auto serial = runMatrix(1);
    for (int jobs : {4, 8}) {
        const auto parallel = runMatrix(jobs);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectIdentical(serial[i], parallel[i]);
    }
}

TEST(Determinism, TickEngineThreadsMatchSerial)
{
    // The intra-run tick engine must be bit-identical at every shard
    // count, composed with every sweep --jobs level. The matrix
    // includes the faulted points, so fault schedules, retransmission
    // and recovery all run under the threaded engine too.
    const auto serial = runMatrix(1, 1);
    for (int threads : {2, 4}) {
        for (int jobs : {1, 4}) {
            const auto got = runMatrix(jobs, threads);
            ASSERT_EQ(serial.size(), got.size());
            for (std::size_t i = 0; i < serial.size(); ++i)
                expectIdentical(serial[i], got[i]);
        }
    }
}

TEST(Determinism, TickEngineThreadsIdenticalStats)
{
    // Stronger than RunResult equality: every registered stat (all
    // counters, accumulator and histogram moments) must match the
    // serial run exactly, on a healthy and on a faulted config.
    auto faulted = point(sim::NetKind::Fsoi, "fft", 7);
    faulted.config.fault.ber = 1e-4;
    for (const auto &job :
         {point(sim::NetKind::Fsoi, "fft", 3), faulted}) {
        const auto ref = statSnapshot(job, 1);
        ASSERT_FALSE(ref.empty());
        for (int threads : {2, 4}) {
            const auto got = statSnapshot(job, threads);
            ASSERT_EQ(ref.size(), got.size());
            for (std::size_t i = 0; i < ref.size(); ++i) {
                EXPECT_EQ(ref[i].first, got[i].first);
                const double a = ref[i].second, b = got[i].second;
                EXPECT_TRUE(a == b || (std::isnan(a) && std::isnan(b)))
                    << ref[i].first << ": " << a << " vs " << b
                    << " at threads=" << threads;
            }
        }
    }
}

TEST(Determinism, RestoredRunMatchesUninterrupted)
{
    // Checkpoint/restore composes with both levels of threading: a run
    // interrupted at an arbitrary cycle and resumed from its snapshot
    // (under any tick-engine thread count) reports exactly what the
    // uninterrupted run reports. The matrix includes the faulted
    // points, so fault schedules and recovery state round-trip too.
    const auto serial = runMatrix(1, 1);
    const auto jobs = matrix();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::string ckpt = testing::TempDir() + "fsoi_det_"
            + std::to_string(i) + ".ckpt";
        {
            auto cut = jobs[i];
            cut.config.max_cycles = 4000;
            sim::System sys(cut.config);
            sys.loadApp(cut.app.scaled(cut.scale));
            ASSERT_FALSE(sys.run().completed);
            sys.saveCheckpoint(ckpt);
        }
        for (int threads : {1, 4}) {
            auto job = jobs[i];
            job.config.threads = threads;
            sim::System sys(job.config);
            sys.loadApp(job.app.scaled(job.scale));
            sys.restoreCheckpoint(ckpt);
            expectIdentical(serial[i], sys.run());
        }
        std::filesystem::remove(ckpt);
    }
}

TEST(Determinism, KeepSystemMatchesPlainRun)
{
    sim::SweepRunner runner(2);
    auto plain = runner.submit(point(sim::NetKind::Fsoi, "fft", 3));
    auto kept = runner.submitKeep(point(sim::NetKind::Fsoi, "fft", 3));
    const auto a = plain.get();
    const auto outcome = kept.get();
    ASSERT_NE(outcome.system, nullptr);
    expectIdentical(a, outcome.result);
}

TEST(Determinism, ResolveJobsNeverZero)
{
    EXPECT_GE(common::resolveJobs(0), 1);
    EXPECT_EQ(common::resolveJobs(1), 1);
    EXPECT_EQ(common::resolveJobs(6), 6);
    EXPECT_GE(common::resolveJobs(-3), 1);
}

} // namespace
} // namespace fsoi
