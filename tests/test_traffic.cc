/**
 * @file
 * Tests for the synthetic traffic driver, and network saturation
 * behaviour probed through it.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "fsoi/fsoi_network.hh"
#include "noc/ideal_network.hh"
#include "noc/mesh_network.hh"
#include "workload/traffic.hh"

namespace fsoi::workload {
namespace {

using noc::MeshLayout;

void
sinkAll(noc::Network &net)
{
    for (NodeId n = 0; n < static_cast<NodeId>(net.numEndpoints()); ++n)
        net.setHandler(n, [](noc::Packet &) {});
}

TEST(Traffic, ConservationOnMesh)
{
    MeshLayout layout(16, 4);
    noc::MeshNetwork net(layout, noc::MeshConfig{});
    sinkAll(net);
    TrafficConfig cfg;
    cfg.injection_rate = 0.02;
    cfg.active_endpoints = 16;
    TrafficGenerator gen(net, cfg, 4);
    const auto res = gen.run(5000);
    EXPECT_EQ(res.delivered, res.offered - res.refused);
    EXPECT_GT(res.delivered, 500u);
}

TEST(Traffic, ConservationOnFsoi)
{
    MeshLayout layout(16, 4);
    ::fsoi::fsoi::FsoiNetwork net(layout, ::fsoi::fsoi::FsoiConfig{});
    sinkAll(net);
    TrafficConfig cfg;
    cfg.injection_rate = 0.02;
    cfg.active_endpoints = 16;
    TrafficGenerator gen(net, cfg, 4);
    const auto res = gen.run(5000);
    EXPECT_EQ(res.delivered, res.offered - res.refused);
    EXPECT_GT(res.meta_collision_rate, 0.0);
}

TEST(Traffic, HotspotConcentratesLoad)
{
    MeshLayout layout(16, 4);
    ::fsoi::fsoi::FsoiNetwork uni_net(layout, ::fsoi::fsoi::FsoiConfig{});
    ::fsoi::fsoi::FsoiNetwork hot_net(layout, ::fsoi::fsoi::FsoiConfig{});
    sinkAll(uni_net);
    sinkAll(hot_net);

    TrafficConfig uni;
    uni.injection_rate = 0.03;
    uni.active_endpoints = 16;
    TrafficConfig hot = uni;
    hot.pattern = TrafficPattern::Hotspot;
    hot.hotspot = 5;
    hot.hotspot_fraction = 0.7;

    TrafficGenerator ug(uni_net, uni, 4);
    TrafficGenerator hg(hot_net, hot, 4);
    const auto ur = ug.run(8000);
    const auto hr = hg.run(8000);
    // Converging on one node raises collisions sharply.
    EXPECT_GT(hr.meta_collision_rate, 2.0 * ur.meta_collision_rate);
}

TEST(Traffic, TransposeAndNeighborDeliver)
{
    MeshLayout layout(16, 4);
    for (auto pattern :
         {TrafficPattern::Transpose, TrafficPattern::Neighbor}) {
        noc::MeshNetwork net(layout, noc::MeshConfig{});
        sinkAll(net);
        TrafficConfig cfg;
        cfg.pattern = pattern;
        cfg.injection_rate = 0.02;
        cfg.active_endpoints = 16;
        TrafficGenerator gen(net, cfg, 4);
        const auto res = gen.run(3000);
        EXPECT_EQ(res.delivered, res.offered - res.refused)
            << trafficPatternName(pattern);
    }
}

TEST(Traffic, NeighborBeatsUniformOnMeshLatency)
{
    MeshLayout layout(16, 4);
    noc::MeshNetwork near_net(layout, noc::MeshConfig{});
    noc::MeshNetwork far_net(layout, noc::MeshConfig{});
    sinkAll(near_net);
    sinkAll(far_net);
    TrafficConfig near_cfg;
    near_cfg.pattern = TrafficPattern::Neighbor;
    near_cfg.injection_rate = 0.02;
    near_cfg.active_endpoints = 16;
    TrafficConfig far_cfg = near_cfg;
    far_cfg.pattern = TrafficPattern::UniformRandom;
    TrafficGenerator ng(near_net, near_cfg, 4);
    TrafficGenerator fg(far_net, far_cfg, 4);
    // Distance matters on the mesh...
    EXPECT_LT(ng.run(4000).avg_latency, fg.run(4000).avg_latency);

    // ...but not on the FSOI network (all-to-all direct beams).
    ::fsoi::fsoi::FsoiNetwork onear(layout, ::fsoi::fsoi::FsoiConfig{});
    ::fsoi::fsoi::FsoiNetwork ofar(layout, ::fsoi::fsoi::FsoiConfig{});
    sinkAll(onear);
    sinkAll(ofar);
    TrafficGenerator og(onear, near_cfg, 4);
    TrafficGenerator og2(ofar, far_cfg, 4);
    EXPECT_NEAR(og.run(4000).avg_latency, og2.run(4000).avg_latency, 1.0);
}

/** Property: rising load raises latency monotonically-ish on the mesh. */
class MeshLoadLatency : public ::testing::TestWithParam<double>
{};

TEST_P(MeshLoadLatency, LatencyGrowsWithLoad)
{
    MeshLayout layout(16, 4);
    noc::MeshNetwork light(layout, noc::MeshConfig{});
    noc::MeshNetwork heavy(layout, noc::MeshConfig{});
    sinkAll(light);
    sinkAll(heavy);
    TrafficConfig lo;
    lo.injection_rate = 0.005;
    lo.active_endpoints = 16;
    TrafficConfig hi = lo;
    hi.injection_rate = GetParam();
    TrafficGenerator lg(light, lo, 4);
    TrafficGenerator hg(heavy, hi, 4);
    EXPECT_LE(lg.run(6000).avg_latency, hg.run(6000).avg_latency + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Loads, MeshLoadLatency,
                         ::testing::Values(0.01, 0.03, 0.06));

} // namespace
} // namespace fsoi::workload
