/**
 * @file
 * End-to-end system tests: every interconnect completes real
 * workloads, the performance ordering of Section 7.1 holds, runs are
 * deterministic, and the energy model behaves sanely.
 */

#include <gtest/gtest.h>

#include "sim/energy_model.hh"
#include "sim/system.hh"

namespace fsoi {
namespace {

sim::RunResult
runApp(int cores, sim::NetKind kind, const char *app, double scale,
       std::uint64_t seed = 1)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperConfig(cores, kind);
    cfg.seed = seed;
    sim::System sys(cfg);
    sys.loadApp(workload::appByName(app).scaled(scale));
    return sys.run();
}

class AllNetworksComplete
    : public ::testing::TestWithParam<sim::NetKind>
{};

TEST_P(AllNetworksComplete, SmallRunFinishes)
{
    const auto res = runApp(16, GetParam(), "cholesky", 0.05);
    EXPECT_TRUE(res.completed);
    EXPECT_GT(res.instructions, 16u * 1000u);
    EXPECT_GT(res.packets_delivered, 100u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllNetworksComplete,
                         ::testing::Values(sim::NetKind::Mesh,
                                           sim::NetKind::L0,
                                           sim::NetKind::Lr1,
                                           sim::NetKind::Lr2,
                                           sim::NetKind::Fsoi));

TEST(System, Deterministic)
{
    const auto a = runApp(16, sim::NetKind::Fsoi, "barnes", 0.05, 3);
    const auto b = runApp(16, sim::NetKind::Fsoi, "barnes", 0.05, 3);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.packets_delivered, b.packets_delivered);
}

TEST(System, SeedChangesSchedule)
{
    const auto a = runApp(16, sim::NetKind::Fsoi, "barnes", 0.05, 3);
    const auto b = runApp(16, sim::NetKind::Fsoi, "barnes", 0.05, 4);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(System, PerformanceOrderingOfSection71)
{
    // L0 <= FSOI (close); FSOI < Lr2-and-mesh; Lr1 <= Lr2 <= mesh.
    const char *app = "fft";
    const double scale = 0.15;
    const auto l0 = runApp(16, sim::NetKind::L0, app, scale);
    const auto fso = runApp(16, sim::NetKind::Fsoi, app, scale);
    const auto lr1 = runApp(16, sim::NetKind::Lr1, app, scale);
    const auto lr2 = runApp(16, sim::NetKind::Lr2, app, scale);
    const auto mesh = runApp(16, sim::NetKind::Mesh, app, scale);

    EXPECT_LE(l0.cycles, fso.cycles * 1.05);  // FSOI tracks ideal
    EXPECT_LT(fso.cycles, lr2.cycles);
    EXPECT_LT(fso.cycles, mesh.cycles);
    EXPECT_LE(lr1.cycles, lr2.cycles * 1.02);
    EXPECT_LT(lr2.cycles, mesh.cycles);
}

TEST(System, FsoiLatencyNearPaper)
{
    const auto res = runApp(16, sim::NetKind::Fsoi, "ocean", 0.15);
    // Paper: overall average packet latency ~7.5 cycles at 16 nodes.
    EXPECT_GT(res.avg_packet_latency, 4.0);
    EXPECT_LT(res.avg_packet_latency, 11.0);
    // Breakdown components add up.
    EXPECT_NEAR(res.queuing + res.scheduling + res.network
                    + res.collision_resolution,
                res.avg_packet_latency, 1e-6);
}

TEST(System, MeshLatencyWellAboveFsoi)
{
    const auto mesh = runApp(16, sim::NetKind::Mesh, "ocean", 0.1);
    const auto fso = runApp(16, sim::NetKind::Fsoi, "ocean", 0.1);
    EXPECT_GT(mesh.avg_packet_latency, 2.0 * fso.avg_packet_latency);
}

TEST(System, CollisionRatesAreSmall)
{
    const auto res = runApp(16, sim::NetKind::Fsoi, "mp3d", 0.1);
    // Collisions are occasional (order 1e-2), not rampant.
    EXPECT_GT(res.meta_collision_rate, 0.0);
    EXPECT_LT(res.meta_collision_rate, 0.2);
    EXPECT_LT(res.data_collision_rate, 0.25);
}

TEST(System, SixtyFourNodePhaseArrayCompletes)
{
    const auto res = runApp(64, sim::NetKind::Fsoi, "jacobi", 0.05);
    EXPECT_TRUE(res.completed);
    EXPECT_GT(res.packets_delivered, 1000u);
}

TEST(System, MemoryBandwidthMatters)
{
    sim::SystemConfig slow = sim::SystemConfig::paperConfig(
        16, sim::NetKind::Fsoi);
    sim::SystemConfig fast = slow;
    slow.mem_gbytes_per_sec = 8.8;
    fast.mem_gbytes_per_sec = 52.8;
    sim::System s1(slow), s2(fast);
    s1.loadApp(workload::appByName("mp3d").scaled(0.1));
    s2.loadApp(workload::appByName("mp3d").scaled(0.1));
    const auto r1 = s1.run();
    const auto r2 = s2.run();
    EXPECT_LT(r2.cycles, r1.cycles); // more bandwidth, faster
}

TEST(System, OptimizationsReduceMetaCollisions)
{
    sim::SystemConfig base = sim::SystemConfig::paperConfig(
        16, sim::NetKind::Fsoi);
    base.opt_confirmation_ack = false;
    base.opt_sync_subscription = false;
    base.opt_data_collision = false;
    sim::SystemConfig opt = sim::SystemConfig::paperConfig(
        16, sim::NetKind::Fsoi);

    sim::System s1(base), s2(opt);
    s1.loadApp(workload::appByName("ws").scaled(0.15));
    s2.loadApp(workload::appByName("ws").scaled(0.15));
    const auto r1 = s1.run();
    const auto r2 = s2.run();
    ASSERT_TRUE(r1.completed && r2.completed);
    // Fewer packets and no slower with the Section 5 optimizations.
    EXPECT_LT(r2.packets_delivered, r1.packets_delivered);
    EXPECT_LE(r2.cycles, r1.cycles * 1.10);
    EXPECT_GT(r2.control_bits, 0u);
}

TEST(System, RejectsOptimizationsOffFsoi)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperConfig(
        16, sim::NetKind::Mesh);
    cfg.opt_confirmation_ack = true;
    EXPECT_DEATH({ sim::System sys(cfg); }, "");
}

TEST(EnergyModel, LeakageOnlyBaseline)
{
    sim::EnergyParams params;
    sim::ActivitySummary activity;
    activity.cycles = 3'300'000; // 1 ms
    activity.nodes = 16;
    const auto report = computeEnergy(params, activity);
    EXPECT_NEAR(report.leakage_j,
                16 * params.leakage_w_per_node * 1e-3, 1e-6);
    EXPECT_EQ(report.network_j, 0.0);
}

TEST(EnergyModel, FsoiNetworkEnergyFarBelowMesh)
{
    // Same run length, representative event counts: mesh spends far
    // more in the interconnect (paper: ~20x).
    sim::EnergyParams params;
    sim::ActivitySummary mesh_run, fsoi_run;
    mesh_run.cycles = fsoi_run.cycles = 1'000'000;
    mesh_run.nodes = fsoi_run.nodes = 16;
    mesh_run.routers = 16;

    noc::MeshActivity mesh_act;
    // ~1 flit/cycle entering, ~4.7 hops.
    mesh_act.buffer_writes += 4'700'000;
    mesh_act.buffer_reads += 4'700'000;
    mesh_act.crossbar_traversals += 4'700'000;
    mesh_act.arbitrations += 4'700'000;
    mesh_act.link_traversals += 3'700'000;
    mesh_run.mesh = &mesh_act;

    fsoi::FsoiActivity fsoi_act;
    fsoi_act.vcsel_slot_cycles += 6'000'000; // comparable bit volume
    fsoi_run.fsoi = &fsoi_act;

    const auto mesh_report = computeEnergy(params, mesh_run);
    const auto fsoi_report = computeEnergy(params, fsoi_run);
    EXPECT_GT(mesh_report.network_j, 5.0 * fsoi_report.network_j);
}

TEST(EnergyModel, AveragePower)
{
    sim::EnergyParams params;
    sim::ActivitySummary activity;
    activity.cycles = 3'300'000;
    activity.nodes = 16;
    const auto report = computeEnergy(params, activity);
    EXPECT_NEAR(report.averagePower(activity.cycles, params.freq_hz),
                16 * params.leakage_w_per_node, 0.5);
}

} // namespace
} // namespace fsoi
