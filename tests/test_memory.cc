/**
 * @file
 * Tests for the memory-controller channel model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "memory/memory_controller.hh"

namespace fsoi::memory {
namespace {

using coherence::Message;
using coherence::MsgType;

/** Transport that records sends and always accepts. */
class RecordingTransport : public coherence::Transport
{
  public:
    bool
    trySend(NodeId src, NodeId dst, const Message &msg) override
    {
        sends.push_back({src, dst, msg});
        return !block;
    }

    struct Send
    {
        NodeId src, dst;
        Message msg;
    };

    std::vector<Send> sends;
    bool block = false;
};

Message
memRead(Addr line, NodeId dir)
{
    Message msg{};
    msg.type = MsgType::MemRead;
    msg.line = line;
    msg.requester = dir;
    return msg;
}

TEST(MemoryController, ReadLatency)
{
    RecordingTransport transport;
    MemConfig cfg;
    cfg.latency = 200;
    cfg.bytes_per_cycle = 0.67;
    MemoryController mem(16, cfg, transport);

    mem.tick(0);
    mem.handleMessage(memRead(0x1000, 3));
    Cycle done = 0;
    for (Cycle t = 1; t < 1000 && transport.sends.empty(); ++t) {
        mem.tick(t);
        done = t;
    }
    ASSERT_EQ(transport.sends.size(), 1u);
    EXPECT_EQ(transport.sends[0].dst, 3u);
    EXPECT_EQ(transport.sends[0].msg.type, MsgType::MemReply);
    // ~latency + service (32 B / 0.67 B/cyc ~ 48).
    EXPECT_NEAR(static_cast<double>(done), 200.0 + 48.0, 4.0);
}

TEST(MemoryController, BandwidthSerializesRequests)
{
    RecordingTransport transport;
    MemConfig cfg;
    cfg.latency = 10; // isolate the bandwidth term
    cfg.bytes_per_cycle = 0.5; // 64 cycles per 32 B line
    MemoryController mem(16, cfg, transport);

    mem.tick(0);
    mem.handleMessage(memRead(0x1000, 3));
    mem.handleMessage(memRead(0x2000, 3));
    std::vector<Cycle> arrival;
    for (Cycle t = 1; t < 2000 && arrival.size() < 2; ++t) {
        const auto before = transport.sends.size();
        mem.tick(t);
        if (transport.sends.size() > before)
            arrival.push_back(t);
        if (transport.sends.size() > before + 1)
            arrival.push_back(t);
    }
    ASSERT_EQ(arrival.size(), 2u);
    // Second reply delayed by one full service time.
    EXPECT_NEAR(static_cast<double>(arrival[1] - arrival[0]), 64.0, 3.0);
}

TEST(MemoryController, WritesArePosted)
{
    RecordingTransport transport;
    MemoryController mem(16, MemConfig{}, transport);
    mem.tick(0);
    Message wb{};
    wb.type = MsgType::MemWrite;
    wb.line = 0x4000;
    wb.requester = 5;
    mem.handleMessage(wb);
    for (Cycle t = 1; t < 600; ++t)
        mem.tick(t);
    EXPECT_TRUE(transport.sends.empty());
    EXPECT_EQ(mem.stats().writes.value(), 1u);
    EXPECT_TRUE(mem.quiescent());
}

TEST(MemoryController, BackpressuredRepliesRetry)
{
    RecordingTransport transport;
    transport.block = true;
    MemConfig cfg;
    cfg.latency = 5;
    cfg.bytes_per_cycle = 32.0;
    MemoryController mem(16, cfg, transport);
    mem.tick(0);
    mem.handleMessage(memRead(0x1000, 2));
    for (Cycle t = 1; t < 50; ++t)
        mem.tick(t);
    EXPECT_FALSE(mem.quiescent()); // still holding the reply
    transport.block = false;
    mem.tick(50);
    EXPECT_TRUE(mem.quiescent());
    // The blocked attempts recorded sends that returned false; the
    // final accepted one completes the transaction.
    EXPECT_GE(transport.sends.size(), 2u);
}

TEST(MemoryController, QueueDelayAccounted)
{
    RecordingTransport transport;
    MemConfig cfg;
    cfg.bytes_per_cycle = 0.5;
    MemoryController mem(16, cfg, transport);
    mem.tick(0);
    for (int i = 0; i < 4; ++i)
        mem.handleMessage(memRead(0x1000 + i * 32, 1));
    EXPECT_GT(mem.stats().queue_delay.max(), 0.0);
    EXPECT_EQ(mem.stats().reads.value(), 4u);
}

} // namespace
} // namespace fsoi::memory
