/**
 * @file
 * Unit tests for the common infrastructure: RNG, statistics, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace fsoi {
namespace {

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (i == 0)
            EXPECT_NE(va, c.next());
        else
            c.next();
    }
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int bound : {1, 2, 3, 17, 1000}) {
        for (int i = 0; i < 500; ++i) {
            const auto v = rng.nextBelow(bound);
            EXPECT_LT(v, static_cast<std::uint64_t>(bound));
        }
    }
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextRange(3, 5));
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_TRUE(seen.count(3) && seen.count(4) && seen.count(5));
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Accumulator, Moments)
{
    Accumulator acc;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 4u);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 4.0);
    EXPECT_NEAR(acc.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Histogram, BinningAndOverflow)
{
    Histogram h(10.0, 5); // bins [0,10) .. [40,50), overflow
    h.add(0.0);
    h.add(9.99);
    h.add(10.0);
    h.add(49.0);
    h.add(1000.0);
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(1), 1u);
    EXPECT_EQ(h.bin(4), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
}

TEST(Histogram, Quantile)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, PercentileInterpolatesWithinBucket)
{
    // One sample per bin: percentile resolves to sub-bin positions
    // where quantile can only report bucket boundaries.
    Histogram h(10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(static_cast<double>(i) * 10.0 + 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.05), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 95.0);

    // All mass in one bucket: the answer moves with p inside it.
    Histogram one(10.0, 10);
    for (int i = 0; i < 100; ++i)
        one.add(5.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.25), 2.5);
    EXPECT_DOUBLE_EQ(one.percentile(0.5), 5.0);
}

TEST(Histogram, PercentileOverflowAndUnderflow)
{
    // Overflow mass interpolates toward the observed maximum rather
    // than reporting the (unbounded) bucket edge.
    Histogram h(10.0, 2); // [0,10) [10,20) + overflow
    h.add(5.0);
    h.add(15.0);
    h.add(100.0);
    h.add(200.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 200.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.75), 110.0); // 20 + 0.5 * (200-20)

    Histogram neg(1.0, 4);
    neg.add(-3.0);
    neg.add(-1.0);
    EXPECT_EQ(neg.percentile(0.5), 0.0); // underflow mass reports 0

    Histogram empty(1.0, 4);
    EXPECT_EQ(empty.percentile(0.5), 0.0);
}

TEST(Histogram, QuantileEdgeCases)
{
    Histogram empty(1.0, 10);
    EXPECT_EQ(empty.quantile(0.0), 0.0);
    EXPECT_EQ(empty.quantile(0.5), 0.0);
    EXPECT_EQ(empty.quantile(1.0), 0.0);

    Histogram h(1.0, 4);
    for (int i = 0; i < 4; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.quantile(0.0), 0.0);
    // q=1 lands in the last occupied bin's upper edge.
    EXPECT_NEAR(h.quantile(1.0), 4.0, 1e-12);

    // Overflow-heavy distribution: high quantiles land on the overflow
    // bin, reported as one bin width past the binned range.
    Histogram heavy(1.0, 4);
    heavy.add(0.5);
    for (int i = 0; i < 99; ++i)
        heavy.add(1000.0);
    EXPECT_NEAR(heavy.quantile(0.99), 5.0, 1e-12);
    EXPECT_NEAR(heavy.quantile(1.0), 5.0, 1e-12);
}

TEST(Histogram, UnderflowCountedSeparately)
{
    Histogram h(1.0, 4);
    h.add(-3.0);
    h.add(-0.001);
    h.add(0.5);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.count(), 3u); // total still includes underflows
    EXPECT_EQ(h.overflow(), 0u);
    // Underflows sit below every bin, so they pull low quantiles to 0.
    EXPECT_EQ(h.quantile(0.5), 0.0);
    h.reset();
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Stats, GeometricMean)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geometricMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_EQ(geometricMean({}), 0.0);
    // Non-positive entries are ignored.
    EXPECT_NEAR(geometricMean({2.0, 8.0, 0.0, -1.0}), 4.0, 1e-12);
}

TEST(Stats, GeometricMeanAllNonPositive)
{
    EXPECT_EQ(geometricMean({0.0, -2.0, -5.0}), 0.0);
}

TEST(Counter, Accumulates)
{
    Counter c;
    c++;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, PrefixIncrementAndMerge)
{
    Counter a;
    ++a;
    ++(++a);
    EXPECT_EQ(a.value(), 3u);

    Counter b;
    b += 7;
    a += b; // merge another counter
    EXPECT_EQ(a.value(), 10u);
    EXPECT_EQ(b.value(), 7u);
}

TEST(TextTable, RendersAligned)
{
    TextTable t({"a", "long_header"});
    t.addRow({"x", "1"});
    t.addRow({"yyyy", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("long_header"), std::string::npos);
    EXPECT_NE(out.find("yyyy"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.123, 1), "12.3%");
}

} // namespace
} // namespace fsoi
