/**
 * @file
 * Synchronization tests: ll/sc semantics, lock mutual exclusion and
 * barrier rendezvous in both sync implementations -- the conventional
 * cache-coherent spin path (mesh) and the FSOI subscription update
 * protocol over the confirmation lane (Section 5.1).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/system.hh"

namespace fsoi {
namespace {

using workload::Instr;
using workload::Op;

class ScriptedStream : public workload::InstrStream
{
  public:
    explicit ScriptedStream(std::vector<Instr> instrs)
        : instrs_(std::move(instrs))
    {}

    Instr
    next() override
    {
        if (pos_ >= instrs_.size())
            return Instr{};
        return instrs_[pos_++];
    }

  private:
    std::vector<Instr> instrs_;
    std::size_t pos_ = 0;
};

std::unique_ptr<sim::System>
makeSystem(sim::NetKind kind,
           const std::map<int, std::vector<Instr>> &scripts)
{
    auto cfg = sim::SystemConfig::paperConfig(16, kind);
    cfg.max_cycles = 5'000'000;
    auto sys = std::make_unique<sim::System>(cfg);
    for (int n = 0; n < 16; ++n) {
        auto it = scripts.find(n);
        sys->bindStream(
            n, std::make_unique<ScriptedStream>(
                   it == scripts.end()
                       ? std::vector<Instr>{Instr{Op::End, 0, 0, 0}}
                       : it->second));
    }
    return sys;
}

std::map<int, std::vector<Instr>>
lockStorm(int rounds)
{
    std::map<int, std::vector<Instr>> scripts;
    const Addr lock = workload::kLockBase + 64;
    for (int n = 0; n < 16; ++n) {
        std::vector<Instr> s;
        for (int i = 0; i < rounds; ++i) {
            s.push_back(Instr{Op::Lock, lock, 0, 0});
            s.push_back(Instr{Op::Compute, 0, 3, 0});
            s.push_back(Instr{Op::Unlock, lock, 0, 0});
        }
        s.push_back(Instr{Op::End, 0, 0, 0});
        scripts[n] = std::move(s);
    }
    return scripts;
}

std::map<int, std::vector<Instr>>
barrierChain(int rounds)
{
    std::map<int, std::vector<Instr>> scripts;
    for (int n = 0; n < 16; ++n) {
        std::vector<Instr> s;
        for (int i = 0; i < rounds; ++i) {
            s.push_back(Instr{Op::Compute, 0,
                              static_cast<std::uint32_t>(1 + (n * 13 + i)
                                                         % 40), 0});
            s.push_back(Instr{Op::Barrier,
                              workload::kBarrierBase
                                  + static_cast<Addr>(i % 2) * 128,
                              0, 16});
        }
        s.push_back(Instr{Op::End, 0, 0, 0});
        scripts[n] = std::move(s);
    }
    return scripts;
}

class SyncBothModes : public ::testing::TestWithParam<sim::NetKind>
{};

TEST_P(SyncBothModes, LockStormAllAcquired)
{
    auto sys = makeSystem(GetParam(), lockStorm(4));
    ASSERT_TRUE(sys->run().completed);
    std::uint64_t acquired = 0;
    for (int n = 0; n < 16; ++n)
        acquired += sys->core(n).stats().locks_acquired.value();
    EXPECT_EQ(acquired, 16u * 4u);
}

TEST_P(SyncBothModes, BarrierChainCompletes)
{
    auto sys = makeSystem(GetParam(), barrierChain(5));
    ASSERT_TRUE(sys->run().completed);
    for (int n = 0; n < 16; ++n)
        EXPECT_EQ(sys->core(n).stats().barriers_passed.value(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Modes, SyncBothModes,
                         ::testing::Values(sim::NetKind::Mesh,
                                           sim::NetKind::Fsoi,
                                           sim::NetKind::Lr1));

TEST(Subscription, SpinningGeneratesNoNetworkTraffic)
{
    // One core holds the lock for a long time; 15 others wait. In
    // subscription mode the waiters spin on a locally pushed value, so
    // meta traffic stays tiny while they wait.
    std::map<int, std::vector<Instr>> scripts;
    const Addr lock = workload::kLockBase;
    scripts[0] = {Instr{Op::Lock, lock, 0, 0},
                  Instr{Op::Compute, 0, 20000, 0},
                  Instr{Op::Unlock, lock, 0, 0},
                  Instr{Op::End, 0, 0, 0}};
    for (int n = 1; n < 16; ++n) {
        scripts[n] = {Instr{Op::Compute, 0, 200, 0},
                      Instr{Op::Lock, lock, 0, 0},
                      Instr{Op::Unlock, lock, 0, 0},
                      Instr{Op::End, 0, 0, 0}};
    }
    auto sys = makeSystem(sim::NetKind::Fsoi, scripts);
    const auto res = sys->run();
    ASSERT_TRUE(res.completed);
    // Each waiter needs only a handful of sync packets (ll + sc
    // retries at release), nowhere near one per spin iteration.
    EXPECT_LT(res.sync_packets, 16u * 40u);
    EXPECT_GT(res.control_bits, 0u);
}

TEST(Subscription, UpdatesReachAllSubscribers)
{
    // All 15 waiters must observe the release: everyone eventually
    // acquires exactly once.
    auto sys = makeSystem(sim::NetKind::Fsoi, lockStorm(1));
    ASSERT_TRUE(sys->run().completed);
    std::uint64_t acquired = 0;
    for (int n = 0; n < 16; ++n)
        acquired += sys->core(n).stats().locks_acquired.value();
    EXPECT_EQ(acquired, 16u);
    // The directory pushed boolean updates over the side channel.
    std::uint64_t updates = 0;
    for (int n = 0; n < 16; ++n)
        updates += sys->directory(n).stats().sync_updates.value();
    EXPECT_GT(updates, 0u);
}

TEST(LlSc, FailsAfterIntervingWrite)
{
    // Core 2 ll's a line; core 9 writes it; core 2's sc must fail the
    // first time (the interving invalidation cleared the link).
    const Addr word = 0x40000000 + 32 * 5; // home 5
    std::map<int, std::vector<Instr>> scripts;
    // Use the Lock macro-op indirectly? No: exercise sc failure stats
    // with a contended lock instead, which is ll/sc underneath.
    const Addr lock = workload::kLockBase;
    (void)word;
    for (int n : {2, 9}) {
        scripts[n] = {Instr{Op::Lock, lock, 0, 0},
                      Instr{Op::Compute, 0, 50, 0},
                      Instr{Op::Unlock, lock, 0, 0},
                      Instr{Op::End, 0, 0, 0}};
    }
    auto cfg = sim::SystemConfig::paperConfig(16, sim::NetKind::Mesh);
    cfg.max_cycles = 2'000'000;
    sim::System sys(cfg);
    for (int n = 0; n < 16; ++n) {
        auto it = scripts.find(n);
        sys.bindStream(
            n, std::make_unique<ScriptedStream>(
                   it == scripts.end()
                       ? std::vector<Instr>{Instr{Op::End, 0, 0, 0}}
                       : it->second));
    }
    ASSERT_TRUE(sys.run().completed);
    EXPECT_EQ(sys.core(2).stats().locks_acquired.value()
                  + sys.core(9).stats().locks_acquired.value(),
              2u);
}

} // namespace
} // namespace fsoi
