/**
 * @file
 * Unit tests for the observability layer: stat registry naming and
 * writers, interval sampler record layout, and the tracer ring buffer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/sampler.hh"
#include "obs/stat_registry.hh"
#include "obs/tracer.hh"

namespace fsoi::obs {
namespace {

TEST(StatRegistry, HierarchicalNamingThroughScopes)
{
    StatRegistry reg;
    Counter hits, misses;
    Scope root(reg);
    Scope sys = root.scope("system");
    Scope l1 = sys.scope("core3").scope("l1");
    l1.counter("hits", hits);
    l1.counter("misses", misses);

    ASSERT_EQ(reg.size(), 2u);
    EXPECT_NE(reg.find("system.core3.l1.hits"), nullptr);
    EXPECT_NE(reg.find("system.core3.l1.misses"), nullptr);
    EXPECT_EQ(reg.find("system.core3.l1.nope"), nullptr);
    EXPECT_EQ(reg.find("hits"), nullptr);
}

TEST(StatRegistry, VisitSeesLiveValues)
{
    StatRegistry reg;
    Counter c;
    Accumulator a;
    Scope(reg).counter("c", c);
    Scope(reg).accumulator("a", a);
    reg.addDerived("twice", [&c] {
        return 2.0 * static_cast<double>(c.value());
    });

    c += 21;
    a.add(3.0);

    struct Collect : StatVisitor
    {
        std::uint64_t counter = 0;
        std::uint64_t acc_count = 0;
        double derived = 0.0;
        void onCounter(const std::string &, const Counter &v) override
        { counter = v.value(); }
        void onAccumulator(const std::string &,
                           const Accumulator &v) override
        { acc_count = v.count(); }
        void onHistogram(const std::string &, const Histogram &) override
        {}
        void onDerived(const std::string &, double v) override
        { derived = v; }
    } visitor;
    reg.visit(visitor);
    EXPECT_EQ(visitor.counter, 21u);
    EXPECT_EQ(visitor.acc_count, 1u);
    EXPECT_DOUBLE_EQ(visitor.derived, 42.0);
}

/** Minimal JSON structure check: balanced braces/brackets outside
 *  strings, non-empty, and the expected keys present. */
void
expectBalancedJson(const std::string &json)
{
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char ch = json[i];
        if (in_string) {
            if (ch == '\\')
                ++i;
            else if (ch == '"')
                in_string = false;
            continue;
        }
        if (ch == '"')
            in_string = true;
        else if (ch == '{' || ch == '[')
            ++depth;
        else if (ch == '}' || ch == ']') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
}

TEST(StatRegistry, JsonTreeRoundTrip)
{
    StatRegistry reg;
    Counter b, c, deep;
    Histogram h(2.0, 4);
    Scope root(reg);
    root.counter("b", b);
    root.counter("c", c);
    root.scope("x").scope("y").counter("z", deep);
    root.histogram("h", h);

    b += 1;
    c += 2;
    deep += 3;
    h.add(1.0);
    h.add(-1.0);
    h.add(100.0);

    std::ostringstream os;
    writeJson(reg, os);
    const std::string json = os.str();
    expectBalancedJson(json);
    // Names become nested object paths with live values.
    EXPECT_NE(json.find("\"b\":1"), std::string::npos);
    EXPECT_NE(json.find("\"c\":2"), std::string::npos);
    EXPECT_NE(json.find("\"x\":{\"y\":{\"z\":3}}"), std::string::npos);
    EXPECT_NE(json.find("\"underflow\":1"), std::string::npos);
    EXPECT_NE(json.find("\"overflow\":1"), std::string::npos);
}

TEST(StatRegistry, TopLevelSiblingsCommaSeparated)
{
    // Regression guard for the tree writer's comma placement between
    // consecutive single-segment keys.
    StatRegistry reg;
    Counter a, b, c;
    Scope root(reg);
    root.counter("a", a);
    root.counter("b", b);
    root.counter("c", c);
    std::ostringstream os;
    writeJson(reg, os);
    EXPECT_NE(os.str().find("\"a\":0,\"b\":0,\"c\":0"),
              std::string::npos);
}

TEST(StatRegistry, ScalarFlattening)
{
    StatRegistry reg;
    Counter c;
    Accumulator a;
    Histogram h(1.0, 4);
    Scope root(reg);
    root.counter("c", c);
    root.accumulator("a", a);
    root.histogram("h", h);

    const auto names = reg.scalarNames();
    const std::vector<std::string> expect = {
        "c", "a.count", "a.mean", "h.count", "h.mean", "h.p50", "h.p99",
    };
    EXPECT_EQ(names, expect);
    std::vector<double> values;
    reg.scalarValues(values);
    EXPECT_EQ(values.size(), names.size());
}

TEST(IntervalSampler, EmitsOneRecordPerEpoch)
{
    StatRegistry reg;
    Counter c;
    Scope(reg).counter("c", c);

    std::ostringstream os;
    IntervalSampler sampler(reg, 100, os,
                            IntervalSampler::Format::Jsonl);
    EXPECT_EQ(sampler.nextDue(), 100u);
    c += 1;
    sampler.sample(100);
    c += 1;
    sampler.sample(200);
    sampler.finish(250);

    std::istringstream in(os.str());
    std::string line;
    int records = 0;
    while (std::getline(in, line)) {
        expectBalancedJson(line);
        EXPECT_EQ(line.find("{\"cycle\":"), 0u);
        ++records;
    }
    EXPECT_EQ(records, 3); // two epochs + final record
    EXPECT_NE(os.str().find("\"cycle\":250"), std::string::npos);
}

TEST(Tracer, RingBufferWraparoundKeepsMostRecent)
{
    Tracer &tr = Tracer::instance();
    tr.reset();
    tr.configure("sim:3");
    tr.setCapacity(8);

    for (std::uint64_t i = 0; i < 20; ++i)
        tr.instant(TraceCat::Sim, "tick", i, 0, {{"i", i}});

    EXPECT_EQ(tr.recorded(), 20u);
    EXPECT_EQ(tr.dropped(), 12u);
    const auto events = tr.snapshot();
    ASSERT_EQ(events.size(), 8u);
    // Oldest-first snapshot of the 8 most recent events: ts 12..19.
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].ts, 12 + i);
        ASSERT_EQ(events[i].num_args, 1);
        EXPECT_EQ(events[i].args[0].value, 12 + i);
    }
    tr.reset();
}

TEST(Tracer, LevelsGateRecording)
{
    Tracer &tr = Tracer::instance();
    tr.reset();
    EXPECT_FALSE(tr.enabled(TraceCat::Fsoi, 1));
    tr.configure("fsoi:2,coherence");
    EXPECT_TRUE(tr.enabled(TraceCat::Fsoi, 2));
    EXPECT_FALSE(tr.enabled(TraceCat::Fsoi, 3));
    EXPECT_TRUE(tr.enabled(TraceCat::Coherence, 1));
    EXPECT_FALSE(tr.enabled(TraceCat::Coherence, 2));
    EXPECT_FALSE(tr.enabled(TraceCat::Noc, 1));

    tr.instant(TraceCat::Noc, "ignored", 1, 0);
    EXPECT_EQ(tr.recorded(), 0u);
    tr.instant(TraceCat::Fsoi, "kept", 2, 0);
    EXPECT_EQ(tr.recorded(), 1u);
    tr.reset();
}

TEST(Tracer, ChromeTraceDocumentIsWellFormed)
{
    Tracer &tr = Tracer::instance();
    tr.reset();
    tr.configure("mem:1");
    tr.instant(TraceCat::Mem, "read", 10, 3, {{"line", 0x40u}});
    tr.complete(TraceCat::Mem, "burst", 20, 5, 4);

    std::ostringstream os;
    tr.writeChromeTrace(os);
    const std::string doc = os.str();
    expectBalancedJson(doc);
    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"read\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":5"), std::string::npos);
    EXPECT_NE(doc.find("\"cat\":\"mem\""), std::string::npos);
    tr.reset();
}

} // namespace
} // namespace fsoi::obs
