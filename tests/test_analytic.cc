/**
 * @file
 * Tests for the analytic models: collision probability (Figure 3),
 * exponential-backoff resolution delay (Figure 4), and the bandwidth
 * allocation optimum (Section 4.3.1).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "analytic/backoff_model.hh"
#include "analytic/bandwidth_alloc.hh"
#include "analytic/collision_model.hh"

namespace fsoi::analytic {
namespace {

TEST(CollisionModel, ZeroAtZeroLoad)
{
    EXPECT_DOUBLE_EQ(collisionProbability(16, 0.0, 2), 0.0);
}

TEST(CollisionModel, MonotonicInLoad)
{
    double prev = 0.0;
    for (double p : {0.01, 0.05, 0.10, 0.20, 0.33}) {
        const double c = collisionProbability(16, p, 2);
        EXPECT_GT(c, prev);
        prev = c;
    }
}

TEST(CollisionModel, MoreReceiversFewerCollisions)
{
    for (double p : {0.05, 0.1, 0.2}) {
        double prev = 1.0;
        for (int r : {1, 2, 3}) {
            // R=3 does not divide 15 evenly; the model still applies
            // with fractional n.
            const double c = collisionProbability(16, p, r);
            EXPECT_LT(c, prev);
            prev = c;
        }
    }
}

TEST(CollisionModel, FirstOrderInverseInReceivers)
{
    // Section 4.3.1: to first order, collision frequency is inversely
    // proportional to the number of receivers.
    const double c1 = collisionProbability(16, 0.05, 1);
    const double c2 = collisionProbability(16, 0.05, 2);
    EXPECT_NEAR(c1 / c2, 2.0, 0.25);
}

TEST(CollisionModel, WeakDependenceOnNodeCount)
{
    // The paper notes the result depends only weakly on N.
    const double c16 = normalizedCollisionProbability(16, 0.10, 2);
    const double c64 = normalizedCollisionProbability(64, 0.10, 2);
    EXPECT_NEAR(c16, c64, 0.015);
}

/** Property: Monte Carlo agrees with the closed form. */
class CollisionAgreement
    : public ::testing::TestWithParam<std::tuple<double, int>>
{};

TEST_P(CollisionAgreement, MonteCarloMatchesTheory)
{
    const double p = std::get<0>(GetParam());
    const int r = std::get<1>(GetParam());
    const double theory = collisionProbability(16, p, r);
    const auto mc = simulateCollisions(16, p, r, 40000, 1234);
    EXPECT_NEAR(mc.node_collision_prob, theory,
                0.15 * theory + 0.0015);
}

INSTANTIATE_TEST_SUITE_P(
    Fig3Grid, CollisionAgreement,
    ::testing::Combine(::testing::Values(0.02, 0.05, 0.10, 0.20, 0.33),
                       ::testing::Values(1, 2, 4)));

TEST(Backoff, PaperOperatingPoint)
{
    // W = 2.7, B = 1.1 resolves a two-party meta collision in ~7.3
    // cycles (paper: computed 7.26, simulated 6.8-9.6, mean 7.4).
    BackoffParams params;
    const auto res = simulateBackoff(params, 20000, 99);
    EXPECT_GT(res.mean_delay_cycles, 5.5);
    EXPECT_LT(res.mean_delay_cycles, 9.5);
}

TEST(Backoff, DoublingIsOverCorrection)
{
    // B = 2 produces a decidedly higher common-case delay than B = 1.1
    // (Figure 4's message).
    BackoffParams gentle, aggressive;
    aggressive.base = 2.0;
    const auto g = simulateBackoff(gentle, 20000, 5);
    const auto a = simulateBackoff(aggressive, 20000, 5);
    EXPECT_LT(g.mean_delay_cycles, a.mean_delay_cycles);
}

TEST(Backoff, BackgroundRateHasSmallImpact)
{
    BackoffParams quiet, busy;
    quiet.background_rate = 0.01;
    busy.background_rate = 0.10;
    const auto q = simulateBackoff(quiet, 20000, 7);
    const auto b = simulateBackoff(busy, 20000, 7);
    // G = 10% should cost only slightly more than G = 1% (Figure 4).
    EXPECT_LT(b.mean_delay_cycles - q.mean_delay_cycles, 4.0);
}

TEST(Backoff, PathologicalCaseConverges)
{
    // 63 simultaneous senders (the paper's 64-node worst case): the
    // exponential window must resolve it in bounded retries; B = 2
    // resolves in fewer retries than B = 1.1.
    BackoffParams slow, fast;
    slow.initial_contenders = 63;
    slow.background_rate = 0.0;
    fast = slow;
    fast.base = 2.0;
    const auto s = simulateBackoff(slow, 30, 3);
    const auto f = simulateBackoff(fast, 30, 3);
    EXPECT_LT(f.mean_retries, s.mean_retries);
    EXPECT_LT(s.mean_retries, 200.0); // converges, unlike fixed windows
}

TEST(Backoff, ApproximationTracksSimulation)
{
    BackoffParams params;
    const double approx = approxResolutionDelay(params);
    const auto sim = simulateBackoff(params, 20000, 21);
    EXPECT_NEAR(approx, sim.mean_delay_cycles,
                0.45 * sim.mean_delay_cycles);
}

/** Property: the Figure 4 surface has its valley near W=2.7, B=1.1. */
class BackoffSurface
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(BackoffSurface, PaperPointNearOptimal)
{
    BackoffParams best;
    BackoffParams other;
    other.window = std::get<0>(GetParam());
    other.base = std::get<1>(GetParam());
    const auto b = simulateBackoff(best, 8000, 31);
    const auto o = simulateBackoff(other, 8000, 31);
    // No grid point should beat the paper's chosen point by much.
    EXPECT_GT(o.mean_delay_cycles, b.mean_delay_cycles - 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    Fig4Grid, BackoffSurface,
    ::testing::Combine(::testing::Values(1.0, 2.0, 3.0, 4.0, 5.0),
                       ::testing::Values(1.0, 1.25, 1.5, 2.0)));

TEST(BandwidthAlloc, PaperOptimumNearQuarter)
{
    // Section 4.3.1: optimal meta share B_M ~= 0.285.
    const double opt = optimalMetaShare(paperConstants());
    EXPECT_NEAR(opt, 0.285, 0.01);
}

TEST(BandwidthAlloc, LatencyConvex)
{
    const auto c = paperConstants();
    const double opt = optimalMetaShare(c);
    const double at_opt = expectedLatency(c, opt);
    for (double m : {0.05, 0.15, 0.5, 0.7, 0.9})
        EXPECT_GE(expectedLatency(c, m), at_opt);
}

TEST(BandwidthAlloc, ExpectedPacketLatencyComposition)
{
    EXPECT_DOUBLE_EQ(expectedPacketLatency(5.0, 0.1, 20.0), 7.0);
    EXPECT_DOUBLE_EQ(expectedPacketLatency(5.0, 0.0, 20.0), 5.0);
}

} // namespace
} // namespace fsoi::analytic
