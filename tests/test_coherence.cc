/**
 * @file
 * Protocol tests: MESI state transitions of Table 2 observed through a
 * full System with scripted instruction streams, plus global coherence
 * invariants checked at quiescence.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/system.hh"

namespace fsoi {
namespace {

using coherence::DirState;
using coherence::L1State;
using workload::Instr;
using workload::Op;

/** Replays a fixed instruction vector. */
class ScriptedStream : public workload::InstrStream
{
  public:
    explicit ScriptedStream(std::vector<Instr> instrs)
        : instrs_(std::move(instrs))
    {}

    Instr
    next() override
    {
        if (pos_ >= instrs_.size())
            return Instr{}; // End
        return instrs_[pos_++];
    }

  private:
    std::vector<Instr> instrs_;
    std::size_t pos_ = 0;
};

Instr
load(Addr a)
{
    return Instr{Op::Load, a, 0, 0};
}

Instr
store(Addr a, std::uint64_t v = 1)
{
    return Instr{Op::Store, a, 0, v};
}

Instr
end()
{
    return Instr{Op::End, 0, 0, 0};
}

sim::SystemConfig
smallConfig(sim::NetKind kind)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperConfig(16, kind);
    if (kind != sim::NetKind::Fsoi) {
        cfg.opt_confirmation_ack = false;
        cfg.opt_sync_subscription = false;
        cfg.opt_data_collision = false;
    }
    cfg.max_cycles = 5'000'000;
    return cfg;
}

/** Build a system where every core runs the given script (or idles). */
std::unique_ptr<sim::System>
makeSystem(sim::NetKind kind,
           const std::map<int, std::vector<Instr>> &scripts)
{
    auto sys = std::make_unique<sim::System>(smallConfig(kind));
    for (int n = 0; n < 16; ++n) {
        auto it = scripts.find(n);
        sys->bindStream(n, std::make_unique<ScriptedStream>(
            it == scripts.end() ? std::vector<Instr>{end()}
                                : it->second));
    }
    return sys;
}

// Address whose home directory is node H (line interleaving % 16).
Addr
addrWithHome(int home, int index = 0)
{
    return (static_cast<Addr>(index) * 16 + home) * 32 + 0x100000ULL * 0
        + 0x40000000ULL; // keep clear of workload spaces
}

TEST(Coherence, ReadMissGrantsExclusiveClean)
{
    const Addr a = addrWithHome(7);
    auto sys = makeSystem(sim::NetKind::Mesh, {{3, {load(a), end()}}});
    const auto res = sys->run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys->l1(3).lineState(a), L1State::E);
    EXPECT_EQ(sys->directory(7).lineState(a), DirState::DM);
}

TEST(Coherence, WriteMissGrantsModified)
{
    const Addr a = addrWithHome(7);
    auto sys = makeSystem(sim::NetKind::Mesh, {{3, {store(a), end()}}});
    ASSERT_TRUE(sys->run().completed);
    EXPECT_EQ(sys->l1(3).lineState(a), L1State::M);
    EXPECT_EQ(sys->directory(7).lineState(a), DirState::DM);
}

TEST(Coherence, TwoReadersShare)
{
    const Addr a = addrWithHome(5);
    auto sys = makeSystem(sim::NetKind::Mesh,
                          {{2, {load(a), end()}}, {9, {load(a), end()}}});
    ASSERT_TRUE(sys->run().completed);
    // One reader was downgraded from E to S when the second arrived.
    EXPECT_EQ(sys->l1(2).lineState(a), L1State::S);
    EXPECT_EQ(sys->l1(9).lineState(a), L1State::S);
    EXPECT_EQ(sys->directory(5).lineState(a), DirState::DS);
    const auto sharers = sys->directory(5).sharersOf(a);
    EXPECT_TRUE(sharers & (1ULL << 2));
    EXPECT_TRUE(sharers & (1ULL << 9));
}

TEST(Coherence, WriterInvalidatesReaders)
{
    const Addr a = addrWithHome(5);
    // Readers first (compute delays stagger them), then a writer.
    auto sys = makeSystem(
        sim::NetKind::Mesh,
        {{2, {load(a), end()}},
         {9, {load(a), end()}},
         {12, {Instr{Op::Compute, 0, 400, 0}, store(a, 7), end()}}});
    ASSERT_TRUE(sys->run().completed);
    EXPECT_EQ(sys->l1(2).lineState(a), L1State::I);
    EXPECT_EQ(sys->l1(9).lineState(a), L1State::I);
    EXPECT_EQ(sys->l1(12).lineState(a), L1State::M);
    EXPECT_EQ(sys->directory(5).lineState(a), DirState::DM);
    EXPECT_GT(sys->l1(2).stats().invalidations_received.value()
                  + sys->l1(9).stats().invalidations_received.value(),
              0u);
}

TEST(Coherence, UpgradeFromShared)
{
    const Addr a = addrWithHome(4);
    auto sys = makeSystem(
        sim::NetKind::Mesh,
        {{2, {load(a), Instr{Op::Compute, 0, 300, 0}, store(a, 3),
              end()}},
         {9, {load(a), end()}}});
    ASSERT_TRUE(sys->run().completed);
    EXPECT_EQ(sys->l1(2).lineState(a), L1State::M);
    EXPECT_EQ(sys->l1(9).lineState(a), L1State::I);
    EXPECT_GT(sys->l1(2).stats().upgrades.value()
                  + sys->l1(2).stats().misses.value(),
              0u);
}

TEST(Coherence, DirtyEvictionWritesBack)
{
    // Write a line, then walk enough conflicting lines to evict it.
    const Addr a = addrWithHome(4, 0);
    std::vector<Instr> script{store(a, 42)};
    // 8 KB 2-way L1 with 128 sets: lines 128 and 256 indexes conflict.
    for (int i = 1; i <= 3; ++i)
        script.push_back(load(a + static_cast<Addr>(i) * 128 * 16 * 32));
    script.push_back(end());
    auto sys = makeSystem(sim::NetKind::Mesh, {{2, std::move(script)}});
    ASSERT_TRUE(sys->run().completed);
    EXPECT_EQ(sys->l1(2).lineState(a), L1State::I);
    EXPECT_GE(sys->l1(2).stats().writebacks.value(), 1u);
    // The directory reabsorbed the dirty line.
    EXPECT_EQ(sys->directory(4).lineState(a), DirState::DV);
}

TEST(Coherence, ReaderAfterWriterSeesValue)
{
    const Addr a = addrWithHome(6);
    auto sys = makeSystem(
        sim::NetKind::Mesh,
        {{1, {store(a, 99), end()}},
         {8, {Instr{Op::Compute, 0, 2000, 0}, load(a), end()}}});
    ASSERT_TRUE(sys->run().completed);
    // Writer downgraded to S by the reader's request.
    EXPECT_EQ(sys->l1(1).lineState(a), L1State::S);
    EXPECT_EQ(sys->l1(8).lineState(a), L1State::S);
    EXPECT_EQ(sys->directory(6).lineState(a), DirState::DS);
    EXPECT_GE(sys->l1(1).stats().downgrades_received.value(), 1u);
}

TEST(Coherence, LocalHomeShortCircuit)
{
    // Node 3 accessing a line whose home is node 3: no network needed.
    const Addr a = addrWithHome(3);
    auto sys = makeSystem(sim::NetKind::Mesh, {{3, {load(a), end()}}});
    ASSERT_TRUE(sys->run().completed);
    EXPECT_EQ(sys->l1(3).lineState(a), L1State::E);
}

TEST(Coherence, LockMutualExclusionCounts)
{
    // All cores acquire the same lock a few times; total acquisitions
    // must equal total requests (no lost or duplicated acquisitions).
    std::map<int, std::vector<Instr>> scripts;
    const Addr lock = workload::kLockBase;
    for (int n = 0; n < 16; ++n) {
        std::vector<Instr> s;
        for (int i = 0; i < 3; ++i) {
            s.push_back(Instr{Op::Lock, lock, 0, 0});
            s.push_back(Instr{Op::Compute, 0, 5, 0});
            s.push_back(Instr{Op::Unlock, lock, 0, 0});
        }
        s.push_back(end());
        scripts[n] = std::move(s);
    }
    auto sys = makeSystem(sim::NetKind::Mesh, scripts);
    ASSERT_TRUE(sys->run().completed);
    std::uint64_t acquired = 0;
    for (int n = 0; n < 16; ++n)
        acquired += sys->core(n).stats().locks_acquired.value();
    EXPECT_EQ(acquired, 16u * 3u);
}

TEST(Coherence, BarrierAllThreadsPass)
{
    std::map<int, std::vector<Instr>> scripts;
    for (int n = 0; n < 16; ++n) {
        scripts[n] = {Instr{Op::Compute, 0,
                            static_cast<std::uint32_t>(10 + n * 7), 0},
                      Instr{Op::Barrier, workload::kBarrierBase, 0, 16},
                      Instr{Op::Barrier, workload::kBarrierBase, 0, 16},
                      end()};
    }
    auto sys = makeSystem(sim::NetKind::Mesh, scripts);
    ASSERT_TRUE(sys->run().completed);
    for (int n = 0; n < 16; ++n)
        EXPECT_EQ(sys->core(n).stats().barriers_passed.value(), 2u);
}

/**
 * Global invariant, checked at quiescence after a real app run:
 *  - an L1 line in M or E implies the home directory is DM with that
 *    node as owner;
 *  - no two L1s hold the same line writable;
 *  - an L1 line in S implies it is in the home's sharer set.
 */
void
checkInvariants(sim::System &sys, sim::NetKind kind)
{
    (void)kind;
    // Probe the shared footprint: pairwise writable exclusivity plus
    // L1/directory agreement through the public interfaces.
    for (Addr line = workload::kSharedBase;
         line < workload::kSharedBase + 2048 * 32; line += 32) {
        int writable = 0;
        for (int n = 0; n < 16; ++n) {
            const auto state = sys.l1(n).lineState(line);
            if (state == L1State::M || state == L1State::E) {
                ++writable;
                const NodeId home = sys.homeOf(line);
                EXPECT_EQ(sys.directory(home).lineState(line),
                          DirState::DM)
                    << "line " << std::hex << line;
            }
            if (state == L1State::S) {
                const NodeId home = sys.homeOf(line);
                EXPECT_TRUE(sys.directory(home).sharersOf(line)
                            & (1ULL << n))
                    << "line " << std::hex << line;
            }
        }
        EXPECT_LE(writable, 1) << "line " << std::hex << line;
    }
}

class CoherenceInvariants
    : public ::testing::TestWithParam<std::tuple<sim::NetKind,
                                                 const char *>>
{};

TEST_P(CoherenceInvariants, HoldAtQuiescence)
{
    const auto kind = std::get<0>(GetParam());
    const std::string app = std::get<1>(GetParam());
    auto cfg = smallConfig(kind);
    sim::System sys(cfg);
    sys.loadApp(workload::appByName(app).scaled(0.05));
    const auto res = sys.run();
    ASSERT_TRUE(res.completed);
    checkInvariants(sys, kind);
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndNets, CoherenceInvariants,
    ::testing::Combine(::testing::Values(sim::NetKind::Mesh,
                                         sim::NetKind::Fsoi,
                                         sim::NetKind::L0),
                       ::testing::Values("barnes", "mp3d", "fft")));

} // namespace
} // namespace fsoi
