/**
 * @file
 * Run-health watchdog and flight-recorder post-mortems.
 *
 * The watchdog classification is pure cycle arithmetic, so it is
 * tested synthetically: a flat instruction feed with a quiet network
 * is a deadlock, a flat instruction feed with a busy network is a
 * livelock, and any retirement progress resets the verdict.
 *
 * The flight-recorder tests build a deliberately wedged protocol
 * fixture -- an L1 whose transport silently drops every message, so
 * its miss can never complete -- and assert the post-mortem dump is
 * valid JSON naming the stuck transaction's owner and line. A full
 * 16-core run then validates the composed dump (events + in-flight
 * table + system context including per-link network state).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "coherence/l1_cache.hh"
#include "common/logging.hh"
#include "noc/mesh_network.hh"
#include "obs/crash.hh"
#include "obs/flight_recorder.hh"
#include "obs/watchdog.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "workload/apps.hh"

#include "json_validator.hh"

namespace fsoi {
namespace {

using obs::Watchdog;
using obs::WatchdogVerdict;

TEST(Watchdog, OkWhileInstructionsRetire)
{
    Watchdog w({1000});
    EXPECT_EQ(w.check(0, 0, 0).verdict, WatchdogVerdict::Ok);
    // Progress every check: never trips, however far apart the checks.
    for (Cycle now = 500; now <= 10'000; now += 500)
        EXPECT_EQ(w.check(now, now, 0).verdict, WatchdogVerdict::Ok);
}

TEST(Watchdog, QuietNetworkClassifiesAsDeadlock)
{
    Watchdog w({1000});
    EXPECT_EQ(w.check(100, 5, 7).verdict, WatchdogVerdict::Ok);
    // Both feeds flat past the window: nothing is moving anywhere.
    EXPECT_EQ(w.check(900, 5, 7).verdict, WatchdogVerdict::Ok);
    const auto report = w.check(2000, 5, 7);
    EXPECT_EQ(report.verdict, WatchdogVerdict::Deadlock);
    EXPECT_EQ(report.stalled_for, 1900u);
    EXPECT_EQ(report.net_quiet_for, 1900u);
}

TEST(Watchdog, BusyNetworkClassifiesAsLivelock)
{
    Watchdog w({1000});
    EXPECT_EQ(w.check(100, 5, 7).verdict, WatchdogVerdict::Ok);
    // Packets keep moving (retry storm) while no instruction retires.
    const auto report = w.check(2000, 5, 900);
    EXPECT_EQ(report.verdict, WatchdogVerdict::Livelock);
    EXPECT_EQ(report.stalled_for, 1900u);
    EXPECT_EQ(report.net_quiet_for, 0u);
}

TEST(Watchdog, RetryGraceExtendsTripWindow)
{
    // quiet_window 1000 + retry_grace 600: a healthy fault-driven
    // retransmission burst may keep the instruction feed flat past the
    // base window without being misclassified as a livelock.
    Watchdog w({1000, 600});
    EXPECT_EQ(w.check(0, 5, 7).verdict, WatchdogVerdict::Ok);
    // Flat for 1500 cycles: past quiet_window, inside the grace.
    EXPECT_EQ(w.check(1500, 5, 900).verdict, WatchdogVerdict::Ok);
    // Flat past quiet_window + retry_grace: now it trips, and the
    // still-churning network classifies it as a livelock.
    const auto report = w.check(2200, 5, 1800);
    EXPECT_EQ(report.verdict, WatchdogVerdict::Livelock);
    EXPECT_EQ(report.stalled_for, 2200u);
}

TEST(Watchdog, RetryGraceAlsoStretchesDeadlockBoundary)
{
    // Both feeds flat past the stretched window: a genuine deadlock,
    // not a retry burst -- the classification boundary moves with the
    // trip threshold so the two verdicts stay consistent.
    Watchdog w({1000, 600});
    EXPECT_EQ(w.check(0, 5, 7).verdict, WatchdogVerdict::Ok);
    const auto report = w.check(2200, 5, 7);
    EXPECT_EQ(report.verdict, WatchdogVerdict::Deadlock);
    EXPECT_EQ(report.net_quiet_for, 2200u);
}

TEST(Watchdog, VerdictNames)
{
    EXPECT_STREQ(obs::watchdogVerdictName(WatchdogVerdict::Ok), "ok");
    EXPECT_STREQ(obs::watchdogVerdictName(WatchdogVerdict::Deadlock),
                 "deadlock");
    EXPECT_STREQ(obs::watchdogVerdictName(WatchdogVerdict::Livelock),
                 "livelock");
}

/** A transport that claims success and drops everything: any miss
 *  issued through it hangs forever, which is exactly the stuck state
 *  the flight recorder must describe. */
class DropTransport : public coherence::Transport
{
  public:
    bool
    trySend(NodeId, NodeId, const coherence::Message &) override
    {
        ++dropped_;
        return true;
    }

    int dropped() const { return dropped_; }

  private:
    int dropped_ = 0;
};

TEST(FlightRecorder, NamesStuckMshrInDump)
{
    obs::FlightRecorder rec(64);
    DropTransport transport;
    coherence::FunctionalMemory memory;
    coherence::L1Cache l1(/*node=*/3, coherence::L1Config{}, transport,
                          memory, [](Addr) { return NodeId{7}; });
    l1.setFlightRecorder(&rec);

    const Addr addr = 0x12340;
    bool completed = false;
    ASSERT_TRUE(l1.load(addr, [&](std::uint64_t, bool) {
        completed = true;
    }));
    for (Cycle now = 0; now < 100; ++now)
        l1.tick(now);

    // The request went into the void: the miss is still outstanding.
    EXPECT_FALSE(completed);
    EXPECT_EQ(l1.outstandingMisses(), 1u);
    EXPECT_GE(transport.dropped(), 1);

    std::ostringstream os;
    rec.dumpJson(os, "test:deadlock", 100);
    const std::string dump = os.str();

    EXPECT_TRUE(testsupport::jsonValid(dump)) << dump;
    EXPECT_NE(dump.find("\"reason\":\"test:deadlock\""),
              std::string::npos);
    // The in-flight table names the stuck transaction: an MSHR owned
    // by node 3, on the line the load missed on.
    EXPECT_NE(dump.find("\"kind\":\"mshr\""), std::string::npos);
    EXPECT_NE(dump.find("\"node\":3"), std::string::npos);
    const std::string line_field =
        "\"line\":" + std::to_string(addr & ~Addr{31});
    EXPECT_NE(dump.find(line_field), std::string::npos) << dump;
    // And the event ring holds the allocation that started it.
    EXPECT_NE(dump.find("\"kind\":\"mshr_alloc\""), std::string::npos);
}

TEST(FlightRecorder, DisabledRecorderCostsNothingAndDumpsEmpty)
{
    obs::FlightRecorder rec(0);
    EXPECT_FALSE(rec.enabled());
    std::ostringstream os;
    rec.dumpJson(os, "noop", 0);
    EXPECT_TRUE(testsupport::jsonValid(os.str())) << os.str();
}

TEST(FlightRecorder, RingKeepsOnlyMostRecentEvents)
{
    obs::FlightRecorder rec(4);
    for (Cycle c = 0; c < 10; ++c)
        rec.record(obs::FlightEventKind::MsgSend, c, 0, 1, 0x40, 0);
    std::ostringstream os;
    rec.dumpJson(os, "wrap", 10);
    const std::string dump = os.str();
    EXPECT_TRUE(testsupport::jsonValid(dump)) << dump;
    // Events 0..5 fell off the ring; 6..9 survive.
    EXPECT_EQ(dump.find("\"cycle\":5,"), std::string::npos);
    EXPECT_NE(dump.find("\"cycle\":6,"), std::string::npos);
    EXPECT_NE(dump.find("\"cycle\":9,"), std::string::npos);
    EXPECT_NE(dump.find("\"recorded\":10"), std::string::npos);
}

TEST(MeshNetwork, LinkStateJsonParses)
{
    const noc::MeshLayout layout(16, 4);
    noc::MeshNetwork mesh(layout, noc::MeshConfig{});
    std::ostringstream os;
    mesh.writeLinkStateJson(os);
    EXPECT_TRUE(testsupport::jsonValid(os.str())) << os.str();
}

TEST(CrashHooks, PanicWritesParsableFlightDump)
{
    const std::string path =
        ::testing::TempDir() + "crash_flight_dump.json";
    ::setenv("FSOI_FLIGHT_FILE", path.c_str(), 1);
    std::remove(path.c_str());

    // The child process takes the real crash path: panic() runs the
    // fatal hook, which dumps every live recorder before aborting.
    EXPECT_DEATH(
        {
            obs::installCrashHooks();
            obs::FlightRecorder rec(16);
            rec.beginTransaction(obs::FlightEventKind::MshrAlloc,
                                 /*cycle=*/5, /*node=*/2, /*line=*/128,
                                 /*detail=*/0);
            panic("induced failure for flight-dump test");
        },
        "induced failure for flight-dump test");

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no flight dump at " << path;
    std::string line;
    int documents = 0;
    bool found_mshr = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        EXPECT_TRUE(testsupport::jsonValid(line)) << line;
        ++documents;
        if (line.find("\"kind\":\"mshr\"") != std::string::npos
            && line.find("\"node\":2") != std::string::npos
            && line.find("\"line\":128") != std::string::npos)
            found_mshr = true;
    }
    EXPECT_GE(documents, 1);
    EXPECT_TRUE(found_mshr);
    ::unsetenv("FSOI_FLIGHT_FILE");
}

TEST(FlightRecorder, FullSystemDumpParsesWithContext)
{
    sim::SweepJob job;
    job.config = sim::SystemConfig::paperConfig(16, sim::NetKind::Mesh);
    job.config.seed = 3;
    job.app = workload::appByName("fft");
    job.scale = 0.03;
    const auto outcome = sim::SweepRunner::runJob(job, true);
    ASSERT_TRUE(outcome.result.completed);

    std::ostringstream os;
    outcome.system->flightRecorder().dumpJson(os, "test:post-run",
                                              outcome.result.cycles);
    const std::string dump = os.str();
    EXPECT_TRUE(testsupport::jsonValid(dump)) << dump;
    // A real run records protocol traffic with symbolic names wired in
    // by the System (message types, MSHR wants, directory txn kinds).
    EXPECT_NE(dump.find("\"detail_name\""), std::string::npos);
    // The context writer embeds system state incl. the mesh snapshot.
    EXPECT_NE(dump.find("\"network\":\"mesh\""), std::string::npos);
    EXPECT_NE(dump.find("\"cores\":["), std::string::npos);
}

} // namespace
} // namespace fsoi
