/**
 * @file
 * Checkpoint/restore guarantees: a restored run is bit-identical to
 * the uninterrupted run at any tick-engine thread count (including
 * faulted configs), snapshot files are byte-identical regardless of
 * the thread count that wrote them, corrupted or truncated snapshots
 * are rejected with a named-section diagnosis, and the campaign layer
 * resumes crashed sweeps without changing a single output byte.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/campaign.hh"
#include "sim/sweep_runner.hh"
#include "snapshot/archive.hh"
#include "workload/apps.hh"

namespace fsoi {
namespace {

sim::SweepJob
point(sim::NetKind kind, const char *app, std::uint64_t seed)
{
    sim::SweepJob job;
    job.config = sim::SystemConfig::paperConfig(16, kind);
    job.config.seed = seed;
    job.app = workload::appByName(app);
    job.scale = 0.03;
    return job;
}

std::string
tmpPath(const std::string &leaf)
{
    return testing::TempDir() + "fsoi_snapshot_" + leaf;
}

std::vector<std::uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

/** Checkpoint @p job at @p at cycles (run a horizon-limited copy). */
void
checkpointAt(sim::SweepJob job, Cycle at, int threads,
             const std::string &path)
{
    job.config.max_cycles = at;
    job.config.threads = threads;
    sim::System sys(job.config);
    sys.loadApp(job.app.scaled(job.scale));
    const auto r = sys.run();
    ASSERT_FALSE(r.completed)
        << "checkpoint cycle must fall inside the run";
    sys.saveCheckpoint(path);
}

sim::RunResult
resumeFrom(const std::string &path, sim::SweepJob job, int threads)
{
    job.config.threads = threads;
    sim::System sys(job.config);
    sys.loadApp(job.app.scaled(job.scale));
    sys.restoreCheckpoint(path);
    return sys.run();
}

/** Field-identical results (same checks as the determinism suite). */
void
expectIdentical(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
    EXPECT_EQ(a.queuing, b.queuing);
    EXPECT_EQ(a.scheduling, b.scheduling);
    EXPECT_EQ(a.network, b.network);
    EXPECT_EQ(a.collision_resolution, b.collision_resolution);
    EXPECT_EQ(a.packets_delivered, b.packets_delivered);
    EXPECT_EQ(a.meta_collision_rate, b.meta_collision_rate);
    EXPECT_EQ(a.data_collision_rate, b.data_collision_rate);
    EXPECT_EQ(a.meta_tx_probability, b.meta_tx_probability);
    EXPECT_EQ(a.data_resolution_delay, b.data_resolution_delay);
    EXPECT_EQ(a.l1_miss_rate, b.l1_miss_rate);
    EXPECT_EQ(a.invalidations, b.invalidations);
    EXPECT_EQ(a.sync_packets, b.sync_packets);
    EXPECT_EQ(a.control_bits, b.control_bits);
    EXPECT_EQ(a.avg_power_w, b.avg_power_w);
    EXPECT_EQ(a.energy.total(), b.energy.total());
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.fault_bit_errors, b.fault_bit_errors);
    EXPECT_EQ(a.blacklisted_channels, b.blacklisted_channels);
    EXPECT_EQ(a.unroutable_drops, b.unroutable_drops);
    EXPECT_EQ(a.fault_diagnosis, b.fault_diagnosis);
}

TEST(Snapshot, RestoredRunBitIdenticalAcrossThreads)
{
    // Checkpoint under every writer thread count, resume under every
    // reader thread count: all four combinations must reproduce the
    // uninterrupted run exactly.
    const auto job = point(sim::NetKind::Fsoi, "fft", 3);
    const auto full = sim::SweepRunner::runJob(job, false).result;
    ASSERT_TRUE(full.completed);
    for (int save_threads : {1, 4}) {
        const std::string path =
            tmpPath("rt_t" + std::to_string(save_threads) + ".ckpt");
        checkpointAt(job, 4000, save_threads, path);
        for (int load_threads : {1, 4}) {
            const auto resumed = resumeFrom(path, job, load_threads);
            expectIdentical(full, resumed);
        }
        std::filesystem::remove(path);
    }
}

TEST(Snapshot, RestoredFaultedRunBitIdentical)
{
    // Fault injection state (schedules, retransmission queues, RNG
    // position) rides in the snapshot too.
    auto job = point(sim::NetKind::Fsoi, "fft", 7);
    job.config.fault.ber = 1e-4;
    const auto full = sim::SweepRunner::runJob(job, false).result;
    ASSERT_TRUE(full.completed);
    EXPECT_GT(full.fault_bit_errors, 0u);
    const std::string path = tmpPath("fault.ckpt");
    checkpointAt(job, 4000, 1, path);
    for (int load_threads : {1, 4}) {
        const auto resumed = resumeFrom(path, job, load_threads);
        expectIdentical(full, resumed);
    }
    std::filesystem::remove(path);

    // Mesh with dead links exercises the reroute/retx machinery.
    auto mesh = point(sim::NetKind::Mesh, "fft", 7);
    mesh.config.fault.dead_link_fraction = 1.0 / 24.0;
    const auto mesh_full = sim::SweepRunner::runJob(mesh, false).result;
    ASSERT_TRUE(mesh_full.completed);
    const std::string mpath = tmpPath("fault_mesh.ckpt");
    checkpointAt(mesh, 4000, 1, mpath);
    expectIdentical(mesh_full, resumeFrom(mpath, mesh, 1));
    std::filesystem::remove(mpath);
}

TEST(Snapshot, CheckpointBytesIndependentOfThreadCount)
{
    // The snapshot is a canonical encoding of simulator state, so the
    // file a 4-thread run writes is byte-for-byte the file the serial
    // run writes at the same cycle.
    const auto job = point(sim::NetKind::Fsoi, "fft", 3);
    const std::string p1 = tmpPath("bytes_t1.ckpt");
    const std::string p4 = tmpPath("bytes_t4.ckpt");
    checkpointAt(job, 4000, 1, p1);
    checkpointAt(job, 4000, 4, p4);
    EXPECT_EQ(readBytes(p1), readBytes(p4));
    std::filesystem::remove(p1);
    std::filesystem::remove(p4);
}

TEST(Snapshot, PeriodicCheckpointMatchesDirectSave)
{
    // setCheckpoint()'s in-run snapshots capture the same canonical
    // top-of-cycle state as an explicit horizon-limited save.
    const auto job = point(sim::NetKind::Fsoi, "fft", 3);
    const std::string direct = tmpPath("direct.ckpt");
    checkpointAt(job, 4000, 1, direct);

    auto periodic_job = job;
    periodic_job.config.max_cycles = 4001;
    sim::System sys(periodic_job.config);
    sys.loadApp(periodic_job.app.scaled(periodic_job.scale));
    const std::string periodic = tmpPath("periodic.ckpt");
    sys.setCheckpoint(periodic, 4000);
    (void)sys.run();
    EXPECT_EQ(readBytes(direct), readBytes(periodic));
    std::filesystem::remove(direct);
    std::filesystem::remove(periodic);
}

TEST(Snapshot, TruncatedFileNamesTheSection)
{
    const auto job = point(sim::NetKind::Fsoi, "fft", 3);
    const std::string path = tmpPath("trunc.ckpt");
    checkpointAt(job, 4000, 1, path);
    const auto bytes = readBytes(path);
    std::filesystem::remove(path);
    ASSERT_GT(bytes.size(), 1000u);

    // Cutting the file mid-payload must be diagnosed as truncation of
    // a *named* section, never a crash or a silent short read.
    auto cut = bytes;
    cut.resize(bytes.size() / 2);
    try {
        snapshot::SnapshotReader snap(std::move(cut));
        FAIL() << "truncated snapshot parsed";
    } catch (const snapshot::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("snapshot.truncated: "),
                  std::string::npos)
            << e.what();
    }

    // Cutting inside the header is a malformed container.
    auto header_cut = bytes;
    header_cut.resize(12);
    EXPECT_THROW(snapshot::SnapshotReader snap2(std::move(header_cut)),
                 snapshot::SnapshotError);
}

TEST(Snapshot, BitFlipNamesTheSection)
{
    const auto job = point(sim::NetKind::Fsoi, "fft", 3);
    const std::string path = tmpPath("flip.ckpt");
    checkpointAt(job, 4000, 1, path);
    const auto bytes = readBytes(path);
    std::filesystem::remove(path);

    // Locate a known section's payload via an intact reader, flip one
    // bit inside it, and expect the diagnosis to name that section.
    const snapshot::SnapshotReader intact{std::vector<std::uint8_t>(
        bytes)};
    for (const auto &sec : intact.sections()) {
        if (sec.name != "core5" && sec.name != "memory")
            continue;
        auto mutated = bytes;
        mutated[sec.offset + sec.size / 2] ^= 0x01;
        try {
            snapshot::SnapshotReader snap(std::move(mutated));
            FAIL() << "corrupt section " << sec.name << " parsed";
        } catch (const snapshot::SnapshotError &e) {
            EXPECT_EQ(std::string(e.what()),
                      "snapshot.corrupt: " + sec.name);
        }
    }

    // Tampering with the section table itself is caught by the root
    // hash before any payload is trusted.
    auto table = bytes;
    table[8 + 4 + 4 + 8 + 2] ^= 0x01; // first byte of first entry name
    try {
        snapshot::SnapshotReader snap(std::move(table));
        FAIL() << "tampered section table parsed";
    } catch (const snapshot::SnapshotError &e) {
        const std::string what = e.what();
        EXPECT_TRUE(what == "snapshot.corrupt: section table"
                    || what.rfind("snapshot.corrupt:", 0) == 0)
            << what;
    }
}

TEST(Snapshot, ConfigMismatchRejected)
{
    const auto job = point(sim::NetKind::Fsoi, "fft", 3);
    const std::string path = tmpPath("mismatch.ckpt");
    checkpointAt(job, 4000, 1, path);

    auto other = point(sim::NetKind::Fsoi, "fft", 4); // different seed
    other.config.threads = 1;
    sim::System sys(other.config);
    sys.loadApp(other.app.scaled(other.scale));
    try {
        sys.restoreCheckpoint(path);
        FAIL() << "restored into a mismatching config";
    } catch (const snapshot::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("snapshot.config_mismatch"),
                  std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
}

// --- campaign layer -------------------------------------------------

sim::CampaignPoint
campaignPoint(const std::string &name, std::uint64_t seed)
{
    sim::CampaignPoint p;
    p.name = name;
    p.job = point(sim::NetKind::Fsoi, "fft", seed);
    return p;
}

std::string
reportOf(const std::vector<sim::CampaignOutcome> &outcomes)
{
    std::ostringstream os;
    sim::CampaignRunner::writeJson(os, outcomes);
    return os.str();
}

TEST(Campaign, ResumeReplaysDonePointsByteIdentically)
{
    const std::string dir = tmpPath("camp_resume");
    std::filesystem::remove_all(dir);
    sim::CampaignConfig cc;
    cc.dir = dir;
    cc.checkpoint_every = 2000;
    const std::vector<sim::CampaignPoint> points{
        campaignPoint("p0", 3), campaignPoint("p1", 5)};

    std::string first;
    {
        sim::CampaignRunner runner(cc);
        const auto outcomes = runner.run(points);
        ASSERT_EQ(outcomes.size(), 2u);
        EXPECT_EQ(outcomes[0].attempts, 1);
        first = reportOf(outcomes);
    }
    {
        // Same command line again: everything replays from the journal
        // (attempts stay 1 — nothing is re-run) and the report bytes
        // are unchanged.
        sim::CampaignRunner runner(cc);
        const auto outcomes = runner.run(points);
        EXPECT_EQ(outcomes[0].attempts, 1);
        EXPECT_EQ(outcomes[1].attempts, 1);
        EXPECT_EQ(reportOf(outcomes), first);
    }
    std::filesystem::remove_all(dir);
}

TEST(Campaign, RepeatedlyCrashingPointIsQuarantined)
{
    const std::string dir = tmpPath("camp_quarantine");
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    // A journal recording three attempts that never finished is what a
    // point that keeps crashing the process leaves behind.
    {
        std::ofstream j(dir + "/campaign.jsonl");
        for (int a = 1; a <= 3; ++a)
            j << "{\"event\":\"start\",\"point\":\"p0\",\"attempt\":"
              << a << "}\n";
    }
    sim::CampaignConfig cc;
    cc.dir = dir;
    cc.max_attempts = 3;
    sim::CampaignRunner runner(cc);
    const auto outcomes =
        runner.run({campaignPoint("p0", 3), campaignPoint("p1", 5)});
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(outcomes[0].quarantined);
    EXPECT_EQ(outcomes[0].attempts, 3);
    EXPECT_FALSE(outcomes[1].quarantined);
    EXPECT_TRUE(outcomes[1].result.completed);
    std::filesystem::remove_all(dir);
}

TEST(Campaign, WarmStartMatchesColdResults)
{
    // Horizon sweep off one shared warm snapshot: forking the family
    // members from the post-warmup checkpoint must not change any
    // result relative to simulating each point from cycle zero.
    auto base = point(sim::NetKind::Fsoi, "fft", 3);
    const Cycle warmup = 3000;
    auto makePoints = [&](bool warm) {
        std::vector<sim::CampaignPoint> pts;
        for (int i = 0; i < 3; ++i) {
            sim::CampaignPoint p;
            p.name = "h" + std::to_string(i);
            p.job = base;
            p.job.config.max_cycles =
                warmup + static_cast<Cycle>(i + 1) * 1000;
            if (warm)
                p.warm_family = "f0";
            pts.push_back(std::move(p));
        }
        return pts;
    };

    const std::string warm_dir = tmpPath("camp_warm");
    const std::string cold_dir = tmpPath("camp_cold");
    std::filesystem::remove_all(warm_dir);
    std::filesystem::remove_all(cold_dir);

    sim::CampaignConfig warm_cc;
    warm_cc.dir = warm_dir;
    warm_cc.warmup_cycles = warmup;
    sim::CampaignRunner warm_runner(warm_cc);
    const auto warm = warm_runner.run(makePoints(true));
    EXPECT_TRUE(std::filesystem::exists(warm_dir + "/warm_f0.ckpt"));

    sim::CampaignConfig cold_cc;
    cold_cc.dir = cold_dir;
    sim::CampaignRunner cold_runner(cold_cc);
    const auto cold = cold_runner.run(makePoints(false));

    EXPECT_EQ(reportOf(warm), reportOf(cold));
    std::filesystem::remove_all(warm_dir);
    std::filesystem::remove_all(cold_dir);
}

TEST(Campaign, ParallelJobsMatchSerial)
{
    auto runWith = [&](int jobs, const std::string &dir) {
        std::filesystem::remove_all(dir);
        sim::CampaignConfig cc;
        cc.dir = dir;
        cc.jobs = jobs;
        sim::CampaignRunner runner(cc);
        const auto out = runner.run({campaignPoint("p0", 3),
                                     campaignPoint("p1", 5),
                                     campaignPoint("p2", 9)});
        const std::string report = reportOf(out);
        std::filesystem::remove_all(dir);
        return report;
    };
    const auto serial = runWith(1, tmpPath("camp_j1"));
    EXPECT_EQ(serial, runWith(4, tmpPath("camp_j4")));
}

} // namespace
} // namespace fsoi
