/**
 * @file
 * Quickstart: build a 16-core CMP with the free-space optical
 * interconnect, run one application, and compare against the
 * conventional mesh baseline.
 *
 *   ./quickstart [app] [cores]
 *
 * Also takes the shared observability knobs (see obs/cli.hh): e.g.
 * `--stats-json=run.jsonl --stats-interval=10000` emits a per-epoch
 * time series for the FSOI run, and `FSOI_TRACE=fsoi:2` in the
 * environment writes a Chrome-trace event log.
 *
 * The checkpoint knobs also apply to the FSOI run (the instrumented
 * run of interest): `--checkpoint=FILE --checkpoint-every=N` writes a
 * periodic hash-verified snapshot, `--restore=FILE` resumes from one
 * and finishes bit-identically to the uninterrupted run.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/cli.hh"
#include "sim/stats_io.hh"
#include "sim/system.hh"

using namespace fsoi;

namespace {

sim::RunResult
runOnce(int cores, sim::NetKind kind, const workload::AppProfile &app,
        std::uint64_t seed, int threads,
        const obs::CliOptions *opts = nullptr)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperConfig(cores, kind);
    if (seed != 0)
        cfg.seed = seed;
    cfg.threads = threads;
    sim::System system(cfg);
    system.loadApp(app);
    if (!opts)
        return system.run();
    if (!opts->restore.empty())
        system.restoreCheckpoint(opts->restore);
    if (!opts->checkpoint.empty())
        system.setCheckpoint(opts->checkpoint, opts->checkpoint_every);
    sim::StatsIo stats(system, *opts);
    auto res = system.run();
    stats.finish();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const obs::CliOptions obs_opts = obs::parseCliOptions(argc, argv);
    const std::string app_name = argc > 1 ? argv[1] : "fft";
    const int cores = argc > 2 ? std::atoi(argv[2]) : 16;

    workload::AppProfile app = workload::appByName(app_name);
    app = app.scaled(0.5); // quick demo run

    std::printf("fsoi-sim quickstart: %d cores, app '%s'\n\n", cores,
                app.name.c_str());

    const auto mesh = runOnce(cores, sim::NetKind::Mesh, app,
                              obs_opts.seed, obs_opts.threads);
    // The stats knobs instrument the run of interest: the FSOI one.
    const auto fsoi_run = runOnce(cores, sim::NetKind::Fsoi, app,
                                  obs_opts.seed, obs_opts.threads,
                                  &obs_opts);

    std::printf("%-28s %12s %12s\n", "", "mesh", "FSOI");
    std::printf("%-28s %12llu %12llu\n", "execution cycles",
                (unsigned long long)mesh.cycles,
                (unsigned long long)fsoi_run.cycles);
    std::printf("%-28s %12.2f %12.2f\n", "avg packet latency (cyc)",
                mesh.avg_packet_latency, fsoi_run.avg_packet_latency);
    std::printf("%-28s %12.2f %12.2f\n", "IPC (aggregate)", mesh.ipc,
                fsoi_run.ipc);
    std::printf("%-28s %12.1f %12.1f\n", "avg power (W)",
                mesh.avg_power_w, fsoi_run.avg_power_w);
    std::printf("%-28s %12.3f %12.3f\n", "network energy (J)",
                mesh.energy.network_j, fsoi_run.energy.network_j);
    std::printf("%-28s %12s %12.1f%%\n", "L1 miss rate", "",
                100.0 * fsoi_run.l1_miss_rate);
    std::printf("\nspeedup (mesh -> FSOI): %.2fx\n",
                (double)mesh.cycles / (double)fsoi_run.cycles);
    std::printf("FSOI meta collision rate: %.2f%%, data: %.2f%%\n",
                100.0 * fsoi_run.meta_collision_rate,
                100.0 * fsoi_run.data_collision_rate);
    return 0;
}
