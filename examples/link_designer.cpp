/**
 * @file
 * Link designer: explore the free-space optical design space with the
 * photonics library the way Section 3 and 4.2 of the paper do --
 * sweep distance, apertures, drive current and lane widths, and report
 * which configurations close the link budget (BER target) and what
 * they cost in energy and slot cycles.
 *
 *   ./link_designer [target_ber]
 */

#include <cstdio>
#include <cstdlib>
#include <initializer_list>

#include "analytic/bandwidth_alloc.hh"
#include "photonics/link_budget.hh"
#include "photonics/units.hh"

using namespace fsoi;
using namespace ::fsoi::photonics;

namespace {

void
sweepDistance(double target_ber)
{
    std::printf("1) Path-loss / BER vs free-space distance "
                "(90/190 um lenses, 0.48 mA drive)\n\n");
    std::printf("   %-10s %-10s %-8s %-10s %s\n", "distance", "loss(dB)",
                "Q", "BER", "closes?");
    for (double cm : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0}) {
        PathParams path;
        path.distance_m = cm / 100.0;
        OpticalLink link(VcselParams{}, path);
        const auto r = link.evaluate();
        std::printf("   %5.1f cm   %6.2f     %5.2f   %-9.1e %s\n", cm,
                    r.path_loss_db, r.q_factor, r.bit_error_rate,
                    r.bit_error_rate <= target_ber ? "yes" : "NO");
    }
}

void
sweepReceiverAperture(double target_ber)
{
    std::printf("\n2) Receiver micro-lens aperture at the full 2 cm "
                "diagonal\n\n");
    std::printf("   %-12s %-10s %-10s %s\n", "rx aperture", "loss(dB)",
                "BER", "closes?");
    for (double um : {100.0, 140.0, 190.0, 250.0, 320.0}) {
        PathParams path;
        path.rx_aperture_m = um * 1e-6;
        OpticalLink link(VcselParams{}, path);
        const auto r = link.evaluate();
        std::printf("   %6.0f um    %6.2f     %-9.1e %s\n", um,
                    r.path_loss_db, r.bit_error_rate,
                    r.bit_error_rate <= target_ber ? "yes" : "NO");
    }
}

void
sweepDriveCurrent(double target_ber)
{
    std::printf("\n3) Drive current vs link margin and energy/bit\n");
    std::printf("   (Section 4.3.1: accepting collisions lets the BER\n"
                "   relax from 1e-10 to ~1e-5, buying energy headroom)\n\n");
    std::printf("   %-9s %-10s %-10s %-12s %-12s\n", "I_avg", "BER",
                "pJ/bit", "ok @1e-10", "ok @1e-5");
    for (double ma : {0.25, 0.32, 0.40, 0.48, 0.60, 0.80}) {
        LinkParams lp;
        lp.average_current_a = ma * 1e-3;
        // Driver power scales roughly with drive current.
        lp.laser_driver_power_w = 6.3e-3 * ma / 0.48;
        OpticalLink link(VcselParams{}, PathParams{},
                         PhotodetectorParams{}, TiaParams{}, lp);
        const auto r = link.evaluate();
        std::printf("   %.2f mA   %-9.1e %6.2f     %-12s %s\n", ma,
                    r.bit_error_rate, r.energy_per_bit_j * 1e12,
                    r.bit_error_rate <= 1e-10 ? "yes" : "NO",
                    r.bit_error_rate <= 1e-5 ? "yes" : "NO");
    }
    (void)target_ber;
}

void
laneSplit()
{
    std::printf("\n4) Lane-width allocation (Section 4.3.1): 9 VCSELs "
                "split between meta and data\n\n");
    std::printf("   %-8s %-8s %-10s %-10s %-10s\n", "meta", "data",
                "B_M", "slots m/d", "latency (a.u.)");
    const auto constants = analytic::paperConstants();
    for (int meta = 1; meta <= 5; ++meta) {
        const int data = 9 - meta;
        const double bm = static_cast<double>(meta) / 9.0;
        const int mslot = (72 + meta * 12 - 1) / (meta * 12);
        const int dslot = (360 + data * 12 - 1) / (data * 12);
        std::printf("   %-8d %-8d %-10.3f %d / %-6d %.2f%s\n", meta, data,
                    bm, mslot, dslot,
                    analytic::expectedLatency(constants, bm),
                    meta == 3 ? "   <- paper's choice" : "");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const double target_ber = argc > 1 ? std::atof(argv[1]) : 1e-10;
    std::printf("fsoi-sim link designer (target BER %.0e)\n\n",
                target_ber);
    sweepDistance(target_ber);
    sweepReceiverAperture(target_ber);
    sweepDriveCurrent(target_ber);
    laneSplit();
    return 0;
}
