/**
 * @file
 * Workload explorer: characterize all sixteen application profiles on a
 * chosen interconnect. Prints the quantities the paper's methodology
 * section cares about -- L1 miss rate (target range 0.8-15.6%, average
 * ~4.8% after the deliberate L1 scale-down), packet latency, per-slot
 * transmission probability, and synchronization intensity.
 *
 *   ./workload_explorer [mesh|fsoi|l0|lr1|lr2] [scale]
 *
 * The shared observability knobs (obs/cli.hh) instrument every app
 * run; with --stats-interval the output file concatenates one series
 * per app (append mode), each restarting at cycle 0.
 *
 * The checkpoint knobs fan out per app: --checkpoint=FILE writes
 * periodic snapshots to FILE.<app>, and --restore=FILE resumes each
 * app whose FILE.<app> exists (apps without one start cold), so an
 * interrupted exploration picks up where it stopped.
 */

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.hh"
#include "obs/cli.hh"
#include "sim/stats_io.hh"
#include "sim/system.hh"

using namespace fsoi;

int
main(int argc, char **argv)
{
    const obs::CliOptions obs_opts = obs::parseCliOptions(argc, argv);
    sim::NetKind kind = sim::NetKind::Fsoi;
    if (argc > 1) {
        const std::string arg = argv[1];
        if (arg == "mesh")
            kind = sim::NetKind::Mesh;
        else if (arg == "l0")
            kind = sim::NetKind::L0;
        else if (arg == "lr1")
            kind = sim::NetKind::Lr1;
        else if (arg == "lr2")
            kind = sim::NetKind::Lr2;
        else if (arg != "fsoi")
            fatal("unknown network '%s'", arg.c_str());
    }
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

    std::printf("workload explorer: 16 cores, %s interconnect, "
                "scale %.2f\n\n", sim::netKindName(kind), scale);

    TextTable table({"app", "cycles", "IPC", "missrate", "pktlat",
                     "packets", "txprob", "locks", "barriers",
                     "invals"});
    double miss_sum = 0.0;
    int count = 0;
    for (const auto &app : workload::paperApps()) {
        sim::SystemConfig cfg = sim::SystemConfig::paperConfig(16, kind);
        if (obs_opts.seed != 0)
            cfg.seed = obs_opts.seed;
        cfg.threads = obs_opts.threads;
        sim::System system(cfg);
        system.loadApp(app.scaled(scale));
        if (!obs_opts.restore.empty()) {
            const std::string path = obs_opts.restore + "." + app.name;
            if (std::filesystem::exists(path))
                system.restoreCheckpoint(path);
        }
        if (!obs_opts.checkpoint.empty())
            system.setCheckpoint(obs_opts.checkpoint + "." + app.name,
                                 obs_opts.checkpoint_every);
        sim::StatsIo stats(system, obs_opts);
        const auto res = system.run();
        stats.finish();

        std::uint64_t locks = 0, barriers = 0;
        for (int n = 0; n < cfg.num_cores; ++n) {
            locks += system.core(n).stats().locks_acquired.value();
            barriers += system.core(n).stats().barriers_passed.value();
        }
        table.addRow({app.name,
                      std::to_string(res.cycles),
                      TextTable::num(res.ipc, 2),
                      TextTable::pct(res.l1_miss_rate),
                      TextTable::num(res.avg_packet_latency, 1),
                      std::to_string(res.packets_delivered),
                      TextTable::pct(res.meta_tx_probability),
                      std::to_string(locks),
                      std::to_string(barriers),
                      std::to_string(res.invalidations)});
        miss_sum += res.l1_miss_rate;
        ++count;
    }
    table.print(std::cout);
    std::printf("\naverage L1 miss rate: %.1f%% (paper: 4.8%%)\n",
                100.0 * miss_sum / count);
    return 0;
}
