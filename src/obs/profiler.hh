/**
 * @file
 * Self-profiler: attributes host wall time to the simulator's tick
 * phases (network, local routing, memory, directory, L1, core) so a
 * slow run can say *which component* is slow without an external
 * profiler.
 *
 * Timing every cycle would double the cost of the cheap phases, so the
 * profiler samples: every `stride` cycles (a power of two; the check
 * is one mask-and-compare) the loop brackets each phase with a
 * steady_clock read and the elapsed nanoseconds accumulate per phase.
 * With the default stride of 64 the overhead is a few clock reads per
 * 64 cycles — well under a percent — while the per-phase *fractions*
 * converge quickly because the sampled cycles are an unbiased slice of
 * the run.
 *
 * Results are exposed through the StatRegistry under a "host." prefix:
 * host wall time is nondeterministic by nature, so consumers that
 * compare stats across runs (golden diffs) must ignore that subtree —
 * tools/stats_report does so by default.
 */

#ifndef FSOI_OBS_PROFILER_HH
#define FSOI_OBS_PROFILER_HH

#include <chrono>
#include <cstdint>

#include "common/types.hh"

namespace fsoi::obs {

class Scope;

/** The phases of one System::run() loop iteration, in tick order. */
enum class TickPhase : std::uint8_t
{
    Network,    //!< interconnect tick (mesh routers / FSOI slots)
    LocalRoute, //!< same-node message queue drain + routing
    Memory,     //!< memory controller ticks
    Directory,  //!< directory/L2 slice ticks
    L1,         //!< private L1 ticks
    Core,       //!< core ticks
    /**
     * Threaded runs fork all component phases (memory, directory, L1,
     * core) to the shard workers between two barriers; the serial
     * per-phase brackets are meaningless there, so the whole fork/join
     * region is charged to this one phase instead.
     */
    Components,
    /**
     * Event-calendar bookkeeping: computing the next epoch, popping
     * due calendar entries and re-arming component wakes. Cycles the
     * calendar skips entirely cost nothing and are attributed nowhere
     * — the sampled cycles remain an unbiased slice of the *executed*
     * cycles, so phase fractions stay meaningful.
     */
    Sched,
    kCount,
};

inline constexpr int kNumTickPhases =
    static_cast<int>(TickPhase::kCount);

const char *tickPhaseName(TickPhase phase);

class PhaseProfiler
{
  public:
    /** @p stride sampling period in cycles; power of two; 0 disables. */
    explicit PhaseProfiler(Cycle stride);

    bool enabled() const { return stride_ != 0; }
    Cycle stride() const { return stride_; }

    /** Is @p now a sampled cycle? One mask-and-compare when enabled. */
    bool
    due(Cycle now) const
    {
        return stride_ != 0 && (now & (stride_ - 1)) == 0;
    }

    /** Open a sampled cycle: stamp the clock before the first phase. */
    void
    beginCycle()
    {
        mark_ = std::chrono::steady_clock::now();
        ++sampled_cycles_;
    }

    /**
     * Close phase @p phase: charge it the time since the previous
     * mark and restamp, so consecutive endPhase() calls partition the
     * cycle with one clock read each.
     */
    void
    endPhase(TickPhase phase)
    {
        const auto now = std::chrono::steady_clock::now();
        ns_[static_cast<int>(phase)] +=
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - mark_).count();
        mark_ = now;
    }

    std::uint64_t sampledCycles() const { return sampled_cycles_; }
    std::uint64_t ns(TickPhase phase) const
    { return ns_[static_cast<int>(phase)]; }
    std::uint64_t totalNs() const;

    /** Share of sampled wall time spent in @p phase, in [0, 1]. */
    double fraction(TickPhase phase) const;

    /**
     * Register under @p scope (callers pass a "host"-rooted scope):
     * profile.<phase>.ns, profile.<phase>.frac, profile.sampled_cycles
     * and profile.total_ns.
     */
    void registerStats(const Scope &scope) const;

  private:
    Cycle stride_;
    std::uint64_t sampled_cycles_ = 0;
    std::uint64_t ns_[kNumTickPhases] = {};
    std::chrono::steady_clock::time_point mark_{};
};

} // namespace fsoi::obs

#endif // FSOI_OBS_PROFILER_HH
