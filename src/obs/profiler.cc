#include "obs/profiler.hh"

#include "common/logging.hh"
#include "obs/stat_registry.hh"

namespace fsoi::obs {

const char *
tickPhaseName(TickPhase phase)
{
    switch (phase) {
      case TickPhase::Network: return "network";
      case TickPhase::LocalRoute: return "local_route";
      case TickPhase::Memory: return "memory";
      case TickPhase::Directory: return "directory";
      case TickPhase::L1: return "l1";
      case TickPhase::Core: return "core";
      case TickPhase::Components: return "components";
      case TickPhase::Sched: return "sched";
      case TickPhase::kCount: break;
    }
    return "?";
}

PhaseProfiler::PhaseProfiler(Cycle stride)
    : stride_(stride)
{
    FSOI_ASSERT((stride & (stride - 1)) == 0,
                "profile stride must be a power of two (or 0 = off)");
}

std::uint64_t
PhaseProfiler::totalNs() const
{
    std::uint64_t total = 0;
    for (const auto ns : ns_)
        total += ns;
    return total;
}

double
PhaseProfiler::fraction(TickPhase phase) const
{
    const std::uint64_t total = totalNs();
    if (total == 0)
        return 0.0;
    return static_cast<double>(ns_[static_cast<int>(phase)]) /
           static_cast<double>(total);
}

void
PhaseProfiler::registerStats(const Scope &scope) const
{
    const Scope prof = scope.scope("profile");
    for (int i = 0; i < kNumTickPhases; ++i) {
        const auto phase = static_cast<TickPhase>(i);
        const Scope s = prof.scope(tickPhaseName(phase));
        s.derived("ns", [this, i] {
            return static_cast<double>(ns_[i]);
        });
        s.derived("frac", [this, phase] { return fraction(phase); });
    }
    prof.derived("sampled_cycles", [this] {
        return static_cast<double>(sampled_cycles_);
    });
    prof.derived("total_ns", [this] {
        return static_cast<double>(totalNs());
    });
}

} // namespace fsoi::obs
