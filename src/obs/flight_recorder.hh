/**
 * @file
 * Flight recorder: a bounded ring of recent protocol events plus a
 * table of in-flight transactions, dumped as structured JSON when a
 * run dies (fatal error, signal, or watchdog trip).
 *
 * The recorder is deliberately dumber than the Tracer: events are
 * fixed-size PODs recorded unconditionally while the recorder is
 * enabled (no categories, no levels), because its job is not
 * interactive analysis but post-mortem triage — "what were the last
 * few thousand protocol steps, and which transactions never finished".
 * A disabled recorder (capacity 0) costs one branch per call site.
 *
 * Ownership mirrors StatRegistry: each System owns one recorder and
 * its components record into it from the System's worker thread, so
 * the hot path is lock-free. A small process-global registry of live
 * recorders (mutex-protected, touched only at construction, teardown
 * and crash time) lets the crash hooks dump every active run's state
 * with dumpAllOnCrash(); that path is best-effort by design — it runs
 * when the process is already dying.
 */

#ifndef FSOI_OBS_FLIGHT_RECORDER_HH
#define FSOI_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/types.hh"

namespace fsoi::obs {

/** What happened. The detail byte's meaning depends on the kind. */
enum class FlightEventKind : std::uint8_t
{
    MsgSend,     //!< protocol message handed to the transport (MsgType)
    MsgRecv,     //!< protocol message routed to a controller (MsgType)
    MshrAlloc,   //!< L1 miss registered an MSHR (Want)
    MshrFree,    //!< L1 miss completed (granted state)
    DirTxnStart, //!< directory opened a transaction (Txn kind)
    DirTxnEnd,   //!< directory closed a transaction (Txn kind)
};

const char *flightEventKindName(FlightEventKind kind);

/** One fixed-size ring slot. */
struct FlightEvent
{
    Cycle cycle = 0;
    Addr line = 0;
    NodeId node = kInvalidNode; //!< acting component's node
    NodeId peer = kInvalidNode; //!< message destination/source
    FlightEventKind kind = FlightEventKind::MsgSend;
    std::uint8_t detail = 0;
};

class FlightRecorder
{
  public:
    /**
     * Decodes an event's detail byte into a protocol-layer name for
     * the JSON dump (msg type, MSHR want, directory txn kind). The
     * obs layer cannot name them itself without inverting the library
     * dependency, so the System installs one; nullptr entries fall
     * back to the numeric value.
     */
    using DetailNamer =
        std::function<const char *(FlightEventKind, std::uint8_t)>;

    /** Appends extra JSON object members (no trailing comma) to the
     *  dump's "context" object: per-core state, network link state. */
    using ContextWriter = std::function<void(std::ostream &)>;

    /** @p capacity ring slots (rounded up to a power of two so the
     *  hot path masks instead of dividing); 0 disables recording. */
    explicit FlightRecorder(std::size_t capacity);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    bool enabled() const { return !ring_.empty(); }
    std::size_t capacity() const { return ring_.size(); }
    std::uint64_t recorded() const { return recorded_; }
    std::size_t inflightCount() const { return inflightCount_; }

    /**
     * Turn on internal locking for threaded runs, where shard workers
     * record concurrently. Interleaving of same-cycle events from
     * different shards becomes host-schedule dependent — acceptable
     * for a post-mortem diagnostic ring, which never feeds back into
     * simulation state or stats.
     */
    void enableLocking(bool on) { locked_ = on; }

    /** Record one event. Call sites guard with enabled(). */
    void
    record(FlightEventKind kind, Cycle cycle, NodeId node, NodeId peer,
           Addr line, std::uint8_t detail)
    {
        if (ring_.empty())
            return;
        if (locked_) {
            std::lock_guard<std::mutex> guard(mutex_);
            recordUnlocked(kind, cycle, node, peer, line, detail);
            return;
        }
        recordUnlocked(kind, cycle, node, peer, line, detail);
    }

    /**
     * Register an outstanding transaction (an L1 miss or directory
     * transaction) keyed by (kind, node, line). Also records the
     * matching ring event. Re-registering the same key overwrites —
     * protocol retries refresh the entry rather than leaking it.
     */
    void beginTransaction(FlightEventKind kind, Cycle cycle, NodeId node,
                          Addr line, std::uint8_t detail);

    /** Retire an outstanding transaction and record the ring event. */
    void endTransaction(FlightEventKind kind, Cycle cycle, NodeId node,
                        Addr line, std::uint8_t detail);

    void setDetailNamer(DetailNamer namer) { namer_ = std::move(namer); }
    void setContextWriter(ContextWriter writer)
    { context_ = std::move(writer); }

    /**
     * Write the full dump as one JSON document:
     *   {"schema":"fsoi-flight-1","reason":...,"cycle":N,
     *    "events":[...oldest first...],
     *    "inflight":[{"kind":...,"node":...,"line":...,"since":...,
     *                 "age":...},...],
     *    "context":{...writer members...}}
     */
    void dumpJson(std::ostream &os, const char *reason, Cycle now) const;

    /**
     * Crash path: dump every live recorder to @p path (one JSON
     * document per line when several Systems are in flight). Invoked
     * by the crash hooks; safe to call with none registered.
     */
    static void dumpAllOnCrash(const char *path, const char *reason);

  private:
    /** (kind class, node, line) -> registration info. */
    struct Inflight
    {
        Cycle since = 0;
        std::uint8_t detail = 0;
    };

    /**
     * The transaction table sits on the protocol hot path (one
     * insert/erase per miss and per directory transaction), so the
     * composite key is packed into one integer -- line address shifted
     * over a node byte and a class bit; simulated line addresses are
     * far below 2^55, so the pack is collision-free -- and the table
     * itself is open-addressed with linear probing and backward-shift
     * deletion: no allocation and no node chasing per operation, just
     * a multiplicative hash and a short probe in a flat array. Live
     * entries are bounded by protocol resources (MSHRs + directory
     * transactions), so the table stays sparse; it doubles in the
     * unexpected case it ever fills past half.
     */
    using Key = std::uint64_t;

    struct TableSlot
    {
        Key key = 0;
        Inflight info;
        bool used = false;
    };

    static Key
    packKey(std::uint8_t cls, NodeId node, Addr line)
    {
        return (static_cast<std::uint64_t>(line) << 9)
            | (static_cast<std::uint64_t>(node & 0xFF) << 1)
            | (cls & 1);
    }

    std::size_t
    slotOf(Key key) const
    {
        // Fibonacci hashing: spread the (structured) packed key across
        // the table's index bits with one multiply.
        return static_cast<std::size_t>(
                   (key * 0x9E3779B97F4A7C15ULL) >> 32)
            & (slots_.size() - 1);
    }

    void tableInsert(Key key, Inflight info);
    void tableErase(Key key);
    void tableGrow();

    static std::uint8_t keyClass(FlightEventKind kind);
    void writeEventJson(std::ostream &os, const FlightEvent &e) const;

    void
    recordUnlocked(FlightEventKind kind, Cycle cycle, NodeId node,
                   NodeId peer, Addr line, std::uint8_t detail)
    {
        FlightEvent &e = ring_[recorded_ & mask_];
        e.cycle = cycle;
        e.line = line;
        e.node = node;
        e.peer = peer;
        e.kind = kind;
        e.detail = detail;
        ++recorded_;
        if (cycle > lastCycle_)
            lastCycle_ = cycle;
    }

    std::vector<FlightEvent> ring_;
    std::uint64_t recorded_ = 0;
    std::uint64_t mask_ = 0; //!< ring_.size() - 1 (size is a power of 2)
    std::vector<TableSlot> slots_; //!< power-of-two open-addressed table
    std::size_t inflightCount_ = 0;
    Cycle lastCycle_ = 0; //!< newest cycle seen (for crash dumps)
    mutable std::mutex mutex_;
    bool locked_ = false;
    DetailNamer namer_;
    ContextWriter context_;
};

} // namespace fsoi::obs

#endif // FSOI_OBS_FLIGHT_RECORDER_HH
