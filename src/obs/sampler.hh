/**
 * @file
 * Interval time-series sampling: snapshot every registered stat's
 * flattened scalar view every N cycles and append one record per epoch
 * to a stream, as JSON-lines (one self-contained JSON object per line)
 * or CSV (header row + one row per epoch).
 *
 * Values are cumulative since the start of the run, not per-epoch
 * deltas; downstream tooling differentiates when it wants rates. The
 * owning System checks nextDue() once per cycle, so a disabled sampler
 * costs a null-pointer test.
 */

#ifndef FSOI_OBS_SAMPLER_HH
#define FSOI_OBS_SAMPLER_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/stat_registry.hh"

namespace fsoi::obs {

class IntervalSampler
{
  public:
    enum class Format : std::uint8_t { Jsonl, Csv };

    /**
     * @param interval cycles between samples (> 0)
     * @param os       sink; must outlive the sampler
     */
    IntervalSampler(const StatRegistry &registry, Cycle interval,
                    std::ostream &os, Format format = Format::Jsonl);

    Cycle interval() const { return interval_; }
    Cycle nextDue() const { return next_; }
    std::uint64_t samplesTaken() const { return samples_; }

    /** Emit one record stamped @p now and advance the deadline. */
    void sample(Cycle now);

    /**
     * Emit a final record at end of run unless one was just taken at
     * this cycle, so the series always covers the full run.
     */
    void finish(Cycle now);

  private:
    void writeRecord(Cycle now);

    const StatRegistry &registry_;
    Cycle interval_;
    Cycle next_;
    std::ostream &os_;
    Format format_;
    std::vector<std::string> names_; //!< cached scalar layout
    std::vector<double> values_;     //!< reused per sample
    std::uint64_t samples_ = 0;
    Cycle lastSampled_ = kNoCycle;
};

} // namespace fsoi::obs

#endif // FSOI_OBS_SAMPLER_HH
