#include "obs/crash.hh"

#include <atomic>
#include <csignal>
#include <cstdlib>

#include "common/logging.hh"
#include "obs/flight_recorder.hh"
#include "obs/tracer.hh"

namespace fsoi::obs {

namespace {

std::atomic<bool> hooksInstalled{false};
std::atomic<bool> dumped{false};

constexpr int kSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGABRT, SIGINT,
                            SIGTERM};

extern "C" void
crashSignalHandler(int sig)
{
    // Restore the default disposition first: if the dump itself
    // faults, the recursive signal terminates the process instead of
    // looping through this handler.
    std::signal(sig, SIG_DFL);
    const char *reason = "signal";
    switch (sig) {
      case SIGSEGV: reason = "signal:SIGSEGV"; break;
      case SIGBUS: reason = "signal:SIGBUS"; break;
      case SIGFPE: reason = "signal:SIGFPE"; break;
      case SIGABRT: reason = "signal:SIGABRT"; break;
      case SIGINT: reason = "signal:SIGINT"; break;
      case SIGTERM: reason = "signal:SIGTERM"; break;
    }
    crashDump(reason);
    std::raise(sig);
}

void
fatalDumpHook()
{
    crashDump("fatal");
}

} // namespace

const char *
flightDumpPath()
{
    static const char *path = [] {
        const char *env = std::getenv("FSOI_FLIGHT_FILE");
        return env && env[0] ? env : "fsoi_flight.json";
    }();
    return path;
}

void
crashDump(const char *reason)
{
    bool expected = false;
    if (!dumped.compare_exchange_strong(expected, true))
        return;
    Tracer::instance().crashFlush();
    FlightRecorder::dumpAllOnCrash(flightDumpPath(), reason);
}

void
installCrashHooks()
{
    bool expected = false;
    if (!hooksInstalled.compare_exchange_strong(expected, true))
        return;
    setFatalHook(&fatalDumpHook);
    for (int sig : kSignals)
        std::signal(sig, &crashSignalHandler);
}

} // namespace fsoi::obs
