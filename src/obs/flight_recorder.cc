#include "obs/flight_recorder.hh"

#include <algorithm>
#include <fstream>
#include <mutex>

#include "common/logging.hh"
#include "obs/stat_registry.hh"

namespace fsoi::obs {

namespace {

/**
 * Process-global registry of live recorders for the crash hooks. Only
 * touched at System construction/teardown and when the process is
 * already dying, so one mutex is plenty.
 */
std::mutex registryMu;
std::vector<FlightRecorder *> liveRecorders;

void
registerRecorder(FlightRecorder *rec)
{
    std::lock_guard<std::mutex> lock(registryMu);
    liveRecorders.push_back(rec);
}

void
unregisterRecorder(FlightRecorder *rec)
{
    std::lock_guard<std::mutex> lock(registryMu);
    liveRecorders.erase(
        std::remove(liveRecorders.begin(), liveRecorders.end(), rec),
        liveRecorders.end());
}

} // namespace

const char *
flightEventKindName(FlightEventKind kind)
{
    switch (kind) {
      case FlightEventKind::MsgSend: return "msg_send";
      case FlightEventKind::MsgRecv: return "msg_recv";
      case FlightEventKind::MshrAlloc: return "mshr_alloc";
      case FlightEventKind::MshrFree: return "mshr_free";
      case FlightEventKind::DirTxnStart: return "dir_txn_start";
      case FlightEventKind::DirTxnEnd: return "dir_txn_end";
    }
    return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
{
    if (capacity) {
        std::size_t rounded = 1;
        while (rounded < capacity)
            rounded *= 2;
        ring_.resize(rounded);
        mask_ = rounded - 1;
        slots_.resize(1024);
        registerRecorder(this);
    }
}

FlightRecorder::~FlightRecorder()
{
    if (enabled())
        unregisterRecorder(this);
}

void
FlightRecorder::tableInsert(Key key, Inflight info)
{
    if ((inflightCount_ + 1) * 2 > slots_.size())
        tableGrow();
    std::size_t i = slotOf(key);
    while (slots_[i].used) {
        if (slots_[i].key == key) {
            slots_[i].info = info; // protocol retry refreshes the entry
            return;
        }
        i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i] = TableSlot{key, info, true};
    ++inflightCount_;
}

void
FlightRecorder::tableErase(Key key)
{
    const std::size_t smask = slots_.size() - 1;
    std::size_t i = slotOf(key);
    while (true) {
        if (!slots_[i].used)
            return; // unmatched end (e.g. recorder attached mid-run)
        if (slots_[i].key == key)
            break;
        i = (i + 1) & smask;
    }
    --inflightCount_;
    // Backward-shift deletion keeps probe chains tombstone-free: pull
    // each displaced successor back over the hole until a gap or a
    // slot already at its home position ends the chain.
    std::size_t j = i;
    while (true) {
        slots_[i].used = false;
        std::size_t home;
        do {
            j = (j + 1) & smask;
            if (!slots_[j].used)
                return;
            home = slotOf(slots_[j].key);
        } while (i <= j ? (i < home && home <= j)
                        : (i < home || home <= j));
        slots_[i] = slots_[j];
        i = j;
    }
}

void
FlightRecorder::tableGrow()
{
    std::vector<TableSlot> old = std::move(slots_);
    slots_.assign(old.size() * 2, TableSlot{});
    inflightCount_ = 0;
    for (const TableSlot &slot : old) {
        if (slot.used)
            tableInsert(slot.key, slot.info);
    }
}

std::uint8_t
FlightRecorder::keyClass(FlightEventKind kind)
{
    switch (kind) {
      case FlightEventKind::MshrAlloc:
      case FlightEventKind::MshrFree:
        return 0;
      default:
        return 1;
    }
}

void
FlightRecorder::beginTransaction(FlightEventKind kind, Cycle cycle,
                                 NodeId node, Addr line,
                                 std::uint8_t detail)
{
    if (!enabled())
        return;
    if (locked_) {
        std::lock_guard<std::mutex> guard(mutex_);
        recordUnlocked(kind, cycle, node, kInvalidNode, line, detail);
        tableInsert(packKey(keyClass(kind), node, line),
                    Inflight{cycle, detail});
        return;
    }
    recordUnlocked(kind, cycle, node, kInvalidNode, line, detail);
    tableInsert(packKey(keyClass(kind), node, line),
                Inflight{cycle, detail});
}

void
FlightRecorder::endTransaction(FlightEventKind kind, Cycle cycle,
                               NodeId node, Addr line,
                               std::uint8_t detail)
{
    if (!enabled())
        return;
    if (locked_) {
        std::lock_guard<std::mutex> guard(mutex_);
        recordUnlocked(kind, cycle, node, kInvalidNode, line, detail);
        tableErase(packKey(keyClass(kind), node, line));
        return;
    }
    recordUnlocked(kind, cycle, node, kInvalidNode, line, detail);
    tableErase(packKey(keyClass(kind), node, line));
}

void
FlightRecorder::writeEventJson(std::ostream &os,
                               const FlightEvent &e) const
{
    os << "{\"cycle\":" << e.cycle << ",\"kind\":\""
       << flightEventKindName(e.kind) << "\",\"node\":" << e.node;
    if (e.peer != kInvalidNode)
        os << ",\"peer\":" << e.peer;
    os << ",\"line\":" << e.line << ",\"detail\":"
       << static_cast<unsigned>(e.detail);
    if (namer_) {
        if (const char *name = namer_(e.kind, e.detail))
            os << ",\"detail_name\":\"" << jsonEscape(name) << "\"";
    }
    os << "}";
}

void
FlightRecorder::dumpJson(std::ostream &os, const char *reason,
                         Cycle now) const
{
    os << "{\"schema\":\"fsoi-flight-1\",\"reason\":\""
       << jsonEscape(reason ? reason : "unknown") << "\",\"cycle\":"
       << now << ",\"capacity\":" << ring_.size()
       << ",\"recorded\":" << recorded_ << ",\"events\":[";
    const std::uint64_t n =
        ring_.empty() ? 0 : std::min<std::uint64_t>(recorded_,
                                                    ring_.size());
    const std::uint64_t first = recorded_ - n;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (i)
            os << ",";
        writeEventJson(os, ring_[(first + i) % ring_.size()]);
    }
    os << "],\"inflight\":[";
    bool sep = false;
    for (const TableSlot &slot : slots_) {
        if (!slot.used)
            continue;
        const Key key = slot.key;
        const Inflight &txn = slot.info;
        const std::uint8_t cls = key & 1;
        const auto node = static_cast<NodeId>((key >> 1) & 0xFF);
        const Addr line = static_cast<Addr>(key >> 9);
        const FlightEventKind kind = cls == 0
            ? FlightEventKind::MshrAlloc : FlightEventKind::DirTxnStart;
        os << (sep ? "," : "") << "{\"kind\":\""
           << (cls == 0 ? "mshr" : "dir_txn") << "\",\"node\":" << node
           << ",\"line\":" << line << ",\"since\":" << txn.since
           << ",\"age\":" << (now >= txn.since ? now - txn.since : 0)
           << ",\"detail\":" << static_cast<unsigned>(txn.detail);
        if (namer_) {
            if (const char *name = namer_(kind, txn.detail))
                os << ",\"detail_name\":\"" << jsonEscape(name) << "\"";
        }
        os << "}";
        sep = true;
    }
    os << "],\"context\":{";
    if (context_)
        context_(os);
    os << "}}";
}

void
FlightRecorder::dumpAllOnCrash(const char *path, const char *reason)
{
    std::lock_guard<std::mutex> lock(registryMu);
    if (liveRecorders.empty())
        return;
    std::ofstream os(path);
    if (!os) {
        warn("flight recorder: cannot write '%s'", path);
        return;
    }
    for (const FlightRecorder *rec : liveRecorders) {
        rec->dumpJson(os, reason, rec->lastCycle_);
        os << "\n";
    }
    inform("flight recorder: wrote %zu dump(s) to %s",
           liveRecorders.size(), path);
}

} // namespace fsoi::obs
