/**
 * @file
 * Structured event tracing behind the FSOI_TRACE gate.
 *
 * Events carry a category (coherence, fsoi, noc, mem, sim) and a level
 * (1 = transaction milestones, 2 = per-packet detail, 3 = internal
 * bookkeeping) and land in a preallocated ring buffer that wraps,
 * keeping the most recent events. On exit (or an explicit flush) the
 * buffer is written as Chrome trace_event JSON loadable in
 * chrome://tracing and Perfetto: one process, one track per network
 * node, cycles mapped 1:1 to microseconds.
 *
 * Environment knobs, read once per process:
 *   FSOI_TRACE      category list with optional per-category levels:
 *                   "coherence,fsoi:2", "all:1"; plain "1" (the legacy
 *                   boolean) means all:1.
 *   FSOI_TRACE_FILE output path (default "fsoi_trace.json")
 *   FSOI_TRACE_BUF  ring capacity in events (default 65536)
 *
 * Cost when disabled: one level-table load and compare per call site,
 * the same single branch the old traceEnabled() bool was.
 *
 * Thread-safety: the tracer is process-global while Systems may now
 * run on sweep worker threads. Construction (and the one-time
 * environment parse it performs) is race-free via the C++11
 * magic-static in instance(). All mutating entry points -- record()
 * via instant()/complete(), configure(), setCapacity(),
 * setOutputPath(), reset() -- and the buffer readers (snapshot(),
 * writeChromeTrace(), flush()) serialize on an internal mutex. The
 * hot-path gate enabled() stays lock-free: it only loads levels_,
 * which is written before worker threads exist (environment parse) or
 * under the mutex (tests reconfiguring a quiesced tracer). The inline
 * counters recorded()/dropped()/capacity() are unlocked convenience
 * reads; treat them as approximate while worker threads are tracing.
 */

#ifndef FSOI_OBS_TRACER_HH
#define FSOI_OBS_TRACER_HH

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fsoi::obs {

enum class TraceCat : std::uint8_t { Coherence, Fsoi, Noc, Mem, Sim };
inline constexpr int kNumTraceCats = 5;

const char *traceCatName(TraceCat cat);

/** One key/value pair attached to an event (keys must be static). */
struct TraceArg
{
    const char *key;
    std::uint64_t value;
};

/** One ring-buffer slot. Names/keys must point to static storage. */
struct TraceEvent
{
    Cycle ts = 0;
    Cycle dur = 0;        //!< phase 'X' only
    const char *name = nullptr;
    std::uint32_t tid = 0; //!< network node (Perfetto track)
    TraceCat cat = TraceCat::Sim;
    char phase = 'i';      //!< 'i' instant, 'X' complete
    std::uint8_t num_args = 0;
    TraceArg args[3];
};

class Tracer
{
  public:
    /** Process-wide instance, configured from the environment once. */
    static Tracer &instance();

    /** The hot-path gate: is @p cat recording at @p level? */
    bool
    enabled(TraceCat cat, int level) const
    {
        return level <= levels_[static_cast<int>(cat)];
    }

    bool anyEnabled() const { return any_; }
    int level(TraceCat cat) const
    { return levels_[static_cast<int>(cat)]; }

    /** Record an instant event (a point in time on a node's track). */
    void instant(TraceCat cat, const char *name, Cycle ts,
                 std::uint32_t tid,
                 std::initializer_list<TraceArg> args = {});

    /** Record a complete event spanning [ts, ts + dur). */
    void complete(TraceCat cat, const char *name, Cycle ts, Cycle dur,
                  std::uint32_t tid,
                  std::initializer_list<TraceArg> args = {});

    /**
     * Apply a FSOI_TRACE-style spec: comma-separated category names
     * with optional `:level` suffixes; "all" addresses every category;
     * "1" / "true" enable everything at level 1. Unknown categories
     * are reported and skipped.
     */
    void configure(const std::string &spec);

    /** Resize the ring (drops recorded events). */
    void setCapacity(std::size_t events);
    std::size_t capacity() const { return ring_.size(); }

    /** Output path for flush(); empty disables file writing. */
    void
    setOutputPath(std::string path)
    {
        std::lock_guard<std::mutex> lock(mu_);
        path_ = std::move(path);
    }
    const std::string &outputPath() const { return path_; }

    std::uint64_t recorded() const { return recorded_; }
    std::uint64_t dropped() const
    { return recorded_ <= ring_.size() ? 0 : recorded_ - ring_.size(); }

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Emit the Chrome trace_event JSON document. */
    void writeChromeTrace(std::ostream &os) const;

    /** Write to outputPath() when tracing is on; called at exit. */
    void flush() const;

    /**
     * Abnormal-exit flush: like flush(), but only try-locks the ring
     * mutex so a signal landing mid-record() cannot deadlock the
     * dying process. When the lock is contended the partial ring is
     * written anyway — a slightly torn trace beats losing it.
     */
    void crashFlush() const;

    /** Disable all categories and clear the buffer (tests). */
    void reset();

  private:
    Tracer();

    void record(TraceCat cat, const char *name, char phase, Cycle ts,
                Cycle dur, std::uint32_t tid,
                std::initializer_list<TraceArg> args);
    void writeChromeTraceLocked(std::ostream &os) const;

    /** Serializes ring/config mutation across sweep worker threads. */
    mutable std::mutex mu_;
    std::int8_t levels_[kNumTraceCats] = {0, 0, 0, 0, 0};
    bool any_ = false;
    std::vector<TraceEvent> ring_;
    std::uint64_t recorded_ = 0;
    std::string path_;
};

} // namespace fsoi::obs

#endif // FSOI_OBS_TRACER_HH
