/**
 * @file
 * Unified statistics registry: every simulated component registers its
 * Counter / Accumulator / Histogram members (and derived ratios) under
 * a hierarchical dotted name such as `system.core3.l1.miss_rate` or
 * `fsoi.collisions.data`. The registry only stores non-owning pointers;
 * the components keep owning their stats exactly as before, so the hot
 * paths (Counter::operator++ etc.) are untouched.
 *
 * Consumers walk the registry through a Visitor or one of the writers
 * (text / JSON / CSV); the interval sampler flattens every entry to
 * scalars and emits a time series (see obs/sampler.hh).
 *
 * Thread-safety: a registry is deliberately NOT synchronized. Each
 * System owns its own StatRegistry, and the sweep runner executes a
 * whole System -- construction, run, stat readout -- on one worker
 * thread, so a registry is thread-confined by design and the hot
 * counter increments stay free of atomics. Debug builds enforce the
 * confinement: the first thread to touch a registry becomes its owner
 * and any access from another thread asserts. Do not share one
 * registry (or one Scope) across concurrently running Systems.
 */

#ifndef FSOI_OBS_STAT_REGISTRY_HH
#define FSOI_OBS_STAT_REGISTRY_HH

#include <cassert>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef NDEBUG
#include <thread>
#endif

#include "common/stats.hh"

namespace fsoi::obs {

/** What an entry points at. */
enum class StatKind : std::uint8_t { Counter, Accumulator, Histogram, Derived };

/** Read-only walk over every registered stat, in registration order. */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;
    virtual void onCounter(const std::string &name, const Counter &c) = 0;
    virtual void onAccumulator(const std::string &name,
                               const Accumulator &a) = 0;
    virtual void onHistogram(const std::string &name,
                             const Histogram &h) = 0;
    /** Derived scalar (ratio / rate computed from other stats). */
    virtual void onDerived(const std::string &name, double value) = 0;
};

class StatRegistry
{
  public:
    struct Entry
    {
        std::string name;
        StatKind kind;
        const Counter *counter = nullptr;
        const Accumulator *accumulator = nullptr;
        const Histogram *histogram = nullptr;
        std::function<double()> derived;
    };

    void addCounter(std::string name, const Counter &c);
    void addAccumulator(std::string name, const Accumulator &a);
    void addHistogram(std::string name, const Histogram &h);
    void addDerived(std::string name, std::function<double()> fn);

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    const std::vector<Entry> &entries() const { return entries_; }

    /** Entry lookup by full dotted name; nullptr when absent. */
    const Entry *find(std::string_view name) const;

    /** All registered names, in registration order. */
    std::vector<std::string> names() const;

    /** Visit every entry in registration order. */
    void visit(StatVisitor &v) const;

    /**
     * Flattened scalar view used by the sampler and the CSV writer:
     * counters contribute one scalar, accumulators `.count`/`.mean`,
     * histograms `.count`/`.mean`/`.p50`/`.p99`. The name layout is
     * stable across calls, so callers may cache scalarNames() and then
     * repeatedly refill values via scalarValues().
     */
    std::vector<std::string> scalarNames() const;
    void scalarValues(std::vector<double> &out) const;

  private:
    void add(Entry entry);

    /**
     * Debug-only confinement check (see the file comment): the first
     * accessing thread claims the registry; any later access from a
     * different thread is a bug in sweep/System ownership.
     */
    void
    assertSingleThread() const
    {
#ifndef NDEBUG
        const auto self = std::this_thread::get_id();
        if (owner_ == std::thread::id())
            owner_ = self;
        assert(owner_ == self &&
               "StatRegistry accessed from a second thread; registries "
               "are confined to the worker running their System");
#endif
    }

    std::vector<Entry> entries_;
#ifndef NDEBUG
    mutable std::thread::id owner_;
#endif
};

/**
 * Hierarchical naming helper: a Scope prepends its dotted prefix to
 * every registration, and child scopes extend it. Components take a
 * Scope in registerStats() and never see the full path they live at.
 */
class Scope
{
  public:
    explicit Scope(StatRegistry &registry, std::string prefix = "")
        : registry_(&registry), prefix_(std::move(prefix))
    {}

    Scope scope(const std::string &name) const
    {
        return Scope(*registry_, join(name));
    }

    void counter(const std::string &name, const Counter &c) const
    { registry_->addCounter(join(name), c); }
    void accumulator(const std::string &name, const Accumulator &a) const
    { registry_->addAccumulator(join(name), a); }
    void histogram(const std::string &name, const Histogram &h) const
    { registry_->addHistogram(join(name), h); }
    void derived(const std::string &name, std::function<double()> fn) const
    { registry_->addDerived(join(name), std::move(fn)); }

    const std::string &prefix() const { return prefix_; }
    StatRegistry &registry() const { return *registry_; }

  private:
    std::string join(const std::string &name) const
    { return prefix_.empty() ? name : prefix_ + "." + name; }

    StatRegistry *registry_;
    std::string prefix_;
};

/** Escape a string for embedding in a JSON document (no quotes added). */
std::string jsonEscape(std::string_view s);

/** Aligned `name value` dump of the whole tree. */
void writeText(const StatRegistry &registry, std::ostream &os);

/**
 * Nested-object JSON dump: dotted names become object paths, counters
 * become integers, accumulators/histograms become summary objects
 * (histograms include the raw bin array).
 */
void writeJson(const StatRegistry &registry, std::ostream &os);

/** Two-column `name,value` CSV over the flattened scalar view. */
void writeCsv(const StatRegistry &registry, std::ostream &os);

} // namespace fsoi::obs

#endif // FSOI_OBS_STAT_REGISTRY_HH
