/**
 * @file
 * Abnormal-exit diagnostics: one call installs (idempotently) the
 * hooks that keep observability data from dying with the process —
 *
 *  - a common::logging fatal hook, so panic()/fatal()/FSOI_ASSERT
 *    flush the trace ring and dump every live flight recorder before
 *    aborting;
 *  - signal handlers (SIGSEGV, SIGBUS, SIGFPE, SIGABRT, SIGINT,
 *    SIGTERM) that do the same and then re-raise with the default
 *    disposition, preserving the process's exit status / core dump.
 *
 * The dump lands at $FSOI_FLIGHT_FILE (default "fsoi_flight.json"),
 * one JSON document per live System. Everything here is best-effort:
 * it runs when the process is already dying, takes locks that are
 * normally uncontended, and guards against re-entry so a crash inside
 * the dump path cannot loop.
 */

#ifndef FSOI_OBS_CRASH_HH
#define FSOI_OBS_CRASH_HH

namespace fsoi::obs {

/** Install the fatal hook + signal handlers. Idempotent. */
void installCrashHooks();

/**
 * Immediately flush the tracer and dump all live flight recorders
 * (at most once per process — later calls are no-ops, so a watchdog
 * dump is not overwritten by the panic that follows it).
 */
void crashDump(const char *reason);

/** Where crashDump writes ($FSOI_FLIGHT_FILE or the default). */
const char *flightDumpPath();

} // namespace fsoi::obs

#endif // FSOI_OBS_CRASH_HH
