#include "obs/cli.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace fsoi::obs {

namespace {

/** Value of "--name=value" when @p arg matches, else nullptr. */
const char *
matchValue(const char *arg, const char *name)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

} // namespace

CliOptions
parseCliOptions(int &argc, char **argv)
{
    CliOptions opts;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        char *arg = argv[i];
        if (const char *v = matchValue(arg, "--stats-json")) {
            opts.stats_json = v;
        } else if (const char *v2 = matchValue(arg, "--stats-csv")) {
            opts.stats_csv = v2;
        } else if (const char *v3 = matchValue(arg, "--stats-interval")) {
            const long n = std::atol(v3);
            if (n <= 0)
                fatal("--stats-interval wants a positive cycle count, "
                      "got '%s'", v3);
            opts.stats_interval = static_cast<Cycle>(n);
        } else if (const char *v4 = matchValue(arg, "--seed")) {
            char *end = nullptr;
            opts.seed = std::strtoull(v4, &end, 0);
            if (end == v4 || *end != '\0' || opts.seed == 0)
                fatal("--seed wants a positive integer, got '%s'", v4);
        } else if (const char *v5 = matchValue(arg, "--threads")) {
            char *end = nullptr;
            const long n = std::strtol(v5, &end, 0);
            if (end == v5 || *end != '\0' || n < 0)
                fatal("--threads wants a non-negative integer, got '%s'",
                      v5);
            opts.threads = static_cast<int>(n);
        } else if (const char *v6 = matchValue(arg, "--checkpoint")) {
            opts.checkpoint = v6;
        } else if (const char *v7 = matchValue(arg, "--restore")) {
            opts.restore = v7;
        } else if (const char *v8 = matchValue(arg, "--checkpoint-every")) {
            const long n = std::atol(v8);
            if (n <= 0)
                fatal("--checkpoint-every wants a positive cycle count, "
                      "got '%s'", v8);
            opts.checkpoint_every = static_cast<Cycle>(n);
        } else if (std::strcmp(arg, "--stats") == 0) {
            opts.stats_text = true;
        } else {
            argv[kept++] = arg;
        }
    }
    argc = kept;
    argv[argc] = nullptr;
    return opts;
}

} // namespace fsoi::obs
