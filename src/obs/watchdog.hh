/**
 * @file
 * Run-health watchdog: a no-forward-progress detector fed from inside
 * the simulation loop. The loop reports two monotone heartbeats —
 * retired instructions and network events (deliveries + transmission
 * attempts) — at its existing progress-check stride, and the watchdog
 * trips once the instruction feed has been flat for a full quiet
 * window. The network feed then classifies the failure:
 *
 *   Deadlock  — nothing moved at all: cores are stalled *and* the
 *               interconnect has gone silent. Typical of a lost
 *               message or a protocol state that can never be
 *               satisfied.
 *   Livelock  — the interconnect is still churning (retries, NACK
 *               loops, collision storms) but no instruction retires.
 *
 * The watchdog is pure cycle arithmetic over values the caller already
 * computes: no clocks, no threads, fully deterministic and therefore
 * unit-testable with synthetic feeds.
 */

#ifndef FSOI_OBS_WATCHDOG_HH
#define FSOI_OBS_WATCHDOG_HH

#include <cstdint>

#include "common/types.hh"

namespace fsoi::obs {

enum class WatchdogVerdict : std::uint8_t { Ok, Deadlock, Livelock };

const char *watchdogVerdictName(WatchdogVerdict verdict);

class Watchdog
{
  public:
    struct Config
    {
        /** Cycles the instruction feed may stay flat before tripping. */
        Cycle quiet_window = 2'000'000;

        /**
         * Extra stall allowance while fault-driven retransmission is
         * enabled. A healthy retry burst — every sender waiting out
         * its bounded exponential backoff — can legitimately keep the
         * instruction feed flat past the base window without being a
         * NACK/retry storm, so the trip threshold (and the
         * Livelock/Deadlock classification boundary with it) stretches
         * by the configured retry budget's worst-case resolution time
         * (see analytic::boundedResolutionBudget). Zero when no faults
         * are injected, leaving the original heuristic untouched.
         */
        Cycle retry_grace = 0;
    };

    struct Report
    {
        WatchdogVerdict verdict = WatchdogVerdict::Ok;
        /** Cycles since an instruction last retired. */
        Cycle stalled_for = 0;
        /** Cycles since the network feed last moved. */
        Cycle net_quiet_for = 0;
    };

    explicit Watchdog(Config config) : config_(config) {}

    /**
     * Feed the current heartbeat values (@p instructions and
     * @p net_events must be monotone). Returns the verdict; callers
     * act on anything != Ok. Checks need not be equidistant — the
     * loop may check coarsely and the window is measured in cycles.
     */
    Report
    check(Cycle now, std::uint64_t instructions,
          std::uint64_t net_events)
    {
        if (instructions != last_instructions_) {
            last_instructions_ = instructions;
            last_instr_cycle_ = now;
        }
        if (net_events != last_net_events_) {
            last_net_events_ = net_events;
            last_net_cycle_ = now;
        }
        Report report;
        report.stalled_for = now - last_instr_cycle_;
        report.net_quiet_for = now - last_net_cycle_;
        const Cycle window = config_.quiet_window + config_.retry_grace;
        if (report.stalled_for > window) {
            report.verdict = report.net_quiet_for <= window
                ? WatchdogVerdict::Livelock
                : WatchdogVerdict::Deadlock;
        }
        return report;
    }

    const Config &config() const { return config_; }

  private:
    Config config_;
    std::uint64_t last_instructions_ = 0;
    std::uint64_t last_net_events_ = 0;
    Cycle last_instr_cycle_ = 0;
    Cycle last_net_cycle_ = 0;
};

} // namespace fsoi::obs

#endif // FSOI_OBS_WATCHDOG_HH
