/**
 * @file
 * Shared command-line knobs for the observability layer. Every example
 * and bench main strips these before its own positional arguments:
 *
 *   --stats-json=FILE     end-of-run registry dump as JSON, or, when
 *                         --stats-interval is given, a JSON-lines time
 *                         series with one record per epoch ("-" = stdout)
 *   --stats-csv=FILE      same in CSV form
 *   --stats-interval=N    sample every N cycles
 *   --stats               print the text stat tree to stdout at exit
 *   --seed=N              top-level SystemConfig seed; every derived
 *                         RNG stream (cores, FSOI backoff, fault
 *                         schedules) follows from it, so runs are
 *                         reproducible from the command line
 *   --threads=N           intra-run tick-engine worker threads
 *                         (SystemConfig::threads); 0 = one per host
 *                         CPU. Results are bit-identical at any N.
 *   --checkpoint=FILE     periodic hash-verified checkpoint file
 *                         (System::setCheckpoint); pair with
 *                         --checkpoint-every=N (cycles, default
 *                         1000000 when only --checkpoint is given)
 *   --restore=FILE        restore a checkpoint before running; the
 *                         resumed run is bit-identical to the
 *                         uninterrupted one
 *
 * Tracing is configured through the environment (FSOI_TRACE /
 * FSOI_TRACE_FILE), not argv, so it works identically under ctest,
 * benches, and user programs; see obs/tracer.hh.
 */

#ifndef FSOI_OBS_CLI_HH
#define FSOI_OBS_CLI_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace fsoi::obs {

struct CliOptions
{
    std::string stats_json; //!< empty = off, "-" = stdout
    std::string stats_csv;  //!< empty = off, "-" = stdout
    Cycle stats_interval = 0; //!< 0 = end-of-run dump only
    bool stats_text = false;
    std::uint64_t seed = 0;   //!< 0 = keep the config's default seed
    int threads = 1;          //!< tick-engine threads; 0 = host CPUs

    std::string checkpoint;   //!< empty = no periodic checkpoints
    std::string restore;      //!< empty = fresh run
    Cycle checkpoint_every = 1'000'000; //!< checkpoint period (cycles)

    bool any() const
    { return stats_text || !stats_json.empty() || !stats_csv.empty(); }
};

/**
 * Strip recognized --stats-* flags out of argv (compacting it in
 * place and updating argc) and return the parsed options, so the
 * caller's positional-argument handling is unaffected.
 */
CliOptions parseCliOptions(int &argc, char **argv);

} // namespace fsoi::obs

#endif // FSOI_OBS_CLI_HH
