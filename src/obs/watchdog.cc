#include "obs/watchdog.hh"

namespace fsoi::obs {

const char *
watchdogVerdictName(WatchdogVerdict verdict)
{
    switch (verdict) {
      case WatchdogVerdict::Ok: return "ok";
      case WatchdogVerdict::Deadlock: return "deadlock";
      case WatchdogVerdict::Livelock: return "livelock";
    }
    return "?";
}

} // namespace fsoi::obs
