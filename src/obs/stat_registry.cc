#include "obs/stat_registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "common/logging.hh"

namespace fsoi::obs {

void
StatRegistry::add(Entry entry)
{
    assertSingleThread();
    FSOI_ASSERT(!entry.name.empty(), "stat registered without a name");
    FSOI_ASSERT(find(entry.name) == nullptr, "duplicate stat name '%s'",
                entry.name.c_str());
    entries_.push_back(std::move(entry));
}

void
StatRegistry::addCounter(std::string name, const Counter &c)
{
    Entry e;
    e.name = std::move(name);
    e.kind = StatKind::Counter;
    e.counter = &c;
    add(std::move(e));
}

void
StatRegistry::addAccumulator(std::string name, const Accumulator &a)
{
    Entry e;
    e.name = std::move(name);
    e.kind = StatKind::Accumulator;
    e.accumulator = &a;
    add(std::move(e));
}

void
StatRegistry::addHistogram(std::string name, const Histogram &h)
{
    Entry e;
    e.name = std::move(name);
    e.kind = StatKind::Histogram;
    e.histogram = &h;
    add(std::move(e));
}

void
StatRegistry::addDerived(std::string name, std::function<double()> fn)
{
    FSOI_ASSERT(fn != nullptr);
    Entry e;
    e.name = std::move(name);
    e.kind = StatKind::Derived;
    e.derived = std::move(fn);
    add(std::move(e));
}

const StatRegistry::Entry *
StatRegistry::find(std::string_view name) const
{
    for (const auto &e : entries_)
        if (e.name == name)
            return &e;
    return nullptr;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.name);
    return out;
}

void
StatRegistry::visit(StatVisitor &v) const
{
    assertSingleThread();
    for (const auto &e : entries_) {
        switch (e.kind) {
          case StatKind::Counter:
            v.onCounter(e.name, *e.counter);
            break;
          case StatKind::Accumulator:
            v.onAccumulator(e.name, *e.accumulator);
            break;
          case StatKind::Histogram:
            v.onHistogram(e.name, *e.histogram);
            break;
          case StatKind::Derived:
            v.onDerived(e.name, e.derived());
            break;
        }
    }
}

std::vector<std::string>
StatRegistry::scalarNames() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_) {
        switch (e.kind) {
          case StatKind::Counter:
          case StatKind::Derived:
            out.push_back(e.name);
            break;
          case StatKind::Accumulator:
            out.push_back(e.name + ".count");
            out.push_back(e.name + ".mean");
            break;
          case StatKind::Histogram:
            out.push_back(e.name + ".count");
            out.push_back(e.name + ".mean");
            out.push_back(e.name + ".p50");
            out.push_back(e.name + ".p99");
            break;
        }
    }
    return out;
}

void
StatRegistry::scalarValues(std::vector<double> &out) const
{
    assertSingleThread();
    out.clear();
    for (const auto &e : entries_) {
        switch (e.kind) {
          case StatKind::Counter:
            out.push_back(static_cast<double>(e.counter->value()));
            break;
          case StatKind::Derived:
            out.push_back(e.derived());
            break;
          case StatKind::Accumulator:
            out.push_back(static_cast<double>(e.accumulator->count()));
            out.push_back(e.accumulator->mean());
            break;
          case StatKind::Histogram:
            out.push_back(static_cast<double>(e.histogram->count()));
            out.push_back(e.histogram->mean());
            out.push_back(e.histogram->percentile(0.5));
            out.push_back(e.histogram->percentile(0.99));
            break;
        }
    }
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Print a double so the result is always valid JSON (no nan/inf). */
void
jsonNumber(std::ostream &os, double v)
{
    if (std::isnan(v) || std::isinf(v)) {
        os << "null";
        return;
    }
    if (v == static_cast<double>(static_cast<std::int64_t>(v))
        && std::abs(v) < 1e15) {
        os << static_cast<std::int64_t>(v);
        return;
    }
    os << std::setprecision(12) << v;
}

class TextVisitor : public StatVisitor
{
  public:
    explicit TextVisitor(std::ostream &os) : os_(os) {}

    void
    onCounter(const std::string &name, const Counter &c) override
    {
        line(name) << c.value() << "\n";
    }

    void
    onAccumulator(const std::string &name, const Accumulator &a) override
    {
        line(name) << a.mean() << "  (n=" << a.count()
                   << " min=" << a.min() << " max=" << a.max()
                   << " sd=" << a.stddev() << ")\n";
    }

    void
    onHistogram(const std::string &name, const Histogram &h) override
    {
        line(name) << "n=" << h.count() << " mean=" << h.mean()
                   << " p50=" << h.percentile(0.5)
                   << " p99=" << h.percentile(0.99)
                   << " underflow=" << h.underflow()
                   << " overflow=" << h.overflow() << "\n";
    }

    void
    onDerived(const std::string &name, double value) override
    {
        line(name) << value << "\n";
    }

  private:
    std::ostream &
    line(const std::string &name)
    {
        os_ << std::left << std::setw(44) << name << " ";
        return os_;
    }

    std::ostream &os_;
};

/**
 * Streams the sorted name list as a nested JSON object tree by
 * tracking how many dotted segments consecutive names share.
 */
class JsonTreeWriter
{
  public:
    explicit JsonTreeWriter(std::ostream &os) : os_(os) { os_ << "{"; }

    void
    close()
    {
        while (depth_-- > 0)
            os_ << "}";
        os_ << "}\n";
    }

    /** Open/close objects to move from the previous name to this one. */
    std::ostream &
    key(const std::string &name)
    {
        const auto segs = split(name);
        std::size_t common = 0;
        while (common < prev_.size() && common + 1 < segs.size()
               && prev_[common] == segs[common])
            ++common;
        for (std::size_t i = prev_.size(); i > common; --i)
            os_ << "}";
        if (!first_)
            os_ << ",";
        first_ = false;
        for (std::size_t i = common; i + 1 < segs.size(); ++i)
            os_ << "\"" << jsonEscape(segs[i]) << "\":{";
        os_ << "\"" << jsonEscape(segs.back()) << "\":";
        prev_.assign(segs.begin(), segs.end() - 1);
        depth_ = prev_.size();
        return os_;
    }

  private:
    static std::vector<std::string>
    split(const std::string &name)
    {
        std::vector<std::string> out;
        std::size_t start = 0;
        for (std::size_t i = 0; i <= name.size(); ++i) {
            if (i == name.size() || name[i] == '.') {
                out.push_back(name.substr(start, i - start));
                start = i + 1;
            }
        }
        return out;
    }

    std::ostream &os_;
    std::vector<std::string> prev_;
    std::size_t depth_ = 0;
    bool first_ = true;
};

class JsonVisitor : public StatVisitor
{
  public:
    explicit JsonVisitor(JsonTreeWriter &w) : w_(w) {}

    void
    onCounter(const std::string &name, const Counter &c) override
    {
        w_.key(name) << c.value();
    }

    void
    onAccumulator(const std::string &name, const Accumulator &a) override
    {
        auto &os = w_.key(name);
        os << "{\"count\":" << a.count() << ",\"mean\":";
        jsonNumber(os, a.mean());
        os << ",\"min\":";
        jsonNumber(os, a.min());
        os << ",\"max\":";
        jsonNumber(os, a.max());
        os << ",\"stddev\":";
        jsonNumber(os, a.stddev());
        os << "}";
    }

    void
    onHistogram(const std::string &name, const Histogram &h) override
    {
        auto &os = w_.key(name);
        os << "{\"count\":" << h.count() << ",\"mean\":";
        jsonNumber(os, h.mean());
        os << ",\"p50\":";
        jsonNumber(os, h.percentile(0.5));
        os << ",\"p99\":";
        jsonNumber(os, h.percentile(0.99));
        os << ",\"underflow\":" << h.underflow()
           << ",\"overflow\":" << h.overflow()
           << ",\"bin_width\":";
        jsonNumber(os, h.binWidth());
        os << ",\"bins\":[";
        for (std::size_t i = 0; i < h.numBins(); ++i)
            os << (i ? "," : "") << h.bin(i);
        os << "]}";
    }

    void
    onDerived(const std::string &name, double value) override
    {
        jsonNumber(w_.key(name), value);
    }

  private:
    JsonTreeWriter &w_;
};

} // namespace

void
writeText(const StatRegistry &registry, std::ostream &os)
{
    TextVisitor v(os);
    registry.visit(v);
}

void
writeJson(const StatRegistry &registry, std::ostream &os)
{
    // The tree writer requires sibling names to be adjacent, so visit
    // through a sorted index.
    std::vector<const StatRegistry::Entry *> sorted;
    sorted.reserve(registry.size());
    for (const auto &e : registry.entries())
        sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto *a, const auto *b) { return a->name < b->name; });

    JsonTreeWriter w(os);
    JsonVisitor v(w);
    for (const auto *e : sorted) {
        switch (e->kind) {
          case StatKind::Counter:
            v.onCounter(e->name, *e->counter);
            break;
          case StatKind::Accumulator:
            v.onAccumulator(e->name, *e->accumulator);
            break;
          case StatKind::Histogram:
            v.onHistogram(e->name, *e->histogram);
            break;
          case StatKind::Derived:
            v.onDerived(e->name, e->derived());
            break;
        }
    }
    w.close();
}

void
writeCsv(const StatRegistry &registry, std::ostream &os)
{
    const auto names = registry.scalarNames();
    std::vector<double> values;
    registry.scalarValues(values);
    FSOI_ASSERT(names.size() == values.size());
    os << "name,value\n";
    for (std::size_t i = 0; i < names.size(); ++i) {
        os << names[i] << ",";
        if (std::isnan(values[i]) || std::isinf(values[i]))
            os << "";
        else
            os << std::setprecision(12) << values[i];
        os << "\n";
    }
}

} // namespace fsoi::obs
