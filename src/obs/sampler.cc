#include "obs/sampler.hh"

#include <cmath>
#include <iomanip>

#include "common/logging.hh"

namespace fsoi::obs {

IntervalSampler::IntervalSampler(const StatRegistry &registry,
                                 Cycle interval, std::ostream &os,
                                 Format format)
    : registry_(registry), interval_(interval), next_(interval),
      os_(os), format_(format), names_(registry.scalarNames())
{
    FSOI_ASSERT(interval > 0);
    if (format_ == Format::Csv) {
        os_ << "cycle";
        for (const auto &name : names_)
            os_ << "," << name;
        os_ << "\n";
    }
}

void
IntervalSampler::sample(Cycle now)
{
    writeRecord(now);
    // Keep the cadence anchored to multiples of the interval even when
    // the caller polls late.
    while (next_ <= now)
        next_ += interval_;
}

void
IntervalSampler::finish(Cycle now)
{
    if (lastSampled_ != now)
        writeRecord(now);
    os_.flush();
}

void
IntervalSampler::writeRecord(Cycle now)
{
    registry_.scalarValues(values_);
    FSOI_ASSERT(values_.size() == names_.size(),
                "stat registry changed size mid-run");
    if (format_ == Format::Csv) {
        os_ << now;
        for (const double v : values_) {
            os_ << ",";
            if (!std::isnan(v) && !std::isinf(v))
                os_ << std::setprecision(12) << v;
        }
        os_ << "\n";
    } else {
        os_ << "{\"cycle\":" << now << ",\"stats\":{";
        for (std::size_t i = 0; i < names_.size(); ++i) {
            os_ << (i ? "," : "") << "\"" << jsonEscape(names_[i])
                << "\":";
            const double v = values_[i];
            if (std::isnan(v) || std::isinf(v))
                os_ << "null";
            else if (v == static_cast<double>(static_cast<std::int64_t>(v))
                     && std::abs(v) < 1e15)
                os_ << static_cast<std::int64_t>(v);
            else
                os_ << std::setprecision(12) << v;
        }
        os_ << "}}\n";
    }
    lastSampled_ = now;
    ++samples_;
}

} // namespace fsoi::obs
