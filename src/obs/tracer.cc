#include "obs/tracer.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "common/logging.hh"
#include "obs/stat_registry.hh"

namespace fsoi::obs {

namespace {

constexpr std::size_t kDefaultCapacity = 65536;
constexpr int kMaxLevel = 3;

const char *const kCatNames[kNumTraceCats] = {
    "coherence", "fsoi", "noc", "mem", "sim",
};

int
catIndex(const std::string &name)
{
    for (int i = 0; i < kNumTraceCats; ++i)
        if (name == kCatNames[i])
            return i;
    return -1;
}

} // namespace

const char *
traceCatName(TraceCat cat)
{
    return kCatNames[static_cast<int>(cat)];
}

Tracer::Tracer()
{
    if (const char *buf = std::getenv("FSOI_TRACE_BUF")) {
        const long n = std::atol(buf);
        setCapacity(n > 0 ? static_cast<std::size_t>(n)
                          : kDefaultCapacity);
    }
    if (const char *file = std::getenv("FSOI_TRACE_FILE"))
        path_ = file;
    else
        path_ = "fsoi_trace.json";
    if (const char *spec = std::getenv("FSOI_TRACE"))
        configure(spec);
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    static const bool flush_registered = [] {
        std::atexit([] { Tracer::instance().flush(); });
        return true;
    }();
    (void)flush_registered;
    return tracer;
}

void
Tracer::configure(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        std::string token = spec.substr(start, end - start);
        start = end + 1;
        if (token.empty())
            continue;

        int level = 1;
        const std::size_t colon = token.find(':');
        if (colon != std::string::npos) {
            level = std::atoi(token.c_str() + colon + 1);
            token.resize(colon);
        }
        level = std::clamp(level, 0, kMaxLevel);

        if (token == "all" || token == "1" || token == "true") {
            for (auto &l : levels_)
                l = static_cast<std::int8_t>(std::max<int>(l, level));
        } else {
            const int idx = catIndex(token);
            if (idx < 0) {
                warn("FSOI_TRACE: unknown category '%s' (have "
                     "coherence, fsoi, noc, mem, sim, all)",
                     token.c_str());
                continue;
            }
            levels_[idx] = static_cast<std::int8_t>(
                std::max<int>(levels_[idx], level));
        }
    }
    any_ = false;
    for (const auto l : levels_)
        any_ |= l > 0;
    if (any_ && ring_.empty())
        ring_.resize(kDefaultCapacity);
}

void
Tracer::setCapacity(std::size_t events)
{
    FSOI_ASSERT(events > 0);
    std::lock_guard<std::mutex> lock(mu_);
    ring_.assign(events, TraceEvent{});
    recorded_ = 0;
}

void
Tracer::record(TraceCat cat, const char *name, char phase, Cycle ts,
               Cycle dur, std::uint32_t tid,
               std::initializer_list<TraceArg> args)
{
    // The macros pre-filter on (cat, level); this guards direct
    // instant()/complete() calls on a disabled category.
    if (levels_[static_cast<int>(cat)] <= 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.empty())
        ring_.resize(kDefaultCapacity);
    TraceEvent &slot = ring_[recorded_ % ring_.size()];
    slot.ts = ts;
    slot.dur = dur;
    slot.name = name;
    slot.tid = tid;
    slot.cat = cat;
    slot.phase = phase;
    slot.num_args = static_cast<std::uint8_t>(
        std::min<std::size_t>(args.size(), 3));
    std::size_t i = 0;
    for (const auto &arg : args) {
        if (i >= slot.num_args)
            break;
        slot.args[i++] = arg;
    }
    ++recorded_;
}

void
Tracer::instant(TraceCat cat, const char *name, Cycle ts,
                std::uint32_t tid, std::initializer_list<TraceArg> args)
{
    record(cat, name, 'i', ts, 0, tid, args);
}

void
Tracer::complete(TraceCat cat, const char *name, Cycle ts, Cycle dur,
                 std::uint32_t tid, std::initializer_list<TraceArg> args)
{
    record(cat, name, 'X', ts, dur, tid, args);
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceEvent> out;
    if (ring_.empty() || recorded_ == 0)
        return out;
    const std::uint64_t n =
        std::min<std::uint64_t>(recorded_, ring_.size());
    out.reserve(n);
    const std::uint64_t first = recorded_ - n;
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(ring_[(first + i) % ring_.size()]);
    return out;
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    writeChromeTraceLocked(os);
}

void
Tracer::writeChromeTraceLocked(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\","
       << "\"otherData\":{\"clock\":\"1 cycle = 1 us\","
       << "\"dropped_events\":" << dropped() << "},"
       << "\"traceEvents\":[";
    bool first = true;
    const std::uint64_t n =
        ring_.empty() ? 0 : std::min<std::uint64_t>(recorded_,
                                                    ring_.size());
    const std::uint64_t start = recorded_ - n;
    for (std::uint64_t i = 0; i < n; ++i) {
        const TraceEvent &e = ring_[(start + i) % ring_.size()];
        os << (first ? "" : ",") << "{\"name\":\""
           << jsonEscape(e.name ? e.name : "?") << "\",\"cat\":\""
           << traceCatName(e.cat) << "\",\"ph\":\"" << e.phase
           << "\",\"ts\":" << e.ts;
        if (e.phase == 'X')
            os << ",\"dur\":" << std::max<Cycle>(e.dur, 1);
        else
            os << ",\"s\":\"t\"";
        os << ",\"pid\":0,\"tid\":" << e.tid;
        if (e.num_args > 0) {
            os << ",\"args\":{";
            for (int a = 0; a < e.num_args; ++a) {
                os << (a ? "," : "") << "\""
                   << jsonEscape(e.args[a].key) << "\":"
                   << e.args[a].value;
            }
            os << "}";
        }
        os << "}";
        first = false;
    }
    os << "]}\n";
}

void
Tracer::flush() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!any_ || path_.empty())
        return;
    std::ofstream os(path_);
    if (!os) {
        warn("FSOI_TRACE: cannot write trace file '%s'", path_.c_str());
        return;
    }
    writeChromeTraceLocked(os);
    inform("trace: wrote %llu events to %s (%llu dropped)",
           static_cast<unsigned long long>(
               std::min<std::uint64_t>(recorded_, ring_.size())),
           path_.c_str(),
           static_cast<unsigned long long>(dropped()));
}

void
Tracer::crashFlush() const
{
    std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    // A signal may have interrupted a thread mid-record() while it
    // held mu_; writing a possibly-torn ring beats deadlocking the
    // dying process.
    if (!any_ || path_.empty())
        return;
    std::ofstream os(path_);
    if (!os)
        return;
    writeChromeTraceLocked(os);
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &l : levels_)
        l = 0;
    any_ = false;
    recorded_ = 0;
    path_.clear();
}

} // namespace fsoi::obs
