#include "cpu/core.hh"

#include <algorithm>
#include <cstdio>

#include "coherence/directory.hh"
#include "common/logging.hh"
#include "snapshot/state_io.hh"

namespace fsoi::cpu {

using coherence::MsgType;
using workload::Instr;
using workload::Op;

Core::Core(NodeId node, const CoreConfig &config, coherence::L1Cache &l1,
           coherence::Transport &transport,
           std::function<NodeId(Addr)> home_of)
    : node_(node), config_(config), l1_(l1), transport_(transport),
      homeOf_(std::move(home_of)),
      rng_(config.seed ^ (0xc0ffee123ULL * (node + 1)))
{
}

void
Core::registerStats(const obs::Scope &scope) const
{
    scope.counter("instructions", stats_.instructions);
    scope.counter("loads", stats_.loads);
    scope.counter("stores", stats_.stores);
    scope.counter("locks_acquired", stats_.locks_acquired);
    scope.counter("barriers_passed", stats_.barriers_passed);
    scope.counter("spin_loops", stats_.spin_loops);
    scope.counter("stall_cycles", stats_.stall_cycles);
    scope.counter("active_cycles", stats_.active_cycles);
    scope.counter("sync_packets", stats_.sync_packets);
}

void
Core::bind(std::unique_ptr<workload::InstrStream> stream)
{
    stream_ = std::move(stream);
}

coherence::L1Cache::Callback
Core::completionCallback()
{
    // Unconditionally latch all three rendezvous fields: each waiting
    // mode reads only the fields its operation defines, so the extra
    // stores are unobservable — and a single canonical callback is what
    // lets L1Cache::loadState() re-bind restored requests to it.
    return [this](std::uint64_t v, bool ok) {
        cbArrived_ = true;
        cbValue_ = v;
        cbSuccess_ = ok;
        if (wakeHook_)
            wakeHook_();
    };
}

void
Core::onControlBit(std::uint64_t tag)
{
    Addr word;
    std::uint64_t value;
    bool success, direct;
    coherence::Directory::unpackSyncTag(tag, word, value, success, direct);
    subValues_[word] = value;
    if (direct && subWaitingDirect_ && word == subWaitWord_) {
        subWaitingDirect_ = false;
        subDirectArrived_ = true;
        subDirectValue_ = value;
        subDirectSuccess_ = success;
    }
    // Wake unconditionally, matching the tick-every-cycle engine: a
    // spinning core re-examined subValues_ on every delivery, direct
    // or not, so even a "useless" bit must trigger a (no-op) tick.
    if (wakeHook_)
        wakeHook_();
}

bool
Core::sendSync(MsgType type, Addr word, std::uint64_t value,
               bool subscribe, bool unconditional)
{
    coherence::Message msg{};
    msg.type = type;
    msg.line = word;
    msg.requester = node_;
    msg.value = value;
    msg.subscribe = subscribe;
    msg.success = unconditional;
    if (!transport_.trySend(node_, homeOf_(word), msg))
        return false;
    stats_.sync_packets++;
    subWaitingDirect_ = true;
    subWaitWord_ = word;
    subDirectArrived_ = false;
    return true;
}

void
Core::fetch(Cycle now)
{
    FSOI_ASSERT(stream_ != nullptr, "core %u has no instruction stream",
                node_);
    instr_ = stream_->next();
    startInstr(now);
}

void
Core::startInstr(Cycle now)
{
    switch (instr_.op) {
      case Op::Compute:
        stats_.instructions += instr_.cycles;
        busyUntil_ = now + instr_.cycles;
        mode_ = Mode::Compute;
        return;
      case Op::Load:
        mode_ = Mode::LoadIssue;
        return;
      case Op::Store:
        mode_ = Mode::StoreIssue;
        return;
      case Op::Lock:
        syncStep_ = 0;
        mode_ = config_.sync_subscription ? Mode::SubLlSend : Mode::LockLl;
        return;
      case Op::Unlock:
        syncStep_ = 0;
        mode_ = config_.sync_subscription ? Mode::SubStoreSend
                                          : Mode::UnlockStore;
        return;
      case Op::Barrier: {
        auto &sense = senses_[instr_.addr];
        sense ^= 1;
        mySense_ = sense;
        syncStep_ = 0;
        mode_ = config_.sync_subscription ? Mode::SubLlSend : Mode::BarLl;
        return;
      }
      case Op::End:
        mode_ = Mode::Done;
        return;
    }
}

bool
Core::subSpinSatisfied() const
{
    const Addr word = instr_.op == Op::Lock ? instr_.addr
                                            : instr_.addr + 64;
    const std::uint64_t want = instr_.op == Op::Lock ? 0 : mySense_;
    const auto it = subValues_.find(word);
    return it != subValues_.end() && it->second == want;
}

Cycle
Core::nextEventCycle(Cycle now) const
{
    switch (mode_) {
      case Mode::Done:
        return kNoCycle;

      // Compute and the pause modes sit idle until busyUntil_; the
      // per-cycle accounting they would have accrued is reconstructed
      // by catchUp().
      case Mode::Compute:
      case Mode::LockRetryPause:
      case Mode::LockSpinPause:
      case Mode::BarRetryPause:
      case Mode::BarSpinPause:
        return std::max(busyUntil_, now + 1);

      // Callback rendezvous: nothing to do until the L1 completion
      // lands (which wakes us through the wake hook).
      case Mode::LoadWait:
      case Mode::LockLlWait:
      case Mode::LockScWait:
      case Mode::LockSpinWait:
      case Mode::BarLlWait:
      case Mode::BarScWait:
      case Mode::BarSpinWait:
        return cbArrived_ ? now + 1 : kNoCycle;

      // Subscription rendezvous: woken by the control-bit delivery.
      case Mode::SubLlWait:
      case Mode::SubScWait:
      case Mode::SubStoreWait:
        return subDirectArrived_ ? now + 1 : kNoCycle;

      // Passive spin on the subscription value table: progress only
      // when a control bit flips the watched word (wake hook), or
      // immediately if the wanted value is already there.
      case Mode::SubSpin:
        return subSpinSatisfied() ? now + 1 : kNoCycle;

      // Everything else (fetch, issue/send retries, store drains)
      // attempts forward progress every cycle.
      default:
        return now + 1;
    }
}

void
Core::catchUp(Cycle now)
{
    // Reconstruct the per-cycle counter updates the tick-every-cycle
    // engine would have made over the skipped span (now_, now): the
    // gap covers cycles now_ + 1 .. now - 1, exclusive of the tick
    // about to run at `now` which does its own accounting.
    const Cycle gap = now - now_ - 1;
    switch (mode_) {
      case Mode::Compute: {
        // Each skipped cycle c with c < busyUntil_ was an active
        // cycle; the scheduler wakes us at busyUntil_, so normally
        // the whole gap qualifies (min() guards spurious late wakes).
        const Cycle active_end = std::min(now, busyUntil_);
        if (active_end > now_ + 1)
            stats_.active_cycles += active_end - now_ - 1;
        return;
      }

      case Mode::LoadWait:
      case Mode::LockLlWait:
      case Mode::LockScWait:
      case Mode::LockSpinWait:
      case Mode::BarLlWait:
      case Mode::BarScWait:
      case Mode::BarSpinWait:
      case Mode::SubLlWait:
      case Mode::SubScWait:
      case Mode::SubStoreWait:
        // Every skipped cycle preceded the arrival (arrival itself
        // forces a same-cycle tick through the wake hook).
        stats_.stall_cycles += gap;
        return;

      // Pause modes and SubSpin accrued nothing per cycle in the
      // original engine; fetch/issue modes never sleep.
      default:
        return;
    }
}

void
Core::syncStats(Cycle now)
{
    if (now > now_ + 1)
        catchUp(now);
    if (now > now_) {
        // Account the boundary cycle `now` itself the way a tick at
        // `now` would have: the sampler reads after components ran.
        switch (mode_) {
          case Mode::Compute:
            if (now < busyUntil_)
                stats_.active_cycles++;
            break;
          case Mode::LoadWait:
          case Mode::LockLlWait:
          case Mode::LockScWait:
          case Mode::LockSpinWait:
          case Mode::BarLlWait:
          case Mode::BarScWait:
          case Mode::BarSpinWait:
            if (!cbArrived_)
                stats_.stall_cycles++;
            break;
          case Mode::SubLlWait:
          case Mode::SubScWait:
          case Mode::SubStoreWait:
            if (!subDirectArrived_)
                stats_.stall_cycles++;
            break;
          default:
            break;
        }
        now_ = now;
    }
}

void
Core::tick(Cycle now)
{
    if (now > now_ + 1)
        catchUp(now);
    now_ = now;
    switch (mode_) {
      case Mode::Done:
        return;

      case Mode::Fetch:
        fetch(now);
        return;

      case Mode::Compute:
        if (now >= busyUntil_)
            mode_ = Mode::Fetch;
        else
            stats_.active_cycles++;
        return;

      case Mode::LoadIssue:
        cbArrived_ = false;
        if (l1_.load(instr_.addr, completionCallback()))
            mode_ = Mode::LoadWait;
        return;

      case Mode::LoadWait:
        if (cbArrived_) {
            stats_.loads++;
            stats_.instructions++;
            mode_ = Mode::Fetch;
        } else {
            stats_.stall_cycles++;
        }
        return;

      case Mode::StoreIssue:
        if (l1_.store(instr_.addr, instr_.value)) {
            stats_.stores++;
            stats_.instructions++;
            mode_ = Mode::Fetch;
        } else {
            stats_.stall_cycles++; // store buffer full
        }
        return;

      // ----- test-and-test-and-set lock, ll/sc flavour -----
      case Mode::LockLl:
        cbArrived_ = false;
        if (l1_.loadLinked(instr_.addr, completionCallback()))
            mode_ = Mode::LockLlWait;
        return;

      case Mode::LockLlWait:
        if (!cbArrived_) {
            stats_.stall_cycles++;
            return;
        }
        mode_ = cbValue_ == 0 ? Mode::LockSc : Mode::LockSpinPause;
        busyUntil_ = now + config_.spin_delay;
        return;

      case Mode::LockSc:
        cbArrived_ = false;
        if (l1_.storeConditional(instr_.addr, 1, completionCallback()))
            mode_ = Mode::LockScWait;
        return;

      case Mode::LockScWait:
        if (!cbArrived_) {
            stats_.stall_cycles++;
            return;
        }
        if (cbSuccess_) {
            stats_.locks_acquired++;
            stats_.instructions++;
            scFails_ = 0;
            mode_ = Mode::Fetch;
        } else {
            scFails_ = std::min(scFails_ + 1, 8);
            const std::uint64_t window =
                static_cast<std::uint64_t>(config_.sc_backoff)
                << scFails_;
            busyUntil_ = now + 1 + rng_.nextBelow(window + 1);
            mode_ = Mode::LockRetryPause;
        }
        return;

      case Mode::LockRetryPause:
        if (now >= busyUntil_)
            mode_ = Mode::LockLl;
        return;

      case Mode::LockSpinPause:
        if (now >= busyUntil_) {
            stats_.spin_loops++;
            mode_ = Mode::LockSpinLoad;
        }
        return;

      case Mode::LockSpinLoad:
        cbArrived_ = false;
        if (l1_.load(instr_.addr, completionCallback()))
            mode_ = Mode::LockSpinWait;
        return;

      case Mode::LockSpinWait:
        if (!cbArrived_) {
            stats_.stall_cycles++;
            return;
        }
        if (cbValue_ == 0) {
            mode_ = Mode::LockLl;
        } else {
            busyUntil_ = now + config_.spin_delay;
            mode_ = Mode::LockSpinPause;
        }
        return;

      case Mode::UnlockStore:
        if (l1_.store(instr_.addr, 0)) {
            stats_.instructions++;
            mode_ = Mode::Fetch;
        }
        return;

      // ----- sense-reversing barrier with ll/sc fetch-and-increment -----
      case Mode::BarLl:
        cbArrived_ = false;
        if (l1_.loadLinked(instr_.addr, completionCallback()))
            mode_ = Mode::BarLlWait;
        return;

      case Mode::BarLlWait:
        if (!cbArrived_) {
            stats_.stall_cycles++;
            return;
        }
        llValue_ = cbValue_;
        mode_ = Mode::BarSc;
        return;

      case Mode::BarSc:
        cbArrived_ = false;
        if (l1_.storeConditional(instr_.addr, llValue_ + 1,
                                 completionCallback()))
            mode_ = Mode::BarScWait;
        return;

      case Mode::BarScWait:
        if (!cbArrived_) {
            stats_.stall_cycles++;
            return;
        }
        if (!cbSuccess_) {
            scFails_ = std::min(scFails_ + 1, 8);
            const std::uint64_t window =
                static_cast<std::uint64_t>(config_.sc_backoff)
                << scFails_;
            busyUntil_ = now + 1 + rng_.nextBelow(window + 1);
            mode_ = Mode::BarRetryPause;
            return;
        }
        scFails_ = 0;
        if (llValue_ + 1 == instr_.value) {
            mode_ = Mode::BarResetStore; // last arriver releases
        } else {
            busyUntil_ = now + config_.spin_delay;
            mode_ = Mode::BarSpinPause;
        }
        return;

      case Mode::BarResetStore:
        if (l1_.store(instr_.addr, 0))
            mode_ = Mode::BarReleaseStore;
        return;

      case Mode::BarReleaseStore:
        if (l1_.store(instr_.addr + 64, mySense_)) {
            stats_.barriers_passed++;
            stats_.instructions++;
            mode_ = Mode::Fetch;
        }
        return;

      case Mode::BarRetryPause:
        if (now >= busyUntil_)
            mode_ = Mode::BarLl;
        return;

      case Mode::BarSpinPause:
        if (now >= busyUntil_) {
            stats_.spin_loops++;
            mode_ = Mode::BarSpinLoad;
        }
        return;

      case Mode::BarSpinLoad:
        cbArrived_ = false;
        if (l1_.load(instr_.addr + 64, completionCallback()))
            mode_ = Mode::BarSpinWait;
        return;

      case Mode::BarSpinWait:
        if (!cbArrived_) {
            stats_.stall_cycles++;
            return;
        }
        if (cbValue_ == mySense_) {
            stats_.barriers_passed++;
            stats_.instructions++;
            mode_ = Mode::Fetch;
        } else {
            busyUntil_ = now + config_.spin_delay;
            mode_ = Mode::BarSpinPause;
        }
        return;

      // ----- subscription-mode synchronization (Section 5.1) -----
      case Mode::SubLlSend: {
        const bool barrier_sense_phase =
            instr_.op == Op::Barrier && syncStep_ == 5;
        const Addr word = barrier_sense_phase ? instr_.addr + 64
                                              : instr_.addr;
        // Subscribe when we may need pushed updates: the lock word, or
        // the barrier sense word.
        const bool subscribe =
            instr_.op == Op::Lock || barrier_sense_phase;
        if (sendSync(MsgType::SyncLl, word, 0, subscribe, false))
            mode_ = Mode::SubLlWait;
        return;
      }

      case Mode::SubLlWait:
        if (!subDirectArrived_) {
            stats_.stall_cycles++;
            return;
        }
        subDirectArrived_ = false;
        if (instr_.op == Op::Lock) {
            if (subDirectValue_ == 0) {
                mode_ = Mode::SubScSend;
            } else {
                stats_.spin_loops++;
                mode_ = Mode::SubSpin; // wait for a pushed 0
            }
            return;
        }
        FSOI_ASSERT(instr_.op == Op::Barrier);
        if (syncStep_ == 5) {
            if (subDirectValue_ == mySense_) {
                stats_.barriers_passed++;
                stats_.instructions++;
                mode_ = Mode::Fetch;
            } else {
                stats_.spin_loops++;
                mode_ = Mode::SubSpin;
            }
            return;
        }
        llValue_ = subDirectValue_;
        mode_ = Mode::SubScSend;
        return;

      case Mode::SubScSend: {
        const std::uint64_t value =
            instr_.op == Op::Lock ? 1 : llValue_ + 1;
        if (sendSync(MsgType::SyncSc, instr_.addr, value, false, false))
            mode_ = Mode::SubScWait;
        return;
      }

      case Mode::SubScWait:
        if (!subDirectArrived_) {
            stats_.stall_cycles++;
            return;
        }
        subDirectArrived_ = false;
        if (instr_.op == Op::Lock) {
            if (subDirectSuccess_) {
                stats_.locks_acquired++;
                stats_.instructions++;
                mode_ = Mode::Fetch;
            } else {
                syncStep_ = 0;
                mode_ = Mode::SubLlSend;
            }
            return;
        }
        FSOI_ASSERT(instr_.op == Op::Barrier);
        if (!subDirectSuccess_) {
            syncStep_ = 0;
            mode_ = Mode::SubLlSend;
            return;
        }
        if (llValue_ + 1 == instr_.value) {
            syncStep_ = 3; // last arriver: reset count, flip sense
            mode_ = Mode::SubStoreSend;
        } else {
            syncStep_ = 5; // subscribe to the sense word and wait
            mode_ = Mode::SubLlSend;
        }
        return;

      case Mode::SubSpin: {
        const Addr word = instr_.op == Op::Lock ? instr_.addr
                                                : instr_.addr + 64;
        const std::uint64_t want =
            instr_.op == Op::Lock ? 0 : mySense_;
        const auto it = subValues_.find(word);
        if (it != subValues_.end() && it->second == want) {
            if (instr_.op == Op::Lock) {
                syncStep_ = 0;
                mode_ = Mode::SubLlSend; // re-ll to refresh the link
            } else {
                stats_.barriers_passed++;
                stats_.instructions++;
                mode_ = Mode::Fetch;
            }
        }
        return;
      }

      case Mode::SubStoreSend: {
        Addr word;
        std::uint64_t value;
        if (instr_.op == Op::Unlock) {
            word = instr_.addr;
            value = 0;
        } else if (syncStep_ == 3) {
            word = instr_.addr; // reset barrier count
            value = 0;
        } else {
            FSOI_ASSERT(syncStep_ == 4);
            word = instr_.addr + 64; // release the sense word
            value = mySense_;
        }
        if (sendSync(MsgType::SyncSc, word, value, false, true))
            mode_ = Mode::SubStoreWait;
        return;
      }

      case Mode::SubStoreWait:
        if (!subDirectArrived_) {
            stats_.stall_cycles++;
            return;
        }
        subDirectArrived_ = false;
        if (instr_.op == Op::Unlock) {
            stats_.instructions++;
            mode_ = Mode::Fetch;
        } else if (syncStep_ == 3) {
            syncStep_ = 4;
            mode_ = Mode::SubStoreSend;
        } else {
            stats_.barriers_passed++;
            stats_.instructions++;
            mode_ = Mode::Fetch;
        }
        return;
    }
}

void
Core::saveState(snapshot::Writer &w) const
{
    using snapshot::saveCounter;

    w.u8(static_cast<std::uint8_t>(mode_));
    w.u8(static_cast<std::uint8_t>(instr_.op));
    w.u64(instr_.addr);
    w.u32(instr_.cycles);
    w.u64(instr_.value);
    w.u64(busyUntil_);
    w.u64(now_);

    w.boolean(cbArrived_);
    w.u64(cbValue_);
    w.boolean(cbSuccess_);

    std::vector<Addr> keys;
    keys.reserve(senses_.size());
    for (const auto &[addr, sense] : senses_)
        keys.push_back(addr);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (const Addr addr : keys) {
        w.u64(addr);
        w.u64(senses_.at(addr));
    }
    w.u64(mySense_);
    w.u64(llValue_);

    w.boolean(subWaitingDirect_);
    w.u64(subWaitWord_);
    w.boolean(subDirectArrived_);
    w.u64(subDirectValue_);
    w.boolean(subDirectSuccess_);
    keys.clear();
    for (const auto &[addr, value] : subValues_)
        keys.push_back(addr);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (const Addr addr : keys) {
        w.u64(addr);
        w.u64(subValues_.at(addr));
    }

    w.i32(syncStep_);
    w.i32(scFails_);
    snapshot::saveRng(w, rng_);

    saveCounter(w, stats_.instructions);
    saveCounter(w, stats_.loads);
    saveCounter(w, stats_.stores);
    saveCounter(w, stats_.locks_acquired);
    saveCounter(w, stats_.barriers_passed);
    saveCounter(w, stats_.spin_loops);
    saveCounter(w, stats_.stall_cycles);
    saveCounter(w, stats_.active_cycles);
    saveCounter(w, stats_.sync_packets);

    FSOI_ASSERT(stream_ != nullptr, "core %u has no instruction stream",
                node_);
    stream_->saveState(w);
}

void
Core::loadState(snapshot::Reader &r)
{
    using snapshot::loadCounter;

    mode_ = static_cast<Mode>(r.u8());
    instr_.op = static_cast<workload::Op>(r.u8());
    instr_.addr = r.u64();
    instr_.cycles = r.u32();
    instr_.value = r.u64();
    busyUntil_ = r.u64();
    now_ = r.u64();

    cbArrived_ = r.boolean();
    cbValue_ = r.u64();
    cbSuccess_ = r.boolean();

    senses_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr addr = r.u64();
        senses_[addr] = r.u64();
    }
    mySense_ = r.u64();
    llValue_ = r.u64();

    subWaitingDirect_ = r.boolean();
    subWaitWord_ = r.u64();
    subDirectArrived_ = r.boolean();
    subDirectValue_ = r.u64();
    subDirectSuccess_ = r.boolean();
    subValues_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr addr = r.u64();
        subValues_[addr] = r.u64();
    }

    syncStep_ = r.i32();
    scFails_ = r.i32();
    snapshot::loadRng(r, rng_);

    loadCounter(r, stats_.instructions);
    loadCounter(r, stats_.loads);
    loadCounter(r, stats_.stores);
    loadCounter(r, stats_.locks_acquired);
    loadCounter(r, stats_.barriers_passed);
    loadCounter(r, stats_.spin_loops);
    loadCounter(r, stats_.stall_cycles);
    loadCounter(r, stats_.active_cycles);
    loadCounter(r, stats_.sync_packets);

    FSOI_ASSERT(stream_ != nullptr, "core %u has no instruction stream",
                node_);
    stream_->loadState(r);
}

void
Core::debugDump() const
{
    std::fprintf(stderr,
                 "core %u: mode=%d op=%d addr=%llx step=%d instr=%llu "
                 "waitdirect=%d waitword=%llx mysense=%llu llv=%llu\n",
                 node_, (int)mode_, (int)instr_.op,
                 (unsigned long long)instr_.addr, syncStep_,
                 (unsigned long long)stats_.instructions.value(),
                 (int)subWaitingDirect_,
                 (unsigned long long)subWaitWord_,
                 (unsigned long long)mySense_,
                 (unsigned long long)llValue_);
}

} // namespace fsoi::cpu
