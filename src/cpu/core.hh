/**
 * @file
 * In-order core model.
 *
 * Executes the workload's coarse-grained instruction stream: compute
 * bursts at IPC 1, blocking loads, store-buffer stores, and
 * synchronization macro-ops expanded into ll/sc spin sequences
 * (test-and-test-and-set locks, sense-reversing barriers with ll/sc
 * fetch-and-increment).
 *
 * With the FSOI subscription optimization enabled (Section 5.1),
 * synchronization words bypass the cache hierarchy entirely: ll/sc
 * travel as SyncLl/SyncSc meta packets to the home directory, replies
 * and spin values arrive over the confirmation lane's reserved
 * mini-slots, and spinning consumes no network traffic at all.
 */

#ifndef FSOI_CPU_CORE_HH
#define FSOI_CPU_CORE_HH

#include <functional>
#include <memory>
#include <unordered_map>

#include "coherence/l1_cache.hh"
#include "common/rng.hh"
#include "coherence/transport.hh"
#include "common/stats.hh"
#include "workload/instr.hh"

namespace fsoi::snapshot {
class Writer;
class Reader;
} // namespace fsoi::snapshot

namespace fsoi::cpu {

/** Core configuration. */
struct CoreConfig
{
    int spin_delay = 3; //!< cycles between spin-loop reload attempts
    /**
     * Maximum random pause before retrying a failed sc. Deterministic
     * simulation otherwise sustains perfectly periodic ll/sc livelock
     * between symmetric contenders; real systems break the symmetry
     * through timing noise.
     */
    int sc_backoff = 15;
    std::uint64_t seed = 1; //!< per-core RNG stream seed
    /** Route sync ops through the directory update protocol (FSOI). */
    bool sync_subscription = false;
};

/** Per-core statistics. */
struct CoreStats
{
    Counter instructions; //!< committed (compute cycles + mem + sync ops)
    Counter loads;
    Counter stores;
    Counter locks_acquired;
    Counter barriers_passed;
    Counter spin_loops;
    Counter stall_cycles;  //!< cycles blocked on memory
    Counter active_cycles; //!< cycles doing compute work
    Counter sync_packets;  //!< SyncLl/SyncSc messages sent
};

/** One in-order core. */
class Core
{
  public:
    Core(NodeId node, const CoreConfig &config, coherence::L1Cache &l1,
         coherence::Transport &transport,
         std::function<NodeId(Addr)> home_of);

    NodeId node() const { return node_; }
    const CoreStats &stats() const { return stats_; }

    /** Publish this core's stats under @p scope (e.g. core3). */
    void registerStats(const obs::Scope &scope) const;

    /** Attach the thread's instruction stream (before the first tick). */
    void bind(std::unique_ptr<workload::InstrStream> stream);

    void tick(Cycle now);

    bool done() const { return mode_ == Mode::Done; }

    /**
     * Keep now_ fresh on skipped cycles: a Done core's tick() is
     * exactly this store, so the System calls syncClock() instead.
     */
    void syncClock(Cycle now) { now_ = now; }

    /**
     * Event-calendar contract: the next cycle this core must tick, or
     * kNoCycle for "only on delivery" (a waiting core is woken by its
     * completion callback / control bit through the wake hook). Always
     * a pure function of core state, so the scheduler can drop and
     * recompute it at will; a tick earlier than the reported cycle is
     * harmless (catchUp() keeps the cycle accounting exact).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Invoked whenever an external event (L1 completion callback,
     * subscription control bit) lands on this core, so the scheduler
     * can queue a sleeping core for the current cycle's core phase.
     */
    void setWakeHook(std::function<void()> hook)
    { wakeHook_ = std::move(hook); }

    /**
     * Bring the stall/active cycle counters up to date through cycle
     * @p now without running a tick — the per-cycle accounting a
     * sleeping core would have accumulated had it been ticked every
     * cycle. Used by the interval sampler so mid-run snapshots of the
     * stat registry match the tick-every-cycle engine exactly.
     */
    void syncStats(Cycle now);

    /** Subscription side-channel delivery (wired up by the System). */
    void onControlBit(std::uint64_t tag);

    /** Print execution state to stderr (watchdog diagnostics). */
    void debugDump() const;

    /**
     * The canonical L1 completion callback. Every request this core
     * issues carries (a copy of) this callback, which makes pending L1
     * callbacks restorable: L1Cache::loadState() re-binds deserialized
     * entries to it instead of serializing closures.
     */
    coherence::L1Cache::Callback completionCallback();

    /**
     * Checkpoint/restore (snapshot/). The instruction stream saves and
     * restores itself through InstrStream::saveState/loadState; the
     * barrier-sense and subscription tables are written sorted by key
     * so snapshot bytes never depend on hash-table iteration order.
     */
    void saveState(snapshot::Writer &w) const;
    void loadState(snapshot::Reader &r);

  private:
    enum class Mode : std::uint8_t
    {
        Fetch,
        Compute,
        LoadIssue,
        LoadWait,
        StoreIssue,
        // Lock acquire (normal mode).
        LockLl,
        LockLlWait,
        LockSc,
        LockScWait,
        LockSpinLoad,
        LockSpinWait,
        LockSpinPause,
        LockRetryPause,
        UnlockStore,
        // Barrier (normal mode).
        BarLl,
        BarLlWait,
        BarSc,
        BarScWait,
        BarResetStore,
        BarReleaseStore,
        BarSpinLoad,
        BarSpinWait,
        BarSpinPause,
        BarRetryPause,
        // Subscription-mode synchronization.
        SubLlSend,
        SubLlWait,
        SubScSend,
        SubScWait,
        SubSpin,
        SubStoreSend,
        SubStoreWait,
        Done,
    };

    void fetch(Cycle now);
    void startInstr(Cycle now);
    bool sendSync(coherence::MsgType type, Addr word, std::uint64_t value,
                  bool subscribe, bool unconditional);
    void catchUp(Cycle now);
    bool subSpinSatisfied() const;

    NodeId node_;
    CoreConfig config_;
    coherence::L1Cache &l1_;
    coherence::Transport &transport_;
    std::function<NodeId(Addr)> homeOf_;
    std::unique_ptr<workload::InstrStream> stream_;
    Rng rng_;

    Mode mode_ = Mode::Fetch;
    workload::Instr instr_{};
    Cycle busyUntil_ = 0;
    Cycle now_ = 0;

    // Callback rendezvous.
    bool cbArrived_ = false;
    std::uint64_t cbValue_ = 0;
    bool cbSuccess_ = false;

    // Barrier bookkeeping.
    std::unordered_map<Addr, std::uint64_t> senses_; //!< per barrier addr
    std::uint64_t mySense_ = 0;
    std::uint64_t llValue_ = 0;

    // Subscription side-channel state.
    bool subWaitingDirect_ = false;
    Addr subWaitWord_ = 0;
    bool subDirectArrived_ = false;
    std::uint64_t subDirectValue_ = 0;
    bool subDirectSuccess_ = false;
    std::unordered_map<Addr, std::uint64_t> subValues_;

    // Subscription-mode sequencing within a macro-op.
    int syncStep_ = 0;
    int scFails_ = 0; //!< consecutive sc failures (backoff doubling)

    // Scheduler wake notification; not serialized (rewired on restore).
    std::function<void()> wakeHook_;

    CoreStats stats_;
};

} // namespace fsoi::cpu

#endif // FSOI_CPU_CORE_HH
