/**
 * @file
 * Conventional packet-switched electrical mesh: the paper's baseline.
 *
 * Canonical 4-cycle virtual-channel wormhole routers (buffer write /
 * route compute, VC allocation, switch allocation, switch traversal)
 * with credit-based flow control, XY dimension-order routing, 4 VCs per
 * input port, 12-flit VC buffers and 1-cycle links (Table 3).
 *
 * Meta packets occupy 1 flit, data packets 5 flits (72-bit flits). VCs
 * are partitioned between the two classes (2 + 2), which keeps request
 * and reply traffic from head-of-line blocking each other; ejection
 * never blocks (protocol-level overflow is handled by NACKs at the
 * controllers, per the paper's footnote 3).
 *
 * The network also counts the micro-events (buffer accesses, crossbar
 * and link traversals, arbitrations) that the Orion-style energy model
 * converts to energy.
 */

#ifndef FSOI_NOC_MESH_NETWORK_HH
#define FSOI_NOC_MESH_NETWORK_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <ostream>
#include <vector>

#include "common/pool.hh"
#include "noc/network.hh"
#include "noc/topology.hh"

namespace fsoi::fault {
class FaultInjector;
} // namespace fsoi::fault

namespace fsoi::noc {

/** Mesh parameters (defaults = Table 3). */
struct MeshConfig
{
    int num_vcs = 4;            //!< virtual channels per input port
    int buffer_depth = 12;      //!< flits per VC buffer
    int router_cycles = 4;      //!< router pipeline depth
    int link_cycles = 1;        //!< link traversal
    int meta_flits = 1;         //!< flits per meta packet
    int data_flits = 5;         //!< flits per data packet
    int inject_queue_capacity = 8; //!< packets per source per class
    /**
     * Bandwidth scale factor for the Figure 11 sensitivity study:
     * 1.0 = full bandwidth. Scaling below 1.0 stretches serialization
     * (more flits per packet) to model narrower links.
     */
    double bandwidth_scale = 1.0;
};

/** Micro-event counters consumed by the energy model. */
struct MeshActivity
{
    Counter buffer_writes;
    Counter buffer_reads;
    Counter crossbar_traversals;
    Counter link_traversals;
    Counter arbitrations;
};

/** The full mesh interconnect. */
class MeshNetwork : public Network
{
  public:
    /**
     * @p fault, when non-null, injects the scheduled hardware faults:
     * dead mesh links are routed around with per-destination BFS
     * next-hop tables (falling back to plain XY when no link is dead),
     * packets without any live route are dropped and counted, and
     * CRC-detected corrupted ejections are NACKed back to the source
     * for retransmission.
     */
    MeshNetwork(const MeshLayout &layout, const MeshConfig &config,
                fault::FaultInjector *fault = nullptr);
    ~MeshNetwork() override;

    bool send(Packet &&pkt) override;
    bool canAccept(NodeId src, PacketClass cls) const override;
    int sendBudget(NodeId src, PacketClass cls) const override;
    void tick(Cycle now) override;
    bool idle() const override;

    /**
     * Event-calendar contract: a drained mesh (retx-queued packets
     * stay counted in packetsInFlight_) only needs ticking again once
     * something sends, and a busy mesh whose every front flit is still
     * in a router pipeline needs no tick until the earliest of those
     * ready_at stamps (or a credit, ejection, or retransmission
     * matures). A tick on any earlier cycle is a no-op apart from the
     * scan_phase rotation, which the idleTicks_ replay reproduces
     * exactly for skipped cycles, so reporting the true next event is
     * behaviour-preserving. Injection streams one flit per endpoint
     * per cycle, so any flagged injector pins the wake to now + 1.
     */
    Cycle nextEventCycle(Cycle now) const override;
    void registerStats(const obs::Scope &scope) const override;

    const MeshActivity &activity() const { return activity_; }
    const MeshConfig &config() const { return config_; }
    const MeshLayout &layout() const { return layout_; }

    /** Flits per packet of @p cls after bandwidth scaling. */
    int
    flitsPerPacket(PacketClass cls) const
    {
        return flits_[cls == PacketClass::Meta ? 0 : 1];
    }

    /** Print buffered-flit state to stderr (watchdog diagnostics). */
    void debugDump() const;

    /** Checkpoint/restore: one section for the shared mesh state plus
     *  one per router ("<prefix>.router[i]") for named diagnosis. */
    void saveSnapshot(snapshot::SnapshotWriter &snap,
                      const std::string &prefix) const override;
    void loadSnapshot(const snapshot::SnapshotReader &snap,
                      const std::string &prefix) override;

    /**
     * True when a live route exists from @p src to @p dst. Always true
     * without dead links (plain XY never fails on a healthy grid).
     */
    bool reachable(NodeId src, NodeId dst) const;

    /** True when every router pair still has a live route. */
    bool fullyConnected() const;

    /** Flits that crossed router @p router's link in @p direction
     *  (0=east, 1=west, 2=north, 3=south); 0 for absent edge links. */
    std::uint64_t linkFlits(int router, int direction) const
    { return linkFlits_[router][direction].value(); }

    /**
     * Write the congestion snapshot the flight recorder embeds in its
     * "context" object: one JSON value describing every router holding
     * flits (with its blocked output VCs) and every injector with a
     * backlog. Empty run -> compact all-clear object.
     */
    void writeLinkStateJson(std::ostream &os) const;

  private:
    struct Router;
    struct Flit;

    /** Index into pkts_; flits and injectors hold these, not pointers. */
    using PacketHandle = common::SlotPool<Packet>::Handle;
    static constexpr PacketHandle kNullPkt = common::SlotPool<Packet>::kNull;

    struct InjectLane
    {
        std::deque<Packet> queue;
    };

    /** Per-endpoint injection state: streams one flit per cycle. */
    struct Injector
    {
        InjectLane lanes[2];            // per class
        // In-progress packet per class: remaining flits to inject.
        PacketHandle active[2] = {kNullPkt, kNullPkt};
        int remaining[2] = {0, 0};
        int vc[2] = {-1, -1};           // VC chosen for the active packet
        int rr_class = 0;               // alternate between classes

        bool
        quiet() const
        {
            return active[0] == kNullPkt && active[1] == kNullPkt
                && lanes[0].queue.empty() && lanes[1].queue.empty();
        }
    };

    struct PendingDelivery
    {
        Cycle due;
        PacketHandle pkt;
    };

    /** A NACKed packet waiting out its round trip before re-injection. */
    struct RetxEvent
    {
        Cycle due;
        Packet pkt;
    };

    void tickInjection(Cycle now);
    void startPacket(Injector &inj, int cls_idx, NodeId endpoint);
    int localPortOf(NodeId endpoint) const;
    int computeFlitsPerPacket(PacketClass cls) const;

    /** BFS per-destination next-hop tables avoiding dead links. */
    void buildRouteTable();

    static void saveFlit(snapshot::Writer &w, const Flit &flit);
    static Flit loadFlit(snapshot::Reader &r);

    MeshLayout layout_;
    MeshConfig config_;
    MeshActivity activity_;
    fault::FaultInjector *fault_; //!< non-owning; null = healthy system
    /**
     * Fault-aware routing table, [dst_router * num_routers + router] ->
     * output port (-1 = unreachable). Empty when no mesh link is dead,
     * in which case the inline XY computation is byte-for-byte the
     * pre-fault behaviour.
     */
    std::vector<std::int16_t> nextHop_;
    /** Per-router, per-direction link traversal counts (heatmap). */
    std::vector<std::array<Counter, 4>> linkFlits_;
    // In-flight packets, addressed by 32-bit handle from flits, the
    // injectors' active slots, and the pending-delivery list. The pool
    // recycles slots, so steady-state traffic never allocates.
    common::SlotPool<Packet> pkts_;
    // Contiguous by value (legal for the incomplete Router type since
    // all member functions live in the .cc): the tick loop walks every
    // router each executed cycle, so the array layout matters. The
    // vector reserves its final size before the wiring pass and never
    // grows after, keeping the inter-router peer/up pointers stable.
    std::vector<Router> routers_;
    std::vector<Injector> injectors_;       // per endpoint
    /**
     * Bitmap of endpoints whose injector may have work (a queued or
     * in-progress packet). tickInjection() walks set bits instead of
     * every endpoint and clears a bit once the injector drains; send()
     * and retransmission re-set it. Memoization only — never
     * serialized, rebuilt from injector state on snapshot restore.
     */
    std::vector<std::uint64_t> injWake_;
    std::vector<PendingDelivery> pending_;  // tail-ejected packets
    std::vector<RetxEvent> retxQueue_;      // NACKed, awaiting re-inject
    std::uint64_t packetsInFlight_ = 0;
    std::uint64_t pendingCredits_ = 0; //!< unmatured credit events
    std::uint64_t idleTicks_ = 0;      //!< skipped ticks to replay
    int flits_[2] = {1, 5};            //!< cached flits per class
};

} // namespace fsoi::noc

#endif // FSOI_NOC_MESH_NETWORK_HH
