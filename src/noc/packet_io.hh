/**
 * @file
 * Snapshot serialization for noc::Packet. Field-by-field (never a raw
 * struct memcpy): padding bytes are indeterminate and would make the
 * per-section snapshot hashes nondeterministic. The inline payload is
 * written in full -- makePacket() zero-initializes the unused tail.
 */

#ifndef FSOI_NOC_PACKET_IO_HH
#define FSOI_NOC_PACKET_IO_HH

#include "noc/packet.hh"
#include "snapshot/archive.hh"

namespace fsoi::noc {

inline void
savePacket(snapshot::Writer &w, const Packet &pkt)
{
    w.u64(pkt.id);
    w.u32(pkt.src);
    w.u32(pkt.dst);
    w.u8(static_cast<std::uint8_t>(pkt.cls));
    w.u8(static_cast<std::uint8_t>(pkt.kind));
    w.raw(pkt.payload, Packet::kMaxPayloadBytes);
    w.u64(pkt.created);
    w.u64(pkt.first_tx);
    w.u64(pkt.final_tx);
    w.u64(pkt.delivered);
    w.u64(pkt.sched_delay);
    w.i32(pkt.retries);
}

inline Packet
loadPacket(snapshot::Reader &r)
{
    Packet pkt{};
    pkt.id = r.u64();
    pkt.src = r.u32();
    pkt.dst = r.u32();
    pkt.cls = static_cast<PacketClass>(r.u8());
    pkt.kind = static_cast<PacketKind>(r.u8());
    r.raw(pkt.payload, Packet::kMaxPayloadBytes);
    pkt.created = r.u64();
    pkt.first_tx = r.u64();
    pkt.final_tx = r.u64();
    pkt.delivered = r.u64();
    pkt.sched_delay = r.u64();
    pkt.retries = r.i32();
    return pkt;
}

} // namespace fsoi::noc

#endif // FSOI_NOC_PACKET_IO_HH
