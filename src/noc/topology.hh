/**
 * @file
 * Physical placement shared by every interconnect model.
 *
 * Cores sit on a sqrt(N) x sqrt(N) grid (4x4 or 8x8 in the paper).
 * Memory controllers are extra endpoints attached to existing routers
 * (the paper attaches one per quadrant in the 16-node system); they do
 * not add routers of their own. The ideal (Lr1/Lr2) networks charge
 * per-hop latency using the same placement, and the FSOI free-space
 * distances derive from it as well.
 */

#ifndef FSOI_NOC_TOPOLOGY_HH
#define FSOI_NOC_TOPOLOGY_HH

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace fsoi::noc {

/** Grid placement of cores and memory controllers. */
class MeshLayout
{
  public:
    /**
     * @param num_cores   perfect square (16 or 64 in the paper)
     * @param num_memctls memory-controller endpoints (4 or 8)
     */
    MeshLayout(int num_cores, int num_memctls)
        : numCores_(num_cores), numMemctls_(num_memctls)
    {
        side_ = static_cast<int>(std::lround(std::sqrt(num_cores)));
        FSOI_ASSERT(side_ * side_ == num_cores,
                    "core count %d is not a perfect square", num_cores);
        FSOI_ASSERT(num_memctls >= 1 && num_memctls <= num_cores);
        // Spread controllers evenly across the router list.
        attach_.resize(num_memctls);
        for (int m = 0; m < num_memctls; ++m)
            attach_[m] = m * num_cores / num_memctls
                + num_cores / (2 * num_memctls);
    }

    int numCores() const { return numCores_; }
    int numMemctls() const { return numMemctls_; }
    int numEndpoints() const { return numCores_ + numMemctls_; }
    int side() const { return side_; }

    bool isMemctl(NodeId node) const
    { return static_cast<int>(node) >= numCores_; }

    /** Router (= core grid position) hosting the given endpoint. */
    int
    routerOf(NodeId node) const
    {
        FSOI_ASSERT(static_cast<int>(node) < numEndpoints());
        if (!isMemctl(node))
            return static_cast<int>(node);
        return attach_[node - numCores_];
    }

    int xOf(int router) const { return router % side_; }
    int yOf(int router) const { return router / side_; }

    /** Manhattan distance in router hops between two endpoints. */
    int
    hopDistance(NodeId a, NodeId b) const
    {
        const int ra = routerOf(a), rb = routerOf(b);
        return std::abs(xOf(ra) - xOf(rb)) + std::abs(yOf(ra) - yOf(rb));
    }

    /** Routers traversed between two endpoints (>= 1). */
    int
    routersTraversed(NodeId a, NodeId b) const
    {
        return hopDistance(a, b) + 1;
    }

    /**
     * Euclidean free-space distance between two endpoints, assuming a
     * @p chip_width_m wide die (used for optical path lengths).
     */
    double
    euclideanDistance(NodeId a, NodeId b, double chip_width_m) const
    {
        const double pitch = chip_width_m / side_;
        const int ra = routerOf(a), rb = routerOf(b);
        const double dx = (xOf(ra) - xOf(rb)) * pitch;
        const double dy = (yOf(ra) - yOf(rb)) * pitch;
        return std::sqrt(dx * dx + dy * dy);
    }

  private:
    int numCores_;
    int numMemctls_;
    int side_;
    std::vector<int> attach_;
};

} // namespace fsoi::noc

#endif // FSOI_NOC_TOPOLOGY_HH
