/**
 * @file
 * Abstract interconnect interface plus the statistics every
 * implementation records. The coherent-memory system talks to one of:
 *
 *  - fsoi::noc::MeshNetwork   : the conventional packet-switched baseline
 *  - fsoi::noc::IdealNetwork  : the L0 / Lr1 / Lr2 comparison points
 *  - fsoi::fsoi::FsoiNetwork  : the paper's free-space optical design
 */

#ifndef FSOI_NOC_NETWORK_HH
#define FSOI_NOC_NETWORK_HH

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "noc/packet.hh"
#include "obs/stat_registry.hh"

namespace fsoi::snapshot {
class Writer;
class Reader;
class SnapshotWriter;
class SnapshotReader;
} // namespace fsoi::snapshot

namespace fsoi::noc {

/** Per-class latency accumulators and event counters. */
class NetworkStats
{
  public:
    /** Record a delivered packet's latency components. */
    void recordDelivery(const Packet &pkt);

    /** Record an attempted transmission that collided. */
    void
    recordCollision(PacketClass cls, PacketKind kind)
    {
        collisions_[index(cls)]++;
        collisionsByKind_[static_cast<int>(kind)]++;
    }

    /** Record a transmission attempt (for transmission probability). */
    void
    recordAttempt(PacketClass cls)
    {
        attempts_[index(cls)]++;
    }

    std::uint64_t delivered(PacketClass cls) const
    { return deliveredCount_[index(cls)].value(); }
    std::uint64_t deliveredTotal() const
    { return delivered(PacketClass::Meta) + delivered(PacketClass::Data); }
    std::uint64_t collisions(PacketClass cls) const
    { return collisions_[index(cls)].value(); }
    std::uint64_t collisionsOfKind(PacketKind kind) const
    { return collisionsByKind_[static_cast<int>(kind)].value(); }
    std::uint64_t attempts(PacketClass cls) const
    { return attempts_[index(cls)].value(); }

    /** Fraction of transmission attempts that collided. */
    double
    collisionRate(PacketClass cls) const
    {
        const auto a = attempts(cls);
        return a ? static_cast<double>(collisions(cls)) / a : 0.0;
    }

    const Accumulator &totalLatency() const { return total_; }
    const Accumulator &queuing() const { return queuing_; }
    const Accumulator &scheduling() const { return scheduling_; }
    const Accumulator &network() const { return network_; }
    const Accumulator &collisionResolution() const { return collision_; }
    const Accumulator &latencyOf(PacketClass cls) const
    { return perClass_[index(cls)]; }

    /** End-to-end latency distributions (all packets / per class). */
    const Histogram &latencyHistogram() const { return latencyHistAll_; }
    const Histogram &latencyHistogramOf(PacketClass cls) const
    { return latencyHist_[index(cls)]; }

    /** Interpolated end-to-end latency percentile, p in [0, 1]. */
    double latencyPercentile(double p) const
    { return latencyHistAll_.percentile(p); }

    /** Publish every stat under @p scope (delivered.*, latency.*, ...). */
    void registerStats(const obs::Scope &scope) const;

    void reset();

    // --- checkpoint/restore (snapshot/)
    void saveState(snapshot::Writer &w) const;
    void loadState(snapshot::Reader &r);

  private:
    static int index(PacketClass cls) { return static_cast<int>(cls); }

    /**
     * Latency histogram shape: 4-cycle bins over [0, 1024) cover the
     * realistic delivery range of every interconnect here (a mesh hop
     * is a few cycles, FSOI retries add tens); the tail past that sits
     * in the overflow bucket, where percentile() interpolates toward
     * the observed maximum.
     */
    static constexpr double kLatencyBinWidth = 4.0;
    static constexpr std::size_t kLatencyBins = 256;

    Counter deliveredCount_[2];
    Counter collisions_[2];
    Counter attempts_[2];
    Counter collisionsByKind_[8];
    Accumulator total_;
    Accumulator queuing_;
    Accumulator scheduling_;
    Accumulator network_;
    Accumulator collision_;
    Accumulator perClass_[2];
    Histogram latencyHistAll_{kLatencyBinWidth, kLatencyBins};
    Histogram latencyHist_[2]{{kLatencyBinWidth, kLatencyBins},
                              {kLatencyBinWidth, kLatencyBins}};
};

/**
 * Fault-recovery counters shared by every interconnect, published as
 * <net>.retx.*. All zero when no FaultInjector is attached.
 */
class RetxStats
{
  public:
    /** A packet was (re)scheduled for another transmission attempt. */
    void recordRetx() { packets_++; }
    /** A reception was discarded by the CRC check. */
    void recordCrcDrop() { crcDrops_++; }
    /** A transmission was absorbed by dead hardware. */
    void recordDeadChannelLoss() { deadChannelLosses_++; }

    std::uint64_t packets() const { return packets_.value(); }
    std::uint64_t crcDrops() const { return crcDrops_.value(); }
    std::uint64_t deadChannelLosses() const
    { return deadChannelLosses_.value(); }

    /** Publish under @p scope (packets / crc_drops / dead_losses). */
    void
    registerStats(const obs::Scope &scope) const
    {
        scope.counter("packets", packets_);
        scope.counter("crc_drops", crcDrops_);
        scope.counter("dead_losses", deadChannelLosses_);
    }

    // --- checkpoint/restore (snapshot/)
    void saveState(snapshot::Writer &w) const;
    void loadState(snapshot::Reader &r);

  private:
    Counter packets_;
    Counter crcDrops_;
    Counter deadChannelLosses_;
};

/**
 * Abstract interconnect. The owning System calls tick() exactly once per
 * core cycle (before the protocol controllers), and endpoints call send()
 * during their own ticks. Delivery happens via per-endpoint handlers.
 */
class Network
{
  public:
    using Handler = std::function<void(Packet &)>;

    explicit Network(int num_endpoints);
    virtual ~Network() = default;

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    int numEndpoints() const { return numEndpoints_; }
    Cycle now() const { return now_; }

    /** Install the delivery callback for an endpoint. */
    void setHandler(NodeId node, Handler handler);

    /**
     * Queue a packet for transmission. Returns false (and leaves the
     * packet untouched) when the source's outgoing queue is full; the
     * caller must retry later.
     */
    virtual bool send(Packet &&pkt) = 0;

    /** True when the source can currently accept a packet of @p cls. */
    virtual bool canAccept(NodeId src, PacketClass cls) const = 0;

    /**
     * How many more packets of @p cls the source could send() this
     * cycle before canAccept() turns false. The parallel tick engine
     * admits staged sends against this budget so a shard sees the same
     * backpressure mid-cycle that the serial loop sees at send time.
     */
    virtual int
    sendBudget(NodeId src, PacketClass cls) const
    {
        return canAccept(src, cls) ? 1 : 0;
    }

    /** Advance one cycle; delivers due packets through the handlers. */
    virtual void tick(Cycle now) = 0;

    /** True when no packet is buffered or in flight. */
    virtual bool idle() const = 0;

    /**
     * Event-calendar contract: the next cycle this network must be
     * ticked, or kNoCycle when fully drained (a send() re-activates
     * it). Implementations are expected to make idle ticks cheap
     * anyway; the default never sleeps.
     */
    virtual Cycle nextEventCycle(Cycle now) const { return now + 1; }

    NetworkStats &stats() { return stats_; }
    const NetworkStats &stats() const { return stats_; }

    RetxStats &retxStats() { return retx_; }
    const RetxStats &retxStats() const { return retx_; }

    /**
     * Publish this interconnect's stats under @p scope. The base
     * registers the shared NetworkStats; implementations extend it
     * with their own counters (mesh activity, FSOI collisions, ...).
     */
    virtual void
    registerStats(const obs::Scope &scope) const
    {
        stats_.registerStats(scope);
        retx_.registerStats(scope.scope("retx"));
    }

    /**
     * Checkpoint/restore (snapshot/). Implementations append their own
     * fields after calling the base, which covers the clock, the packet
     * id allocator, and the shared statistics. Handlers are wiring, not
     * state: the restoring System re-installs them at construction.
     */
    virtual void saveState(snapshot::Writer &w) const;
    virtual void loadState(snapshot::Reader &r);

    /**
     * Section-granular checkpoint entry points. The default writes one
     * section named @p prefix via saveState/loadState; MeshNetwork
     * overrides them to emit one section per router so corruption is
     * diagnosed as "snapshot.corrupt: mesh.router[12]" instead of one
     * opaque blob.
     */
    virtual void saveSnapshot(snapshot::SnapshotWriter &snap,
                              const std::string &prefix) const;
    virtual void loadSnapshot(const snapshot::SnapshotReader &snap,
                              const std::string &prefix);

  protected:
    /** Timestamp + id bookkeeping every implementation shares. */
    void stampOnSend(Packet &pkt);

    /** Finalize timestamps and invoke the destination handler. */
    void deliver(Packet &pkt);

    void setNow(Cycle now) { now_ = now; }

  private:
    int numEndpoints_;
    Cycle now_ = 0;
    std::uint64_t nextId_ = 1;
    std::vector<Handler> handlers_;
    NetworkStats stats_;
    RetxStats retx_;
};

} // namespace fsoi::noc

#endif // FSOI_NOC_NETWORK_HH
