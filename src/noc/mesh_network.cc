#include "noc/mesh_network.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "common/trace.hh"
#include "fault/fault_model.hh"
#include "noc/packet_io.hh"
#include "snapshot/state_io.hh"

#include <cstdio>

namespace fsoi::noc {

namespace {

/** Direction port indices; local ports start at kFirstLocal. */
enum Direction { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };
constexpr int kFirstLocal = 4;

/** Upper bound on router ports (4 directions + local endpoints),
 *  asserted at construction; sizes the arbitration scratch arrays. */
constexpr int kMaxPorts = 8;

const char *const kDirectionNames[4] = {"east", "west", "north", "south"};

} // namespace

/** One flit of a packet in flight: 16 flat bytes, no indirection. */
struct MeshNetwork::Flit
{
    PacketHandle pkt = kNullPkt;
    std::uint8_t head = 0;
    std::uint8_t tail = 0;
    Cycle ready_at = 0; //!< switch-allocation eligibility at this router
};

/** A single mesh router with VC input buffers and credit flow control. */
struct MeshNetwork::Router
{
    /**
     * VC buffer as a fixed-capacity ring over a flat Flit array. The
     * capacity is buffer_depth, which the credit protocol (and the
     * explicit injection-side checks) already enforce, so push/pop are
     * two or three stores with no allocation -- the deque-of-shared_ptr
     * this replaces paid chunk management plus refcount traffic on the
     * hottest loop in the simulator.
     */
    struct Vc
    {
        std::vector<Flit> ring; //!< sized to buffer_depth, never grows
        int head = 0;
        int count = 0;
        int out_port = -1; //!< route of the packet currently at the head
        int out_vc = -1;   //!< downstream VC granted to that packet

        bool empty() const { return count == 0; }
        Flit &front() { return ring[static_cast<std::size_t>(head)]; }
        const Flit &front() const
        { return ring[static_cast<std::size_t>(head)]; }

        const Flit &
        back() const
        {
            int idx = head + count - 1;
            const int cap = static_cast<int>(ring.size());
            if (idx >= cap)
                idx -= cap;
            return ring[static_cast<std::size_t>(idx)];
        }

        void
        push(const Flit &flit)
        {
            const int cap = static_cast<int>(ring.size());
            FSOI_ASSERT(count < cap);
            int idx = head + count;
            if (idx >= cap)
                idx -= cap;
            ring[static_cast<std::size_t>(idx)] = flit;
            ++count;
        }

        void
        pop()
        {
            ++head;
            if (head >= static_cast<int>(ring.size()))
                head = 0;
            --count;
        }
    };

    struct InPort
    {
        Router *up = nullptr; //!< upstream router (nullptr = injection)
        int up_port = -1;     //!< output port index at the upstream router
        std::vector<Vc> vcs;
        /**
         * Lower bound on the earliest ready_at among the front flits of
         * this port's non-empty VCs. While ready_min > now every VC
         * front is still in the router pipeline and the allocation scan
         * over this port is side-effect free, so tick() skips it
         * entirely. Pure memoization: pushes min it in, pops recompute
         * it exactly, and snapshot restore rebuilds it from the
         * restored buffers (it is never serialized).
         */
        Cycle ready_min = 0;
        int rr = 0;       //!< VC round-robin pointer
        int buffered = 0; //!< flits across this port's VCs (scan skip)

        /** Exact ready_min from the current buffer contents. */
        void
        recomputeReadyMin()
        {
            ready_min = kNoCycle;
            for (const Vc &vc : vcs)
                if (!vc.empty() && vc.front().ready_at < ready_min)
                    ready_min = vc.front().ready_at;
        }
    };

    struct OutPort
    {
        Router *peer = nullptr; //!< downstream router (nullptr = ejection)
        int peer_port = -1;     //!< input port index at the peer
        bool local = false;
        std::vector<int> credits;
        std::vector<char> vc_busy;
        int rr_in = 0; //!< switch-allocation round-robin pointer
        int rr_vc = 0; //!< VC-allocation round-robin pointer
    };

    /**
     * A credit produced by a downstream traversal this cycle; it
     * matures exactly one cycle later, which is never later than the
     * next executed tick (nextEventCycle pins the wake to now + 1
     * while any credit is pending), so no due stamp is needed: the
     * whole queue is applied and cleared at the top of the next tick.
     */
    struct CreditEvent
    {
        int port;
        int vc;
    };

    /**
     * Per-tick scratch: the input ports whose candidate VC routes to
     * one output port. Filled by the switch-allocation scan, consumed
     * (and reset) by output arbitration, which then only examines
     * actual contenders instead of scanning every (output, input)
     * pair. An input's candidate VC targets exactly one output, so
     * membership is unique and the rotating-priority winner is the
     * member with the smallest circular distance from rr_in.
     */
    struct WantList
    {
        std::array<std::int8_t, kMaxPorts> ports;
        std::int8_t count = 0;
    };

    int id = 0;
    int x = 0;
    int y = 0;
    int scan_phase = 0; //!< rotating input-port priority (fairness)
    int buffered_flits = 0; //!< flits across all input VC buffers
    std::vector<InPort> in;
    std::vector<OutPort> out;
    std::vector<CreditEvent> credit_queue;
    // Per-tick scratch: candidate VC per input port (only entries
    // reachable through a want list are meaningful).
    std::vector<int> candidate;
    std::vector<WantList> want; //!< per output port

    /**
     * Apply every staged credit (all matured by now -- see
     * CreditEvent) and clear the queue. Returns the number applied.
     */
    std::size_t
    applyCredits()
    {
        const std::size_t applied = credit_queue.size();
        for (const CreditEvent &ev : credit_queue)
            ++out[ev.port].credits[ev.vc];
        credit_queue.clear();
        return applied;
    }

    bool
    empty() const
    {
        for (const auto &ip : in)
            if (ip.buffered != 0)
                return false;
        return true;
    }
};

MeshNetwork::MeshNetwork(const MeshLayout &layout, const MeshConfig &config,
                         fault::FaultInjector *fault)
    : Network(layout.numEndpoints()), layout_(layout), config_(config),
      fault_(fault),
      linkFlits_(static_cast<std::size_t>(layout.side() * layout.side())),
      injectors_(static_cast<std::size_t>(layout.numEndpoints())),
      injWake_(static_cast<std::size_t>(layout.numEndpoints() + 63) / 64, 0)
{
    FSOI_ASSERT(config_.num_vcs >= 2 && config_.num_vcs % 2 == 0,
                "need an even number of VCs to partition meta/data");
    FSOI_ASSERT(config_.buffer_depth >= config_.data_flits,
                "VC buffer must hold a whole data packet");
    FSOI_ASSERT(config_.bandwidth_scale > 0.0
                && config_.bandwidth_scale <= 1.0);

    const int side = layout_.side();
    const int num_routers = side * side;

    // How many local ports each router needs (core + attached memctls).
    std::vector<int> local_ports(num_routers, 1);
    for (int m = 0; m < layout_.numMemctls(); ++m) {
        const NodeId ep = static_cast<NodeId>(layout_.numCores() + m);
        local_ports[layout_.routerOf(ep)] += 1;
    }

    // Routers live in one contiguous array (reserved up front so the
    // wiring pointers below stay stable) — the tick loop walks them
    // every executed cycle, and the pointer-per-router layout this
    // replaces cost a cache miss per hop of that walk.
    routers_.reserve(static_cast<std::size_t>(num_routers));
    for (int r = 0; r < num_routers; ++r) {
        Router &router = routers_.emplace_back();
        router.id = r;
        router.x = layout_.xOf(r);
        router.y = layout_.yOf(r);
        const int num_ports = kFirstLocal + local_ports[r];
        router.in.resize(num_ports);
        router.out.resize(num_ports);
        for (int p = 0; p < num_ports; ++p) {
            router.in[p].vcs.resize(config_.num_vcs);
            for (auto &vc : router.in[p].vcs)
                vc.ring.resize(
                    static_cast<std::size_t>(config_.buffer_depth));
            router.out[p].credits.assign(config_.num_vcs,
                                         config_.buffer_depth);
            router.out[p].vc_busy.assign(config_.num_vcs, 0);
        }
        FSOI_ASSERT(num_ports <= kMaxPorts);
        router.candidate.assign(num_ports, -1);
        router.want.resize(static_cast<std::size_t>(num_ports));
    }

    // Wire neighbouring routers (E<->W, N<->S) and mark local ports.
    auto at = [&](int x, int y) { return &routers_[y * side + x]; };
    for (int y = 0; y < side; ++y) {
        for (int x = 0; x < side; ++x) {
            Router *r = at(x, y);
            if (x + 1 < side) {
                Router *e = at(x + 1, y);
                r->out[kEast] = {e, kWest, false,
                                 std::vector<int>(config_.num_vcs,
                                                  config_.buffer_depth),
                                 std::vector<char>(config_.num_vcs, 0),
                                 0, 0};
                e->in[kWest].up = r;
                e->in[kWest].up_port = kEast;
                e->out[kWest] = {r, kEast, false,
                                 std::vector<int>(config_.num_vcs,
                                                  config_.buffer_depth),
                                 std::vector<char>(config_.num_vcs, 0),
                                 0, 0};
                r->in[kEast].up = e;
                r->in[kEast].up_port = kWest;
            }
            if (y + 1 < side) {
                Router *s = at(x, y + 1);
                r->out[kSouth] = {s, kNorth, false,
                                  std::vector<int>(config_.num_vcs,
                                                   config_.buffer_depth),
                                  std::vector<char>(config_.num_vcs, 0),
                                  0, 0};
                s->in[kNorth].up = r;
                s->in[kNorth].up_port = kSouth;
                s->out[kNorth] = {r, kSouth, false,
                                  std::vector<int>(config_.num_vcs,
                                                   config_.buffer_depth),
                                  std::vector<char>(config_.num_vcs, 0),
                                  0, 0};
                r->in[kSouth].up = s;
                r->in[kSouth].up_port = kNorth;
            }
        }
    }
    for (Router &router : routers_) {
        for (std::size_t p = kFirstLocal; p < router.out.size(); ++p)
            router.out[p].local = true;
    }

    flits_[0] = computeFlitsPerPacket(PacketClass::Meta);
    flits_[1] = computeFlitsPerPacket(PacketClass::Data);

    // The routing table exists only when links are actually dead; on a
    // healthy grid the inline XY computation below stays untouched.
    if (fault_ && fault_->anyDeadMeshLinks())
        buildRouteTable();
}

void
MeshNetwork::buildRouteTable()
{
    const int n = static_cast<int>(routers_.size());
    nextHop_.assign(static_cast<std::size_t>(n) * n, -1);
    // One BFS per destination over the live links (edges die with both
    // directions, so the graph stays undirected). The neighbour scan
    // order E, W, N, S matches XY's preference, keeping routes
    // XY-flavoured wherever XY still works.
    std::vector<int> dist(n);
    std::vector<int> bfs(n);
    for (int dst = 0; dst < n; ++dst) {
        std::fill(dist.begin(), dist.end(), -1);
        int head = 0, tail = 0;
        dist[dst] = 0;
        bfs[tail++] = dst;
        while (head < tail) {
            const int r = bfs[head++];
            for (int d = 0; d < 4; ++d) {
                const Router *peer = routers_[r].out[d].peer;
                if (!peer || fault_->linkDead(r, d))
                    continue;
                if (dist[peer->id] < 0) {
                    dist[peer->id] = dist[r] + 1;
                    bfs[tail++] = peer->id;
                }
            }
        }
        for (int r = 0; r < n; ++r) {
            if (r == dst || dist[r] < 0)
                continue;
            for (int d = 0; d < 4; ++d) {
                const Router *peer = routers_[r].out[d].peer;
                if (!peer || fault_->linkDead(r, d))
                    continue;
                if (dist[peer->id] == dist[r] - 1) {
                    nextHop_[static_cast<std::size_t>(dst) * n + r] =
                        static_cast<std::int16_t>(d);
                    break;
                }
            }
        }
    }
}

bool
MeshNetwork::reachable(NodeId src, NodeId dst) const
{
    if (nextHop_.empty())
        return true;
    const int sr = layout_.routerOf(src);
    const int dr = layout_.routerOf(dst);
    if (sr == dr)
        return true;
    const std::size_t n = routers_.size();
    return nextHop_[static_cast<std::size_t>(dr) * n + sr] >= 0;
}

bool
MeshNetwork::fullyConnected() const
{
    if (nextHop_.empty())
        return true;
    const std::size_t n = routers_.size();
    for (std::size_t dst = 0; dst < n; ++dst)
        for (std::size_t r = 0; r < n; ++r)
            if (r != dst && nextHop_[dst * n + r] < 0)
                return false;
    return true;
}

MeshNetwork::~MeshNetwork() = default;

int
MeshNetwork::computeFlitsPerPacket(PacketClass cls) const
{
    const int base = cls == PacketClass::Meta ? config_.meta_flits
                                              : config_.data_flits;
    return static_cast<int>(
        std::ceil(base / config_.bandwidth_scale - 1e-9));
}

int
MeshNetwork::localPortOf(NodeId endpoint) const
{
    if (!layout_.isMemctl(endpoint))
        return kFirstLocal;
    // Memory controllers take the port after the core's. The layout
    // spreads controllers so at most one shares a router with the core.
    return kFirstLocal + 1;
}

void
MeshNetwork::registerStats(const obs::Scope &scope) const
{
    Network::registerStats(scope);
    const obs::Scope activity = scope.scope("activity");
    activity.counter("buffer_writes", activity_.buffer_writes);
    activity.counter("buffer_reads", activity_.buffer_reads);
    activity.counter("crossbar_traversals",
                     activity_.crossbar_traversals);
    activity.counter("link_traversals", activity_.link_traversals);
    activity.counter("arbitrations", activity_.arbitrations);

    // Per-link traversal counts and router occupancy gauges: the
    // heatmap data tools/stats_report renders. Only links that exist
    // are registered (edge routers lack some directions).
    const obs::Scope links = scope.scope("links");
    const obs::Scope occupancy = scope.scope("occupancy");
    for (const Router &router : routers_) {
        const obs::Scope r = links.scope("r" + std::to_string(router.id));
        for (int d = 0; d < 4; ++d) {
            if (router.out[d].peer)
                r.counter(kDirectionNames[d], linkFlits_[router.id][d]);
        }
        occupancy.derived("r" + std::to_string(router.id),
                          [&router] {
                              return static_cast<double>(
                                  router.buffered_flits);
                          });
    }
}

bool
MeshNetwork::canAccept(NodeId src, PacketClass cls) const
{
    const auto &lane =
        injectors_[src].lanes[static_cast<int>(cls)];
    return lane.queue.size()
        < static_cast<std::size_t>(config_.inject_queue_capacity);
}

int
MeshNetwork::sendBudget(NodeId src, PacketClass cls) const
{
    const auto &lane =
        injectors_[src].lanes[static_cast<int>(cls)];
    return config_.inject_queue_capacity
        - static_cast<int>(lane.queue.size());
}

bool
MeshNetwork::send(Packet &&pkt)
{
    if (!canAccept(pkt.src, pkt.cls))
        return false;
    if (fault_ && !reachable(pkt.src, pkt.dst)) {
        // No live route to the destination: the packet is dropped and
        // counted rather than wedging a router queue. The protocol
        // above never gets its reply; the watchdog then diagnoses the
        // partition from the fault schedule (System also refuses to
        // start a run on a partitioned mesh).
        fault_->countUnroutableDrop();
        FSOI_TRACE_POINT(TraceCat::Noc, 1, "unroutable", now(), pkt.src,
                         {"dst", pkt.dst});
        return true;
    }
    stampOnSend(pkt);
    injWake_[pkt.src >> 6] |= 1ull << (pkt.src & 63);
    injectors_[pkt.src].lanes[static_cast<int>(pkt.cls)]
        .queue.push_back(std::move(pkt));
    ++packetsInFlight_;
    return true;
}

void
MeshNetwork::startPacket(Injector &inj, int cls_idx, NodeId endpoint)
{
    auto &lane = inj.lanes[cls_idx];
    FSOI_ASSERT(!lane.queue.empty());
    // Choose a VC in this class's partition with room in the local
    // input port of the endpoint's router.
    Router &router = routers_[layout_.routerOf(endpoint)];
    auto &iport = router.in[localPortOf(endpoint)];
    const int half = config_.num_vcs / 2;
    const int lo = cls_idx == 0 ? 0 : half;
    const int hi = cls_idx == 0 ? half : config_.num_vcs;
    for (int vc = lo; vc < hi; ++vc) {
        // The VC must not be mid-packet from this injector and must
        // have room for the whole packet eventually; we stream flit by
        // flit so only per-flit room is needed, but a fresh packet must
        // not interleave with another packet on the same VC.
        const auto &buf = iport.vcs[vc];
        const bool mid_packet = !buf.empty() && !buf.back().tail;
        if (mid_packet)
            continue;
        if (buf.count >= config_.buffer_depth)
            continue;
        if (inj.active[0] != kNullPkt && inj.vc[0] == vc)
            continue;
        if (inj.active[1] != kNullPkt && inj.vc[1] == vc)
            continue;
        const PacketHandle h =
            pkts_.alloc(std::move(lane.queue.front()));
        lane.queue.pop_front();
        Packet &pkt = pkts_[h];
        FSOI_TRACE_POINT(TraceCat::Noc, 3, "inject", now(), pkt.src,
                         {"id", pkt.id}, {"dst", pkt.dst},
                         {"vc", static_cast<std::uint64_t>(vc)});
        // A NACKed packet re-entering the lane keeps its original
        // first_tx so collisionLatency() spans the full retry history.
        if (pkt.first_tx == kNoCycle)
            pkt.first_tx = now();
        pkt.final_tx = now();
        stats().recordAttempt(pkt.cls);
        inj.active[cls_idx] = h;
        inj.remaining[cls_idx] = flitsPerPacket(
            cls_idx == 0 ? PacketClass::Meta : PacketClass::Data);
        inj.vc[cls_idx] = vc;
        return;
    }
}

void
MeshNetwork::tickInjection(Cycle now)
{
    // Walk only the endpoints flagged as possibly-active; bit order is
    // ascending endpoint id, the same order the full scan used.
    for (std::size_t w = 0; w < injWake_.size(); ++w) {
      for (std::uint64_t word = injWake_[w]; word != 0; word &= word - 1) {
        const int bit = std::countr_zero(word);
        const NodeId ep = static_cast<NodeId>(w * 64
                                              + static_cast<std::size_t>(bit));
        Injector &inj = injectors_[ep];
        // Begin serialization of queued packets when a class is idle.
        for (int c = 0; c < 2; ++c)
            if (inj.active[c] == kNullPkt && !inj.lanes[c].queue.empty())
                startPacket(inj, c, ep);

        // One flit per cycle per endpoint, alternating classes.
        Router &router = routers_[layout_.routerOf(ep)];
        auto &iport = router.in[localPortOf(ep)];
        for (int k = 0; k < 2; ++k) {
            const int c = (inj.rr_class + k) % 2;
            if (inj.active[c] == kNullPkt)
                continue;
            auto &buf = iport.vcs[inj.vc[c]];
            if (buf.count >= config_.buffer_depth)
                continue; // no room this cycle
            const int total = flitsPerPacket(
                c == 0 ? PacketClass::Meta : PacketClass::Data);
            Flit flit;
            flit.pkt = inj.active[c];
            flit.head = inj.remaining[c] == total;
            flit.tail = inj.remaining[c] == 1;
            flit.ready_at = now + config_.router_cycles;
            buf.push(flit);
            if (flit.ready_at < iport.ready_min)
                iport.ready_min = flit.ready_at;
            ++iport.buffered;
            ++router.buffered_flits;
            activity_.buffer_writes++;
            if (--inj.remaining[c] == 0) {
                inj.active[c] = kNullPkt;
                inj.vc[c] = -1;
            }
            inj.rr_class = (c + 1) % 2;
            break; // one flit per endpoint per cycle
        }
        if (inj.quiet())
            injWake_[w] &= ~(1ull << bit);
      }
    }
}

Cycle
MeshNetwork::nextEventCycle(Cycle now) const
{
    if (packetsInFlight_ == 0 && pendingCredits_ == 0)
        return kNoCycle;
    // Credit events always mature one cycle after the traversal that
    // produced them, so any unapplied credit pins the wake to now + 1
    // without looking further. Likewise a flagged injector (possibly
    // stale — then the next tick clears it) streams one flit per
    // cycle. Both checks are O(1); the router scan below only runs in
    // the sparse case — every packet in flight sitting in a router
    // pipeline — which is exactly where skipping pays.
    if (pendingCredits_ != 0)
        return now + 1;
    for (const std::uint64_t word : injWake_)
        if (word != 0)
            return now + 1;
    Cycle next = kNoCycle;
    // pendingCredits_ == 0 here, so every credit queue is empty: only
    // buffered flits (their ready_at), matured ejections and pending
    // retransmissions can wake the mesh.
    for (const Router &router : routers_) {
        if (router.buffered_flits == 0)
            continue;
        for (const auto &iport : router.in)
            if (iport.buffered != 0 && iport.ready_min < next)
                next = iport.ready_min;
        if (next <= now + 1)
            return now + 1;
    }
    for (const auto &pd : pending_)
        if (pd.due < next)
            next = pd.due;
    for (const auto &ev : retxQueue_)
        if (ev.due < next)
            next = ev.due;
    // Defensive: in-flight work must always produce a finite wake.
    if (next == kNoCycle)
        return now + 1;
    return next < now + 1 ? now + 1 : next;
}

void
MeshNetwork::tick(Cycle now)
{
    // Event-calendar gap accounting: every cycle the scheduler skipped
    // since the previous tick was a mesh no-op by construction
    // (nextEventCycle reports the earliest cycle a tick could do work,
    // and nothing can inject without an executed cycle), so fold the
    // whole gap into the lazy scan_phase replay counter — a no-op tick
    // only rotates the arbitration priority.
    if (now > this->now() + 1)
        idleTicks_ += now - this->now() - 1;
    setNow(now);

    // Idle early-out: with no packet anywhere (injector queues, VC
    // buffers and pending ejections all hold in-flight packets) and no
    // credit event waiting to mature, the full tick body is a no-op
    // except for the scan_phase rotation, which is replayed lazily
    // below so arbitration fairness evolves exactly as if every idle
    // cycle had been simulated.
    if (packetsInFlight_ == 0 && pendingCredits_ == 0) {
        ++idleTicks_;
        return;
    }
    if (idleTicks_ != 0) {
        for (Router &router : routers_) {
            router.scan_phase = static_cast<int>(
                (router.scan_phase + idleTicks_) % router.in.size());
        }
        idleTicks_ = 0;
    }

    // Deliver packets whose tail ejected.
    {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            if (pending_[i].due <= now) {
                deliver(pkts_[pending_[i].pkt]);
                pkts_.release(pending_[i].pkt);
                --packetsInFlight_;
            } else {
                pending_[keep++] = pending_[i];
            }
        }
        pending_.resize(keep);
    }

    const int half = config_.num_vcs / 2;

    for (Router &router : routers_) {
        const int num_ports = static_cast<int>(router.in.size());
        // A router with no buffered flit and no credit event has
        // nothing to arbitrate; only its priority rotation advances.
        if (++router.scan_phase >= num_ports)
            router.scan_phase = 0;
        if (router.buffered_flits == 0 && router.credit_queue.empty())
            continue;
        pendingCredits_ -= router.applyCredits();

        // --- Switch allocation: input-first candidate selection ---
        // The scan start rotates every cycle (advanced above, busy or
        // not); a fixed start would give low-numbered ports permanent
        // VA priority and can starve a port indefinitely under
        // saturation.
        for (int pi = 0; pi < num_ports; ++pi) {
            int p = pi + router.scan_phase;
            if (p >= num_ports)
                p -= num_ports;
            auto &iport = router.in[p];
            // ready_min > now means every front flit is still in the
            // router pipeline: the VC scan below would continue at the
            // ready_at check for all of them, so skip the port.
            if (iport.buffered == 0 || iport.ready_min > now)
                continue;
            for (int k = 0; k < config_.num_vcs; ++k) {
                int v = iport.rr + k;
                if (v >= config_.num_vcs)
                    v -= config_.num_vcs;
                auto &vc = iport.vcs[v];
                if (vc.empty())
                    continue;
                Flit &flit = vc.front();
                if (flit.ready_at > now)
                    continue;
                const Packet &fpkt = pkts_[flit.pkt];
                // Route compute for a head flit reaching the front.
                if (flit.head && vc.out_port < 0) {
                    const int dst_router = layout_.routerOf(fpkt.dst);
                    Router &dr = routers_[dst_router];
                    if (dr.id == router.id) {
                        vc.out_port = localPortOf(fpkt.dst);
                    } else if (!nextHop_.empty()) {
                        // Fault-aware table built around dead links.
                        const int hop = nextHop_[
                            static_cast<std::size_t>(dst_router)
                            * routers_.size() + router.id];
                        FSOI_ASSERT(hop >= 0,
                                    "no live route r%d -> r%d",
                                    router.id, dst_router);
                        vc.out_port = hop;
                    } else if (router.x != layout_.xOf(dst_router)) {
                        vc.out_port = router.x < layout_.xOf(dst_router)
                            ? kEast : kWest;
                    } else {
                        vc.out_port = router.y < layout_.yOf(dst_router)
                            ? kSouth : kNorth;
                    }
                }
                FSOI_ASSERT(vc.out_port >= 0 || !flit.head,
                            "body flit without route at router %d",
                            router.id);
                auto &oport = router.out[vc.out_port];
                // VC allocation within the packet's class partition.
                if (vc.out_vc < 0) {
                    const bool is_meta = fpkt.cls == PacketClass::Meta;
                    const int lo = is_meta ? 0 : half;
                    const int hi = is_meta ? half : config_.num_vcs;
                    const int span = hi - lo;
                    for (int j = 0; j < span; ++j) {
                        int rel = oport.rr_vc + j;
                        if (rel >= span)
                            rel -= span;
                        const int cand = lo + rel;
                        if (!oport.vc_busy[cand]) {
                            oport.vc_busy[cand] = 1;
                            oport.rr_vc = rel + 1 == span ? 0 : rel + 1;
                            vc.out_vc = cand;
                            break;
                        }
                    }
                    if (vc.out_vc < 0)
                        continue; // no downstream VC free
                }
                if (!oport.local && oport.credits[vc.out_vc] <= 0)
                    continue; // no buffer space downstream
                router.candidate[p] = v;
                auto &wl = router.want[static_cast<std::size_t>(
                    vc.out_port)];
                wl.ports[wl.count++] = static_cast<std::int8_t>(p);
                break;
            }
        }

        // --- Output arbitration + switch traversal ---
        // Only outputs with contenders are visited; the rotating
        // rr_in priority picks the contender closest (circularly)
        // after the pointer — the same winner the full scan found.
        for (std::size_t o = 0; o < router.out.size(); ++o) {
            auto &wl = router.want[o];
            if (wl.count == 0)
                continue;
            auto &oport = router.out[o];
            const int np = static_cast<int>(router.in.size());
            int winner_port = -1;
            int best = np;
            for (int k = 0; k < wl.count; ++k) {
                const int p = wl.ports[k];
                int d = p - oport.rr_in;
                if (d < 0)
                    d += np;
                if (d < best) {
                    best = d;
                    winner_port = p;
                }
            }
            wl.count = 0;
            activity_.arbitrations++;
            oport.rr_in = winner_port + 1 == np ? 0 : winner_port + 1;
            auto &iport = router.in[winner_port];
            const int v = router.candidate[winner_port];
            auto &vc = iport.vcs[v];
            Flit flit = vc.front();
            vc.pop();
            --iport.buffered;
            --router.buffered_flits;
            iport.recomputeReadyMin();
            iport.rr = v + 1 == config_.num_vcs ? 0 : v + 1;
            activity_.buffer_reads++;
            activity_.crossbar_traversals++;

            const int out_vc = vc.out_vc;
            if (flit.tail) {
                oport.vc_busy[out_vc] = 0;
                vc.out_port = -1;
                vc.out_vc = -1;
            }
            // Return a credit upstream for the freed buffer slot.
            if (iport.up) {
                iport.up->credit_queue.push_back(
                    {iport.up_port, v});
                ++pendingCredits_;
            }
            if (oport.local) {
                if (flit.tail) {
                    if (fault_
                        && fault_->corrupts(
                            static_cast<int>(pkts_[flit.pkt].cls))) {
                        // CRC check at the ejection port failed: the
                        // destination NACKs, and after the NACK's
                        // round trip the source re-injects the whole
                        // packet.
                        retxStats().recordCrcDrop();
                        retxStats().recordRetx();
                        Packet pkt = std::move(pkts_[flit.pkt]);
                        pkts_.release(flit.pkt);
                        pkt.retries += 1;
                        const Cycle rtt = static_cast<Cycle>(
                            2 * (layout_.hopDistance(pkt.src, pkt.dst)
                                 + 1)
                            * (config_.router_cycles
                               + config_.link_cycles));
                        FSOI_TRACE_POINT(TraceCat::Noc, 2, "crc_nack",
                                         now, pkt.dst, {"id", pkt.id},
                                         {"src", pkt.src});
                        retxQueue_.push_back(
                            RetxEvent{now + rtt, std::move(pkt)});
                        continue;
                    }
                    FSOI_TRACE_POINT(TraceCat::Noc, 3, "eject", now,
                                     pkts_[flit.pkt].dst,
                                     {"id", pkts_[flit.pkt].id},
                                     {"router",
                                      static_cast<std::uint64_t>(
                                          router.id)},
                                     {"port",
                                      static_cast<std::uint64_t>(o)});
                    pending_.push_back(
                        {now + static_cast<Cycle>(config_.link_cycles),
                         flit.pkt});
                }
            } else {
                --oport.credits[out_vc];
                FSOI_ASSERT(oport.credits[out_vc] >= 0);
                activity_.link_traversals++;
                linkFlits_[router.id][o]++;
                flit.ready_at = now + config_.link_cycles
                    + config_.router_cycles;
                auto &dport = oport.peer->in[oport.peer_port];
                dport.vcs[out_vc].push(flit);
                if (flit.ready_at < dport.ready_min)
                    dport.ready_min = flit.ready_at;
                ++dport.buffered;
                ++oport.peer->buffered_flits;
                activity_.buffer_writes++;
            }
        }
    }

    // Re-inject NACKed packets whose round trip has elapsed. They go
    // back into the source's lane queue (past the capacity check: the
    // packet is already accounted for in packetsInFlight_).
    if (!retxQueue_.empty()) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < retxQueue_.size(); ++i) {
            if (retxQueue_[i].due <= now) {
                Packet &pkt = retxQueue_[i].pkt;
                FSOI_TRACE_POINT(TraceCat::Noc, 2, "retx_inject", now,
                                 pkt.src, {"id", pkt.id},
                                 {"retries",
                                  static_cast<std::uint64_t>(
                                      pkt.retries)});
                injWake_[pkt.src >> 6] |= 1ull << (pkt.src & 63);
                injectors_[pkt.src].lanes[static_cast<int>(pkt.cls)]
                    .queue.push_back(std::move(pkt));
            } else {
                retxQueue_[keep++] = std::move(retxQueue_[i]);
            }
        }
        retxQueue_.resize(keep);
    }

    tickInjection(now);
}

void
MeshNetwork::debugDump() const
{
    std::fprintf(stderr, "mesh: %llu packets in flight, now=%llu\n",
                 (unsigned long long)packetsInFlight_,
                 (unsigned long long)now());
    for (const Router &router : routers_) {
        for (std::size_t p = 0; p < router.in.size(); ++p) {
            for (int v = 0; v < config_.num_vcs; ++v) {
                const auto &vc = router.in[p].vcs[v];
                if (vc.empty())
                    continue;
                const auto &f = vc.front();
                const Packet &pkt = pkts_[f.pkt];
                std::fprintf(stderr,
                             "  r%d in%zu vc%d: %d flits, front pkt %llu "
                             "%s->%u head=%d tail=%d ready=%llu outp=%d "
                             "outvc=%d\n",
                             router.id, p, v, vc.count,
                             (unsigned long long)pkt.id,
                             pkt.cls == PacketClass::Meta ? "M" : "D",
                             pkt.dst, (int)f.head, (int)f.tail,
                             (unsigned long long)f.ready_at, vc.out_port,
                             vc.out_vc);
            }
        }
        for (std::size_t o = 0; o < router.out.size(); ++o) {
            const auto &op = router.out[o];
            for (int v = 0; v < config_.num_vcs; ++v) {
                if (op.vc_busy[v])
                    std::fprintf(stderr,
                                 "  r%d out%zu vc%d busy credits=%d\n",
                                 router.id, o, v,
                                 op.local ? -1 : op.credits[v]);
            }
        }
    }
    for (std::size_t ep = 0; ep < injectors_.size(); ++ep) {
        const auto &inj = injectors_[ep];
        for (int c = 0; c < 2; ++c) {
            if (inj.active[c] != kNullPkt || !inj.lanes[c].queue.empty())
                std::fprintf(stderr,
                             "  inj %zu class %d: queue=%zu active=%d "
                             "remaining=%d vc=%d\n",
                             ep, c, inj.lanes[c].queue.size(),
                             (int)(inj.active[c] != kNullPkt),
                             inj.remaining[c], inj.vc[c]);
        }
    }
}

void
MeshNetwork::writeLinkStateJson(std::ostream &os) const
{
    os << "{\"packets_in_flight\":" << packetsInFlight_
       << ",\"retx_queued\":" << retxQueue_.size()
       << ",\"routers\":[";
    bool sep = false;
    for (const Router &router : routers_) {
        if (router.buffered_flits == 0)
            continue;
        os << (sep ? "," : "") << "{\"id\":" << router.id
           << ",\"buffered_flits\":" << router.buffered_flits
           << ",\"blocked_out\":[";
        bool bsep = false;
        for (std::size_t o = 0; o < router.out.size(); ++o) {
            const auto &op = router.out[o];
            for (int v = 0; v < config_.num_vcs; ++v) {
                // A busy VC with no credits is where wormhole
                // backpressure originates; report those first.
                if (!op.vc_busy[v])
                    continue;
                os << (bsep ? "," : "") << "{\"port\":";
                if (o < static_cast<std::size_t>(kFirstLocal))
                    os << "\"" << kDirectionNames[o] << "\"";
                else
                    os << "\"local" << (o - kFirstLocal) << "\"";
                os << ",\"vc\":" << v << ",\"credits\":"
                   << (op.local ? -1 : op.credits[v]) << "}";
                bsep = true;
            }
        }
        os << "]}";
        sep = true;
    }
    os << "],\"injectors\":[";
    sep = false;
    for (std::size_t ep = 0; ep < injectors_.size(); ++ep) {
        const auto &inj = injectors_[ep];
        const std::size_t backlog =
            inj.lanes[0].queue.size() + inj.lanes[1].queue.size();
        const bool active =
            inj.active[0] != kNullPkt || inj.active[1] != kNullPkt;
        if (backlog == 0 && !active)
            continue;
        os << (sep ? "," : "") << "{\"endpoint\":" << ep
           << ",\"queued_meta\":" << inj.lanes[0].queue.size()
           << ",\"queued_data\":" << inj.lanes[1].queue.size()
           << ",\"mid_packet\":" << (active ? "true" : "false") << "}";
        sep = true;
    }
    os << "]}";
}

void
MeshNetwork::saveFlit(snapshot::Writer &w, const Flit &flit)
{
    w.u32(flit.pkt);
    w.u8(flit.head);
    w.u8(flit.tail);
    w.u64(flit.ready_at);
}

MeshNetwork::Flit
MeshNetwork::loadFlit(snapshot::Reader &r)
{
    Flit flit;
    flit.pkt = r.u32();
    flit.head = r.u8();
    flit.tail = r.u8();
    flit.ready_at = r.u64();
    return flit;
}

void
MeshNetwork::saveSnapshot(snapshot::SnapshotWriter &snap,
                          const std::string &prefix) const
{
    using namespace snapshot;
    Writer &w = snap.section(prefix);
    Network::saveState(w);
    saveCounter(w, activity_.buffer_writes);
    saveCounter(w, activity_.buffer_reads);
    saveCounter(w, activity_.crossbar_traversals);
    saveCounter(w, activity_.link_traversals);
    saveCounter(w, activity_.arbitrations);
    w.u64(linkFlits_.size());
    for (const auto &dirs : linkFlits_)
        for (const auto &c : dirs)
            saveCounter(w, c);

    // In-flight packet pool: slots AND free list verbatim, so handle
    // recycling after a restore matches the uninterrupted run.
    w.u64(pkts_.rawSlots().size());
    for (const Packet &pkt : pkts_.rawSlots())
        savePacket(w, pkt);
    w.u64(pkts_.rawFreeList().size());
    for (const PacketHandle h : pkts_.rawFreeList())
        w.u32(h);

    w.u64(injectors_.size());
    for (const Injector &inj : injectors_) {
        for (const InjectLane &lane : inj.lanes) {
            w.u64(lane.queue.size());
            for (const Packet &pkt : lane.queue)
                savePacket(w, pkt);
        }
        for (int c = 0; c < 2; ++c) {
            w.u32(inj.active[c]);
            w.i32(inj.remaining[c]);
            w.i32(inj.vc[c]);
        }
        w.i32(inj.rr_class);
    }

    w.u64(pending_.size());
    for (const PendingDelivery &pd : pending_) {
        w.u64(pd.due);
        w.u32(pd.pkt);
    }
    w.u64(retxQueue_.size());
    for (const RetxEvent &ev : retxQueue_) {
        w.u64(ev.due);
        savePacket(w, ev.pkt);
    }
    w.u64(packetsInFlight_);
    w.u64(pendingCredits_);
    w.u64(idleTicks_);

    for (const Router &router : routers_) {
        Writer &rw = snap.section(prefix + ".router["
                                  + std::to_string(router.id) + "]");
        rw.i32(router.scan_phase);
        rw.i32(router.buffered_flits);
        for (const auto &iport : router.in) {
            rw.i32(iport.rr);
            rw.i32(iport.buffered);
            for (const auto &vc : iport.vcs) {
                // The ring is a FIFO: only the live flits in logical
                // order are state; the head index is canonicalized to
                // zero so snapshot bytes don't depend on ring phase.
                rw.i32(vc.count);
                for (int i = 0; i < vc.count; ++i) {
                    int idx = vc.head + i;
                    const int cap = static_cast<int>(vc.ring.size());
                    if (idx >= cap)
                        idx -= cap;
                    saveFlit(rw, vc.ring[static_cast<std::size_t>(idx)]);
                }
                rw.i32(vc.out_port);
                rw.i32(vc.out_vc);
            }
        }
        for (const auto &oport : router.out) {
            for (const int credit : oport.credits)
                rw.i32(credit);
            for (const char busy : oport.vc_busy)
                rw.u8(static_cast<std::uint8_t>(busy));
            rw.i32(oport.rr_in);
            rw.i32(oport.rr_vc);
        }
        rw.u64(router.credit_queue.size());
        for (const auto &ev : router.credit_queue) {
            rw.i32(ev.port);
            rw.i32(ev.vc);
        }
    }
}

void
MeshNetwork::loadSnapshot(const snapshot::SnapshotReader &snap,
                          const std::string &prefix)
{
    using namespace snapshot;
    Reader r = snap.open(prefix);
    Network::loadState(r);
    loadCounter(r, activity_.buffer_writes);
    loadCounter(r, activity_.buffer_reads);
    loadCounter(r, activity_.crossbar_traversals);
    loadCounter(r, activity_.link_traversals);
    loadCounter(r, activity_.arbitrations);
    const std::uint64_t num_links = r.u64();
    FSOI_ASSERT(num_links == linkFlits_.size(),
                "mesh geometry mismatch on restore");
    for (auto &dirs : linkFlits_)
        for (auto &c : dirs)
            loadCounter(r, c);

    std::vector<Packet> slots(r.u64());
    for (auto &pkt : slots)
        pkt = loadPacket(r);
    std::vector<PacketHandle> free_list(r.u64());
    for (auto &h : free_list)
        h = r.u32();
    pkts_.rawRestore(std::move(slots), std::move(free_list));

    const std::uint64_t num_inj = r.u64();
    FSOI_ASSERT(num_inj == injectors_.size(),
                "mesh endpoint count mismatch on restore");
    for (Injector &inj : injectors_) {
        for (InjectLane &lane : inj.lanes) {
            lane.queue.clear();
            const std::uint64_t n = r.u64();
            for (std::uint64_t i = 0; i < n; ++i)
                lane.queue.push_back(loadPacket(r));
        }
        for (int c = 0; c < 2; ++c) {
            inj.active[c] = r.u32();
            inj.remaining[c] = r.i32();
            inj.vc[c] = r.i32();
        }
        inj.rr_class = r.i32();
    }

    pending_.resize(r.u64());
    for (PendingDelivery &pd : pending_) {
        pd.due = r.u64();
        pd.pkt = r.u32();
    }
    retxQueue_.clear();
    const std::uint64_t num_retx = r.u64();
    for (std::uint64_t i = 0; i < num_retx; ++i) {
        RetxEvent ev;
        ev.due = r.u64();
        ev.pkt = loadPacket(r);
        retxQueue_.push_back(std::move(ev));
    }
    packetsInFlight_ = r.u64();
    pendingCredits_ = r.u64();
    idleTicks_ = r.u64();

    for (Router &router : routers_) {
        Reader rr = snap.open(prefix + ".router["
                              + std::to_string(router.id) + "]");
        router.scan_phase = rr.i32();
        router.buffered_flits = rr.i32();
        for (auto &iport : router.in) {
            iport.rr = rr.i32();
            iport.buffered = rr.i32();
            for (auto &vc : iport.vcs) {
                vc.head = 0;
                vc.count = rr.i32();
                FSOI_ASSERT(vc.count
                            <= static_cast<int>(vc.ring.size()),
                            "VC depth mismatch on restore");
                for (int i = 0; i < vc.count; ++i)
                    vc.ring[static_cast<std::size_t>(i)] = loadFlit(rr);
                vc.out_port = rr.i32();
                vc.out_vc = rr.i32();
            }
        }
        for (auto &oport : router.out) {
            for (int &credit : oport.credits)
                credit = rr.i32();
            for (char &busy : oport.vc_busy)
                busy = static_cast<char>(rr.u8());
            oport.rr_in = rr.i32();
            oport.rr_vc = rr.i32();
        }
        router.credit_queue.resize(rr.u64());
        for (auto &ev : router.credit_queue) {
            ev.port = rr.i32();
            ev.vc = rr.i32();
        }
    }

    // Rebuild the memoized scan accelerators (never serialized) from
    // the restored state: per-port ready_min and the active-injector
    // bitmap.
    for (Router &router : routers_)
        for (auto &iport : router.in)
            iport.recomputeReadyMin();
    std::fill(injWake_.begin(), injWake_.end(), 0);
    for (std::size_t ep = 0; ep < injectors_.size(); ++ep)
        if (!injectors_[ep].quiet())
            injWake_[ep >> 6] |= 1ull << (ep & 63);
}

bool
MeshNetwork::idle() const
{
    if (packetsInFlight_ != 0)
        return false;
    if (!retxQueue_.empty())
        return false;
    for (const auto &inj : injectors_) {
        if (!inj.quiet())
            return false;
    }
    for (const Router &router : routers_)
        if (!router.empty())
            return false;
    return true;
}

} // namespace fsoi::noc
