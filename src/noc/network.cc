#include "noc/network.hh"

#include "common/logging.hh"

namespace fsoi::noc {

const char *
packetKindName(PacketKind kind)
{
    switch (kind) {
      case PacketKind::Request: return "Request";
      case PacketKind::Reply: return "Reply";
      case PacketKind::WriteBack: return "WriteBack";
      case PacketKind::MemRequest: return "MemRequest";
      case PacketKind::MemReply: return "MemReply";
      case PacketKind::Ack: return "Ack";
      case PacketKind::Control: return "Control";
    }
    return "?";
}

void
NetworkStats::recordDelivery(const Packet &pkt)
{
    deliveredCount_[index(pkt.cls)]++;
    const double total = static_cast<double>(pkt.totalLatency());
    total_.add(total);
    queuing_.add(static_cast<double>(pkt.queuingLatency()));
    scheduling_.add(static_cast<double>(pkt.sched_delay));
    network_.add(static_cast<double>(pkt.networkLatency()));
    collision_.add(static_cast<double>(pkt.collisionLatency()));
    perClass_[index(pkt.cls)].add(total);
}

void
NetworkStats::reset()
{
    for (auto &c : deliveredCount_)
        c.reset();
    for (auto &c : collisions_)
        c.reset();
    for (auto &c : attempts_)
        c.reset();
    for (auto &c : collisionsByKind_)
        c.reset();
    total_.reset();
    queuing_.reset();
    scheduling_.reset();
    network_.reset();
    collision_.reset();
    perClass_[0].reset();
    perClass_[1].reset();
}

Network::Network(int num_endpoints)
    : numEndpoints_(num_endpoints),
      handlers_(static_cast<std::size_t>(num_endpoints))
{
    FSOI_ASSERT(num_endpoints > 1);
}

void
Network::setHandler(NodeId node, Handler handler)
{
    FSOI_ASSERT(node < handlers_.size());
    handlers_[node] = std::move(handler);
}

void
Network::stampOnSend(Packet &pkt)
{
    FSOI_ASSERT(pkt.src < handlers_.size() && pkt.dst < handlers_.size());
    FSOI_ASSERT(pkt.src != pkt.dst, "self-send from node %u", pkt.src);
    pkt.id = nextId_++;
    pkt.created = now_;
}

void
Network::deliver(Packet &pkt)
{
    pkt.delivered = now_;
    FSOI_ASSERT(pkt.first_tx != kNoCycle && pkt.final_tx != kNoCycle,
                "packet %llu delivered without transmission timestamps",
                static_cast<unsigned long long>(pkt.id));
    stats_.recordDelivery(pkt);
    auto &handler = handlers_[pkt.dst];
    FSOI_ASSERT(handler != nullptr, "no handler at node %u", pkt.dst);
    handler(pkt);
}

} // namespace fsoi::noc
