#include "noc/network.hh"

#include "common/logging.hh"
#include "snapshot/state_io.hh"

namespace fsoi::noc {

const char *
packetKindName(PacketKind kind)
{
    switch (kind) {
      case PacketKind::Request: return "Request";
      case PacketKind::Reply: return "Reply";
      case PacketKind::WriteBack: return "WriteBack";
      case PacketKind::MemRequest: return "MemRequest";
      case PacketKind::MemReply: return "MemReply";
      case PacketKind::Ack: return "Ack";
      case PacketKind::Control: return "Control";
    }
    return "?";
}

void
NetworkStats::recordDelivery(const Packet &pkt)
{
    deliveredCount_[index(pkt.cls)]++;
    const double total = static_cast<double>(pkt.totalLatency());
    total_.add(total);
    queuing_.add(static_cast<double>(pkt.queuingLatency()));
    scheduling_.add(static_cast<double>(pkt.sched_delay));
    network_.add(static_cast<double>(pkt.networkLatency()));
    collision_.add(static_cast<double>(pkt.collisionLatency()));
    perClass_[index(pkt.cls)].add(total);
    latencyHistAll_.add(total);
    latencyHist_[index(pkt.cls)].add(total);
}

void
NetworkStats::registerStats(const obs::Scope &scope) const
{
    const obs::Scope delivered = scope.scope("delivered");
    delivered.counter("meta", deliveredCount_[index(PacketClass::Meta)]);
    delivered.counter("data", deliveredCount_[index(PacketClass::Data)]);
    delivered.derived("total", [this] {
        return static_cast<double>(deliveredTotal());
    });

    const obs::Scope collisions = scope.scope("collisions");
    collisions.counter("meta", collisions_[index(PacketClass::Meta)]);
    collisions.counter("data", collisions_[index(PacketClass::Data)]);
    const obs::Scope by_kind = collisions.scope("by_kind");
    for (int k = 0; k <= static_cast<int>(PacketKind::Control); ++k) {
        by_kind.counter(packetKindName(static_cast<PacketKind>(k)),
                        collisionsByKind_[k]);
    }

    const obs::Scope attempts = scope.scope("attempts");
    attempts.counter("meta", attempts_[index(PacketClass::Meta)]);
    attempts.counter("data", attempts_[index(PacketClass::Data)]);

    const obs::Scope rate = scope.scope("collision_rate");
    rate.derived("meta",
                 [this] { return collisionRate(PacketClass::Meta); });
    rate.derived("data",
                 [this] { return collisionRate(PacketClass::Data); });

    const obs::Scope latency = scope.scope("latency");
    latency.accumulator("total", total_);
    latency.accumulator("queuing", queuing_);
    latency.accumulator("scheduling", scheduling_);
    latency.accumulator("network", network_);
    latency.accumulator("collision_resolution", collision_);
    latency.accumulator("meta", perClass_[index(PacketClass::Meta)]);
    latency.accumulator("data", perClass_[index(PacketClass::Data)]);
    latency.histogram("hist", latencyHistAll_);
    latency.histogram("hist_meta", latencyHist_[index(PacketClass::Meta)]);
    latency.histogram("hist_data", latencyHist_[index(PacketClass::Data)]);
    latency.derived("p50", [this] { return latencyPercentile(0.50); });
    latency.derived("p99", [this] { return latencyPercentile(0.99); });
    latency.derived("p999", [this] { return latencyPercentile(0.999); });
}

void
NetworkStats::reset()
{
    for (auto &c : deliveredCount_)
        c.reset();
    for (auto &c : collisions_)
        c.reset();
    for (auto &c : attempts_)
        c.reset();
    for (auto &c : collisionsByKind_)
        c.reset();
    total_.reset();
    queuing_.reset();
    scheduling_.reset();
    network_.reset();
    collision_.reset();
    perClass_[0].reset();
    perClass_[1].reset();
    latencyHistAll_.reset();
    latencyHist_[0].reset();
    latencyHist_[1].reset();
}

void
NetworkStats::saveState(snapshot::Writer &w) const
{
    using namespace snapshot;
    for (const auto &c : deliveredCount_)
        saveCounter(w, c);
    for (const auto &c : collisions_)
        saveCounter(w, c);
    for (const auto &c : attempts_)
        saveCounter(w, c);
    for (const auto &c : collisionsByKind_)
        saveCounter(w, c);
    saveAccumulator(w, total_);
    saveAccumulator(w, queuing_);
    saveAccumulator(w, scheduling_);
    saveAccumulator(w, network_);
    saveAccumulator(w, collision_);
    saveAccumulator(w, perClass_[0]);
    saveAccumulator(w, perClass_[1]);
    saveHistogram(w, latencyHistAll_);
    saveHistogram(w, latencyHist_[0]);
    saveHistogram(w, latencyHist_[1]);
}

void
NetworkStats::loadState(snapshot::Reader &r)
{
    using namespace snapshot;
    for (auto &c : deliveredCount_)
        loadCounter(r, c);
    for (auto &c : collisions_)
        loadCounter(r, c);
    for (auto &c : attempts_)
        loadCounter(r, c);
    for (auto &c : collisionsByKind_)
        loadCounter(r, c);
    loadAccumulator(r, total_);
    loadAccumulator(r, queuing_);
    loadAccumulator(r, scheduling_);
    loadAccumulator(r, network_);
    loadAccumulator(r, collision_);
    loadAccumulator(r, perClass_[0]);
    loadAccumulator(r, perClass_[1]);
    loadHistogram(r, latencyHistAll_);
    loadHistogram(r, latencyHist_[0]);
    loadHistogram(r, latencyHist_[1]);
}

void
RetxStats::saveState(snapshot::Writer &w) const
{
    snapshot::saveCounter(w, packets_);
    snapshot::saveCounter(w, crcDrops_);
    snapshot::saveCounter(w, deadChannelLosses_);
}

void
RetxStats::loadState(snapshot::Reader &r)
{
    snapshot::loadCounter(r, packets_);
    snapshot::loadCounter(r, crcDrops_);
    snapshot::loadCounter(r, deadChannelLosses_);
}

void
Network::saveState(snapshot::Writer &w) const
{
    w.u64(now_);
    w.u64(nextId_);
    stats_.saveState(w);
    retx_.saveState(w);
}

void
Network::loadState(snapshot::Reader &r)
{
    now_ = r.u64();
    nextId_ = r.u64();
    stats_.loadState(r);
    retx_.loadState(r);
}

void
Network::saveSnapshot(snapshot::SnapshotWriter &snap,
                      const std::string &prefix) const
{
    saveState(snap.section(prefix));
}

void
Network::loadSnapshot(const snapshot::SnapshotReader &snap,
                      const std::string &prefix)
{
    snapshot::Reader r = snap.open(prefix);
    loadState(r);
}

Network::Network(int num_endpoints)
    : numEndpoints_(num_endpoints),
      handlers_(static_cast<std::size_t>(num_endpoints))
{
    FSOI_ASSERT(num_endpoints > 1);
}

void
Network::setHandler(NodeId node, Handler handler)
{
    FSOI_ASSERT(node < handlers_.size());
    handlers_[node] = std::move(handler);
}

void
Network::stampOnSend(Packet &pkt)
{
    FSOI_ASSERT(pkt.src < handlers_.size() && pkt.dst < handlers_.size());
    FSOI_ASSERT(pkt.src != pkt.dst, "self-send from node %u", pkt.src);
    pkt.id = nextId_++;
    pkt.created = now_;
}

void
Network::deliver(Packet &pkt)
{
    pkt.delivered = now_;
    FSOI_ASSERT(pkt.first_tx != kNoCycle && pkt.final_tx != kNoCycle,
                "packet %llu delivered without transmission timestamps",
                static_cast<unsigned long long>(pkt.id));
    stats_.recordDelivery(pkt);
    auto &handler = handlers_[pkt.dst];
    FSOI_ASSERT(handler != nullptr, "no handler at node %u", pkt.dst);
    handler(pkt);
}

} // namespace fsoi::noc
