/**
 * @file
 * Network packet definition shared by all interconnect implementations.
 *
 * The system uses two packet lengths (Section 4.3.1): 72-bit meta packets
 * (requests, acknowledgments, control) and 360-bit data packets (cache
 * lines, memory transfers). Each packet carries timestamps so the
 * latency breakdown of Figure 6(a) -- queuing, scheduling, network,
 * collision resolution -- can be reconstructed at delivery.
 */

#ifndef FSOI_NOC_PACKET_HH
#define FSOI_NOC_PACKET_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/types.hh"

namespace fsoi::noc {

/** Lane / length class of a packet. */
enum class PacketClass : std::uint8_t
{
    Meta, //!< 72-bit control packet (1 mesh flit / 2-cycle FSOI slot)
    Data, //!< 360-bit data packet (5 mesh flits / 5-cycle FSOI slot)
};

/** Semantic kind, used for the Figure 10 collision breakdown. */
enum class PacketKind : std::uint8_t
{
    Request,    //!< coherence request (meta)
    Reply,      //!< data reply to an earlier request
    WriteBack,  //!< evicted dirty line to the directory
    MemRequest, //!< directory -> memory controller fetch
    MemReply,   //!< memory controller -> directory fill
    Ack,        //!< invalidation/exclusive acknowledgment (meta)
    Control,    //!< everything else (NACKs, updates, barrier tokens)
};

/** Returns a short printable name for a packet kind. */
const char *packetKindName(PacketKind kind);

/** Number of payload bits for a class (paper defaults). */
inline std::uint32_t
packetBits(PacketClass cls)
{
    return cls == PacketClass::Meta ? 72u : 360u;
}

/** A message in flight between two network endpoints. */
struct Packet
{
    std::uint64_t id = 0;        //!< unique per network instance
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    PacketClass cls = PacketClass::Meta;
    PacketKind kind = PacketKind::Control;

    /**
     * Opaque payload bytes (the network never inspects them). The
     * payload is stored inline so a Packet is trivially copyable:
     * no allocation, no shared_ptr refcount traffic, and flit/slot
     * state can hold packets in flat index-addressed pools. Only
     * trivially-copyable protocol structs (coherence::Message) ride
     * here; setPayload/payloadAs round-trip them via memcpy.
     */
    static constexpr std::size_t kMaxPayloadBytes = 56;
    alignas(8) std::byte payload[kMaxPayloadBytes];

    // --- Timestamps filled in by the network ---
    Cycle created = kNoCycle;     //!< handed to Network::send()
    Cycle first_tx = kNoCycle;    //!< first transmission attempt started
    Cycle final_tx = kNoCycle;    //!< successful transmission started
    Cycle delivered = kNoCycle;   //!< handler invoked at the destination

    Cycle sched_delay = 0;        //!< intentional (request-spacing) delay
    int retries = 0;              //!< collided transmissions before success

    /** Total latency from send() to delivery. */
    Cycle
    totalLatency() const
    {
        return delivered - created;
    }

    /** Time spent waiting in the source queue (excl. scheduling). */
    Cycle
    queuingLatency() const
    {
        return first_tx - created - sched_delay;
    }

    /** Extra time caused by collisions and retransmissions. */
    Cycle
    collisionLatency() const
    {
        return final_tx - first_tx;
    }

    /** Serialization + flight time of the successful transmission. */
    Cycle
    networkLatency() const
    {
        return delivered - final_tx;
    }

    /** Store a trivially-copyable payload struct inline. */
    template <typename T>
    void
    setPayload(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        static_assert(sizeof(T) <= kMaxPayloadBytes);
        std::memcpy(payload, &value, sizeof(T));
    }

    /** Convenience for payload retrieval. */
    template <typename T>
    T
    payloadAs() const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        static_assert(sizeof(T) <= kMaxPayloadBytes);
        T out;
        std::memcpy(&out, payload, sizeof(T));
        return out;
    }
};

static_assert(std::is_trivially_copyable_v<Packet>);

/** Build a packet (id/timestamps are assigned by the network).
 *  Value-initialized so the unused payload tail is zero: snapshots
 *  serialize the whole inline payload, and indeterminate bytes would
 *  make snapshot hashes nondeterministic. */
inline Packet
makePacket(NodeId src, NodeId dst, PacketClass cls, PacketKind kind)
{
    Packet pkt{};
    pkt.src = src;
    pkt.dst = dst;
    pkt.cls = cls;
    pkt.kind = kind;
    return pkt;
}

/** Build a packet carrying an inline payload struct. */
template <typename T>
inline Packet
makePacket(NodeId src, NodeId dst, PacketClass cls, PacketKind kind,
           const T &payload)
{
    Packet pkt = makePacket(src, dst, cls, kind);
    pkt.setPayload(payload);
    return pkt;
}

} // namespace fsoi::noc

#endif // FSOI_NOC_PACKET_HH
