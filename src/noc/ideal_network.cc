#include "noc/ideal_network.hh"

#include "common/logging.hh"
#include "noc/packet_io.hh"
#include "snapshot/state_io.hh"

namespace fsoi::noc {

IdealConfig
makeL0Config()
{
    return IdealConfig{};
}

IdealConfig
makeLr1Config()
{
    IdealConfig cfg;
    cfg.router_cycles = 1;
    cfg.link_cycles = 1;
    return cfg;
}

IdealConfig
makeLr2Config()
{
    IdealConfig cfg;
    cfg.router_cycles = 2;
    cfg.link_cycles = 1;
    return cfg;
}

IdealNetwork::IdealNetwork(const MeshLayout &layout,
                           const IdealConfig &config)
    : Network(layout.numEndpoints()), layout_(layout), config_(config),
      lanes_(static_cast<std::size_t>(layout.numEndpoints()) * 2)
{
    FSOI_ASSERT(config_.meta_serialization >= 1);
    FSOI_ASSERT(config_.data_serialization >= 1);
    FSOI_ASSERT(config_.queue_capacity >= 1);
}

IdealNetwork::Lane &
IdealNetwork::lane(NodeId src, PacketClass cls)
{
    return lanes_[static_cast<std::size_t>(src) * 2
                  + static_cast<int>(cls)];
}

const IdealNetwork::Lane &
IdealNetwork::lane(NodeId src, PacketClass cls) const
{
    return lanes_[static_cast<std::size_t>(src) * 2
                  + static_cast<int>(cls)];
}

bool
IdealNetwork::canAccept(NodeId src, PacketClass cls) const
{
    return lane(src, cls).queue.size()
        < static_cast<std::size_t>(config_.queue_capacity);
}

int
IdealNetwork::sendBudget(NodeId src, PacketClass cls) const
{
    return config_.queue_capacity
        - static_cast<int>(lane(src, cls).queue.size());
}

bool
IdealNetwork::send(Packet &&pkt)
{
    if (!canAccept(pkt.src, pkt.cls))
        return false;
    stampOnSend(pkt);
    lane(pkt.src, pkt.cls).queue.push_back(std::move(pkt));
    ++queuedPackets_;
    return true;
}

void
IdealNetwork::tick(Cycle now)
{
    setNow(now);

    // Nothing queued and nothing flying: the lane scan cannot start or
    // deliver anything, so skip it.
    if (queuedPackets_ == 0 && inflight_.empty())
        return;

    // Deliver what is due.
    while (!inflight_.empty() && inflight_.top().due <= now) {
        Packet pkt = std::move(const_cast<InFlight &>(inflight_.top()).pkt);
        inflight_.pop();
        deliver(pkt);
    }

    // Start serialization on every free lane.
    for (NodeId src = 0;
         src < static_cast<NodeId>(layout_.numEndpoints()); ++src) {
        for (PacketClass cls : {PacketClass::Meta, PacketClass::Data}) {
            Lane &ln = lane(src, cls);
            if (ln.queue.empty() || ln.free_at > now)
                continue;
            Packet pkt = std::move(ln.queue.front());
            ln.queue.pop_front();
            --queuedPackets_;
            const int ser = cls == PacketClass::Meta
                ? config_.meta_serialization
                : config_.data_serialization;
            pkt.first_tx = now;
            pkt.final_tx = now;
            stats().recordAttempt(cls);
            ln.free_at = now + ser;
            Cycle flight = 0;
            if (config_.router_cycles > 0 || config_.link_cycles > 0) {
                const int routers =
                    layout_.routersTraversed(pkt.src, pkt.dst);
                const int links = layout_.hopDistance(pkt.src, pkt.dst);
                flight = static_cast<Cycle>(routers)
                    * config_.router_cycles
                    + static_cast<Cycle>(links) * config_.link_cycles;
            }
            inflight_.push(InFlight{now + ser + flight, seq_++,
                                    std::move(pkt)});
        }
    }
}

void
IdealNetwork::saveState(snapshot::Writer &w) const
{
    Network::saveState(w);
    w.u64(lanes_.size());
    for (const Lane &ln : lanes_) {
        w.u64(ln.queue.size());
        for (const Packet &pkt : ln.queue)
            savePacket(w, pkt);
        w.u64(ln.free_at);
    }
    // Drain a copy of the heap in (due, seq) order. The rebuilt heap's
    // internal array may differ, but pops follow the same total order
    // (seq is unique), so behaviour after restore is identical.
    auto heap = inflight_;
    w.u64(heap.size());
    while (!heap.empty()) {
        const InFlight &top = heap.top();
        w.u64(top.due);
        w.u64(top.seq);
        savePacket(w, top.pkt);
        heap.pop();
    }
    w.u64(seq_);
    w.u64(queuedPackets_);
}

void
IdealNetwork::loadState(snapshot::Reader &r)
{
    Network::loadState(r);
    const std::uint64_t num_lanes = r.u64();
    FSOI_ASSERT(num_lanes == lanes_.size(),
                "ideal network endpoint count mismatch on restore");
    for (Lane &ln : lanes_) {
        ln.queue.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            ln.queue.push_back(loadPacket(r));
        ln.free_at = r.u64();
    }
    inflight_ = {};
    const std::uint64_t num_inflight = r.u64();
    for (std::uint64_t i = 0; i < num_inflight; ++i) {
        InFlight f;
        f.due = r.u64();
        f.seq = r.u64();
        f.pkt = loadPacket(r);
        inflight_.push(std::move(f));
    }
    seq_ = r.u64();
    queuedPackets_ = r.u64();
}

bool
IdealNetwork::idle() const
{
    if (!inflight_.empty())
        return false;
    for (const auto &ln : lanes_)
        if (!ln.queue.empty())
            return false;
    return true;
}

} // namespace fsoi::noc
