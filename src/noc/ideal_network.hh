/**
 * @file
 * Idealized interconnects used as comparison points (Section 7.1):
 *
 *  - L0  : zero transmission latency; a packet only pays serialization
 *          (1 cycle meta / 5 cycles data) and source queuing.
 *  - Lr1 : additionally 1 cycle per router + 1 cycle per link along the
 *          mesh path, with no contention anywhere.
 *  - Lr2 : as Lr1 with 2 cycles per router.
 */

#ifndef FSOI_NOC_IDEAL_NETWORK_HH
#define FSOI_NOC_IDEAL_NETWORK_HH

#include <deque>
#include <queue>
#include <vector>

#include "noc/network.hh"
#include "noc/topology.hh"

namespace fsoi::noc {

/** Configuration of an ideal network. */
struct IdealConfig
{
    /** Cycles of router processing charged per router traversed. */
    int router_cycles = 0; // 0 => L0, 1 => Lr1, 2 => Lr2
    /** Cycles per link traversed (0 for L0). */
    int link_cycles = 0;
    int meta_serialization = 1; //!< cycles to serialize a meta packet
    int data_serialization = 5; //!< cycles to serialize a data packet
    int queue_capacity = 8;     //!< per-source per-class packet queue
};

/** Convenience constructors for the three paper configurations. */
IdealConfig makeL0Config();
IdealConfig makeLr1Config();
IdealConfig makeLr2Config();

/** Contention-free interconnect with per-source serialization. */
class IdealNetwork : public Network
{
  public:
    IdealNetwork(const MeshLayout &layout, const IdealConfig &config);

    bool send(Packet &&pkt) override;
    bool canAccept(NodeId src, PacketClass cls) const override;
    int sendBudget(NodeId src, PacketClass cls) const override;
    void tick(Cycle now) override;
    bool idle() const override;

    /** Event-calendar contract: drained means nothing until a send. */
    Cycle
    nextEventCycle(Cycle now) const override
    {
        return queuedPackets_ == 0 && inflight_.empty() ? kNoCycle
                                                        : now + 1;
    }

    void saveState(snapshot::Writer &w) const override;
    void loadState(snapshot::Reader &r) override;

  private:
    struct Lane
    {
        std::deque<Packet> queue;
        Cycle free_at = 0;
    };

    struct InFlight
    {
        Cycle due;
        std::uint64_t seq; // tie-break for deterministic ordering
        Packet pkt;
        bool operator>(const InFlight &o) const
        {
            return due != o.due ? due > o.due : seq > o.seq;
        }
    };

    Lane &lane(NodeId src, PacketClass cls);
    const Lane &lane(NodeId src, PacketClass cls) const;

    MeshLayout layout_;
    IdealConfig config_;
    std::vector<Lane> lanes_; // [endpoint][class]
    std::priority_queue<InFlight, std::vector<InFlight>,
                        std::greater<InFlight>> inflight_;
    std::uint64_t seq_ = 0;
    std::uint64_t queuedPackets_ = 0; //!< packets waiting in lane queues
};

} // namespace fsoi::noc

#endif // FSOI_NOC_IDEAL_NETWORK_HH
