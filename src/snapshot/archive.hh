/**
 * @file
 * Snapshot container format: versioned, hash-verified binary sections.
 *
 * A snapshot file is a flat sequence of named sections, each guarded by
 * its own FNV-1a hash, under a root hash over the section table:
 *
 *   "FSOISNP\0"  magic (8 bytes)
 *   u32          format version (kFormatVersion)
 *   u32          section count
 *   u64          root hash (FNV-1a over every section's name/size/hash)
 *   per section: u16 name length, name bytes,
 *                u64 payload size, u64 payload hash, payload bytes
 *
 * Integrity is checked section by section at open time, so a truncated
 * or bit-flipped file fails with a *named* diagnosis — e.g.
 * "snapshot.corrupt: mesh.router[12]" — instead of feeding garbage into
 * component state. All multi-byte values are little-endian regardless
 * of host; doubles travel as their IEEE-754 bit patterns, so restored
 * state (and the hashes over it) is bit-exact.
 *
 * Everything here is header-only and depends on the standard library
 * alone: simulator components serialize through Writer/Reader, while
 * offline tools (stats_report --snapshot) can parse the container
 * without linking any simulator code.
 *
 * Compatibility policy: the format version is bumped on ANY layout
 * change, and restore refuses other versions outright. Snapshots are
 * short-lived artifacts (crash-resume points, warm-start seeds, CI
 * manifests regenerated with the tree), never a long-term archive, so
 * there is deliberately no cross-version migration path.
 */

#ifndef FSOI_SNAPSHOT_ARCHIVE_HH
#define FSOI_SNAPSHOT_ARCHIVE_HH

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace fsoi::snapshot {

inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr char kMagic[8] = {'F', 'S', 'O', 'I', 'S', 'N', 'P', 0};

/** Any malformed / corrupt / mismatched snapshot throws this; the
 *  what() string is the named diagnosis (`snapshot.corrupt: ...`). */
struct SnapshotError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** 64-bit FNV-1a over a byte range, chainable via @p h. */
inline std::uint64_t
fnv1a(const void *data, std::size_t n,
      std::uint64_t h = 0xcbf29ce484222325ULL)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x00000100000001b3ULL;
    }
    return h;
}

/** Append-only byte buffer with explicit little-endian encoders.
 *  Values are written field by field — never whole structs — so struct
 *  padding can't leak indeterminate bytes into the hashes. */
class Writer
{
  public:
    void
    raw(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /** IEEE-754 bit pattern: restore is bit-exact, hashes are stable. */
    void
    dbl(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked reader over one section's payload. Reading past the
 *  end throws a diagnosis naming the section (can only happen on a
 *  writer/reader schema bug — corruption is caught by the hash). */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size, std::string name)
        : data_(data), size_(size), name_(std::move(name))
    {}

    void
    raw(void *out, std::size_t n)
    {
        if (pos_ + n > size_)
            throw SnapshotError("snapshot.underrun: " + name_);
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    std::uint8_t
    u8()
    {
        if (pos_ >= size_)
            throw SnapshotError("snapshot.underrun: " + name_);
        return data_[pos_++];
    }

    bool boolean() { return u8() != 0; }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo | (std::uint16_t{u8()} << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (std::uint32_t{u16()} << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (std::uint64_t{u32()} << 32);
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double
    dbl()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (pos_ + n > size_)
            throw SnapshotError("snapshot.underrun: " + name_);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    std::size_t remaining() const { return size_ - pos_; }
    const std::string &name() const { return name_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::string name_;
};

/** Builds a snapshot: open named sections, then serialize to a file
 *  (written atomically: temp file + rename) or a byte buffer. */
class SnapshotWriter
{
  public:
    /** Open a new section; the returned Writer stays valid for the
     *  lifetime of this SnapshotWriter. Sections are emitted in
     *  creation order. */
    Writer &
    section(std::string name)
    {
        sections_.emplace_back(std::move(name), Writer{});
        return sections_.back().second;
    }

    std::vector<std::uint8_t>
    serialize() const
    {
        Writer table;
        std::uint64_t root = 0xcbf29ce484222325ULL;
        for (const auto &[name, w] : sections_) {
            const std::uint64_t hash = fnv1a(w.bytes().data(), w.size());
            root = fnv1a(name.data(), name.size(), root);
            const std::uint64_t size64 = w.size();
            root = fnv1a(&size64, sizeof(size64), root);
            root = fnv1a(&hash, sizeof(hash), root);
        }

        Writer out;
        out.raw(kMagic, sizeof(kMagic));
        out.u32(kFormatVersion);
        out.u32(static_cast<std::uint32_t>(sections_.size()));
        out.u64(root);
        for (const auto &[name, w] : sections_) {
            out.u16(static_cast<std::uint16_t>(name.size()));
            out.raw(name.data(), name.size());
            out.u64(w.size());
            out.u64(fnv1a(w.bytes().data(), w.size()));
            out.raw(w.bytes().data(), w.size());
        }
        return out.bytes();
    }

    /** Write atomically (temp + rename) so a crash mid-write never
     *  leaves a half-written snapshot under the final name. */
    void
    writeFile(const std::string &path) const
    {
        const std::vector<std::uint8_t> bytes = serialize();
        const std::string tmp = path + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "wb");
        if (!f)
            throw SnapshotError("snapshot.io: cannot write " + tmp);
        const bool ok =
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
        const bool closed = std::fclose(f) == 0;
        if (!ok || !closed) {
            std::remove(tmp.c_str());
            throw SnapshotError("snapshot.io: short write to " + tmp);
        }
        if (std::rename(tmp.c_str(), path.c_str()) != 0) {
            std::remove(tmp.c_str());
            throw SnapshotError("snapshot.io: cannot rename to " + path);
        }
    }

  private:
    std::deque<std::pair<std::string, Writer>> sections_;
};

/** Parses and verifies a snapshot; every section's hash is checked up
 *  front so consumers never read corrupt bytes. */
class SnapshotReader
{
  public:
    struct SectionInfo
    {
        std::string name;
        std::uint64_t size;
        std::uint64_t hash;
        std::size_t offset; //!< payload offset within the file
    };

    explicit SnapshotReader(std::vector<std::uint8_t> bytes)
        : bytes_(std::move(bytes))
    {
        parse();
    }

    static SnapshotReader
    fromFile(const std::string &path)
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f)
            throw SnapshotError("snapshot.io: cannot open " + path);
        std::vector<std::uint8_t> bytes;
        std::uint8_t chunk[65536];
        std::size_t n;
        while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
            bytes.insert(bytes.end(), chunk, chunk + n);
        std::fclose(f);
        return SnapshotReader(std::move(bytes));
    }

    std::uint32_t version() const { return version_; }
    std::uint64_t rootHash() const { return root_; }
    const std::vector<SectionInfo> &sections() const { return sections_; }

    bool
    has(const std::string &name) const
    {
        for (const auto &s : sections_)
            if (s.name == name)
                return true;
        return false;
    }

    /** Open a section for reading; throws when absent. */
    Reader
    open(const std::string &name) const
    {
        for (const auto &s : sections_)
            if (s.name == name)
                return Reader(bytes_.data() + s.offset,
                              static_cast<std::size_t>(s.size), s.name);
        throw SnapshotError("snapshot.missing: " + name);
    }

  private:
    void
    parse()
    {
        Reader hdr(bytes_.data(), bytes_.size(), "header");
        char magic[8];
        hdr.raw(magic, sizeof(magic));
        if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
            throw SnapshotError("snapshot.bad_magic: not a snapshot file");
        version_ = hdr.u32();
        if (version_ != kFormatVersion)
            throw SnapshotError(
                "snapshot.version_mismatch: file has version "
                + std::to_string(version_) + ", this build reads "
                + std::to_string(kFormatVersion));
        const std::uint32_t count = hdr.u32();
        root_ = hdr.u64();
        std::size_t pos = bytes_.size() - hdr.remaining();
        for (std::uint32_t i = 0; i < count; ++i) {
            Reader sec(bytes_.data() + pos, bytes_.size() - pos,
                       "section table");
            SectionInfo info;
            const std::uint16_t name_len = sec.u16();
            info.name.resize(name_len);
            sec.raw(info.name.data(), name_len);
            info.size = sec.u64();
            info.hash = sec.u64();
            pos += 2 + name_len + 16;
            if (pos + info.size > bytes_.size())
                throw SnapshotError("snapshot.truncated: " + info.name);
            info.offset = pos;
            pos += static_cast<std::size_t>(info.size);
            sections_.push_back(std::move(info));
        }

        // Root hash over the section table first: a tampered table
        // entry would otherwise let a payload "verify" against a
        // forged hash.
        std::uint64_t root = 0xcbf29ce484222325ULL;
        for (const auto &s : sections_) {
            root = fnv1a(s.name.data(), s.name.size(), root);
            root = fnv1a(&s.size, sizeof(s.size), root);
            root = fnv1a(&s.hash, sizeof(s.hash), root);
        }
        if (root != root_)
            throw SnapshotError("snapshot.corrupt: section table");
        for (const auto &s : sections_) {
            if (fnv1a(bytes_.data() + s.offset,
                      static_cast<std::size_t>(s.size)) != s.hash)
                throw SnapshotError("snapshot.corrupt: " + s.name);
        }
    }

    std::vector<std::uint8_t> bytes_;
    std::uint32_t version_ = 0;
    std::uint64_t root_ = 0;
    std::vector<SectionInfo> sections_;
};

} // namespace fsoi::snapshot

#endif // FSOI_SNAPSHOT_ARCHIVE_HH
