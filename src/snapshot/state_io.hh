/**
 * @file
 * Serializers for the common state primitives (counters, accumulators,
 * histograms, RNG streams) shared by every component's saveState /
 * loadState implementation. Kept separate from archive.hh so the bare
 * container format stays free of simulator types for offline tools.
 */

#ifndef FSOI_SNAPSHOT_STATE_IO_HH
#define FSOI_SNAPSHOT_STATE_IO_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "snapshot/archive.hh"

namespace fsoi::snapshot {

inline void
saveCounter(Writer &w, const Counter &c)
{
    w.u64(c.value());
}

inline void
loadCounter(Reader &r, Counter &c)
{
    c.restore(r.u64());
}

inline void
saveAccumulator(Writer &w, const Accumulator &a)
{
    const Accumulator::Raw raw = a.exportState();
    w.u64(raw.n);
    w.dbl(raw.sum);
    w.dbl(raw.sumsq);
    w.dbl(raw.min);
    w.dbl(raw.max);
}

inline void
loadAccumulator(Reader &r, Accumulator &a)
{
    Accumulator::Raw raw;
    raw.n = r.u64();
    raw.sum = r.dbl();
    raw.sumsq = r.dbl();
    raw.min = r.dbl();
    raw.max = r.dbl();
    a.importState(raw);
}

inline void
saveU64Vec(Writer &w, const std::vector<std::uint64_t> &v)
{
    w.u64(v.size());
    for (const std::uint64_t x : v)
        w.u64(x);
}

inline std::vector<std::uint64_t>
loadU64Vec(Reader &r)
{
    std::vector<std::uint64_t> v(r.u64());
    for (auto &x : v)
        x = r.u64();
    return v;
}

inline void
saveHistogram(Writer &w, const Histogram &h)
{
    w.u64(h.count());
    w.u64(h.underflow());
    saveAccumulator(w, h.rawAccumulator());
    saveU64Vec(w, h.rawBins());
}

inline void
loadHistogram(Reader &r, Histogram &h)
{
    const std::uint64_t total = r.u64();
    const std::uint64_t underflow = r.u64();
    Accumulator acc;
    loadAccumulator(r, acc);
    const auto bins = loadU64Vec(r);
    h.importState(total, underflow, acc.exportState(), bins);
}

inline void
saveRng(Writer &w, const Rng &rng)
{
    std::uint64_t state[4];
    rng.exportState(state);
    for (const std::uint64_t word : state)
        w.u64(word);
}

inline void
loadRng(Reader &r, Rng &rng)
{
    std::uint64_t state[4];
    for (auto &word : state)
        word = r.u64();
    rng.importState(state);
}

} // namespace fsoi::snapshot

#endif // FSOI_SNAPSHOT_STATE_IO_HH
