#include "analytic/bandwidth_alloc.hh"

#include <cmath>

#include "common/logging.hh"

namespace fsoi::analytic {

AllocationConstants
paperConstants()
{
    // c3/c1 ~ 9: data packets are 5x longer and carry the cache lines on
    // the critical path of misses; quadratic (collision) terms are small
    // at the operating collision rates (~1e-2). Calibrated so the
    // stationary point of expectedLatency sits at 0.285.
    return AllocationConstants{1.0, 0.08, 8.984, 0.3};
}

double
expectedLatency(const AllocationConstants &c, double meta_share)
{
    FSOI_ASSERT(meta_share > 0.0 && meta_share < 1.0);
    const double m = meta_share;
    const double d = 1.0 - meta_share;
    return c.c1 / m + c.c2 / (m * m) + c.c3 / d + c.c4 / (d * d);
}

double
optimalMetaShare(const AllocationConstants &c)
{
    // Golden-section search on the strictly convex latency function.
    constexpr double phi = 0.6180339887498949;
    double lo = 1e-4, hi = 1.0 - 1e-4;
    double x1 = hi - phi * (hi - lo);
    double x2 = lo + phi * (hi - lo);
    double f1 = expectedLatency(c, x1);
    double f2 = expectedLatency(c, x2);
    for (int i = 0; i < 200; ++i) {
        if (f1 < f2) {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = expectedLatency(c, x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = expectedLatency(c, x2);
        }
    }
    return 0.5 * (lo + hi);
}

} // namespace fsoi::analytic
