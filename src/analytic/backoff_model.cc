#include "analytic/backoff_model.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace fsoi::analytic {

namespace {

/** Retry window (slots) for the r-th retry (r starting at 1). */
std::uint64_t
windowSlots(const BackoffParams &p, int retry)
{
    const double w = p.window * std::pow(p.base, retry - 1);
    return static_cast<std::uint64_t>(std::max(1.0, std::ceil(w)));
}

} // namespace

BackoffResult
simulateBackoff(const BackoffParams &params, std::uint64_t episodes,
                std::uint64_t seed)
{
    FSOI_ASSERT(params.window >= 1.0);
    FSOI_ASSERT(params.base >= 1.0);
    FSOI_ASSERT(params.initial_contenders >= 1);
    FSOI_ASSERT(episodes > 0);

    Rng rng(seed);
    // Cycles between a slot ending and the sender knowing the outcome,
    // expressed in whole slots (rounded up) before the retry window.
    const std::uint64_t conf_slots = (params.confirmation_delay
        + params.slot_cycles - 1) / params.slot_cycles;

    double delay_sum = 0.0;
    double retries_sum = 0.0;
    double max_delay = 0.0;
    std::uint64_t resolved = 0;

    struct Contender
    {
        std::uint64_t next_slot;
        int retries;
        bool done;
    };

    std::vector<Contender> cont(params.initial_contenders);
    for (std::uint64_t e = 0; e < episodes; ++e) {
        for (auto &c : cont) {
            c.retries = 1;
            c.next_slot = conf_slots + rng.nextRange(1, windowSlots(params, 1));
            c.done = false;
        }
        int active = params.initial_contenders;
        while (active > 0) {
            // Earliest pending retry slot.
            std::uint64_t t = ~0ULL;
            for (const auto &c : cont)
                if (!c.done)
                    t = std::min(t, c.next_slot);
            int in_slot = 0;
            for (const auto &c : cont)
                if (!c.done && c.next_slot == t)
                    ++in_slot;
            const bool background = rng.nextBool(params.background_rate);
            if (in_slot == 1 && !background) {
                for (auto &c : cont) {
                    if (!c.done && c.next_slot == t) {
                        c.done = true;
                        // Delay from collision detection to the start
                        // of the successful retransmission (the
                        // success confirmation overlaps useful work
                        // and is not charged).
                        const double delay = static_cast<double>(t)
                            * params.slot_cycles;
                        delay_sum += delay;
                        retries_sum += c.retries;
                        max_delay = std::max(max_delay, delay);
                        ++resolved;
                    }
                }
                --active;
            } else {
                for (auto &c : cont) {
                    if (c.done || c.next_slot != t)
                        continue;
                    if (c.retries >= params.max_retries) {
                        // Safety: count as resolved at the bound.
                        c.done = true;
                        const double delay = static_cast<double>(t)
                            * params.slot_cycles;
                        delay_sum += delay;
                        retries_sum += c.retries;
                        max_delay = std::max(max_delay, delay);
                        ++resolved;
                        --active;
                        continue;
                    }
                    ++c.retries;
                    c.next_slot = t + conf_slots
                        + rng.nextRange(1, windowSlots(params, c.retries));
                }
            }
        }
    }

    BackoffResult res{};
    res.mean_delay_cycles = delay_sum / static_cast<double>(resolved);
    res.mean_retries = retries_sum / static_cast<double>(resolved);
    res.max_delay_cycles = max_delay;
    return res;
}

Cycle
boundedResolutionBudget(const BackoffParams &params, int max_retx)
{
    FSOI_ASSERT(max_retx >= 1);
    const std::uint64_t conf_slots = (params.confirmation_delay
        + params.slot_cycles - 1) / params.slot_cycles;
    std::uint64_t slots = 0;
    for (int r = 1; r <= max_retx; ++r)
        slots += conf_slots + windowSlots(params, r);
    return static_cast<Cycle>(slots)
        * static_cast<Cycle>(params.slot_cycles);
}

double
approxResolutionDelay(const BackoffParams &params)
{
    FSOI_ASSERT(params.initial_contenders == 2,
                "closed form assumes a two-party collision");
    // E_r = wait_r + conf + P(fail at retry r) * E_{r+1}, truncated.
    const int depth = 64;
    const double conf_slots = std::ceil(
        static_cast<double>(params.confirmation_delay)
        / params.slot_cycles);
    double e_next = 0.0;
    for (int r = depth; r >= 1; --r) {
        const double w = static_cast<double>(windowSlots(params, r));
        const double wait_cycles =
            (conf_slots + (w + 1.0) / 2.0) * params.slot_cycles;
        // The other contender picks the same slot with probability 1/w
        // (same-window approximation); a background packet adds G.
        double p_fail = 1.0 / w + params.background_rate;
        p_fail = std::min(p_fail, 0.99);
        e_next = wait_cycles + p_fail * e_next;
    }
    return e_next;
}

} // namespace fsoi::analytic
