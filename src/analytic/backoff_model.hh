/**
 * @file
 * Exponential-backoff collision-resolution model (Section 4.3.2,
 * Figure 4).
 *
 * After a collision is detected, each involved sender retries in a slot
 * drawn uniformly from a window of ceil(W * B^(r-1)) slots on its r-th
 * retry. While retries are pending, uninvolved nodes keep transmitting at
 * a background rate G per slot, which can add new contenders.
 *
 * The paper's operating point is W = 2.7, B = 1.1 with a confirmation
 * delay of 2 cycles; the meta-lane slot is 2 processor cycles.
 */

#ifndef FSOI_ANALYTIC_BACKOFF_MODEL_HH
#define FSOI_ANALYTIC_BACKOFF_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace fsoi::analytic {

/** Parameters of the backoff game. */
struct BackoffParams
{
    double window = 2.7;          //!< W, starting window in slots
    double base = 1.1;            //!< B, window growth base per retry
    double background_rate = 0.01; //!< G, per-node new-packet prob per slot
    int initial_contenders = 2;   //!< packets in the initial collision
    int slot_cycles = 2;          //!< processor cycles per (meta) slot
    int confirmation_delay = 2;   //!< cycles until collision is known
    int max_retries = 10000;      //!< safety bound for the simulation
};

/** Outcome of resolving one collision episode. */
struct BackoffResult
{
    double mean_delay_cycles;  //!< mean extra delay until success
    double mean_retries;       //!< mean number of retransmissions
    double max_delay_cycles;   //!< worst episode observed
};

/**
 * Monte Carlo estimate of the collision-resolution delay: the expected
 * extra cycles between a packet's first (collided) transmission and its
 * eventual successful transmission, averaged over the initial
 * contenders, over @p episodes episodes.
 */
BackoffResult simulateBackoff(const BackoffParams &params,
                              std::uint64_t episodes,
                              std::uint64_t seed = 1);

/**
 * Fast analytic approximation of the same quantity for a two-party
 * collision: a retry succeeds unless the other contender picks the same
 * slot (prob 1/max(W_r,1) while it is still unresolved) or a background
 * packet lands on it (prob ~ G). Used for the Figure 4 surface where
 * Monte Carlo at every (W, B) grid point would be slow.
 */
double approxResolutionDelay(const BackoffParams &params);

/**
 * Worst-case cycles one packet can spend in @p max_retx bounded-backoff
 * retransmission rounds: each round waits out the confirmation timeout
 * plus the maximal draw from its retry window, with window growth
 * capped at @p max_retx (matching the fault layer's bounded backoff).
 * The watchdog's retry grace period scales from this per-packet horizon
 * when fault injection is active.
 */
Cycle boundedResolutionBudget(const BackoffParams &params, int max_retx);

} // namespace fsoi::analytic

#endif // FSOI_ANALYTIC_BACKOFF_MODEL_HH
