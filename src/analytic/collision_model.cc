#include "analytic/collision_model.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace fsoi::analytic {

double
collisionProbability(int num_nodes, double transmit_prob,
                     int receivers_per_node)
{
    FSOI_ASSERT(num_nodes > 2);
    FSOI_ASSERT(transmit_prob >= 0.0 && transmit_prob <= 1.0);
    FSOI_ASSERT(receivers_per_node >= 1);

    const double n =
        static_cast<double>(num_nodes - 1) / receivers_per_node;
    const double q = transmit_prob / (num_nodes - 1);

    // P(receiver idle or exactly one sender) per receiver, raised to the
    // R receivers of the node.
    const double none = std::pow(1.0 - q, n);
    const double one = n * q * std::pow(1.0 - q, n - 1.0);
    return 1.0 - std::pow(none + one, receivers_per_node);
}

double
normalizedCollisionProbability(int num_nodes, double transmit_prob,
                               int receivers_per_node)
{
    if (transmit_prob <= 0.0)
        return 0.0;
    return collisionProbability(num_nodes, transmit_prob,
                                receivers_per_node) / transmit_prob;
}

MonteCarloResult
simulateCollisions(int num_nodes, double transmit_prob,
                   int receivers_per_node, std::uint64_t slots,
                   std::uint64_t seed)
{
    FSOI_ASSERT(num_nodes > 2);
    FSOI_ASSERT(receivers_per_node >= 1);
    FSOI_ASSERT(slots > 0);

    Rng rng(seed);
    MonteCarloResult res{};
    res.slots = slots;

    const std::size_t num_rx =
        static_cast<std::size_t>(num_nodes) * receivers_per_node;
    std::vector<int> arrivals(num_rx);
    std::vector<int> dst_rx_of(num_nodes); // flat receiver index or -1
    std::uint64_t node_slot_collisions = 0;

    for (std::uint64_t s = 0; s < slots; ++s) {
        std::fill(arrivals.begin(), arrivals.end(), 0);
        for (int src = 0; src < num_nodes; ++src) {
            dst_rx_of[src] = -1;
            if (!rng.nextBool(transmit_prob))
                continue;
            int dst = static_cast<int>(rng.nextBelow(num_nodes - 1));
            if (dst >= src)
                ++dst; // exclude self
            // Static sender partition: sender src is wired to receiver
            // (src mod R) of every destination.
            const int flat = dst * receivers_per_node
                + (src % receivers_per_node);
            dst_rx_of[src] = flat;
            ++arrivals[flat];
            res.packets += 1;
        }
        for (int src = 0; src < num_nodes; ++src) {
            if (dst_rx_of[src] >= 0 && arrivals[dst_rx_of[src]] > 1)
                res.collided += 1;
        }
        for (int d = 0; d < num_nodes; ++d) {
            for (int r = 0; r < receivers_per_node; ++r) {
                if (arrivals[static_cast<std::size_t>(d)
                             * receivers_per_node + r] > 1) {
                    ++node_slot_collisions;
                    break; // count each node-slot at most once
                }
            }
        }
    }

    res.node_collision_prob = static_cast<double>(node_slot_collisions)
        / (static_cast<double>(slots) * num_nodes);
    res.packet_collision_rate = res.packets
        ? static_cast<double>(res.collided) / res.packets
        : 0.0;
    return res;
}

} // namespace fsoi::analytic
