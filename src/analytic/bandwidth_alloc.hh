/**
 * @file
 * Bandwidth-allocation latency model (Section 4.3.1, item 3).
 *
 * With a fixed total transmitting bandwidth split between the meta lane
 * (share B_M) and the data lane (share 1 - B_M), the paper models the
 * expected packet latency as
 *
 *   L(B_M) = C1/B_M + C2/B_M^2 + C3/(1-B_M) + C4/(1-B_M)^2
 *
 * where the linear terms capture serialization latency and the quadratic
 * terms capture collision-resolution cost (both the collision probability
 * and the resolution latency scale inversely with lane bandwidth). The
 * constants depend on application statistics; the paper's workload mix
 * puts the optimum at B_M ~= 0.285, matching the deployed 3-VCSEL meta /
 * 6-VCSEL data split (with doubled receive bandwidth).
 */

#ifndef FSOI_ANALYTIC_BANDWIDTH_ALLOC_HH
#define FSOI_ANALYTIC_BANDWIDTH_ALLOC_HH

namespace fsoi::analytic {

/** Workload-dependent constants of the latency expression. */
struct AllocationConstants
{
    double c1; //!< meta serialization weight
    double c2; //!< meta collision-resolution weight
    double c3; //!< data serialization weight
    double c4; //!< data collision-resolution weight
};

/**
 * Constants calibrated to the paper's workload mix (meta packets are on
 * the critical path of every transaction; data packets are ~5x longer):
 * the resulting optimum is B_M ~= 0.285.
 */
AllocationConstants paperConstants();

/** Evaluate the latency model at meta share @p meta_share in (0, 1). */
double expectedLatency(const AllocationConstants &c, double meta_share);

/** Locate the minimizing meta share by golden-section search. */
double optimalMetaShare(const AllocationConstants &c);

/**
 * First-order expected latency of a packet: L + Pc * Lr (basic latency
 * plus collision probability times resolution latency).
 */
inline double
expectedPacketLatency(double base_latency, double collision_prob,
                      double resolution_latency)
{
    return base_latency + collision_prob * resolution_latency;
}

} // namespace fsoi::analytic

#endif // FSOI_ANALYTIC_BANDWIDTH_ALLOC_HH
