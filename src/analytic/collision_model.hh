/**
 * @file
 * Closed-form and Monte Carlo models of packet collisions on the
 * unarbitrated FSOI receiver channels (Section 4.3.1, Figure 3).
 *
 * Model: in each slot every one of N nodes transmits with probability p
 * to a uniformly random other node. Each node owns R receivers and the
 * N-1 potential senders are divided evenly among them, so n = (N-1)/R
 * senders share a receiver. A collision happens when two or more of a
 * receiver's senders transmit to it in the same slot.
 */

#ifndef FSOI_ANALYTIC_COLLISION_MODEL_HH
#define FSOI_ANALYTIC_COLLISION_MODEL_HH

#include <cstdint>

namespace fsoi::analytic {

/**
 * Probability that a given node experiences a collision in a slot
 * (the paper's expression in Section 4.3.1):
 *
 *   1 - [ (1 - q)^n + n q (1 - q)^(n-1) ]^R,   q = p / (N - 1)
 *
 * @param num_nodes          N, total nodes (> 2)
 * @param transmit_prob      p, per-node per-slot transmission probability
 * @param receivers_per_node R, receivers per node (divides N-1 ideally)
 */
double collisionProbability(int num_nodes, double transmit_prob,
                            int receivers_per_node);

/**
 * Figure 3's y-axis: collision probability normalized to the packet
 * transmission probability, Pc / p.
 */
double normalizedCollisionProbability(int num_nodes, double transmit_prob,
                                      int receivers_per_node);

/** Result of a Monte Carlo slotted-transmission experiment. */
struct MonteCarloResult
{
    std::uint64_t slots;          //!< slots simulated
    std::uint64_t packets;        //!< packets transmitted
    std::uint64_t collided;       //!< packets involved in a collision
    double node_collision_prob;   //!< per-node per-slot collision prob.
    double packet_collision_rate; //!< collided / packets
};

/**
 * Monte Carlo validation of the closed form: simulate the slotted
 * random-transmission process directly (no queueing, no retries).
 *
 * @param seed RNG stream seed for reproducibility
 */
MonteCarloResult simulateCollisions(int num_nodes, double transmit_prob,
                                    int receivers_per_node,
                                    std::uint64_t slots,
                                    std::uint64_t seed = 1);

} // namespace fsoi::analytic

#endif // FSOI_ANALYTIC_COLLISION_MODEL_HH
