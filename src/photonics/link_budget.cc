#include "photonics/link_budget.hh"

#include <cmath>

#include "common/logging.hh"
#include "photonics/units.hh"

namespace fsoi::photonics {

OpticalLink::OpticalLink(const VcselParams &vcsel, const PathParams &path,
                         const PhotodetectorParams &pd, const TiaParams &tia,
                         const LinkParams &link)
    : vcsel_(vcsel), path_(path), pd_(pd), tia_(tia), link_(link)
{
    FSOI_ASSERT(link_.data_rate_bps > 0.0);
}

double
OpticalLink::qToBer(double q)
{
    return 0.5 * std::erfc(q / std::sqrt(2.0));
}

double
OpticalLink::berToQ(double ber)
{
    FSOI_ASSERT(ber > 0.0 && ber < 0.5);
    double lo = 0.0, hi = 40.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (qToBer(mid) > ber)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

LinkReport
OpticalLink::evaluate() const
{
    LinkReport r{};

    r.distance_m = path_.params().distance_m;
    r.wavelength_m = path_.params().wavelength_m;
    r.path_loss_db = path_.pathLossDb();
    r.propagation_delay_s = path_.propagationDelay();

    const auto ook = vcsel_.ookPoint(link_.average_current_a,
                                     link_.extinction_ratio);
    r.vcsel_power_one_w = ook.power_one_w;
    r.vcsel_power_zero_w = ook.power_zero_w;
    r.vcsel_electrical_power_w =
        vcsel_.electricalPower(link_.average_current_a);
    r.modulation_bandwidth_hz =
        std::min(vcsel_.modulationBandwidth(ook.current_one_a),
                 link_.laser_driver_bandwidth_hz);

    const double transmission = fromDb(-r.path_loss_db);
    r.rx_power_one_w = ook.power_one_w * transmission;
    r.rx_power_zero_w = ook.power_zero_w * transmission;

    const double i1 = pd_.photocurrent(r.rx_power_one_w);
    const double i0 = pd_.photocurrent(r.rx_power_zero_w);
    r.photocurrent_swing_a = i1 - i0;
    r.output_swing_v = tia_.outputSwing(r.photocurrent_swing_a);

    // Noise: shot noise at each level plus the TIA's input-referred
    // noise; the Q factor uses per-level sigmas.
    const double bw = tia_.params().bandwidth_hz;
    const double tia_noise = tia_.inputNoise();
    const double sigma1 = std::hypot(pd_.shotNoise(i1, bw), tia_noise);
    const double sigma0 = std::hypot(pd_.shotNoise(i0, bw), tia_noise);
    r.total_noise_a = 0.5 * (sigma1 + sigma0);

    r.q_factor = r.photocurrent_swing_a / (sigma1 + sigma0);
    r.snr_db = toDb(r.q_factor);
    r.bit_error_rate = qToBer(r.q_factor);

    // Amplitude noise converts to timing jitter through the edge slope
    // (sigma_t ~ t_rise * sigma_i / i_swing), combined in quadrature
    // with the deterministic jitter floor (ISI, supply noise).
    const double random_jitter = tia_.riseTime() * r.total_noise_a
        / r.photocurrent_swing_a;
    r.jitter_rms_s = std::hypot(random_jitter,
                                link_.deterministic_jitter_s);

    r.laser_driver_power_w = link_.laser_driver_power_w;
    r.vcsel_power_w = r.vcsel_electrical_power_w;
    r.tx_standby_power_w = link_.tx_standby_power_w;
    r.receiver_power_w = tia_.params().power_w;
    r.active_link_power_w = r.laser_driver_power_w + r.vcsel_power_w
        + r.receiver_power_w;
    r.energy_per_bit_j = r.active_link_power_w / link_.data_rate_bps;

    return r;
}

} // namespace fsoi::photonics
