/**
 * @file
 * End-to-end optical link budget: VCSEL -> micro-lens -> mirrors ->
 * micro-lens -> photodetector -> TIA/limiting amplifier.
 *
 * Assembles the device models into the single-bit link of Figure 2 and
 * computes every row of Table 1: path loss, signal-to-noise ratio,
 * bit-error rate, jitter, and the power-consumption breakdown.
 */

#ifndef FSOI_PHOTONICS_LINK_BUDGET_HH
#define FSOI_PHOTONICS_LINK_BUDGET_HH

#include "photonics/free_space_path.hh"
#include "photonics/receiver.hh"
#include "photonics/vcsel.hh"

namespace fsoi::photonics {

/** Operating-point and circuit parameters of one link. */
struct LinkParams
{
    double data_rate_bps = 40e9;       //!< line rate per VCSEL
    double average_current_a = 0.48e-3; //!< VCSEL average drive current
    double extinction_ratio = 11.0;    //!< OOK P1/P0 target
    double laser_driver_power_w = 6.3e-3;   //!< driver, active
    double tx_standby_power_w = 0.43e-3;    //!< transmitter in standby
    double laser_driver_bandwidth_hz = 43e9; //!< driver bandwidth
    /** Deterministic jitter floor (ISI, supply noise) [s RMS]. */
    double deterministic_jitter_s = 1.5e-12;
};

/** Everything Table 1 reports, computed from the models. */
struct LinkReport
{
    // Free-space optics.
    double distance_m;
    double wavelength_m;
    double path_loss_db;
    double propagation_delay_s;

    // Transmitter.
    double vcsel_power_one_w;      //!< optical '1' level at the source
    double vcsel_power_zero_w;     //!< optical '0' level at the source
    double vcsel_electrical_power_w;
    double modulation_bandwidth_hz;

    // Receiver.
    double rx_power_one_w;         //!< optical '1' level at the PD
    double rx_power_zero_w;
    double photocurrent_swing_a;   //!< I1 - I0 at the TIA input
    double total_noise_a;          //!< RMS noise current (shot + TIA)
    double output_swing_v;         //!< voltage swing after the TIA

    // Link quality.
    double q_factor;               //!< (I1 - I0) / (sigma1 + sigma0)
    double snr_db;                 //!< 10 log10(Q), the paper's convention
    double bit_error_rate;         //!< 0.5 erfc(Q / sqrt 2)
    double jitter_rms_s;           //!< noise-induced RMS timing jitter

    // Power.
    double laser_driver_power_w;
    double vcsel_power_w;          //!< electrical power of the VCSEL
    double tx_standby_power_w;
    double receiver_power_w;
    double active_link_power_w;    //!< driver + VCSEL + receiver
    double energy_per_bit_j;       //!< active link power / data rate
};

/** A complete single-bit FSOI link (Figure 2). */
class OpticalLink
{
  public:
    OpticalLink(const VcselParams &vcsel = VcselParams{},
                const PathParams &path = PathParams{},
                const PhotodetectorParams &pd = PhotodetectorParams{},
                const TiaParams &tia = TiaParams{},
                const LinkParams &link = LinkParams{});

    const Vcsel &vcsel() const { return vcsel_; }
    const FreeSpacePath &path() const { return path_; }
    const Photodetector &photodetector() const { return pd_; }
    const Tia &tia() const { return tia_; }
    const LinkParams &linkParams() const { return link_; }

    /** Evaluate the full budget at the configured operating point. */
    LinkReport evaluate() const;

    /**
     * Q factor -> bit error rate for OOK with Gaussian noise:
     * BER = 0.5 * erfc(Q / sqrt(2)).
     */
    static double qToBer(double q);

    /** Inverse of qToBer (bisection; @p ber in (0, 0.5)). */
    static double berToQ(double ber);

  private:
    Vcsel vcsel_;
    FreeSpacePath path_;
    Photodetector pd_;
    Tia tia_;
    LinkParams link_;
};

} // namespace fsoi::photonics

#endif // FSOI_PHOTONICS_LINK_BUDGET_HH
