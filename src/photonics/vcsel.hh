/**
 * @file
 * Vertical-cavity surface-emitting laser (VCSEL) model.
 *
 * Captures the pieces of VCSEL behaviour the interconnect study needs:
 * the L-I transfer curve (threshold + slope efficiency), electrical power
 * draw, the parasitic-RC and relaxation-oscillation bandwidth limits, and
 * the on-off-keying optical swing for a given bias/modulation current.
 *
 * Default parameters follow Table 1 of the paper: 5 um aperture, 0.14 mA
 * threshold, 235 ohm / 90 fF parasitics, 980 nm back-emission through the
 * GaAs substrate, ~2 V forward drop, 11:1 extinction ratio at the
 * operating point.
 */

#ifndef FSOI_PHOTONICS_VCSEL_HH
#define FSOI_PHOTONICS_VCSEL_HH

namespace fsoi::photonics {

/** Static device parameters of a VCSEL. */
struct VcselParams
{
    double wavelength_m = 980e-9;      //!< emission wavelength
    double aperture_m = 5e-6;          //!< oxide aperture diameter
    double threshold_a = 0.14e-3;      //!< threshold current I_th
    double slope_efficiency_w_per_a = 0.35; //!< dP_opt/dI above threshold
    double forward_voltage_v = 2.0;    //!< forward drop at bias
    double parasitic_r_ohm = 235.0;    //!< series resistance
    double parasitic_c_f = 90e-15;     //!< pad + junction capacitance
    /** Relaxation-oscillation D-factor [GHz/sqrt(mA)], typical 980 nm. */
    double d_factor_ghz_per_sqrt_ma = 9.0;
};

/** A directly-modulated VCSEL operated with on-off keying. */
class Vcsel
{
  public:
    explicit Vcsel(const VcselParams &params = VcselParams{});

    const VcselParams &params() const { return params_; }

    /** Optical output power [W] at drive current @p current_a. */
    double opticalPower(double current_a) const;

    /** Electrical power draw [W] at drive current @p current_a. */
    double electricalPower(double current_a) const;

    /** Parasitic-RC-limited 3 dB bandwidth [Hz]. */
    double parasiticBandwidth() const;

    /**
     * Relaxation-oscillation frequency [Hz] at the given bias, using the
     * D-factor approximation f_r = D * sqrt(I - I_th).
     */
    double relaxationFrequency(double bias_a) const;

    /** Overall modulation 3 dB bandwidth [Hz] (min of the two limits). */
    double modulationBandwidth(double bias_a) const;

    /**
     * OOK operating point derived from an average drive current and a
     * target extinction ratio P1/P0.
     */
    struct OokPoint
    {
        double current_one_a;    //!< drive current for a '1'
        double current_zero_a;   //!< drive current for a '0'
        double power_one_w;      //!< optical power for a '1'
        double power_zero_w;     //!< optical power for a '0'
        double average_power_w;  //!< optical average (equiprobable bits)
        double extinction_ratio; //!< P1 / P0 actually achieved
    };

    /**
     * Compute the OOK point for a given average current and extinction
     * ratio target. The '0' level is kept at or above threshold so the
     * laser never fully turns off (avoids turn-on delay).
     */
    OokPoint ookPoint(double average_current_a,
                      double extinction_ratio) const;

  private:
    VcselParams params_;
};

} // namespace fsoi::photonics

#endif // FSOI_PHOTONICS_VCSEL_HH
