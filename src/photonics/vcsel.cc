#include "photonics/vcsel.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace fsoi::photonics {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Vcsel::Vcsel(const VcselParams &params)
    : params_(params)
{
    FSOI_ASSERT(params_.threshold_a > 0.0);
    FSOI_ASSERT(params_.slope_efficiency_w_per_a > 0.0);
    FSOI_ASSERT(params_.parasitic_r_ohm > 0.0 && params_.parasitic_c_f > 0.0);
}

double
Vcsel::opticalPower(double current_a) const
{
    if (current_a <= params_.threshold_a)
        return 0.0;
    return params_.slope_efficiency_w_per_a
        * (current_a - params_.threshold_a);
}

double
Vcsel::electricalPower(double current_a) const
{
    // Forward drop plus the parasitic series resistance dissipation.
    return params_.forward_voltage_v * current_a
        + current_a * current_a * params_.parasitic_r_ohm;
}

double
Vcsel::parasiticBandwidth() const
{
    return 1.0 / (2.0 * kPi * params_.parasitic_r_ohm * params_.parasitic_c_f);
}

double
Vcsel::relaxationFrequency(double bias_a) const
{
    const double overdrive_ma = std::max(
        0.0, (bias_a - params_.threshold_a) * 1e3);
    return params_.d_factor_ghz_per_sqrt_ma * std::sqrt(overdrive_ma) * 1e9;
}

double
Vcsel::modulationBandwidth(double bias_a) const
{
    return std::min(parasiticBandwidth(), relaxationFrequency(bias_a));
}

Vcsel::OokPoint
Vcsel::ookPoint(double average_current_a, double extinction_ratio) const
{
    FSOI_ASSERT(extinction_ratio > 1.0);
    FSOI_ASSERT(average_current_a > params_.threshold_a,
                "average drive %.3f mA below threshold %.3f mA",
                average_current_a * 1e3, params_.threshold_a * 1e3);

    // With equiprobable bits, I_avg = (I1 + I0) / 2, and the optical
    // extinction P1/P0 = (I1 - Ith) / (I0 - Ith). Solve for I0, I1.
    const double ith = params_.threshold_a;
    const double i0 =
        ith + 2.0 * (average_current_a - ith) / (extinction_ratio + 1.0);
    const double i1 = 2.0 * average_current_a - i0;

    OokPoint pt;
    pt.current_zero_a = i0;
    pt.current_one_a = i1;
    pt.power_zero_w = opticalPower(i0);
    pt.power_one_w = opticalPower(i1);
    pt.average_power_w = 0.5 * (pt.power_zero_w + pt.power_one_w);
    pt.extinction_ratio =
        pt.power_zero_w > 0.0 ? pt.power_one_w / pt.power_zero_w
                              : extinction_ratio;
    return pt;
}

} // namespace fsoi::photonics
