/**
 * @file
 * Unit helpers for the photonics models (dB / linear conversions and a
 * few physical constants).
 */

#ifndef FSOI_PHOTONICS_UNITS_HH
#define FSOI_PHOTONICS_UNITS_HH

#include <cmath>

namespace fsoi::photonics {

/** Electron charge [C]. */
inline constexpr double kElectronCharge = 1.602176634e-19;

/** Boltzmann constant [J/K]. */
inline constexpr double kBoltzmann = 1.380649e-23;

/** Speed of light in vacuum [m/s]. */
inline constexpr double kSpeedOfLight = 2.99792458e8;

/** Planck constant [J*s]. */
inline constexpr double kPlanck = 6.62607015e-34;

/** Power ratio -> decibels. */
inline double
toDb(double ratio)
{
    return 10.0 * std::log10(ratio);
}

/** Decibels -> power ratio. */
inline double
fromDb(double db)
{
    return std::pow(10.0, db / 10.0);
}

/** Power in watts -> dBm. */
inline double
wattsToDbm(double watts)
{
    return toDb(watts / 1e-3);
}

/** dBm -> power in watts. */
inline double
dbmToWatts(double dbm)
{
    return 1e-3 * fromDb(dbm);
}

} // namespace fsoi::photonics

#endif // FSOI_PHOTONICS_UNITS_HH
