#include "photonics/receiver.hh"

#include <cmath>

#include "common/logging.hh"
#include "photonics/units.hh"

namespace fsoi::photonics {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Photodetector::Photodetector(const PhotodetectorParams &params)
    : params_(params)
{
    FSOI_ASSERT(params_.responsivity_a_per_w > 0.0);
    FSOI_ASSERT(params_.capacitance_f > 0.0);
}

double
Photodetector::photocurrent(double optical_power_w) const
{
    FSOI_ASSERT(optical_power_w >= 0.0);
    return params_.responsivity_a_per_w * optical_power_w;
}

double
Photodetector::shotNoise(double photocurrent_a, double bandwidth_hz) const
{
    return std::sqrt(2.0 * kElectronCharge
                     * (photocurrent_a + params_.dark_current_a)
                     * bandwidth_hz);
}

double
Photodetector::bandwidth(double input_resistance_ohm) const
{
    return 1.0 / (2.0 * kPi * input_resistance_ohm * params_.capacitance_f);
}

Tia::Tia(const TiaParams &params)
    : params_(params)
{
    FSOI_ASSERT(params_.gain_v_per_a > 0.0);
    FSOI_ASSERT(params_.bandwidth_hz > 0.0);
}

double
Tia::outputSwing(double current_swing_a) const
{
    return params_.gain_v_per_a * current_swing_a;
}

double
Tia::inputNoise() const
{
    return params_.input_noise_a_per_sqrt_hz
        * std::sqrt(params_.bandwidth_hz);
}

double
Tia::riseTime() const
{
    return 0.35 / params_.bandwidth_hz;
}

} // namespace fsoi::photonics
