/**
 * @file
 * Free-space optical path model: Gaussian-beam propagation from the
 * collimating micro-lens over the mirror-guided free-space region to the
 * focusing micro-lens at the receiver.
 *
 * The dominant loss terms are (a) clipping at the receiver aperture after
 * beam divergence over the path and (b) reflection/transmission losses at
 * the micro-mirrors and micro-lenses. Table 1's reference link (2 cm
 * diagonal, 90 um transmit / 190 um receive apertures, 980 nm) comes out
 * at ~2.6 dB.
 */

#ifndef FSOI_PHOTONICS_FREE_SPACE_PATH_HH
#define FSOI_PHOTONICS_FREE_SPACE_PATH_HH

namespace fsoi::photonics {

/** Geometry and component losses of one free-space path. */
struct PathParams
{
    double wavelength_m = 980e-9;     //!< optical wavelength
    double distance_m = 0.02;         //!< free-space propagation distance
    double tx_aperture_m = 90e-6;     //!< transmit micro-lens diameter
    double rx_aperture_m = 190e-6;    //!< receive micro-lens diameter
    int num_mirrors = 2;              //!< micro-mirror bounces en route
    double mirror_loss_db = 0.05;     //!< loss per mirror reflection
    double lens_loss_db = 0.05;       //!< loss per lens surface (x2 lenses)
};

/** Gaussian-beam free-space path between two micro-lenses. */
class FreeSpacePath
{
  public:
    explicit FreeSpacePath(const PathParams &params = PathParams{});

    const PathParams &params() const { return params_; }

    /** Collimated beam waist radius at the transmitter [m]. */
    double beamWaist() const;

    /** Rayleigh range of the collimated beam [m]. */
    double rayleighRange() const;

    /** Beam radius after propagating @p distance_m [m]. */
    double beamRadiusAt(double distance_m) const;

    /** Fraction of power captured by the receiver aperture (0..1]. */
    double captureFraction() const;

    /** Total path loss in dB (clipping + mirrors + lenses). */
    double pathLossDb() const;

    /** Propagation delay of light over the path [s]. */
    double propagationDelay() const;

  private:
    PathParams params_;
};

} // namespace fsoi::photonics

#endif // FSOI_PHOTONICS_FREE_SPACE_PATH_HH
