#include "photonics/free_space_path.hh"

#include <cmath>

#include "common/logging.hh"
#include "photonics/units.hh"

namespace fsoi::photonics {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

FreeSpacePath::FreeSpacePath(const PathParams &params)
    : params_(params)
{
    FSOI_ASSERT(params_.wavelength_m > 0.0);
    FSOI_ASSERT(params_.distance_m > 0.0);
    FSOI_ASSERT(params_.tx_aperture_m > 0.0 && params_.rx_aperture_m > 0.0);
    FSOI_ASSERT(params_.num_mirrors >= 0);
}

double
FreeSpacePath::beamWaist() const
{
    // The collimating lens produces a waist that fills half the aperture
    // diameter (aperture = 2 * w0), the usual low-clipping design point.
    return params_.tx_aperture_m / 2.0;
}

double
FreeSpacePath::rayleighRange() const
{
    const double w0 = beamWaist();
    return kPi * w0 * w0 / params_.wavelength_m;
}

double
FreeSpacePath::beamRadiusAt(double distance_m) const
{
    const double w0 = beamWaist();
    const double zr = rayleighRange();
    const double ratio = distance_m / zr;
    return w0 * std::sqrt(1.0 + ratio * ratio);
}

double
FreeSpacePath::captureFraction() const
{
    const double w = beamRadiusAt(params_.distance_m);
    const double a = params_.rx_aperture_m / 2.0;
    // Fraction of a Gaussian beam of radius w passing a circular
    // aperture of radius a: 1 - exp(-2 a^2 / w^2).
    return 1.0 - std::exp(-2.0 * (a / w) * (a / w));
}

double
FreeSpacePath::pathLossDb() const
{
    const double clip_db = -toDb(captureFraction());
    const double mirror_db = params_.num_mirrors * params_.mirror_loss_db;
    const double lens_db = 2.0 * params_.lens_loss_db;
    return clip_db + mirror_db + lens_db;
}

double
FreeSpacePath::propagationDelay() const
{
    return params_.distance_m / kSpeedOfLight;
}

} // namespace fsoi::photonics
