/**
 * @file
 * Receiver-side device models: the resonant-cavity photodetector and the
 * transimpedance amplifier (TIA) + limiting-amplifier chain.
 *
 * Defaults follow Table 1: PD responsivity 0.5 A/W with 100 fF
 * capacitance; TIA/LA chain with 36 GHz bandwidth and 15 kV/A
 * transimpedance gain.
 */

#ifndef FSOI_PHOTONICS_RECEIVER_HH
#define FSOI_PHOTONICS_RECEIVER_HH

namespace fsoi::photonics {

/** Resonant-cavity photodetector parameters. */
struct PhotodetectorParams
{
    double responsivity_a_per_w = 0.5; //!< photocurrent per optical watt
    double capacitance_f = 100e-15;    //!< junction + pad capacitance
    double dark_current_a = 5e-9;      //!< reverse-bias dark current
};

/** Photodetector: optical power in, photocurrent out, with shot noise. */
class Photodetector
{
  public:
    explicit Photodetector(
        const PhotodetectorParams &params = PhotodetectorParams{});

    const PhotodetectorParams &params() const { return params_; }

    /** Photocurrent [A] produced by incident optical power [W]. */
    double photocurrent(double optical_power_w) const;

    /**
     * RMS shot-noise current [A] at the given average photocurrent over
     * the given bandwidth: sqrt(2 q (I_ph + I_dark) B).
     */
    double shotNoise(double photocurrent_a, double bandwidth_hz) const;

    /** RC-limited bandwidth [Hz] into the given input resistance. */
    double bandwidth(double input_resistance_ohm) const;

  private:
    PhotodetectorParams params_;
};

/** TIA + limiting amplifier chain parameters. */
struct TiaParams
{
    double gain_v_per_a = 15000.0;     //!< transimpedance gain
    double bandwidth_hz = 36e9;        //!< -3 dB bandwidth of the chain
    /** Input-referred noise current density [A/sqrt(Hz)]. */
    double input_noise_a_per_sqrt_hz = 22e-12;
    double input_resistance_ohm = 50.0; //!< effective input resistance
    double power_w = 4.2e-3;            //!< receiver power (always on)
};

/** Transimpedance + limiting amplifier chain. */
class Tia
{
  public:
    explicit Tia(const TiaParams &params = TiaParams{});

    const TiaParams &params() const { return params_; }

    /** Output voltage swing [V] for an input current swing [A]. */
    double outputSwing(double current_swing_a) const;

    /** Integrated RMS input-referred noise current [A]. */
    double inputNoise() const;

    /** 10-90% rise time [s] of the chain, 0.35 / BW. */
    double riseTime() const;

  private:
    TiaParams params_;
};

} // namespace fsoi::photonics

#endif // FSOI_PHOTONICS_RECEIVER_HH
