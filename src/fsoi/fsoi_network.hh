/**
 * @file
 * The paper's free-space optical interconnect (FSOI): a fully
 * distributed, relay-free, collision-based all-to-all network.
 *
 * Every node owns three transmit lanes built from directly-modulated
 * VCSELs running at 12 bits per CPU cycle each (40 Gbps at 3.3 GHz):
 *
 *   - data lane:          6 VCSELs, 360-bit packets, 5-cycle slots
 *   - meta lane:          3 VCSELs,  72-bit packets, 2-cycle slots
 *   - confirmation lane:  1 VCSEL, collision-free by construction
 *
 * Each node owns 2 data and 2 meta receivers; the N-1 potential senders
 * are statically partitioned between them (sender id mod 2). There is no
 * arbitration: two packets arriving at the same receiver in the same
 * slot produce the logical OR of the light pulses, detected through the
 * PID / ~PID header encoding, and both senders retransmit after an
 * exponential backoff (window ceil(W * B^(r-1)) slots, W=2.7, B=1.1).
 * A successfully received packet is confirmed over the confirmation
 * lane exactly confirmation_delay (2) cycles after the slot ends; a
 * missing confirmation tells the sender its packet collided.
 *
 * Optional mechanisms from Section 5:
 *   - request spacing: receivers reserve the predicted data-reply slot
 *     of each outstanding request; conflicting transmissions are
 *     rescheduled ("Scheduling" latency in Figure 6a)
 *   - collision hints: on a data-lane collision the receiver guesses one
 *     colliding sender (94% accuracy) and lets it retransmit in the very
 *     next slot while the rest back off an extra slot
 *   - phase-array mode (64-node): one steerable beam per lane with a
 *     1-cycle setup delay whenever the destination changes
 *   - confirmation bits: a side channel for single-bit payloads
 *     (invalidation-ack substitution, ll/sc subscription updates) that
 *     rides the confirmation lane's reserved mini-slots
 */

#ifndef FSOI_FSOI_NETWORK_HH
#define FSOI_FSOI_NETWORK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "noc/network.hh"
#include "noc/topology.hh"

namespace fsoi::fault {
class FaultInjector;
} // namespace fsoi::fault

namespace fsoi::fsoi {

using noc::Packet;
using noc::PacketClass;
using noc::PacketKind;

/** FSOI parameters (defaults = Table 3 / Section 4). */
struct FsoiConfig
{
    int data_vcsels = 6;          //!< VCSELs in the data lane
    int meta_vcsels = 3;          //!< VCSELs in the meta lane
    int bits_per_cycle_per_vcsel = 12; //!< 40 Gbps / 3.3 GHz
    int receivers_per_lane = 2;   //!< R, per node per lane class
    int confirmation_delay = 2;   //!< cycles from slot end to confirm
    double backoff_window = 2.7;  //!< W
    double backoff_base = 1.1;    //!< B
    int queue_capacity = 8;       //!< outgoing packets per lane

    bool phase_array = false;     //!< steerable single beam per lane
    int phase_setup_cycles = 1;   //!< re-steer delay on target change

    bool request_spacing = false; //!< reserve predicted reply slots
    int predicted_reply_latency = 26; //!< request -> data-reply estimate
    bool collision_hints = false; //!< receiver-guided retransmission
    double hint_accuracy = 0.94;  //!< P(hint names a real collider)

    /** Figure 11 sensitivity: scales lane bandwidth (slots stretch). */
    double bandwidth_scale = 1.0;

    std::uint64_t seed = 12345;   //!< backoff/hint RNG stream
};

/** Collision-event categories of Figure 10. */
enum class CollisionCategory : std::uint8_t
{
    Memory,         //!< involving memory-controller packets
    Reply,          //!< between data replies
    WriteBack,      //!< involving writebacks
    Retransmission, //!< involving an already-retried packet
    Other,
    kCount,
};

const char *collisionCategoryName(CollisionCategory cat);

/** Event counters feeding the optical energy model. */
struct FsoiActivity
{
    Counter vcsel_slot_cycles; //!< VCSEL-cycles spent lasing
    Counter bits_transmitted;
    Counter confirmations;     //!< confirmation pulses
    Counter control_bits;      //!< side-channel mini-slot bits
    Counter phase_setups;      //!< phase-array re-steer events
};

/** The free-space optical interconnect. */
class FsoiNetwork : public noc::Network
{
  public:
    /** Handler invoked at the *sender* when its packet is confirmed. */
    using ConfirmHandler = std::function<void(const Packet &)>;
    /** Handler for side-channel single-bit messages at the receiver. */
    using ControlBitHandler =
        std::function<void(NodeId src, std::uint64_t tag)>;

    /**
     * @p fault, when non-null, injects the scheduled hardware faults
     * into this datapath: dead VCSEL lanes never transmit, receptions
     * on dead photodetector channels or with CRC-detected bit errors
     * are dropped (the sender sees a missing confirmation, exactly as
     * on a collision, and retransmits with bounded backoff), and
     * blacklisted receiver channels steer traffic to survivors.
     */
    FsoiNetwork(const noc::MeshLayout &layout, const FsoiConfig &config,
                fault::FaultInjector *fault = nullptr);

    bool send(Packet &&pkt) override;
    bool canAccept(NodeId src, PacketClass cls) const override;
    int sendBudget(NodeId src, PacketClass cls) const override;
    void tick(Cycle now) override;
    bool idle() const override;

    /**
     * Event-calendar contract: packetsInFlight_ counts every queued,
     * retrying and in-slot packet until delivery, so with the event
     * lists empty nothing can move until a send; skipped cycles are
     * folded into slotsElapsed_ (and reservation expiry, which is
     * monotone in now) at the next tick. A busy network only acts on
     * slot boundaries and on confirmation/control-bit due cycles, so
     * the wake is the earliest of those instead of now + 1 — except in
     * phase-array mode, where the beam-steering scan looks at lane
     * heads every cycle. Reservation expiry on skipped cycles is
     * deferred harmlessly: reservation keys are slot-stamped, so a
     * stale past-slot key can never match a future-slot probe.
     */
    Cycle nextEventCycle(Cycle now) const override;

    void registerStats(const obs::Scope &scope) const override;

    void setConfirmHandler(NodeId node, ConfirmHandler handler);
    void setControlBitHandler(NodeId node, ControlBitHandler handler);

    /**
     * Send a single-bit payload over the confirmation lane's reserved
     * mini-slot (Section 5.1): collision-free, delivered
     * confirmation_delay + 1 cycles later. Used for invalidation-ack
     * substitution and ll/sc boolean updates.
     */
    void sendControlBit(NodeId src, NodeId dst, std::uint64_t tag);

    const FsoiConfig &config() const { return config_; }
    const FsoiActivity &activity() const { return activity_; }

    /** Slot length in cycles for a packet class (after bw scaling). */
    int
    slotCycles(PacketClass cls) const
    {
        return slotCyclesCached_[cls == PacketClass::Meta ? 0 : 1];
    }

    /** Per-node per-slot transmission probability observed so far. */
    double transmissionProbability(PacketClass cls) const;

    /** Collision events in the data lane by category (Figure 10). */
    std::uint64_t
    dataCollisionEvents(CollisionCategory cat) const
    {
        return dataCollisionEvents_[static_cast<int>(cat)].value();
    }
    std::uint64_t dataCollisionEventsTotal() const;

    /** Mean cycles from first collided tx to successful tx (data). */
    double meanDataResolutionDelay() const
    { return dataResolution_.mean(); }

    /** Slots node @p node spent transmitting on its @p cls lane. */
    std::uint64_t txSlots(NodeId node, PacketClass cls) const
    { return txSlots_[static_cast<int>(cls)][node].value(); }

    /** Fraction of elapsed cycles node @p node's VCSELs were lasing. */
    double channelUtilization(NodeId node) const;

    /**
     * Write the stuck-lane snapshot the flight recorder embeds in its
     * "context" object: every transmit lane with queued or retrying
     * packets, including the oldest packet's id/destination and when
     * it may next transmit.
     */
    void writeLaneStateJson(std::ostream &os) const;

    void saveState(snapshot::Writer &w) const override;
    void loadState(snapshot::Reader &r) override;

  private:
    struct QueuedPacket
    {
        Packet pkt;
        Cycle release_at; //!< request-spacing hold (== created if none)
    };

    struct RetryEntry
    {
        Packet pkt;
        Cycle retry_at;
    };

    struct TxLane
    {
        std::deque<QueuedPacket> queue;
        std::vector<RetryEntry> retries;
        NodeId beam_target = kInvalidNode; //!< phase-array steering
        Cycle setup_ready = 0;             //!< re-steer completion time
    };

    struct Transmission
    {
        Packet pkt;
        int rx; //!< receiver index at the destination
    };

    struct ConfirmEvent
    {
        Cycle due;
        bool success;
        bool hinted_winner; //!< retransmit next slot without backoff
        Packet pkt;
    };

    struct ControlBitEvent
    {
        Cycle due;
        NodeId src;
        NodeId dst;
        std::uint64_t tag;
    };

    TxLane &lane(NodeId node, PacketClass cls);
    const TxLane &lane(NodeId node, PacketClass cls) const;

    /** Start transmissions for every lane whose slot begins at @p now. */
    void startSlot(PacketClass cls, Cycle now);

    /** Resolve the slot of class @p cls that ended at @p now. */
    void resolveSlot(PacketClass cls, Cycle now);

    void processConfirmations(Cycle now);
    void processControlBits(Cycle now);

    /** Classify a data-lane collision event for Figure 10. */
    static CollisionCategory classify(
        const std::vector<Transmission *> &colliders);

    /** Request-spacing slot reservation at the destination. */
    bool reserveReplySlot(const Packet &request, Cycle now,
                          Cycle &release_at);

    int windowSlots(int retry) const;
    int computeSlotCycles(PacketClass cls) const;
    void expireReservations(Cycle now);

    noc::MeshLayout layout_;
    FsoiConfig config_;
    FsoiActivity activity_;
    Rng rng_;
    fault::FaultInjector *fault_; //!< non-owning; null = healthy system

    std::vector<TxLane> lanes_;                 // [endpoint][class]
    std::vector<Transmission> inflight_[2];     // per class, current slot
    std::vector<ConfirmEvent> confirmations_;
    std::vector<ControlBitEvent> controlBits_;
    std::vector<ConfirmHandler> confirmHandlers_;
    std::vector<ControlBitHandler> controlBitHandlers_;

    /** (dst, rx, data-slot index) -> reserved, for request spacing. */
    std::unordered_set<std::uint64_t> reservations_;

    struct ReservationEntry
    {
        std::uint64_t slot;
        std::uint64_t key;
    };
    /** FIFO of reservations for lazy expiry. */
    std::deque<ReservationEntry> reservationLog_;

    Counter slotsElapsed_[2];
    /** Per-class, per-node transmit-slot counts (channel heatmap). */
    std::vector<Counter> txSlots_[2];
    Counter dataCollisionEvents_[
        static_cast<int>(CollisionCategory::kCount)];
    Accumulator dataResolution_;
    std::uint64_t packetsInFlight_ = 0;
    int slotCyclesCached_[2] = {1, 1}; //!< per class, fixed at build
};

} // namespace fsoi::fsoi

#endif // FSOI_FSOI_NETWORK_HH
