#include "fsoi/fsoi_network.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/trace.hh"
#include "fault/fault_model.hh"
#include "noc/packet_io.hh"
#include "snapshot/state_io.hh"

namespace fsoi::fsoi {

namespace {

/** First slot boundary at or after @p cycle for slot length @p len. */
Cycle
alignUp(Cycle cycle, int len)
{
    const Cycle rem = cycle % len;
    return rem == 0 ? cycle : cycle + (len - rem);
}

/** Reservation key: destination, receiver index, absolute slot index. */
std::uint64_t
reservationKey(NodeId dst, int rx, std::uint64_t slot)
{
    return (static_cast<std::uint64_t>(dst) << 48)
        | (static_cast<std::uint64_t>(rx & 0xff) << 40)
        | (slot & 0xffffffffffULL);
}

} // namespace

const char *
collisionCategoryName(CollisionCategory cat)
{
    switch (cat) {
      case CollisionCategory::Memory: return "Memory";
      case CollisionCategory::Reply: return "Reply";
      case CollisionCategory::WriteBack: return "WriteBack";
      case CollisionCategory::Retransmission: return "Retransmission";
      case CollisionCategory::Other: return "Other";
      default: return "?";
    }
}

FsoiNetwork::FsoiNetwork(const noc::MeshLayout &layout,
                         const FsoiConfig &config,
                         fault::FaultInjector *fault)
    : Network(layout.numEndpoints()), layout_(layout), config_(config),
      rng_(config.seed), fault_(fault),
      lanes_(static_cast<std::size_t>(layout.numEndpoints()) * 2),
      confirmHandlers_(layout.numEndpoints()),
      controlBitHandlers_(layout.numEndpoints())
{
    FSOI_ASSERT(config_.data_vcsels >= 1 && config_.meta_vcsels >= 1);
    FSOI_ASSERT(config_.receivers_per_lane >= 1);
    FSOI_ASSERT(config_.backoff_window >= 1.0 && config_.backoff_base >= 1.0);
    FSOI_ASSERT(config_.bandwidth_scale > 0.0
                && config_.bandwidth_scale <= 1.0);
    FSOI_ASSERT(config_.confirmation_delay >= 1);

    slotCyclesCached_[0] = computeSlotCycles(PacketClass::Meta);
    slotCyclesCached_[1] = computeSlotCycles(PacketClass::Data);

    txSlots_[0].resize(layout.numEndpoints());
    txSlots_[1].resize(layout.numEndpoints());
}

int
FsoiNetwork::computeSlotCycles(PacketClass cls) const
{
    const int vcsels = cls == PacketClass::Meta ? config_.meta_vcsels
                                                : config_.data_vcsels;
    const double capacity = vcsels * config_.bits_per_cycle_per_vcsel
        * config_.bandwidth_scale;
    return static_cast<int>(
        std::ceil(noc::packetBits(cls) / capacity - 1e-9));
}

double
FsoiNetwork::transmissionProbability(PacketClass cls) const
{
    const auto slots = slotsElapsed_[static_cast<int>(cls)].value();
    if (slots == 0)
        return 0.0;
    return static_cast<double>(stats().attempts(cls))
        / (static_cast<double>(slots) * numEndpoints());
}

std::uint64_t
FsoiNetwork::dataCollisionEventsTotal() const
{
    std::uint64_t total = 0;
    for (const auto &c : dataCollisionEvents_)
        total += c.value();
    return total;
}

void
FsoiNetwork::registerStats(const obs::Scope &scope) const
{
    Network::registerStats(scope);

    const obs::Scope activity = scope.scope("activity");
    activity.counter("vcsel_slot_cycles", activity_.vcsel_slot_cycles);
    activity.counter("bits_transmitted", activity_.bits_transmitted);
    activity.counter("confirmations", activity_.confirmations);
    activity.counter("control_bits", activity_.control_bits);
    activity.counter("phase_setups", activity_.phase_setups);

    const obs::Scope events = scope.scope("data_collisions");
    for (int c = 0; c < static_cast<int>(CollisionCategory::kCount);
         ++c) {
        events.counter(
            collisionCategoryName(static_cast<CollisionCategory>(c)),
            dataCollisionEvents_[c]);
    }
    scope.accumulator("data_resolution_delay", dataResolution_);

    const obs::Scope slots = scope.scope("slots_elapsed");
    slots.counter("meta",
                  slotsElapsed_[static_cast<int>(PacketClass::Meta)]);
    slots.counter("data",
                  slotsElapsed_[static_cast<int>(PacketClass::Data)]);

    const obs::Scope txp = scope.scope("tx_probability");
    txp.derived("meta", [this] {
        return transmissionProbability(PacketClass::Meta);
    });
    txp.derived("data", [this] {
        return transmissionProbability(PacketClass::Data);
    });

    // Per-node channel occupancy: how many slots each node's lanes
    // actually transmitted in, plus the VCSEL duty cycle. This is the
    // FSOI half of the tools/stats_report heatmap.
    const obs::Scope channels = scope.scope("channels");
    for (NodeId node = 0; node < static_cast<NodeId>(numEndpoints());
         ++node) {
        const obs::Scope n = channels.scope("n" + std::to_string(node));
        n.counter("meta_tx_slots", txSlots_[0][node]);
        n.counter("data_tx_slots", txSlots_[1][node]);
        n.derived("util",
                  [this, node] { return channelUtilization(node); });
    }
}

double
FsoiNetwork::channelUtilization(NodeId node) const
{
    if (now() == 0)
        return 0.0;
    const std::uint64_t lasing =
        txSlots(node, PacketClass::Meta)
            * static_cast<std::uint64_t>(slotCycles(PacketClass::Meta))
        + txSlots(node, PacketClass::Data)
            * static_cast<std::uint64_t>(slotCycles(PacketClass::Data));
    // Two independent lanes per node, each usable every cycle.
    return static_cast<double>(lasing) / (2.0 * now());
}

void
FsoiNetwork::writeLaneStateJson(std::ostream &os) const
{
    os << "{\"packets_in_flight\":" << packetsInFlight_
       << ",\"lanes\":[";
    bool sep = false;
    for (NodeId node = 0; node < static_cast<NodeId>(numEndpoints());
         ++node) {
        for (PacketClass cls :
             {PacketClass::Meta, PacketClass::Data}) {
            const TxLane &ln = lane(node, cls);
            if (ln.queue.empty() && ln.retries.empty())
                continue;
            os << (sep ? "," : "") << "{\"node\":" << node
               << ",\"class\":\""
               << (cls == PacketClass::Meta ? "meta" : "data")
               << "\",\"queued\":" << ln.queue.size()
               << ",\"retrying\":" << ln.retries.size();
            if (!ln.retries.empty()) {
                const RetryEntry *oldest = &ln.retries.front();
                for (const auto &r : ln.retries)
                    if (r.pkt.created < oldest->pkt.created)
                        oldest = &r;
                os << ",\"oldest_retry\":{\"id\":" << oldest->pkt.id
                   << ",\"dst\":" << oldest->pkt.dst
                   << ",\"created\":" << oldest->pkt.created
                   << ",\"retries\":" << oldest->pkt.retries
                   << ",\"retry_at\":" << oldest->retry_at << "}";
            } else {
                const QueuedPacket &head = ln.queue.front();
                os << ",\"head\":{\"id\":" << head.pkt.id
                   << ",\"dst\":" << head.pkt.dst
                   << ",\"created\":" << head.pkt.created
                   << ",\"release_at\":" << head.release_at << "}";
            }
            os << "}";
            sep = true;
        }
    }
    os << "]}";
}

FsoiNetwork::TxLane &
FsoiNetwork::lane(NodeId node, PacketClass cls)
{
    return lanes_[static_cast<std::size_t>(node) * 2
                  + static_cast<int>(cls)];
}

const FsoiNetwork::TxLane &
FsoiNetwork::lane(NodeId node, PacketClass cls) const
{
    return lanes_[static_cast<std::size_t>(node) * 2
                  + static_cast<int>(cls)];
}

void
FsoiNetwork::setConfirmHandler(NodeId node, ConfirmHandler handler)
{
    FSOI_ASSERT(node < confirmHandlers_.size());
    confirmHandlers_[node] = std::move(handler);
}

void
FsoiNetwork::setControlBitHandler(NodeId node, ControlBitHandler handler)
{
    FSOI_ASSERT(node < controlBitHandlers_.size());
    controlBitHandlers_[node] = std::move(handler);
}

bool
FsoiNetwork::canAccept(NodeId src, PacketClass cls) const
{
    return lane(src, cls).queue.size()
        < static_cast<std::size_t>(config_.queue_capacity);
}

int
FsoiNetwork::sendBudget(NodeId src, PacketClass cls) const
{
    return config_.queue_capacity
        - static_cast<int>(lane(src, cls).queue.size());
}

int
FsoiNetwork::windowSlots(int retry) const
{
    const double w = config_.backoff_window
        * std::pow(config_.backoff_base, retry - 1);
    return static_cast<int>(std::max(1.0, std::ceil(w)));
}

bool
FsoiNetwork::reserveReplySlot(const Packet &request, Cycle now,
                              Cycle &release_at)
{
    // The data reply will come from request.dst back to request.src and
    // land on receiver (request.dst mod R) of the requester.
    const int data_slot = slotCycles(PacketClass::Data);
    const int rx = static_cast<int>(request.dst)
        % config_.receivers_per_lane;
    const Cycle predicted = now + config_.predicted_reply_latency;
    std::uint64_t slot = predicted / data_slot;
    Cycle delay = 0;
    // Shift the request until the predicted reply slot is free.
    for (int tries = 0; tries < 8; ++tries) {
        const auto key = reservationKey(request.src, rx, slot + tries);
        if (!reservations_.count(key)) {
            reservations_.insert(key);
            reservationLog_.push_back({slot + tries, key});
            delay = static_cast<Cycle>(tries) * data_slot;
            release_at = now + delay;
            return true;
        }
    }
    release_at = now;
    return false;
}

bool
FsoiNetwork::send(Packet &&pkt)
{
    if (!canAccept(pkt.src, pkt.cls))
        return false;
    stampOnSend(pkt);

    Cycle release_at = pkt.created;
    if (config_.request_spacing && pkt.cls == PacketClass::Meta
        && pkt.kind == PacketKind::Request) {
        reserveReplySlot(pkt, pkt.created, release_at);
    } else if (config_.request_spacing && pkt.cls == PacketClass::Data
               && pkt.kind == PacketKind::WriteBack) {
        // Split-transaction writeback: claim a slot at the home so the
        // data packet arrives expected rather than unannounced.
        const int data_slot = slotCycles(PacketClass::Data);
        const int rx = static_cast<int>(pkt.src)
            % config_.receivers_per_lane;
        std::uint64_t slot = alignUp(pkt.created + 1, data_slot)
            / data_slot;
        for (int tries = 0; tries < 8; ++tries) {
            const auto key = reservationKey(pkt.dst, rx, slot + tries);
            if (!reservations_.count(key)) {
                reservations_.insert(key);
                reservationLog_.push_back({slot + tries, key});
                release_at = (slot + tries) * data_slot;
                break;
            }
        }
    }
    pkt.sched_delay = release_at - pkt.created;

    FSOI_TRACE_POINT(TraceCat::Fsoi, 2, "request", pkt.created, pkt.src,
                     {"id", pkt.id}, {"dst", pkt.dst},
                     {"kind", static_cast<std::uint64_t>(pkt.kind)});
    lane(pkt.src, pkt.cls).queue.push_back(
        QueuedPacket{std::move(pkt), release_at});
    ++packetsInFlight_;
    return true;
}

void
FsoiNetwork::sendControlBit(NodeId src, NodeId dst, std::uint64_t tag)
{
    FSOI_ASSERT(src < static_cast<NodeId>(numEndpoints())
                && dst < static_cast<NodeId>(numEndpoints()));
    controlBits_.push_back(ControlBitEvent{
        now() + config_.confirmation_delay + 1, src, dst, tag});
    activity_.control_bits++;
    FSOI_TRACE_POINT(TraceCat::Fsoi, 3, "control_bit", now(), src,
                     {"dst", dst}, {"tag", tag});
}

void
FsoiNetwork::processControlBits(Cycle now)
{
    std::size_t keep = 0;
    for (std::size_t i = 0; i < controlBits_.size(); ++i) {
        auto &evt = controlBits_[i];
        if (evt.due <= now) {
            auto &handler = controlBitHandlers_[evt.dst];
            FSOI_ASSERT(handler != nullptr,
                        "control bit to node %u without handler", evt.dst);
            handler(evt.src, evt.tag);
        } else {
            controlBits_[keep++] = std::move(evt);
        }
    }
    controlBits_.resize(keep);
}

void
FsoiNetwork::processConfirmations(Cycle now)
{
    std::size_t keep = 0;
    for (std::size_t i = 0; i < confirmations_.size(); ++i) {
        auto &evt = confirmations_[i];
        if (evt.due > now) {
            confirmations_[keep++] = std::move(evt);
            continue;
        }
        if (evt.success) {
            activity_.confirmations++;
            FSOI_TRACE_POINT(TraceCat::Fsoi, 3, "confirm", now,
                             evt.pkt.src, {"id", evt.pkt.id});
            auto &handler = confirmHandlers_[evt.pkt.src];
            if (handler)
                handler(evt.pkt);
            continue;
        }
        // Missing confirmation: the sender now knows the packet
        // collided (or was eaten by a fault) and schedules a
        // retransmission slot.
        Packet pkt = std::move(evt.pkt);
        pkt.retries += 1;
        retxStats().recordRetx();
        const int slot_len = slotCycles(pkt.cls);
        Cycle retry_at;
        if (evt.hinted_winner) {
            // The receiver picked this sender: go in the next slot.
            retry_at = alignUp(now + 1, slot_len);
        } else {
            const Cycle base = config_.collision_hints
                && pkt.cls == PacketClass::Data
                ? alignUp(now + 1, slot_len) + slot_len // skip hint slot
                : alignUp(now + 1, slot_len);
            // Under fault injection the backoff window stops growing at
            // the retry budget: a persistently failing channel keeps
            // probing at a bounded rate instead of backing off forever,
            // so the blacklist trips in bounded time.
            int effective_retry = pkt.retries;
            if (fault_) {
                const int budget = fault_->config().max_retx;
                if (pkt.retries > budget) {
                    fault_->countRetxExhausted();
                    effective_retry = budget;
                }
            }
            const int window = windowSlots(effective_retry);
            const int draw =
                static_cast<int>(rng_.nextRange(1, window));
            retry_at = base + static_cast<Cycle>(draw - 1) * slot_len;
        }
        FSOI_TRACE_POINT(TraceCat::Fsoi, 2, "retry", now, pkt.src,
                         {"id", pkt.id}, {"retries",
                          static_cast<std::uint64_t>(pkt.retries)},
                         {"retry_at", retry_at});
        lane(pkt.src, pkt.cls).retries.push_back(
            RetryEntry{std::move(pkt), retry_at});
    }
    confirmations_.resize(keep);
}

CollisionCategory
FsoiNetwork::classify(const std::vector<Transmission *> &colliders)
{
    bool any_retry = false, any_mem = false, any_wb = false;
    bool all_reply = true;
    for (const auto *tx : colliders) {
        const auto kind = tx->pkt.kind;
        if (tx->pkt.retries > 0)
            any_retry = true;
        if (kind == PacketKind::MemRequest || kind == PacketKind::MemReply)
            any_mem = true;
        if (kind == PacketKind::WriteBack)
            any_wb = true;
        if (kind != PacketKind::Reply)
            all_reply = false;
    }
    if (any_retry)
        return CollisionCategory::Retransmission;
    if (any_mem)
        return CollisionCategory::Memory;
    if (any_wb)
        return CollisionCategory::WriteBack;
    if (all_reply)
        return CollisionCategory::Reply;
    return CollisionCategory::Other;
}

void
FsoiNetwork::resolveSlot(PacketClass cls, Cycle now)
{
    auto &inflight = inflight_[static_cast<int>(cls)];
    if (inflight.empty())
        return;

    // Group transmissions by (destination, receiver index).
    std::unordered_map<std::uint64_t, std::vector<Transmission *>> groups;
    for (auto &tx : inflight) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(tx.pkt.dst) << 8)
            | static_cast<unsigned>(tx.rx);
        groups[key].push_back(&tx);
    }

    for (auto &[key, txs] : groups) {
        (void)key;
        if (txs.size() == 1) {
            Packet &pkt = txs[0]->pkt;
            if (fault_) {
                const int cls_idx = static_cast<int>(cls);
                const int rx = txs[0]->rx;
                const bool dead = fault_->rxDead(pkt.dst, cls_idx, rx);
                if (dead || fault_->corrupts(cls_idx)) {
                    // Dead photodetector (no light detected) or a
                    // CRC-flagged corrupted reception: the receiver
                    // stays silent, so the sender sees a missing
                    // confirmation -- indistinguishable from a
                    // collision -- and retransmits with backoff.
                    if (dead) {
                        fault_->countDeadChannelLoss();
                        retxStats().recordDeadChannelLoss();
                    } else {
                        retxStats().recordCrcDrop();
                    }
                    fault_->noteChannelFailure(pkt.dst, cls_idx, rx);
                    FSOI_TRACE_POINT(TraceCat::Fsoi, 1, "fault_drop",
                                     now, pkt.dst, {"id", pkt.id},
                                     {"src", pkt.src},
                                     {"rx",
                                      static_cast<std::uint64_t>(rx)},
                                     {"dead",
                                      static_cast<std::uint64_t>(dead)});
                    confirmations_.push_back(ConfirmEvent{
                        now + config_.confirmation_delay, false, false,
                        std::move(pkt)});
                    continue;
                }
                fault_->noteChannelSuccess(pkt.dst, cls_idx, rx);
            }
            // Clean reception: deliver now, confirm the sender at
            // now + confirmation_delay.
            Packet confirm_copy = pkt; // trivially copyable, no alloc
            if (pkt.cls == PacketClass::Data && pkt.retries > 0)
                dataResolution_.add(
                    static_cast<double>(pkt.final_tx - pkt.first_tx));
            confirmations_.push_back(ConfirmEvent{
                now + config_.confirmation_delay, true, false,
                std::move(confirm_copy)});
            FSOI_TRACE_POINT(TraceCat::Fsoi, 2, "grant", now, pkt.dst,
                             {"id", pkt.id}, {"src", pkt.src},
                             {"retries",
                              static_cast<std::uint64_t>(pkt.retries)});
            deliver(pkt);
            --packetsInFlight_;
            continue;
        }
        // Collision: the receiver sees the OR of the beams; the
        // PID/~PID check flags corruption. Every packet involved must
        // be retransmitted.
        CollisionCategory category = CollisionCategory::Other;
        if (cls == PacketClass::Data) {
            category = classify(txs);
            dataCollisionEvents_[static_cast<int>(category)]++;
        }
        FSOI_TRACE_POINT(TraceCat::Fsoi, 1, "collision", now,
                         txs[0]->pkt.dst,
                         {"colliders",
                          static_cast<std::uint64_t>(txs.size())},
                         {"class", static_cast<std::uint64_t>(cls)},
                         {"category",
                          static_cast<std::uint64_t>(category)});
        int winner = -1;
        if (config_.collision_hints && cls == PacketClass::Data
            && rng_.nextBool(config_.hint_accuracy)) {
            winner = static_cast<int>(rng_.nextBelow(txs.size()));
        }
        for (std::size_t i = 0; i < txs.size(); ++i) {
            stats().recordCollision(cls, txs[i]->pkt.kind);
            confirmations_.push_back(ConfirmEvent{
                now + config_.confirmation_delay, false,
                static_cast<int>(i) == winner,
                std::move(txs[i]->pkt)});
        }
    }
    inflight.clear();
}

void
FsoiNetwork::startSlot(PacketClass cls, Cycle now)
{
    const int slot_len = slotCycles(cls);
    const int vcsels = cls == PacketClass::Meta ? config_.meta_vcsels
                                                : config_.data_vcsels;
    slotsElapsed_[static_cast<int>(cls)]++;

    for (NodeId node = 0;
         node < static_cast<NodeId>(numEndpoints()); ++node) {
        TxLane &ln = lane(node, cls);

        // A dead VCSEL array never lights up: its packets stay queued
        // and the watchdog diagnoses the wedge from the fault schedule.
        if (fault_ && fault_->txDead(node, static_cast<int>(cls)))
            continue;

        // Pick the packet to transmit: pending retries first (earliest
        // retry_at), then the head of the outgoing queue.
        Packet pkt;
        bool have = false;
        int best = -1;
        for (std::size_t i = 0; i < ln.retries.size(); ++i) {
            if (ln.retries[i].retry_at > now)
                continue;
            if (best < 0
                || ln.retries[i].retry_at < ln.retries[best].retry_at)
                best = static_cast<int>(i);
        }
        if (best >= 0) {
            pkt = std::move(ln.retries[best].pkt);
            ln.retries.erase(ln.retries.begin() + best);
            have = true;
        } else if (!ln.queue.empty()
                   && ln.queue.front().release_at <= now) {
            pkt = std::move(ln.queue.front().pkt);
            ln.queue.pop_front();
            have = true;
        }
        if (!have)
            continue;

        // Phase-array steering: the beam must already point at the
        // destination, with any re-steer completed, to use this slot.
        if (config_.phase_array) {
            if (ln.beam_target != pkt.dst) {
                ln.beam_target = pkt.dst;
                ln.setup_ready = now + config_.phase_setup_cycles;
                activity_.phase_setups++;
                ln.retries.push_back(RetryEntry{std::move(pkt), now});
                continue;
            }
            if (ln.setup_ready > now) {
                ln.retries.push_back(RetryEntry{std::move(pkt), now});
                continue;
            }
        }

        if (pkt.first_tx == kNoCycle)
            pkt.first_tx = now;
        pkt.final_tx = now;
        FSOI_TRACE_SPAN(TraceCat::Fsoi, 3, "tx", now,
                        static_cast<Cycle>(slot_len), node,
                        {"id", pkt.id}, {"dst", pkt.dst});
        stats().recordAttempt(cls);
        txSlots_[static_cast<int>(cls)][node]++;
        activity_.vcsel_slot_cycles +=
            static_cast<std::uint64_t>(slot_len) * vcsels;
        activity_.bits_transmitted += noc::packetBits(cls);

        // Static receiver partition (sender id mod R); with faults the
        // injector steers traffic off blacklisted channels.
        const int rx = fault_
            ? fault_->redirectRx(node, pkt.dst, static_cast<int>(cls))
            : static_cast<int>(node) % config_.receivers_per_lane;
        inflight_[static_cast<int>(cls)].push_back(
            Transmission{std::move(pkt), rx});
    }
}

void
FsoiNetwork::tick(Cycle now)
{
    // Event-calendar gap accounting: skipped cycles (drained network,
    // or a busy one between slot boundaries) would only have advanced
    // the per-slot counters — replay the boundaries inside the gap
    // (multiples of the slot length) in one step; the boundary at now
    // itself, if any, is counted by the idle early-out or startSlot.
    if (const Cycle prev = this->now(); now > prev + 1) {
        for (PacketClass cls : {PacketClass::Meta, PacketClass::Data}) {
            const int slot = slotCycles(cls);
            slotsElapsed_[static_cast<int>(cls)] +=
                (now - 1) / slot - prev / slot;
        }
    }
    setNow(now);

    // Idle early-out: every queued, retrying or in-flight packet is
    // counted in packetsInFlight_ until delivery, so with the event
    // lists also empty the slot machinery below cannot move anything.
    // The per-slot counters still advance (transmissionProbability
    // normalizes attempts by *elapsed* slots, Figure 9) and stale
    // reservations still expire, exactly as in a fully simulated tick.
    if (packetsInFlight_ == 0 && confirmations_.empty()
        && controlBits_.empty()) {
        for (PacketClass cls : {PacketClass::Meta, PacketClass::Data})
            if (now % slotCycles(cls) == 0)
                slotsElapsed_[static_cast<int>(cls)]++;
        expireReservations(now);
        return;
    }

    processControlBits(now);
    processConfirmations(now);

    for (PacketClass cls : {PacketClass::Meta, PacketClass::Data}) {
        if (now % slotCycles(cls) == 0) {
            resolveSlot(cls, now);
            startSlot(cls, now);
        }
    }

    // Phase-array: start re-steering toward the next packet's target as
    // soon as it reaches the head of a lane, so the setup (1 cycle)
    // usually overlaps the wait for the slot boundary.
    if (config_.phase_array) {
        for (NodeId node = 0;
             node < static_cast<NodeId>(numEndpoints()); ++node) {
            for (PacketClass cls : {PacketClass::Meta, PacketClass::Data}) {
                TxLane &ln = lane(node, cls);
                const Packet *next = nullptr;
                for (const auto &r : ln.retries)
                    if (r.retry_at <= now + 1) {
                        next = &r.pkt;
                        break;
                    }
                if (!next && !ln.queue.empty()
                    && ln.queue.front().release_at <= now + 1)
                    next = &ln.queue.front().pkt;
                if (next && ln.beam_target != next->dst
                    && ln.setup_ready <= now) {
                    ln.beam_target = next->dst;
                    ln.setup_ready = now + config_.phase_setup_cycles;
                    activity_.phase_setups++;
                }
            }
        }
    }

    expireReservations(now);
}

Cycle
FsoiNetwork::nextEventCycle(Cycle now) const
{
    if (packetsInFlight_ == 0 && confirmations_.empty()
        && controlBits_.empty())
        return kNoCycle;
    // Phase-array steering inspects lane heads every cycle (the
    // re-steer must start the cycle a head becomes eligible, not at
    // the boundary), so the wake cannot be coarsened.
    if (config_.phase_array)
        return now + 1;

    Cycle next = kNoCycle;
    for (const auto &ev : confirmations_)
        if (ev.due < next)
            next = ev.due;
    for (const auto &ev : controlBits_)
        if (ev.due < next)
            next = ev.due;

    // Slot machinery (resolve + start) only runs on a class's slot
    // boundary; between boundaries a tick is a no-op for that class.
    // Any lane content pins the wake to the class's next boundary —
    // conservative for packets still backing off or held by request
    // spacing, which is allowed (early wakes are harmless).
    for (int c = 0; c < 2; ++c) {
        const Cycle slot = static_cast<Cycle>(slotCyclesCached_[c]);
        bool work = !inflight_[c].empty();
        if (!work) {
            for (NodeId node = 0;
                 node < static_cast<NodeId>(numEndpoints()) && !work;
                 ++node) {
                const TxLane &ln =
                    lanes_[static_cast<std::size_t>(node) * 2
                           + static_cast<std::size_t>(c)];
                work = !ln.queue.empty() || !ln.retries.empty();
            }
        }
        if (work) {
            const Cycle boundary = (now / slot + 1) * slot;
            if (boundary < next)
                next = boundary;
        }
    }
    if (next == kNoCycle || next <= now)
        return now + 1;
    return next;
}

/** Drop stale request-spacing reservations. */
void
FsoiNetwork::expireReservations(Cycle now)
{
    if (!config_.request_spacing || reservationLog_.empty())
        return;
    const int data_slot = slotCycles(PacketClass::Data);
    const std::uint64_t current = now / data_slot;
    while (!reservationLog_.empty()
           && reservationLog_.front().slot < current) {
        reservations_.erase(reservationLog_.front().key);
        reservationLog_.pop_front();
    }
}

void
FsoiNetwork::saveState(snapshot::Writer &w) const
{
    using namespace snapshot;
    using noc::savePacket;
    Network::saveState(w);
    saveCounter(w, activity_.vcsel_slot_cycles);
    saveCounter(w, activity_.bits_transmitted);
    saveCounter(w, activity_.confirmations);
    saveCounter(w, activity_.control_bits);
    saveCounter(w, activity_.phase_setups);
    saveRng(w, rng_);

    w.u64(lanes_.size());
    for (const TxLane &ln : lanes_) {
        w.u64(ln.queue.size());
        for (const QueuedPacket &qp : ln.queue) {
            savePacket(w, qp.pkt);
            w.u64(qp.release_at);
        }
        w.u64(ln.retries.size());
        for (const RetryEntry &re : ln.retries) {
            savePacket(w, re.pkt);
            w.u64(re.retry_at);
        }
        w.u32(ln.beam_target);
        w.u64(ln.setup_ready);
    }
    for (const auto &fl : inflight_) {
        w.u64(fl.size());
        for (const Transmission &tx : fl) {
            savePacket(w, tx.pkt);
            w.i32(tx.rx);
        }
    }
    w.u64(confirmations_.size());
    for (const ConfirmEvent &ev : confirmations_) {
        w.u64(ev.due);
        w.boolean(ev.success);
        w.boolean(ev.hinted_winner);
        savePacket(w, ev.pkt);
    }
    w.u64(controlBits_.size());
    for (const ControlBitEvent &ev : controlBits_) {
        w.u64(ev.due);
        w.u32(ev.src);
        w.u32(ev.dst);
        w.u64(ev.tag);
    }
    // The reservation set is exactly the keys of the FIFO log
    // (insert-if-absent on reserve, erase on expiry), so only the log
    // is serialized and the set is rebuilt on restore.
    w.u64(reservationLog_.size());
    for (const ReservationEntry &re : reservationLog_) {
        w.u64(re.slot);
        w.u64(re.key);
    }
    saveCounter(w, slotsElapsed_[0]);
    saveCounter(w, slotsElapsed_[1]);
    for (const auto &per_node : txSlots_) {
        w.u64(per_node.size());
        for (const Counter &c : per_node)
            saveCounter(w, c);
    }
    for (const Counter &c : dataCollisionEvents_)
        saveCounter(w, c);
    saveAccumulator(w, dataResolution_);
    w.u64(packetsInFlight_);
}

void
FsoiNetwork::loadState(snapshot::Reader &r)
{
    using namespace snapshot;
    using noc::loadPacket;
    Network::loadState(r);
    loadCounter(r, activity_.vcsel_slot_cycles);
    loadCounter(r, activity_.bits_transmitted);
    loadCounter(r, activity_.confirmations);
    loadCounter(r, activity_.control_bits);
    loadCounter(r, activity_.phase_setups);
    loadRng(r, rng_);

    const std::uint64_t num_lanes = r.u64();
    FSOI_ASSERT(num_lanes == lanes_.size(),
                "fsoi endpoint count mismatch on restore");
    for (TxLane &ln : lanes_) {
        ln.queue.clear();
        const std::uint64_t nq = r.u64();
        for (std::uint64_t i = 0; i < nq; ++i) {
            QueuedPacket qp;
            qp.pkt = loadPacket(r);
            qp.release_at = r.u64();
            ln.queue.push_back(std::move(qp));
        }
        ln.retries.resize(r.u64());
        for (RetryEntry &re : ln.retries) {
            re.pkt = loadPacket(r);
            re.retry_at = r.u64();
        }
        ln.beam_target = r.u32();
        ln.setup_ready = r.u64();
    }
    for (auto &fl : inflight_) {
        fl.resize(r.u64());
        for (Transmission &tx : fl) {
            tx.pkt = loadPacket(r);
            tx.rx = r.i32();
        }
    }
    confirmations_.resize(r.u64());
    for (ConfirmEvent &ev : confirmations_) {
        ev.due = r.u64();
        ev.success = r.boolean();
        ev.hinted_winner = r.boolean();
        ev.pkt = loadPacket(r);
    }
    controlBits_.resize(r.u64());
    for (ControlBitEvent &ev : controlBits_) {
        ev.due = r.u64();
        ev.src = r.u32();
        ev.dst = r.u32();
        ev.tag = r.u64();
    }
    reservationLog_.clear();
    reservations_.clear();
    const std::uint64_t num_res = r.u64();
    for (std::uint64_t i = 0; i < num_res; ++i) {
        ReservationEntry re;
        re.slot = r.u64();
        re.key = r.u64();
        reservations_.insert(re.key);
        reservationLog_.push_back(re);
    }
    loadCounter(r, slotsElapsed_[0]);
    loadCounter(r, slotsElapsed_[1]);
    for (auto &per_node : txSlots_) {
        const std::uint64_t n = r.u64();
        FSOI_ASSERT(n == per_node.size(),
                    "fsoi node count mismatch on restore");
        for (Counter &c : per_node)
            loadCounter(r, c);
    }
    for (Counter &c : dataCollisionEvents_)
        loadCounter(r, c);
    loadAccumulator(r, dataResolution_);
    packetsInFlight_ = r.u64();
}

bool
FsoiNetwork::idle() const
{
    if (packetsInFlight_ != 0)
        return false;
    if (!confirmations_.empty() || !controlBits_.empty())
        return false;
    for (const auto &ln : lanes_)
        if (!ln.queue.empty() || !ln.retries.empty())
            return false;
    for (const auto &fl : inflight_)
        if (!fl.empty())
            return false;
    return true;
}

} // namespace fsoi::fsoi
