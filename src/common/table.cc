#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace fsoi {

void
TextTable::addRow(std::vector<std::string> cells)
{
    FSOI_ASSERT(cells.size() == headers_.size(),
                "row has %zu cells, table has %zu columns",
                cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace fsoi
