/**
 * @file
 * Free-list block pool and the allocator adapter that plugs it into
 * std::allocate_shared.
 *
 * The simulator allocates one shared_ptr<Message> per network packet;
 * at millions of packets per run the malloc/free pair dominates the
 * transport hot path. A BlockPool hands out fixed-size blocks from
 * chunked slabs and recycles them through a free list, so steady-state
 * packet traffic performs no heap allocation at all.
 *
 * A pool serves blocks of a single size, fixed by the first allocation
 * (allocate_shared's combined control-block-plus-object node). Pools
 * are intentionally not thread-safe: each System owns its pools and a
 * System runs entirely on one thread (see sim::SweepRunner). The pool
 * must outlive every shared_ptr allocated from it, so it is declared
 * before the components that hold packets in flight.
 */

#ifndef FSOI_COMMON_POOL_HH
#define FSOI_COMMON_POOL_HH

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "common/logging.hh"

namespace fsoi::common {

class BlockPool
{
  public:
    /** @p chunk_blocks blocks are grabbed from the heap at a time. */
    explicit BlockPool(std::size_t chunk_blocks = 256)
        : chunk_blocks_(chunk_blocks ? chunk_blocks : 1)
    {}

    void *
    allocate(std::size_t bytes)
    {
        if (block_bytes_ == 0)
            block_bytes_ = roundUp(bytes);
        FSOI_ASSERT(roundUp(bytes) == block_bytes_,
                    "BlockPool serves %zu-byte blocks, asked for %zu",
                    block_bytes_, bytes);
        if (free_.empty())
            grow();
        void *p = free_.back();
        free_.pop_back();
        return p;
    }

    void
    deallocate(void *p, std::size_t bytes)
    {
        FSOI_ASSERT(roundUp(bytes) == block_bytes_);
        free_.push_back(p);
    }

    std::size_t blockBytes() const { return block_bytes_; }
    std::size_t capacity() const { return chunks_.size() * chunk_blocks_; }

  private:
    static std::size_t
    roundUp(std::size_t bytes)
    {
        constexpr std::size_t align = alignof(std::max_align_t);
        return (bytes + align - 1) / align * align;
    }

    void
    grow()
    {
        auto chunk = std::make_unique<std::byte[]>(
            block_bytes_ * chunk_blocks_);
        std::byte *base = chunk.get();
        free_.reserve(free_.size() + chunk_blocks_);
        for (std::size_t i = 0; i < chunk_blocks_; ++i)
            free_.push_back(base + i * block_bytes_);
        chunks_.push_back(std::move(chunk));
    }

    std::size_t chunk_blocks_;
    std::size_t block_bytes_ = 0;
    std::vector<void *> free_;
    std::vector<std::unique_ptr<std::byte[]>> chunks_;
};

/**
 * Minimal allocator over a BlockPool, for std::allocate_shared. The
 * rebound node type is what fixes the pool's block size.
 */
template <typename T>
class PoolAllocator
{
  public:
    using value_type = T;

    explicit PoolAllocator(BlockPool &pool) : pool_(&pool) {}

    template <typename U>
    PoolAllocator(const PoolAllocator<U> &other) : pool_(other.pool())
    {}

    T *
    allocate(std::size_t n)
    {
        FSOI_ASSERT(n == 1);
        return static_cast<T *>(pool_->allocate(sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        FSOI_ASSERT(n == 1);
        pool_->deallocate(p, sizeof(T));
    }

    BlockPool *pool() const { return pool_; }

    template <typename U>
    bool operator==(const PoolAllocator<U> &other) const
    { return pool_ == other.pool(); }

  private:
    BlockPool *pool_;
};

/**
 * Convenience: pooled equivalent of std::make_shared<T>(args...).
 * The control block and the T live in one recycled pool block.
 */
template <typename T, typename... Args>
std::shared_ptr<T>
makePooled(BlockPool &pool, Args &&...args)
{
    return std::allocate_shared<T>(PoolAllocator<T>(pool),
                                   std::forward<Args>(args)...);
}

} // namespace fsoi::common

#endif // FSOI_COMMON_POOL_HH
