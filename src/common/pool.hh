/**
 * @file
 * Free-list block pool and the allocator adapter that plugs it into
 * std::allocate_shared.
 *
 * The simulator allocates one shared_ptr<Message> per network packet;
 * at millions of packets per run the malloc/free pair dominates the
 * transport hot path. A BlockPool hands out fixed-size blocks from
 * chunked slabs and recycles them through a free list, so steady-state
 * packet traffic performs no heap allocation at all.
 *
 * A pool serves blocks of a single size, fixed by the first allocation
 * (allocate_shared's combined control-block-plus-object node). Pools
 * are intentionally not thread-safe: each System owns its pools and a
 * System runs entirely on one thread (see sim::SweepRunner). The pool
 * must outlive every shared_ptr allocated from it, so it is declared
 * before the components that hold packets in flight.
 */

#ifndef FSOI_COMMON_POOL_HH
#define FSOI_COMMON_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/logging.hh"

namespace fsoi::common {

class BlockPool
{
  public:
    /** @p chunk_blocks blocks are grabbed from the heap at a time. */
    explicit BlockPool(std::size_t chunk_blocks = 256)
        : chunk_blocks_(chunk_blocks ? chunk_blocks : 1)
    {}

    void *
    allocate(std::size_t bytes)
    {
        if (block_bytes_ == 0)
            block_bytes_ = roundUp(bytes);
        FSOI_ASSERT(roundUp(bytes) == block_bytes_,
                    "BlockPool serves %zu-byte blocks, asked for %zu",
                    block_bytes_, bytes);
        if (free_.empty())
            grow();
        void *p = free_.back();
        free_.pop_back();
        return p;
    }

    void
    deallocate(void *p, std::size_t bytes)
    {
        FSOI_ASSERT(roundUp(bytes) == block_bytes_);
        free_.push_back(p);
    }

    std::size_t blockBytes() const { return block_bytes_; }
    std::size_t capacity() const { return chunks_.size() * chunk_blocks_; }

  private:
    static std::size_t
    roundUp(std::size_t bytes)
    {
        constexpr std::size_t align = alignof(std::max_align_t);
        return (bytes + align - 1) / align * align;
    }

    void
    grow()
    {
        auto chunk = std::make_unique<std::byte[]>(
            block_bytes_ * chunk_blocks_);
        std::byte *base = chunk.get();
        free_.reserve(free_.size() + chunk_blocks_);
        for (std::size_t i = 0; i < chunk_blocks_; ++i)
            free_.push_back(base + i * block_bytes_);
        chunks_.push_back(std::move(chunk));
    }

    std::size_t chunk_blocks_;
    std::size_t block_bytes_ = 0;
    std::vector<void *> free_;
    std::vector<std::unique_ptr<std::byte[]>> chunks_;
};

/**
 * Typed slot pool handing out 32-bit index handles instead of
 * pointers. The slots live in one contiguous vector, so holders pay a
 * single base+index load per access and the handle itself is 4 bytes
 * -- the data-oriented replacement for shared_ptr hops in the network
 * hot path. Freed slots are recycled LIFO. Handles are stable for the
 * lifetime of the allocation; references returned by operator[] are
 * only valid until the next alloc() (the backing vector may grow).
 */
template <typename T>
class SlotPool
{
  public:
    using Handle = std::uint32_t;
    static constexpr Handle kNull = 0xffffffffu;

    Handle
    alloc(T &&value)
    {
        if (!free_.empty()) {
            const Handle h = free_.back();
            free_.pop_back();
            slots_[h] = std::move(value);
            return h;
        }
        FSOI_ASSERT(slots_.size() < kNull, "SlotPool exhausted");
        slots_.push_back(std::move(value));
        return static_cast<Handle>(slots_.size() - 1);
    }

    void release(Handle h) { free_.push_back(h); }

    T &operator[](Handle h) { return slots_[h]; }
    const T &operator[](Handle h) const { return slots_[h]; }

    /** Slots ever allocated (live + free-listed). */
    std::size_t capacity() const { return slots_.size(); }
    std::size_t liveCount() const { return slots_.size() - free_.size(); }

    // --- checkpoint/restore (snapshot/). The slot array AND the LIFO
    // free list round-trip verbatim so future alloc() calls hand out
    // the same handles in the same order as the uninterrupted run.
    const std::vector<T> &rawSlots() const { return slots_; }
    const std::vector<Handle> &rawFreeList() const { return free_; }

    void
    rawRestore(std::vector<T> slots, std::vector<Handle> free_list)
    {
        slots_ = std::move(slots);
        free_ = std::move(free_list);
    }

  private:
    std::vector<T> slots_;
    std::vector<Handle> free_;
};

/**
 * Minimal allocator over a BlockPool, for std::allocate_shared. The
 * rebound node type is what fixes the pool's block size.
 */
template <typename T>
class PoolAllocator
{
  public:
    using value_type = T;

    explicit PoolAllocator(BlockPool &pool) : pool_(&pool) {}

    template <typename U>
    PoolAllocator(const PoolAllocator<U> &other) : pool_(other.pool())
    {}

    T *
    allocate(std::size_t n)
    {
        FSOI_ASSERT(n == 1);
        return static_cast<T *>(pool_->allocate(sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        FSOI_ASSERT(n == 1);
        pool_->deallocate(p, sizeof(T));
    }

    BlockPool *pool() const { return pool_; }

    template <typename U>
    bool operator==(const PoolAllocator<U> &other) const
    { return pool_ == other.pool(); }

  private:
    BlockPool *pool_;
};

/**
 * Convenience: pooled equivalent of std::make_shared<T>(args...).
 * The control block and the T live in one recycled pool block.
 */
template <typename T, typename... Args>
std::shared_ptr<T>
makePooled(BlockPool &pool, Args &&...args)
{
    return std::allocate_shared<T>(PoolAllocator<T>(pool),
                                   std::forward<Args>(args)...);
}

} // namespace fsoi::common

#endif // FSOI_COMMON_POOL_HH
