#include "common/stats.hh"

#include <cmath>

namespace fsoi {

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Histogram::quantile(double q) const
{
    FSOI_ASSERT(q >= 0.0 && q <= 1.0);
    if (total_ == 0 || q == 0.0)
        return 0.0;
    const double target = q * static_cast<double>(total_);
    // Underflow samples sit below every bin; the smallest reportable
    // boundary for a quantile inside that mass is 0.
    std::uint64_t running = underflow_;
    if (static_cast<double>(running) >= target)
        return 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        running += bins_[i];
        if (static_cast<double>(running) >= target)
            return (static_cast<double>(i) + 1.0) * binWidth_;
    }
    return static_cast<double>(bins_.size()) * binWidth_;
}

double
Histogram::percentile(double p) const
{
    FSOI_ASSERT(p >= 0.0 && p <= 1.0);
    if (total_ == 0)
        return 0.0;
    const double target = p * static_cast<double>(total_);
    std::uint64_t before = underflow_;
    if (static_cast<double>(before) >= target)
        return 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        const std::uint64_t in_bin = bins_[i];
        if (static_cast<double>(before + in_bin) < target) {
            before += in_bin;
            continue;
        }
        const double frac = in_bin
            ? (target - static_cast<double>(before)) / in_bin : 1.0;
        const double lo = static_cast<double>(i) * binWidth_;
        // The overflow bucket has no upper boundary; interpolate
        // toward the largest sample actually observed instead.
        const double hi = i + 1 < bins_.size()
            ? lo + binWidth_ : std::max(acc_.max(), lo);
        return lo + frac * (hi - lo);
    }
    return static_cast<double>(numBins()) * binWidth_;
}

double
geometricMean(const std::vector<double> &xs)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double x : xs) {
        if (x > 0.0) {
            log_sum += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

} // namespace fsoi
