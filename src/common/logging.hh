/**
 * @file
 * Error and status reporting in the spirit of gem5's logging.hh.
 *
 * panic()  - a simulator bug: something that must never happen happened.
 *            Prints and aborts (core dump friendly).
 * fatal()  - a user error (bad configuration, impossible parameters).
 *            Prints and exits with status 1.
 * warn()   - functionality approximated; simulation continues.
 * inform() - plain status output.
 */

#ifndef FSOI_COMMON_LOGGING_HH
#define FSOI_COMMON_LOGGING_HH

namespace fsoi {

[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Implementation hook for FSOI_ASSERT; do not call directly. */
[[noreturn]] void panicAt(const char *file, int line, const char *cond,
                          const char *fmt = nullptr, ...);

/**
 * Last-gasp callback invoked (once) after a panic/fatal message is
 * printed but before the process dies, so higher layers can flush
 * diagnostics -- the observability layer installs one that writes the
 * trace ring and flight-recorder dumps. Returns the previous hook.
 * The hook is cleared before invocation, so a panic inside the hook
 * cannot recurse.
 */
using FatalHook = void (*)();
FatalHook setFatalHook(FatalHook hook);

/**
 * Always-on assertion (survives NDEBUG). Optional printf-style message:
 * FSOI_ASSERT(x > 0) or FSOI_ASSERT(x > 0, "x=%d", x).
 */
#define FSOI_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::fsoi::panicAt(__FILE__, __LINE__,                         \
                            #cond __VA_OPT__(,) __VA_ARGS__);           \
        }                                                               \
    } while (0)

} // namespace fsoi

#endif // FSOI_COMMON_LOGGING_HH
