#include "common/rng.hh"

#include <cmath>

namespace fsoi {

double
Rng::nextExponential(double mean)
{
    FSOI_ASSERT(mean > 0.0);
    // Avoid log(0) by clamping to the smallest representable open interval.
    double u = nextDouble();
    if (u <= 0.0)
        u = 1e-18;
    return -mean * std::log(u);
}

} // namespace fsoi
