/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in fsoi-sim owns its own Rng seeded from the
 * experiment seed plus a component-unique stream id, so simulations are
 * reproducible bit-for-bit regardless of component tick order.
 *
 * The generator is xoshiro256** (public domain, Blackman & Vigna) seeded
 * through splitmix64.
 */

#ifndef FSOI_COMMON_RNG_HH
#define FSOI_COMMON_RNG_HH

#include <cstdint>

#include "common/logging.hh"

namespace fsoi {

/** Small, fast, deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed from a 64-bit value; distinct seeds give independent streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        reseed(seed);
    }

    /** Re-seed in place (runs the splitmix64 expansion). */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** Raw generator state, for checkpoint/restore (snapshot/). */
    void
    exportState(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }

    /** Restore raw state captured by exportState(). */
    void
    importState(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
    }

    /** Next raw 64-bit output. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        FSOI_ASSERT(bound > 0);
        // Lemire-style rejection-free for our (non-cryptographic) needs:
        // 128-bit multiply keeps the bias below 2^-64.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        FSOI_ASSERT(lo <= hi);
        return lo + nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /** Geometric-ish burst helper: exponential with the given mean. */
    double nextExponential(double mean);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** splitmix64 step; advances @p x and returns a decorrelated output. */
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace fsoi

#endif // FSOI_COMMON_RNG_HH
