/**
 * @file
 * Fixed-size worker thread pool with future-returning task submission.
 *
 * The pool exists for *inter-run* parallelism: independent simulations
 * (one System per sweep point) are submitted as tasks and each runs
 * entirely on one worker thread. Nothing inside the simulator is
 * thread-aware; determinism is preserved because tasks never share
 * mutable state and callers collect futures in submission order.
 */

#ifndef FSOI_COMMON_THREAD_POOL_HH
#define FSOI_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace fsoi::common {

/** Threads to use for @p requested jobs (0 = hardware concurrency). */
inline int
resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(int threads)
    {
        const int n = threads > 0 ? threads : 1;
        workers_.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &worker : workers_)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue @p fn and return the future of its result. Tasks start
     * in FIFO order; results are consumed in whatever order the caller
     * waits on the futures.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [this] { return stop_ || !tasks_.empty(); });
                if (tasks_.empty())
                    return; // stop_ set and queue drained
                task = std::move(tasks_.front());
                tasks_.pop_front();
            }
            task();
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace fsoi::common

#endif // FSOI_COMMON_THREAD_POOL_HH
