/**
 * @file
 * Lightweight statistics primitives used across the simulator.
 *
 * Components keep plain members of these types and expose them through
 * their public interface; the sim::System aggregates and prints them.
 */

#ifndef FSOI_COMMON_STATS_HH
#define FSOI_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace fsoi {

/** Monotonic event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }
    /** Merge another counter (registry aggregation across tiles). */
    Counter &operator+=(const Counter &other)
    {
        value_ += other.value_;
        return *this;
    }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /** Restore a checkpointed value (snapshot/ only). */
    void restore(std::uint64_t value) { value_ = value; }

  private:
    std::uint64_t value_ = 0;
};

/** Streaming mean/min/max/stddev accumulator. */
class Accumulator
{
  public:
    void
    add(double x)
    {
        n_ += 1;
        sum_ += x;
        sumsq_ += x * x;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        if (n_ == 0)
            return 0.0;
        const double m = mean();
        const double v = sumsq_ / n_ - m * m;
        return v > 0.0 ? v : 0.0;
    }

    double stddev() const;

    void
    reset()
    {
        n_ = 0;
        sum_ = sumsq_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    /** Exact internal state, for checkpoint/restore (snapshot/). The
     *  raw min/max (infinities when empty) and sumsq round-trip so a
     *  restored accumulator continues bit-identically. */
    struct Raw
    {
        std::uint64_t n;
        double sum, sumsq, min, max;
    };

    Raw exportState() const { return {n_, sum_, sumsq_, min_, max_}; }

    void
    importState(const Raw &raw)
    {
        n_ = raw.n;
        sum_ = raw.sum;
        sumsq_ = raw.sumsq;
        min_ = raw.min;
        max_ = raw.max;
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumsq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin-width histogram with underflow and overflow buckets.
 *
 * Bin i covers [i * binWidth, (i + 1) * binWidth); samples at or past
 * numBins * binWidth land in the overflow bucket, negative samples in
 * the underflow counter.
 */
class Histogram
{
  public:
    Histogram(double bin_width, std::size_t num_bins)
        : binWidth_(bin_width), bins_(num_bins + 1, 0)
    {
        FSOI_ASSERT(bin_width > 0.0 && num_bins > 0);
    }

    void
    add(double x)
    {
        total_ += 1;
        acc_.add(x);
        if (x < 0.0) {
            underflow_ += 1;
            return;
        }
        auto idx = static_cast<std::size_t>(x / binWidth_);
        if (idx >= bins_.size() - 1)
            idx = bins_.size() - 1; // overflow bucket
        bins_[idx] += 1;
    }

    std::uint64_t count() const { return total_; }
    double mean() const { return acc_.mean(); }
    double max() const { return acc_.max(); }
    double binWidth() const { return binWidth_; }
    std::size_t numBins() const { return bins_.size() - 1; }
    std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
    std::uint64_t overflow() const { return bins_.back(); }
    std::uint64_t underflow() const { return underflow_; }

    /** Fraction of samples in bin i. */
    double
    fraction(std::size_t i) const
    {
        return total_ ? static_cast<double>(bins_.at(i)) / total_ : 0.0;
    }

    /** Smallest x such that at least quantile q of samples are <= x. */
    double quantile(double q) const;

    /**
     * Like quantile(), but interpolates linearly inside the bucket the
     * target sample falls in instead of reporting the bucket's upper
     * boundary, so consumers get sub-bin resolution (p in [0, 1]).
     * Mass in the overflow bucket interpolates toward the observed
     * maximum; underflow mass reports 0.
     */
    double percentile(double p) const;

    void
    reset()
    {
        total_ = 0;
        underflow_ = 0;
        acc_.reset();
        std::fill(bins_.begin(), bins_.end(), 0);
    }

    // --- checkpoint/restore (snapshot/): exact internal state. The
    // bin layout (width, count) is construction-time configuration and
    // must already match; importState asserts that.
    const std::vector<std::uint64_t> &rawBins() const { return bins_; }
    const Accumulator &rawAccumulator() const { return acc_; }

    void
    importState(std::uint64_t total, std::uint64_t underflow,
                const Accumulator::Raw &acc,
                const std::vector<std::uint64_t> &bins)
    {
        FSOI_ASSERT(bins.size() == bins_.size(),
                    "histogram shape mismatch on restore");
        total_ = total;
        underflow_ = underflow;
        acc_.importState(acc);
        bins_ = bins;
    }

  private:
    double binWidth_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    Accumulator acc_;
    std::vector<std::uint64_t> bins_;
};

/** Named scalar for stat dumps. */
struct StatValue
{
    std::string name;
    double value;
};

/** Ordered list of named stats a component reports. */
using StatDump = std::vector<StatValue>;

/** Geometric mean of a list of ratios (ignores non-positive entries). */
double geometricMean(const std::vector<double> &xs);

} // namespace fsoi

#endif // FSOI_COMMON_STATS_HH
