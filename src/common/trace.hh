/**
 * @file
 * Protocol-trace gate. Historically FSOI_TRACE=1 toggled a bare bool
 * that a handful of fprintf sites checked; the gate now fronts the
 * structured, leveled, per-category tracer in obs/tracer.hh, which
 * records into a ring buffer and writes Chrome trace_event JSON.
 * Components keep a single-branch fast path when tracing is off:
 * FSOI_TRACE_POINT compiles to one level-table compare.
 *
 * Category/level selection: FSOI_TRACE=coherence,fsoi:2 (see
 * obs/tracer.hh for the full syntax; plain FSOI_TRACE=1 still works
 * and enables everything at level 1).
 */

#ifndef FSOI_COMMON_TRACE_HH
#define FSOI_COMMON_TRACE_HH

#include "obs/tracer.hh"

namespace fsoi {

using obs::TraceCat;

/** The process-wide tracer (see obs::Tracer). */
inline obs::Tracer &
tracer()
{
    return obs::Tracer::instance();
}

/** True when @p cat records events at @p level. */
inline bool
traceEnabled(TraceCat cat, int level = 1)
{
    return tracer().enabled(cat, level);
}

/**
 * Record an instant event when the category/level is enabled. Extra
 * arguments are obs::TraceArg brace lists, e.g.
 *   FSOI_TRACE_POINT(TraceCat::Fsoi, 2, "collision", now, dst,
 *                    {"colliders", n});
 */
#define FSOI_TRACE_POINT(cat, level, name, ts, tid, ...)                \
    do {                                                                \
        auto &fsoi_tr_ = ::fsoi::obs::Tracer::instance();               \
        if (fsoi_tr_.enabled((cat), (level)))                           \
            fsoi_tr_.instant((cat), (name), (ts), (tid),                \
                             {__VA_ARGS__});                            \
    } while (0)

/** As FSOI_TRACE_POINT, for a complete event spanning [ts, ts+dur). */
#define FSOI_TRACE_SPAN(cat, level, name, ts, dur, tid, ...)            \
    do {                                                                \
        auto &fsoi_tr_ = ::fsoi::obs::Tracer::instance();               \
        if (fsoi_tr_.enabled((cat), (level)))                          \
            fsoi_tr_.complete((cat), (name), (ts), (dur), (tid),        \
                              {__VA_ARGS__});                           \
    } while (0)

} // namespace fsoi

#endif // FSOI_COMMON_TRACE_HH
