/**
 * @file
 * Protocol-trace gate. Tracing is enabled by setting FSOI_TRACE=1 in
 * the environment; the flag is read once so the check is a single
 * branch in hot paths.
 */

#ifndef FSOI_COMMON_TRACE_HH
#define FSOI_COMMON_TRACE_HH

#include <cstdlib>

namespace fsoi {

/** True when FSOI_TRACE is set; evaluated once per process. */
inline bool
traceEnabled()
{
    static const bool enabled = std::getenv("FSOI_TRACE") != nullptr;
    return enabled;
}

} // namespace fsoi

#endif // FSOI_COMMON_TRACE_HH
