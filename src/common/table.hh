/**
 * @file
 * Minimal fixed-width text table printer for the benchmark harnesses.
 *
 * Every bench binary prints the same rows/series the paper's tables and
 * figures report; this class keeps the formatting consistent.
 */

#ifndef FSOI_COMMON_TABLE_HH
#define FSOI_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace fsoi {

/** Column-aligned table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    /** Append a row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Format a value as a percentage string, e.g. "12.3%". */
    static std::string pct(double fraction, int precision = 1);

    /** Render with column padding to the stream. */
    void print(std::ostream &os) const;

    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &rows() const
    { return rows_; }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fsoi

#endif // FSOI_COMMON_TABLE_HH
