#include "common/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace fsoi {

namespace {

FatalHook fatalHook = nullptr;

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    std::fflush(stderr);
}

void
runFatalHook()
{
    if (FatalHook hook = fatalHook) {
        fatalHook = nullptr;
        hook();
    }
}

} // namespace

FatalHook
setFatalHook(FatalHook hook)
{
    FatalHook prev = fatalHook;
    fatalHook = hook;
    return prev;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    runFatalHook();
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    runFatalHook();
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
panicAt(const char *file, int line, const char *cond, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d",
                 cond, file, line);
    if (fmt && fmt[0]) {
        std::fprintf(stderr, ": ");
        va_list ap;
        va_start(ap, fmt);
        std::vfprintf(stderr, fmt, ap);
        va_end(ap);
    }
    std::fputc('\n', stderr);
    std::fflush(stderr);
    runFatalHook();
    std::abort();
}

} // namespace fsoi
