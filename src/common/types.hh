/**
 * @file
 * Fundamental scalar types shared by every fsoi-sim module.
 */

#ifndef FSOI_COMMON_TYPES_HH
#define FSOI_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace fsoi {

/** Simulation time in CPU clock cycles (3.3 GHz core clock by default). */
using Cycle = std::uint64_t;

/** Identifier of a network endpoint (core node or memory controller). */
using NodeId = std::uint32_t;

/** Physical byte address in the simulated shared memory. */
using Addr = std::uint64_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode =
    std::numeric_limits<NodeId>::max();

/** Sentinel for "no cycle / not yet". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

} // namespace fsoi

#endif // FSOI_COMMON_TYPES_HH
