/**
 * @file
 * Off-chip memory controller / DRAM channel model.
 *
 * One controller per channel, attached to the interconnect as a full
 * endpoint (quadrant routers in the 16-node mesh; its own lanes in the
 * FSOI system). Requests are address-interleaved across controllers by
 * the directories. Each request occupies the channel for a
 * bandwidth-determined service time and reads additionally pay the
 * fixed DRAM latency (200 cycles in Table 3). Writes are posted.
 */

#ifndef FSOI_MEMORY_MEMORY_CONTROLLER_HH
#define FSOI_MEMORY_MEMORY_CONTROLLER_HH

#include <algorithm>
#include <deque>
#include <vector>

#include "coherence/message.hh"
#include "coherence/transport.hh"
#include "common/stats.hh"
#include "obs/stat_registry.hh"

namespace fsoi::snapshot {
class Writer;
class Reader;
} // namespace fsoi::snapshot

namespace fsoi::memory {

/** Per-channel configuration. */
struct MemConfig
{
    int latency = 200;           //!< DRAM access latency (cycles)
    double bytes_per_cycle = 0.67; //!< channel bandwidth (8.8 GB/s over
                                  //!< 4 channels at 3.3 GHz)
    int line_bytes = 32;         //!< transfer size
    int queue_capacity = 32;     //!< outstanding requests
};

/** Per-controller statistics. */
struct MemStats
{
    Counter reads;
    Counter writes;
    Counter busy_cycles;
    Accumulator queue_delay;
};

/** One DRAM channel. */
class MemoryController
{
  public:
    MemoryController(NodeId node, const MemConfig &config,
                     coherence::Transport &transport);

    NodeId node() const { return node_; }
    const MemStats &stats() const { return stats_; }

    /** Publish this channel's stats under @p scope (e.g. mem0). */
    void registerStats(const obs::Scope &scope) const;

    /** Handle MemRead / MemWrite from a directory. */
    void handleMessage(const coherence::Message &msg);

    void tick(Cycle now);

    bool quiescent() const;

    /**
     * Active-set scheduling protocol (see L1Cache::active): tick()
     * only drains replies_, so an empty reply list means the tick is
     * skippable; handleMessage() refills it. busyUntil_ needs no
     * ticking — it is only compared against now_ on arrival.
     */
    bool active() const { return !replies_.empty(); }

    /** Keep now_ fresh on skipped cycles (what an idle tick() did). */
    void syncClock(Cycle now) { now_ = now; }

    /**
     * Event-calendar contract: earliest reply ready time (clamped to
     * the future), or kNoCycle when no reply is in flight.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        Cycle next = kNoCycle;
        for (const Reply &reply : replies_)
            next = std::min(next, std::max(reply.ready_at, now + 1));
        return next;
    }

    /** Checkpoint/restore (snapshot/). */
    void saveState(snapshot::Writer &w) const;
    void loadState(snapshot::Reader &r);

  private:
    struct Reply
    {
        Cycle ready_at;
        NodeId dst;
        coherence::Message msg;
    };

    /** Channel service time per line transfer, in cycles. */
    Cycle serviceCycles() const;

    NodeId node_;
    MemConfig config_;
    coherence::Transport &transport_;

    Cycle busyUntil_ = 0;
    Cycle now_ = 0;
    std::vector<Reply> replies_;
    MemStats stats_;
};

} // namespace fsoi::memory

#endif // FSOI_MEMORY_MEMORY_CONTROLLER_HH
