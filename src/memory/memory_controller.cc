#include "memory/memory_controller.hh"

#include <algorithm>
#include <cmath>

#include "coherence/message_io.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "snapshot/state_io.hh"

namespace fsoi::memory {

using coherence::Message;
using coherence::MsgType;

MemoryController::MemoryController(NodeId node, const MemConfig &config,
                                   coherence::Transport &transport)
    : node_(node), config_(config), transport_(transport)
{
    FSOI_ASSERT(config_.bytes_per_cycle > 0.0);
    FSOI_ASSERT(config_.latency >= 1);
}

void
MemoryController::registerStats(const obs::Scope &scope) const
{
    scope.counter("reads", stats_.reads);
    scope.counter("writes", stats_.writes);
    scope.counter("busy_cycles", stats_.busy_cycles);
    scope.accumulator("queue_delay", stats_.queue_delay);
}

Cycle
MemoryController::serviceCycles() const
{
    return static_cast<Cycle>(
        std::ceil(config_.line_bytes / config_.bytes_per_cycle));
}

void
MemoryController::handleMessage(const Message &msg)
{
    const Cycle start = std::max(now_, busyUntil_);
    stats_.queue_delay.add(static_cast<double>(start - now_));
    busyUntil_ = start + serviceCycles();
    stats_.busy_cycles += serviceCycles();

    switch (msg.type) {
      case MsgType::MemRead: {
        stats_.reads++;
        FSOI_TRACE_POINT(TraceCat::Mem, 2, "read", now_, node_,
                         {"line", msg.line}, {"from", msg.requester},
                         {"queued", start - now_});
        Message reply{};
        reply.type = MsgType::MemReply;
        reply.line = msg.line;
        reply.requester = node_;
        replies_.push_back(Reply{
            busyUntil_ + static_cast<Cycle>(config_.latency),
            msg.requester, reply});
        return;
      }
      case MsgType::MemWrite:
        stats_.writes++; // posted: no response
        FSOI_TRACE_POINT(TraceCat::Mem, 2, "write", now_, node_,
                         {"line", msg.line}, {"from", msg.requester},
                         {"queued", start - now_});
        return;
      default:
        panic("memory controller %u: unexpected message %s", node_,
              msgTypeName(msg.type));
    }
}

void
MemoryController::tick(Cycle now)
{
    now_ = now;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < replies_.size(); ++i) {
        auto &reply = replies_[i];
        if (reply.ready_at <= now
            && transport_.trySend(node_, reply.dst, reply.msg)) {
            continue;
        }
        replies_[keep++] = std::move(reply);
    }
    replies_.resize(keep);
}

bool
MemoryController::quiescent() const
{
    return replies_.empty();
}

void
MemoryController::saveState(snapshot::Writer &w) const
{
    using snapshot::saveAccumulator;
    using snapshot::saveCounter;

    w.u64(busyUntil_);
    w.u64(now_);
    w.u64(replies_.size());
    for (const Reply &reply : replies_) {
        w.u64(reply.ready_at);
        w.u32(reply.dst);
        coherence::saveMessage(w, reply.msg);
    }
    saveCounter(w, stats_.reads);
    saveCounter(w, stats_.writes);
    saveCounter(w, stats_.busy_cycles);
    saveAccumulator(w, stats_.queue_delay);
}

void
MemoryController::loadState(snapshot::Reader &r)
{
    using snapshot::loadAccumulator;
    using snapshot::loadCounter;

    busyUntil_ = r.u64();
    now_ = r.u64();
    replies_.clear();
    const std::uint64_t n = r.u64();
    replies_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Reply reply;
        reply.ready_at = r.u64();
        reply.dst = static_cast<NodeId>(r.u32());
        reply.msg = coherence::loadMessage(r);
        replies_.push_back(reply);
    }
    loadCounter(r, stats_.reads);
    loadCounter(r, stats_.writes);
    loadCounter(r, stats_.busy_cycles);
    loadAccumulator(r, stats_.queue_delay);
}

} // namespace fsoi::memory
