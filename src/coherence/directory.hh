/**
 * @file
 * Distributed L2 slice + directory controller: the lower half of
 * Table 2 (states DI, DV, DS, DM plus transients), with the paper's
 * two coherence optimizations:
 *
 *  - confirmation-as-ack (Section 5.1): invalidations of clean (S)
 *    sharers are acknowledged by the FSOI layer's delivery
 *    confirmations instead of explicit InvAck packets;
 *  - per-line confirmation gating: the directory does not emit the
 *    next message about a line until the previous one is confirmed,
 *    giving point-to-point ordering (Section 4.4);
 *  - ll/sc boolean subscription (Section 5.1): synchronization words
 *    are served from a directory-side update table over the
 *    confirmation lane's reserved mini-slots.
 *
 * Incoming requests that hit a busy (transient) line are queued per
 * line ("z" entries in Table 2); a full request queue produces a NACK
 * and the requester retries (footnote 3's fetch-deadlock avoidance).
 */

#ifndef FSOI_COHERENCE_DIRECTORY_HH
#define FSOI_COHERENCE_DIRECTORY_HH

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "coherence/cache_array.hh"
#include "coherence/functional_memory.hh"
#include "common/logging.hh"
#include "coherence/message.hh"
#include "coherence/transport.hh"
#include "common/stats.hh"
#include "obs/stat_registry.hh"

namespace fsoi::obs { class FlightRecorder; }
namespace fsoi::snapshot {
class Writer;
class Reader;
} // namespace fsoi::snapshot

namespace fsoi::coherence {

/** Directory stable states (Table 2). */
enum class DirState : std::uint8_t
{
    DI, //!< not present in this L2 slice
    DV, //!< valid in L2, no L1 copies
    DS, //!< shared read-only by one or more L1s
    DM, //!< owned (E or M) by exactly one L1
};

const char *dirStateName(DirState state);

/** Directory configuration (defaults = Table 3). */
struct DirConfig
{
    CacheGeometry geometry{64 * 1024, 32, 8};
    int l2_latency = 15;        //!< L2 data-array access
    int ctrl_latency = 2;       //!< tag-only / control processing
    int request_queue = 64;     //!< incoming request queue entries
    int pending_per_line = 16;  //!< queued requests per busy line
    int ports = 2;              //!< requests started per cycle
    bool confirmation_acks = false;   //!< FSOI Section 5.1
    bool confirmation_gating = false; //!< FSOI per-line ordering
    bool sync_subscription = false;   //!< FSOI ll/sc update protocol
};

/** Per-directory statistics. */
struct DirStats
{
    Counter requests;
    Counter nacks_sent;
    Counter invalidations_sent;
    Counter downgrades_sent;
    Counter mem_reads;
    Counter mem_writes;
    Counter l2_evictions;
    Counter stale_acks_dropped;
    Counter late_writebacks_merged;
    Counter sync_updates;
    Counter l2_accesses; //!< for the energy model
};

/** One L2 slice + directory controller (one per core tile). */
class Directory
{
  public:
    /** Side channel used for subscription updates (FSOI only). */
    using ControlBitSender =
        std::function<void(NodeId dst, std::uint64_t tag)>;

    Directory(NodeId node, const DirConfig &config, Transport &transport,
              FunctionalMemory &memory,
              std::function<NodeId(Addr)> memctl_of);

    NodeId node() const { return node_; }
    const DirStats &stats() const { return stats_; }
    const DirConfig &config() const { return config_; }

    /** Publish this directory's stats under @p scope (e.g. dir3). */
    void registerStats(const obs::Scope &scope) const;

    /** Register every transaction with the System's flight recorder
     *  (nullptr = off). The recorder must outlive this directory. */
    void setFlightRecorder(obs::FlightRecorder *rec)
    { flightRec_ = rec; }

    /** Handle a message delivered by the transport. */
    void handleMessage(const Message &msg);

    /**
     * FSOI only: called when the optical layer confirms delivery of a
     * message this directory sent (payload echoed back).
     */
    void onConfirm(const Message &msg);

    void setControlBitSender(ControlBitSender sender)
    { controlBitSender_ = std::move(sender); }

    void tick(Cycle now);

    bool quiescent() const;

    /**
     * Active-set scheduling protocol (see L1Cache::active): tick()
     * only drains the outbox, deferred fills and the input queue, so
     * the slice is skippable whenever those are empty — outstanding
     * txns_ advance purely through handleMessage() and don't require
     * ticking. Skipped slices get syncClock() to keep now_ fresh.
     */
    bool
    active() const
    {
        return !inQueue_.empty() || !outbox_.empty()
            || !deferredFills_.empty();
    }

    /** Keep now_ fresh on skipped cycles (what an idle tick() did). */
    void syncClock(Cycle now) { now_ = now; }

    /**
     * Event-calendar contract: earliest cycle a tick would make
     * progress, or kNoCycle when the slice advances purely through
     * deliveries (outstanding txns_ don't need ticking; queued input
     * and deferred fills retry every cycle; outbox entries wait for
     * their ready_at).
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        if (!inQueue_.empty() || !deferredFills_.empty())
            return now + 1;
        Cycle next = kNoCycle;
        for (const OutMsg &out : outbox_)
            next = std::min(next, std::max(out.ready_at, now + 1));
        return next;
    }

    /** Print outstanding state to stderr (watchdog diagnostics). */
    void debugDump() const;

    /** Directory state of a line (tests / invariants). */
    DirState lineState(Addr addr) const;
    /** Sharer bitmask of a line (tests / invariants). */
    std::uint64_t sharersOf(Addr addr) const;

    /**
     * Pack a sync side-channel payload: word address, 16-bit value,
     * success flag, and whether this is a direct reply to the
     * requester (vs. a subscription broadcast).
     */
    static std::uint64_t packSyncTag(Addr word, std::uint64_t value,
                                     bool success, bool direct);
    static void unpackSyncTag(std::uint64_t tag, Addr &word,
                              std::uint64_t &value, bool &success,
                              bool &direct);

    /** Printable name for a Txn::Kind value (flight-recorder dumps). */
    static const char *txnKindName(std::uint8_t kind);

    /**
     * Checkpoint/restore (snapshot/). Hash-keyed tables (transactions,
     * sync vars, sync links) are written sorted by key so snapshot
     * bytes never depend on hash-table iteration order; no behaviour
     * here iterates them, so rebuild order is immaterial.
     */
    void saveState(snapshot::Writer &w) const;
    void loadState(snapshot::Reader &r);

  private:
    struct DirMeta
    {
        DirState state = DirState::DI;
        std::uint64_t sharers = 0; //!< bitmask over core nodes
        NodeId owner = kInvalidNode;
        bool dirty = false;        //!< L2 copy newer than memory
    };
    using Line = CacheArray<DirMeta>::Line;

    struct Txn
    {
        enum class Kind : std::uint8_t
        {
            FetchSh,       //!< DI.DSD: memory fetch for a read
            FetchEx,       //!< DI.DMD: memory fetch for a write
            InvForEx,      //!< DS.DMA: invalidating sharers
            DwgForSh,      //!< DM.DSD: downgrading the owner
            InvForOwn,     //!< DM.DMD: invalidating the owner
            EvictShared,   //!< DS.DIA: L2 eviction of a shared line
            EvictOwned,    //!< DM.DID: L2 eviction of an owned line
            AwaitWriteBack,//!< owner re-requested; WB is in flight
            GrantWait,     //!< FSOI gating: grant awaiting confirmation
        } kind;
        NodeId requester = kInvalidNode;
        bool upgrade = false;  //!< reply with ExcAck instead of DataM
        int acks_pending = 0;
        /** Epoch stamped into demands; acks must echo it to count. */
        std::uint64_t epoch = 0;
        MsgType grant_type = MsgType::Nack; //!< for GrantWait matching
        std::deque<Message> pending;        //!< "z" queue
    };

    /**
     * Outstanding-transaction table as a struct-of-arrays: line
     * addresses in one flat key array (kFreeLine sentinel = free slot)
     * parallel to the Txn payloads, free slots on a LIFO free list,
     * growing only when every slot is taken. Lookup is a linear scan
     * of the key array -- a directory rarely holds more than a handful
     * of open transactions, so the scan stays within a cache line or
     * two and beats the hash-and-chase of the unordered_map this
     * replaces on every message dispatch. Slot order depends on
     * allocation history; the only behaviour-visible iteration
     * (saveState) sorts by line address.
     */
    class TxnTable
    {
      public:
        static constexpr Addr kFreeLine = ~Addr(0);

        /** Slot index of @p line, or -1 when absent. */
        int
        find(Addr line) const
        {
            const int cap = static_cast<int>(lines_.size());
            for (int i = 0; i < cap; ++i)
                if (lines_[i] == line)
                    return i;
            return -1;
        }

        bool empty() const { return used_ == 0; }
        std::size_t size() const
        { return static_cast<std::size_t>(used_); }
        int capacity() const { return static_cast<int>(lines_.size()); }
        Addr lineAt(int idx) const
        { return lines_[static_cast<std::size_t>(idx)]; }
        Txn &at(int idx) { return slots_[static_cast<std::size_t>(idx)]; }
        const Txn &at(int idx) const
        { return slots_[static_cast<std::size_t>(idx)]; }
        bool contains(Addr line) const { return find(line) >= 0; }

        /** Claim a slot for @p line, growing the arrays if needed. */
        int
        alloc(Addr line)
        {
            FSOI_ASSERT(line != kFreeLine);
            if (free_.empty()) {
                lines_.push_back(kFreeLine);
                slots_.emplace_back();
                free_.push_back(static_cast<int>(lines_.size()) - 1);
            }
            const int idx = free_.back();
            free_.pop_back();
            lines_[static_cast<std::size_t>(idx)] = line;
            slots_[static_cast<std::size_t>(idx)] = Txn{};
            ++used_;
            return idx;
        }

        /** Move the entry out and return the slot to the free list. */
        Txn
        release(int idx)
        {
            Txn out = std::move(slots_[static_cast<std::size_t>(idx)]);
            slots_[static_cast<std::size_t>(idx)] = Txn{};
            lines_[static_cast<std::size_t>(idx)] = kFreeLine;
            free_.push_back(idx);
            --used_;
            return out;
        }

        void
        clear()
        {
            lines_.clear();
            slots_.clear();
            free_.clear();
            used_ = 0;
        }

      private:
        std::vector<Addr> lines_;
        std::vector<Txn> slots_;
        std::vector<int> free_;
        int used_ = 0;
    };

    struct OutMsg
    {
        Cycle ready_at;
        NodeId dst;
        Message msg;
    };

    struct SyncVar
    {
        std::uint64_t value = 0;
        std::uint64_t version = 1;
        std::uint64_t subscribers = 0;
    };

    /** Insert @p txn for @p line_addr, logging DirTxnStart. All
     *  transaction creation funnels through here. */
    void openTxn(Addr line_addr, Txn txn);
    /** Free transaction slot @p idx, logging DirTxnEnd. */
    void closeTxn(int idx);

    void queueSend(NodeId dst, const Message &msg, int latency);
    void sendNack(const Message &msg);
    void dispatch(const Message &msg);
    void processRequest(const Message &msg);
    void handleWriteBack(const Message &msg);
    void handleInvAck(const Message &msg, bool with_data);
    void handleDwgAck(const Message &msg, bool with_data);
    void handleMemReply(const Message &msg);
    void handleSync(const Message &msg);

    /**
     * Send a granting response and either complete the transaction
     * (draining queued requests) or enter GrantWait when confirmation
     * gating applies.
     */
    void grantAndComplete(Addr line_addr, NodeId dst, MsgType type,
                          std::deque<Message> pending);

    /** Resume queued requests after a line stabilizes. */
    void drainPending(Addr line_addr, std::deque<Message> pending);

    /**
     * Find or make an L2 slot for @p line_addr. May synchronously
     * evict a DV way or start an eviction transaction and return
     * nullptr (caller defers the fill).
     */
    Line *makeRoomL2(Addr line_addr);

    void evictLine(Line *line);
    void notifySubscribers(Addr word, SyncVar &var, NodeId except);

    static std::uint64_t bit(NodeId node) { return 1ULL << node; }

    NodeId node_;
    DirConfig config_;
    Transport &transport_;
    FunctionalMemory &memory_;
    std::function<NodeId(Addr)> memctlOf_;
    ControlBitSender controlBitSender_;

    CacheArray<DirMeta> array_;
    TxnTable txns_;
    std::uint64_t epochCounter_ = 0;
    std::deque<Message> inQueue_;
    std::vector<OutMsg> outbox_;
    std::vector<Message> deferredFills_;
    std::unordered_map<Addr, SyncVar> syncVars_;
    /** Per-core ll link (word, version) for sc validation. */
    std::unordered_map<NodeId, std::pair<Addr, std::uint64_t>> syncLinks_;

    Cycle now_ = 0;
    DirStats stats_;
    obs::FlightRecorder *flightRec_ = nullptr;
};

} // namespace fsoi::coherence

#endif // FSOI_COHERENCE_DIRECTORY_HH
