/**
 * @file
 * Message transport seen by the protocol controllers.
 *
 * Controllers (L1s, directories, memory controllers) send Messages to
 * endpoint ids; the System's transport implementation maps remote sends
 * onto the configured interconnect and short-circuits node-local sends
 * (an L1 talking to the directory slice on its own tile) without
 * touching the network, charging a fixed local latency instead.
 */

#ifndef FSOI_COHERENCE_TRANSPORT_HH
#define FSOI_COHERENCE_TRANSPORT_HH

#include "coherence/message.hh"
#include "common/types.hh"

namespace fsoi::coherence {

/** Abstract message port used by all protocol controllers. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Attempt to send @p msg from @p src to @p dst. Returns false when
     * the underlying queue is full; the caller keeps the message in its
     * outbox and retries next cycle.
     */
    virtual bool trySend(NodeId src, NodeId dst, const Message &msg) = 0;
};

} // namespace fsoi::coherence

#endif // FSOI_COHERENCE_TRANSPORT_HH
