#include "coherence/message.hh"

namespace fsoi::coherence {

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::ReqSh: return "ReqSh";
      case MsgType::ReqEx: return "ReqEx";
      case MsgType::ReqUpg: return "ReqUpg";
      case MsgType::SyncLl: return "SyncLl";
      case MsgType::SyncSc: return "SyncSc";
      case MsgType::DataS: return "DataS";
      case MsgType::DataE: return "DataE";
      case MsgType::DataM: return "DataM";
      case MsgType::ExcAck: return "ExcAck";
      case MsgType::Nack: return "Nack";
      case MsgType::SyncReply: return "SyncReply";
      case MsgType::Inv: return "Inv";
      case MsgType::Dwg: return "Dwg";
      case MsgType::InvAck: return "InvAck";
      case MsgType::InvAckData: return "InvAckData";
      case MsgType::DwgAck: return "DwgAck";
      case MsgType::DwgAckData: return "DwgAckData";
      case MsgType::WriteBack: return "WriteBack";
      case MsgType::MemRead: return "MemRead";
      case MsgType::MemWrite: return "MemWrite";
      case MsgType::MemReply: return "MemReply";
    }
    return "?";
}

noc::PacketKind
packetKindOf(MsgType type)
{
    using noc::PacketKind;
    switch (type) {
      case MsgType::ReqSh:
      case MsgType::ReqEx:
      case MsgType::ReqUpg:
      case MsgType::SyncLl:
      case MsgType::SyncSc:
        return PacketKind::Request;
      case MsgType::DataS:
      case MsgType::DataE:
      case MsgType::DataM:
        return PacketKind::Reply;
      case MsgType::WriteBack:
      case MsgType::InvAckData:
      case MsgType::DwgAckData:
        return PacketKind::WriteBack;
      case MsgType::MemRead:
      case MsgType::MemWrite:
        return PacketKind::MemRequest;
      case MsgType::MemReply:
        return PacketKind::MemReply;
      case MsgType::InvAck:
      case MsgType::DwgAck:
      case MsgType::ExcAck:
        return PacketKind::Ack;
      default:
        return PacketKind::Control;
    }
}

} // namespace fsoi::coherence
