/**
 * @file
 * L1 data-cache controller: the MESI state machine of Table 2 (upper
 * half) with the transient states I.SD, I.MD and S.MA realized as MSHR
 * bookkeeping.
 *
 * The controller is callback-driven: the core issues loads, stores and
 * ll/sc operations; misses allocate MSHRs and complete when the
 * directory's response arrives. Stores drain through a store buffer so
 * the in-order core only stalls when the buffer fills.
 *
 * Race handling over unordered networks: an Inv or Dwg that arrives
 * while a Data response is still in flight (possible in the mesh, where
 * meta and data packets ride different virtual channels) is remembered
 * on the MSHR and acknowledged right after the data is consumed once --
 * the standard read-once resolution, equivalent to Table 2's
 * InvAck/I.SD entries under point-to-point ordering. In FSOI mode the
 * directory's per-line confirmation gating makes this path unreachable.
 */

#ifndef FSOI_COHERENCE_L1_CACHE_HH
#define FSOI_COHERENCE_L1_CACHE_HH

#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "coherence/cache_array.hh"
#include "common/logging.hh"
#include "coherence/functional_memory.hh"
#include "coherence/message.hh"
#include "coherence/transport.hh"
#include "common/stats.hh"
#include "obs/stat_registry.hh"

namespace fsoi::obs { class FlightRecorder; }
namespace fsoi::snapshot {
class Writer;
class Reader;
} // namespace fsoi::snapshot

namespace fsoi::coherence {

/** L1 stable states (Table 2). */
enum class L1State : std::uint8_t { I, S, E, M };

const char *l1StateName(L1State state);

/** L1 configuration (defaults = Table 3, scaled-down 8 KB L1D). */
struct L1Config
{
    CacheGeometry geometry{8 * 1024, 32, 2};
    int hit_latency = 2;       //!< cycles for a hit
    int num_mshrs = 8;         //!< outstanding misses
    int store_buffer = 8;      //!< entries
    int nack_retry_delay = 30; //!< cycles before re-issuing after a NACK
    /**
     * FSOI optimization (Section 5.1): rely on the optical-layer
     * confirmation of Inv delivery instead of sending InvAck packets
     * for clean copies. Requires an FsoiNetwork-backed transport.
     */
    bool confirmation_acks = false;
};

/** Per-L1 statistics. */
struct L1Stats
{
    Counter loads;
    Counter stores;
    Counter load_hits;
    Counter store_hits;
    Counter misses;
    Counter upgrades;
    Counter writebacks;
    Counter invalidations_received;
    Counter downgrades_received;
    Counter nacks;
    Counter sc_failures;
    Counter l1_accesses; //!< total array accesses (for energy)
    /** Overall latency of misses that returned data (Figure 5). */
    Histogram miss_latency{5.0, 60};
};

/** One L1 controller (one per core). */
class L1Cache
{
  public:
    /** Completion callback: value is meaningful for loads/ll/sc. */
    using Callback = std::function<void(std::uint64_t value, bool success)>;

    /**
     * @param node    network endpoint id of this L1's core
     * @param home_of maps a line address to its home directory node
     */
    L1Cache(NodeId node, const L1Config &config, Transport &transport,
            FunctionalMemory &memory,
            std::function<NodeId(Addr)> home_of);

    NodeId node() const { return node_; }
    const L1Stats &stats() const { return stats_; }
    const L1Config &config() const { return config_; }

    /** Publish this cache's stats under @p scope (e.g. core3.l1). */
    void registerStats(const obs::Scope &scope) const;

    /** Register every miss with the System's flight recorder (nullptr
     *  = off). The recorder must outlive this cache. */
    void setFlightRecorder(obs::FlightRecorder *rec)
    { flightRec_ = rec; }

    /**
     * Issue a load. Returns false when no MSHR is available (the core
     * retries next cycle). The callback fires when the value is ready
     * (hit_latency later on a hit).
     */
    bool load(Addr addr, Callback cb);

    /** Issue a store through the store buffer; false when full. */
    bool store(Addr addr, std::uint64_t value);

    /** Load-linked: as load, but arms the link register. */
    bool loadLinked(Addr addr, Callback cb);

    /**
     * Store-conditional: callback reports success. Fails immediately
     * (no traffic) when the link register no longer covers @p addr.
     */
    bool storeConditional(Addr addr, std::uint64_t value, Callback cb);

    /** Handle a message delivered by the transport. */
    void handleMessage(const Message &msg);

    /** Advance one cycle: drain outbox, store buffer, retries. */
    void tick(Cycle now);

    /** True when no miss, store or outgoing message is outstanding. */
    bool quiescent() const;

    /**
     * Active-set scheduling protocol: tick() is a no-op beyond the
     * clock refresh whenever every work list below is empty, so the
     * System skips the call and keeps the clock fresh via syncClock()
     * instead. The controller re-enters the active set through
     * handleMessage() / the core-facing entry points, which all refill
     * one of these lists before the next cycle's check.
     */
    bool
    active() const
    {
        return !pendingDone_.empty() || !deferredData_.empty()
            || !outbox_.empty() || !mshrs_.empty()
            || !storeBuffer_.empty();
    }

    /** Keep now_ fresh on skipped cycles (what an idle tick() did). */
    void syncClock(Cycle now) { now_ = now; }

    /**
     * Event-calendar contract: the earliest future cycle at which
     * tick() would do something a skipped tick wouldn't, or kNoCycle
     * when every outstanding item advances purely through message
     * delivery (which re-wakes this controller for the same cycle).
     * Conservative early wakes are harmless; late wakes are not, so
     * every tick-driven work source below contributes.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Current stable state of a line (tests / invariant checks). */
    L1State lineState(Addr addr) const;

    std::size_t outstandingMisses() const { return mshrs_.size(); }
    bool linkValid() const { return linkValid_; }

    /** Print outstanding state to stderr (watchdog diagnostics). */
    void debugDump() const;

    /** Printable name for an MSHR want value (flight-recorder dumps). */
    static const char *wantName(std::uint8_t want);

  private:
    struct LineMeta
    {
        L1State state = L1State::I;
    };
    using Line = CacheArray<LineMeta>::Line;

    struct Mshr
    {
        enum class Want : std::uint8_t { Shared, Exclusive, Upgrade };
        Want want = Want::Shared;
        std::vector<std::pair<Addr, Callback>> loads;
        bool store_pending = false; //!< store-buffer head waits on this
        bool is_ll = false;         //!< arm link on completion
        bool is_sc = false;         //!< report sc outcome
        Addr sc_addr = 0;
        std::uint64_t sc_value = 0;
        Callback sc_cb;
        bool inv_pending = false;   //!< Inv arrived mid-flight
        bool dwg_pending = false;   //!< Dwg arrived mid-flight
        Cycle retry_at = kNoCycle;  //!< NACK back-off deadline
        bool request_outstanding = false;
        Cycle created = 0;          //!< miss start (latency histogram)
    };

    /**
     * Fixed-capacity MSHR table as a struct-of-arrays: the line
     * addresses live in one flat array (kFreeLine sentinel = free
     * slot) parallel to the Mshr payloads, and free slots sit on a
     * LIFO free list. Lookup is a linear scan of the key array —
     * capacity is num_mshrs (8 by default), so the whole scan touches
     * one cache line, which beats the hash-and-chase of the
     * unordered_map this replaces on the per-tick hot paths. Slot
     * order depends on allocation history, so every behaviour-visible
     * iteration (NACK retries, saveState) sorts by line address; the
     * remaining scans (nextEventCycle, quiescent) are order-blind.
     */
    class MshrTable
    {
      public:
        static constexpr Addr kFreeLine = ~Addr(0);

        void
        reset(int capacity)
        {
            lines_.assign(static_cast<std::size_t>(capacity), kFreeLine);
            slots_.clear();
            slots_.resize(static_cast<std::size_t>(capacity));
            free_.clear();
            for (int i = capacity; i-- > 0;)
                free_.push_back(i);
            used_ = 0;
        }

        /** Slot index of @p line, or -1 when absent. */
        int
        find(Addr line) const
        {
            const int cap = static_cast<int>(lines_.size());
            for (int i = 0; i < cap; ++i)
                if (lines_[i] == line)
                    return i;
            return -1;
        }

        bool full() const { return free_.empty(); }
        bool empty() const { return used_ == 0; }
        std::size_t size() const
        { return static_cast<std::size_t>(used_); }
        int capacity() const { return static_cast<int>(lines_.size()); }
        Addr lineAt(int idx) const
        { return lines_[static_cast<std::size_t>(idx)]; }
        Mshr &at(int idx) { return slots_[static_cast<std::size_t>(idx)]; }
        const Mshr &at(int idx) const
        { return slots_[static_cast<std::size_t>(idx)]; }

        /** Claim a free slot for @p line; table must not be full. */
        int
        alloc(Addr line)
        {
            FSOI_ASSERT(line != kFreeLine && !free_.empty());
            const int idx = free_.back();
            free_.pop_back();
            lines_[static_cast<std::size_t>(idx)] = line;
            slots_[static_cast<std::size_t>(idx)] = Mshr{};
            ++used_;
            return idx;
        }

        /** Move the entry out and return the slot to the free list. */
        Mshr
        release(int idx)
        {
            Mshr out = std::move(slots_[static_cast<std::size_t>(idx)]);
            slots_[static_cast<std::size_t>(idx)] = Mshr{};
            lines_[static_cast<std::size_t>(idx)] = kFreeLine;
            free_.push_back(idx);
            --used_;
            return out;
        }

      private:
        std::vector<Addr> lines_;
        std::vector<Mshr> slots_;
        std::vector<int> free_;
        int used_ = 0;
    };

    struct StoreEntry
    {
        Addr addr;
        std::uint64_t value;
    };

    struct OutMsg
    {
        NodeId dst;
        Message msg;
    };

    void queueSend(NodeId dst, const Message &msg);
    void issueRequest(Addr line, Mshr &mshr);
    void scheduleDone(Cycle due, Callback cb, std::uint64_t value,
                      bool success);
    void handleData(const Message &msg, L1State granted);
    void handleExcAck(const Message &msg);
    void handleInv(const Message &msg);
    void handleDwg(const Message &msg);
    void handleNack(const Message &msg);
    void finishMshr(Addr line, L1State granted);

    /** Evict a victim way for @p line; returns slot or nullptr. */
    Line *makeRoom(Addr line);
    bool lineBusy(Addr line) const { return mshrs_.find(line) >= 0; }
    void clearLinkIfCovers(Addr line);
    void performStoreHead();
    void drainStoreBuffer();

    NodeId node_;
    L1Config config_;
    Transport &transport_;
    FunctionalMemory &memory_;
    std::function<NodeId(Addr)> homeOf_;

    CacheArray<LineMeta> array_;
    MshrTable mshrs_;
    std::deque<StoreEntry> storeBuffer_;
    std::deque<OutMsg> outbox_;
    std::vector<Message> deferredData_; //!< fills waiting for a free way

    struct PendingDone
    {
        Cycle due;
        Callback cb;
        std::uint64_t value;
        bool success;
    };
    std::vector<PendingDone> pendingDone_;

    Addr linkLine_ = 0;
    bool linkValid_ = false;

    Cycle now_ = 0;
    L1Stats stats_;
    obs::FlightRecorder *flightRec_ = nullptr;
    std::vector<Addr> retryScratch_; //!< per-tick, sorted NACK retries

  public:
    /**
     * Checkpoint/restore (snapshot/). Completion callbacks are wiring,
     * not data: every pending callback in this controller is the owning
     * core's canonical completion callback, so restore re-binds
     * deserialized entries to @p core_cb instead of serializing
     * closures. MSHRs are written sorted by line address so snapshot
     * bytes never depend on slot-allocation history.
     */
    void saveState(snapshot::Writer &w) const;
    void loadState(snapshot::Reader &r, const Callback &core_cb);
};

} // namespace fsoi::coherence

#endif // FSOI_COHERENCE_L1_CACHE_HH
