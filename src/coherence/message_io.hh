/**
 * @file
 * Snapshot serialization for coherence::Message, shared by the L1,
 * directory, and System checkpoint code. Field-by-field so struct
 * padding never reaches the snapshot hashes.
 */

#ifndef FSOI_COHERENCE_MESSAGE_IO_HH
#define FSOI_COHERENCE_MESSAGE_IO_HH

#include "coherence/message.hh"
#include "snapshot/archive.hh"

namespace fsoi::coherence {

inline void
saveMessage(snapshot::Writer &w, const Message &msg)
{
    w.u8(static_cast<std::uint8_t>(msg.type));
    w.u64(msg.line);
    w.u32(msg.requester);
    w.u64(msg.value);
    w.u64(msg.version);
    w.boolean(msg.success);
    w.boolean(msg.subscribe);
    w.boolean(msg.explicit_ack);
}

inline Message
loadMessage(snapshot::Reader &r)
{
    Message msg{};
    msg.type = static_cast<MsgType>(r.u8());
    msg.line = r.u64();
    msg.requester = r.u32();
    msg.value = r.u64();
    msg.version = r.u64();
    msg.success = r.boolean();
    msg.subscribe = r.boolean();
    msg.explicit_ack = r.boolean();
    return msg;
}

} // namespace fsoi::coherence

#endif // FSOI_COHERENCE_MESSAGE_IO_HH
