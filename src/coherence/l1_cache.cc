#include "coherence/l1_cache.hh"
#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "common/logging.hh"
#include "common/trace.hh"
#include "coherence/message_io.hh"
#include "obs/flight_recorder.hh"
#include "snapshot/state_io.hh"

namespace fsoi::coherence {

const char *
l1StateName(L1State state)
{
    switch (state) {
      case L1State::I: return "I";
      case L1State::S: return "S";
      case L1State::E: return "E";
      case L1State::M: return "M";
    }
    return "?";
}

L1Cache::L1Cache(NodeId node, const L1Config &config, Transport &transport,
                 FunctionalMemory &memory,
                 std::function<NodeId(Addr)> home_of)
    : node_(node), config_(config), transport_(transport), memory_(memory),
      homeOf_(std::move(home_of)), array_(config.geometry)
{
    FSOI_ASSERT(config_.num_mshrs >= 1 && config_.store_buffer >= 1);
    mshrs_.reset(config_.num_mshrs);
}

const char *
L1Cache::wantName(std::uint8_t want)
{
    switch (static_cast<Mshr::Want>(want)) {
      case Mshr::Want::Shared: return "Shared";
      case Mshr::Want::Exclusive: return "Exclusive";
      case Mshr::Want::Upgrade: return "Upgrade";
    }
    return "?";
}

L1State
L1Cache::lineState(Addr addr) const
{
    const auto *line = array_.peek(addr);
    return line ? line->meta.state : L1State::I;
}

void
L1Cache::registerStats(const obs::Scope &scope) const
{
    scope.counter("loads", stats_.loads);
    scope.counter("stores", stats_.stores);
    scope.counter("load_hits", stats_.load_hits);
    scope.counter("store_hits", stats_.store_hits);
    scope.counter("misses", stats_.misses);
    scope.counter("upgrades", stats_.upgrades);
    scope.counter("writebacks", stats_.writebacks);
    scope.counter("invalidations_received",
                  stats_.invalidations_received);
    scope.counter("downgrades_received", stats_.downgrades_received);
    scope.counter("nacks", stats_.nacks);
    scope.counter("sc_failures", stats_.sc_failures);
    scope.counter("accesses", stats_.l1_accesses);
    scope.histogram("miss_latency", stats_.miss_latency);
    scope.derived("miss_rate", [this] {
        const auto accesses =
            stats_.loads.value() + stats_.stores.value();
        return accesses
            ? static_cast<double>(stats_.misses.value()) / accesses
            : 0.0;
    });
}

void
L1Cache::queueSend(NodeId dst, const Message &msg)
{
    outbox_.push_back(OutMsg{dst, msg});
}

void
L1Cache::scheduleDone(Cycle due, Callback cb, std::uint64_t value,
                      bool success)
{
    pendingDone_.push_back(PendingDone{due, std::move(cb), value, success});
}

void
L1Cache::clearLinkIfCovers(Addr line)
{
    if (linkValid_ && linkLine_ == line)
        linkValid_ = false;
}

void
L1Cache::issueRequest(Addr line, Mshr &mshr)
{
    Message msg{};
    msg.line = line;
    msg.requester = node_;
    switch (mshr.want) {
      case Mshr::Want::Shared:
        msg.type = MsgType::ReqSh;
        break;
      case Mshr::Want::Exclusive:
        msg.type = MsgType::ReqEx;
        break;
      case Mshr::Want::Upgrade:
        msg.type = MsgType::ReqUpg;
        break;
    }
    queueSend(homeOf_(line), msg);
    mshr.request_outstanding = true;
    mshr.retry_at = kNoCycle;
    if (mshr.created == 0) {
        mshr.created = now_;
        if (flightRec_ && flightRec_->enabled()) {
            flightRec_->beginTransaction(
                obs::FlightEventKind::MshrAlloc, now_, node_, line,
                static_cast<std::uint8_t>(mshr.want));
        }
    }
}

bool
L1Cache::load(Addr addr, Callback cb)
{
    const Addr line = array_.lineAddr(addr);

    // Store-buffer forwarding (youngest matching entry wins).
    for (auto it = storeBuffer_.rbegin(); it != storeBuffer_.rend(); ++it) {
        if (it->addr == addr) {
            stats_.loads++;
            stats_.l1_accesses++;
            stats_.load_hits++;
            scheduleDone(now_ + config_.hit_latency, std::move(cb),
                         it->value, true);
            return true;
        }
    }

    if (auto *ln = array_.find(addr); ln && ln->meta.state != L1State::I) {
        stats_.loads++;
        stats_.l1_accesses++;
        stats_.load_hits++;
        scheduleDone(now_ + config_.hit_latency, std::move(cb),
                     memory_.read(addr), true);
        return true;
    }

    if (const int idx = mshrs_.find(line); idx >= 0) {
        stats_.loads++;
        stats_.l1_accesses++;
        mshrs_.at(idx).loads.emplace_back(addr, std::move(cb));
        return true;
    }

    if (mshrs_.full())
        return false;

    stats_.loads++;
    stats_.l1_accesses++;
    stats_.misses++;
    Mshr &mshr = mshrs_.at(mshrs_.alloc(line));
    mshr.want = Mshr::Want::Shared;
    mshr.loads.emplace_back(addr, std::move(cb));
    issueRequest(line, mshr);
    return true;
}

bool
L1Cache::loadLinked(Addr addr, Callback cb)
{
    const Addr line = array_.lineAddr(addr);

    if (auto *ln = array_.find(addr); ln && ln->meta.state != L1State::I) {
        stats_.loads++;
        stats_.l1_accesses++;
        stats_.load_hits++;
        linkValid_ = true;
        linkLine_ = line;
        scheduleDone(now_ + config_.hit_latency, std::move(cb),
                     memory_.read(addr), true);
        return true;
    }

    if (const int idx = mshrs_.find(line); idx >= 0) {
        stats_.loads++;
        stats_.l1_accesses++;
        Mshr &mshr = mshrs_.at(idx);
        mshr.is_ll = true;
        mshr.loads.emplace_back(addr, std::move(cb));
        return true;
    }
    if (mshrs_.full())
        return false;

    stats_.loads++;
    stats_.l1_accesses++;
    stats_.misses++;
    Mshr &mshr = mshrs_.at(mshrs_.alloc(line));
    mshr.want = Mshr::Want::Shared;
    mshr.is_ll = true;
    mshr.loads.emplace_back(addr, std::move(cb));
    issueRequest(line, mshr);
    return true;
}

bool
L1Cache::store(Addr addr, std::uint64_t value)
{
    if (storeBuffer_.size() >= static_cast<std::size_t>(config_.store_buffer))
        return false;
    stats_.stores++;
    storeBuffer_.push_back(StoreEntry{addr, value});
    return true;
}

bool
L1Cache::storeConditional(Addr addr, std::uint64_t value, Callback cb)
{
    const Addr line = array_.lineAddr(addr);
    stats_.l1_accesses++;

    if (!linkValid_ || linkLine_ != line) {
        stats_.sc_failures++;
        scheduleDone(now_ + 1, std::move(cb), 0, false);
        return true;
    }

    auto *ln = array_.find(addr);
    if (ln && (ln->meta.state == L1State::M
               || ln->meta.state == L1State::E)) {
        ln->meta.state = L1State::M;
        memory_.write(addr, value);
        stats_.store_hits++;
        scheduleDone(now_ + config_.hit_latency, std::move(cb), value, true);
        return true;
    }
    if (ln && ln->meta.state == L1State::S) {
        const int idx = mshrs_.find(line);
        if (idx < 0) {
            if (mshrs_.full())
                return false;
            Mshr &mshr = mshrs_.at(mshrs_.alloc(line));
            mshr.want = Mshr::Want::Upgrade;
            stats_.upgrades++;
            mshr.is_sc = true;
            mshr.sc_addr = addr;
            mshr.sc_value = value;
            mshr.sc_cb = std::move(cb);
            issueRequest(line, mshr);
        } else {
            Mshr &mshr = mshrs_.at(idx);
            mshr.is_sc = true;
            mshr.sc_addr = addr;
            mshr.sc_value = value;
            mshr.sc_cb = std::move(cb);
        }
        return true;
    }
    // Link register valid but line not readable: treat as failure.
    stats_.sc_failures++;
    linkValid_ = false;
    scheduleDone(now_ + 1, std::move(cb), 0, false);
    return true;
}

L1Cache::Line *
L1Cache::makeRoom(Addr line)
{
    Line *slot = array_.victimIf(line, [this](const Line &candidate) {
        return !lineBusy(candidate.tag);
    });
    if (!slot)
        return nullptr;
    if (slot->valid) {
        if (slot->meta.state == L1State::M) {
            Message wb{};
            wb.type = MsgType::WriteBack;
            wb.line = slot->tag;
            wb.requester = node_;
            queueSend(homeOf_(slot->tag), wb);
            stats_.writebacks++;
        }
        clearLinkIfCovers(slot->tag);
        array_.invalidate(slot);
    }
    return slot;
}

void
L1Cache::performStoreHead()
{
    FSOI_ASSERT(!storeBuffer_.empty());
    const StoreEntry entry = storeBuffer_.front();
    storeBuffer_.pop_front();
    memory_.write(entry.addr, entry.value);
    stats_.store_hits++;
}

void
L1Cache::finishMshr(Addr line, L1State granted)
{
    const int idx = mshrs_.find(line);
    FSOI_ASSERT(idx >= 0);
    Mshr mshr = mshrs_.release(idx);
    stats_.miss_latency.add(static_cast<double>(now_ - mshr.created));
    if (flightRec_ && flightRec_->enabled()) {
        flightRec_->endTransaction(
            obs::FlightEventKind::MshrFree, now_, node_, line,
            static_cast<std::uint8_t>(granted));
    }

    auto *ln = array_.find(line);
    FSOI_ASSERT(ln && ln->valid);
    ln->meta.state = granted;

    const bool writable =
        granted == L1State::E || granted == L1State::M;

    if (mshr.is_ll) {
        linkValid_ = true;
        linkLine_ = line;
    }

    if (mshr.store_pending && writable) {
        // The store-buffer head triggered this miss; complete it now.
        if (!storeBuffer_.empty()
            && array_.lineAddr(storeBuffer_.front().addr) == line) {
            performStoreHead();
            ln->meta.state = L1State::M;
        }
    }

    if (mshr.is_sc) {
        if (writable && linkValid_ && linkLine_ == line) {
            memory_.write(mshr.sc_addr, mshr.sc_value);
            ln->meta.state = L1State::M;
            scheduleDone(now_ + 1, std::move(mshr.sc_cb), mshr.sc_value,
                         true);
        } else {
            stats_.sc_failures++;
            scheduleDone(now_ + 1, std::move(mshr.sc_cb), 0, false);
        }
    }

    for (auto &[addr, cb] : mshr.loads)
        scheduleDone(now_ + 1, std::move(cb), memory_.read(addr), true);

    if (mshr.inv_pending) {
        // Read-once: the invalidation was acknowledged when it
        // arrived; the data has now been consumed exactly once, so
        // drop the line before it can become visibly stale.
        clearLinkIfCovers(line);
        array_.invalidate(ln);
    } else if (mshr.dwg_pending) {
        // Downgrade was acknowledged clean on arrival; demote the
        // freshly granted copy.
        ln->meta.state = L1State::S;
    }
}

void
L1Cache::handleData(const Message &msg, L1State granted)
{
    const Addr line = msg.line;
    const int idx = mshrs_.find(line);
    FSOI_ASSERT(idx >= 0,
                "node %u: data for line %llx without MSHR", node_,
                static_cast<unsigned long long>(line));
    mshrs_.at(idx).request_outstanding = false;

    if (!array_.peek(line)) {
        Line *slot = makeRoom(line);
        if (!slot) {
            // Every way of the set is pinned by an in-flight upgrade;
            // retry the install next cycle.
            deferredData_.push_back(msg);
            return;
        }
        array_.install(slot, line, LineMeta{granted});
    }
    finishMshr(line, granted);
}

void
L1Cache::handleExcAck(const Message &msg)
{
    const Addr line = msg.line;
    const int idx = mshrs_.find(line);
    FSOI_ASSERT(idx >= 0);
    mshrs_.at(idx).request_outstanding = false;
    if (!array_.peek(line)) {
        // Race: our S copy was consumed read-once (an invalidation
        // overtook a regrant) after the directory classified this as
        // an upgrade. The directory now counts us as the owner, so a
        // full Req(Ex) fetches the current L2 copy as DataM (the
        // directory's owner-lost-its-copy path).
        Mshr &mshr = mshrs_.at(idx);
        mshr.want = Mshr::Want::Exclusive;
        mshr.inv_pending = false;
        issueRequest(line, mshr);
        return;
    }
    finishMshr(line, L1State::M);
}

void
L1Cache::handleInv(const Message &msg)
{
    const Addr line = msg.line;
    stats_.invalidations_received++;

    const int idx = mshrs_.find(line);
    auto *ln = array_.find(line);
    FSOI_TRACE_POINT(TraceCat::Coherence, 2, "inv", now_, node_,
                     {"line", line},
                     {"mshr", idx >= 0 ? 1u : 0u},
                     {"state",
                      ln ? static_cast<std::uint64_t>(ln->meta.state) + 1
                         : 0});

    Message ack{};
    ack.line = line;
    ack.requester = node_;
    ack.version = msg.version;

    if (idx >= 0) {
        Mshr &mshr = mshrs_.at(idx);
        if (ln && ln->meta.state == L1State::S
            && mshr.want == Mshr::Want::Upgrade) {
            // Table 2: S.MA + Inv -> InvAck / I.MD. The directory
            // reinterprets our queued upgrade as a full Req(Ex).
            clearLinkIfCovers(line);
            array_.invalidate(ln);
            mshr.want = Mshr::Want::Exclusive;
            if (!config_.confirmation_acks || msg.explicit_ack) {
                ack.type = MsgType::InvAck;
                queueSend(homeOf_(line), ack);
            }
            return;
        }
        // I.SD / I.MD (Table 2): acknowledge immediately -- the
        // request may be parked behind a directory transaction, so the
        // directory must not wait on us. If a data grant is already in
        // flight it will be consumed exactly once and dropped
        // (read-once), so no stale copy ever becomes visible.
        mshr.inv_pending = true;
        clearLinkIfCovers(line);
        if (!config_.confirmation_acks || msg.explicit_ack) {
            ack.type = MsgType::InvAck;
            queueSend(homeOf_(line), ack);
        }
        return;
    }

    if (ln) {
        const L1State state = ln->meta.state;
        clearLinkIfCovers(line);
        array_.invalidate(ln);
        if (state == L1State::M) {
            ack.type = MsgType::InvAckData;
            queueSend(homeOf_(line), ack);
        } else if (state == L1State::E) {
            ack.type = MsgType::InvAck;
            queueSend(homeOf_(line), ack);
        } else if (!config_.confirmation_acks || msg.explicit_ack) {
            ack.type = MsgType::InvAck;
            queueSend(homeOf_(line), ack);
        }
        return;
    }

    // Stale invalidation for a line we no longer hold (Table 2:
    // I + Inv -> InvAck / I).
    if (!config_.confirmation_acks || msg.explicit_ack) {
        ack.type = MsgType::InvAck;
        FSOI_TRACE_POINT(TraceCat::Coherence, 3, "stale_ack", now_,
                         node_, {"line", line}, {"home", homeOf_(line)});
        queueSend(homeOf_(line), ack);
    }
}

void
L1Cache::handleDwg(const Message &msg)
{
    const Addr line = msg.line;
    stats_.downgrades_received++;
    if (traceEnabled(TraceCat::Coherence, 2)) {
        const auto *lnp = array_.peek(line);
        tracer().instant(TraceCat::Coherence, "dwg", now_, node_,
                         {{"line", line},
                          {"mshr", mshrs_.find(line) >= 0 ? 1u : 0u},
                          {"state",
                           lnp ? static_cast<std::uint64_t>(
                                     lnp->meta.state) + 1
                               : 0}});
    }

    Message ack{};
    ack.line = line;
    ack.requester = node_;
    ack.version = msg.version;

    if (const int idx = mshrs_.find(line); idx >= 0) {
        auto *ln = array_.find(line);
        if (!ln) {
            // As with Inv: acknowledge immediately (clean; the L2 copy
            // is current) and downgrade the eventual grant on arrival.
            mshrs_.at(idx).dwg_pending = true;
            ack.type = MsgType::DwgAck;
            queueSend(homeOf_(line), ack);
            return;
        }
        // Upgrade in flight on a present S line: stale downgrade.
        ack.type = MsgType::DwgAck;
        queueSend(homeOf_(line), ack);
        return;
    }

    if (auto *ln = array_.find(line); ln) {
        if (ln->meta.state == L1State::M) {
            ack.type = MsgType::DwgAckData;
            ln->meta.state = L1State::S;
        } else {
            ack.type = MsgType::DwgAck;
            if (ln->meta.state == L1State::E)
                ln->meta.state = L1State::S;
        }
        queueSend(homeOf_(line), ack);
        return;
    }

    ack.type = MsgType::DwgAck;
    queueSend(homeOf_(line), ack);
}

void
L1Cache::handleNack(const Message &msg)
{
    const int idx = mshrs_.find(msg.line);
    if (idx < 0)
        return; // satisfied through another path meanwhile
    stats_.nacks++;
    Mshr &mshr = mshrs_.at(idx);
    mshr.request_outstanding = false;
    mshr.retry_at = now_ + config_.nack_retry_delay;
}

void
L1Cache::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::DataS:
        handleData(msg, L1State::S);
        break;
      case MsgType::DataE:
        handleData(msg, L1State::E);
        break;
      case MsgType::DataM:
        handleData(msg, L1State::M);
        break;
      case MsgType::ExcAck:
        handleExcAck(msg);
        break;
      case MsgType::Inv:
        handleInv(msg);
        break;
      case MsgType::Dwg:
        handleDwg(msg);
        break;
      case MsgType::Nack:
        handleNack(msg);
        break;
      default:
        panic("L1 %u: unexpected message %s", node_,
              msgTypeName(msg.type));
    }
}

void
L1Cache::drainStoreBuffer()
{
    if (storeBuffer_.empty())
        return;
    const StoreEntry &head = storeBuffer_.front();
    const Addr line = array_.lineAddr(head.addr);

    if (const int idx = mshrs_.find(line); idx >= 0) {
        mshrs_.at(idx).store_pending = true;
        return;
    }

    auto *ln = array_.find(head.addr);
    if (ln && ln->meta.state == L1State::M) {
        performStoreHead();
        return;
    }
    if (ln && ln->meta.state == L1State::E) {
        ln->meta.state = L1State::M;
        performStoreHead();
        return;
    }
    if (mshrs_.full())
        return;
    stats_.l1_accesses++;
    Mshr &mshr = mshrs_.at(mshrs_.alloc(line));
    if (ln && ln->meta.state == L1State::S) {
        mshr.want = Mshr::Want::Upgrade;
        stats_.upgrades++;
    } else {
        mshr.want = Mshr::Want::Exclusive;
        stats_.misses++;
    }
    mshr.store_pending = true;
    issueRequest(line, mshr);
}

void
L1Cache::tick(Cycle now)
{
    now_ = now;

    // Fire completed operations.
    {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < pendingDone_.size(); ++i) {
            auto &done = pendingDone_[i];
            if (done.due <= now)
                done.cb(done.value, done.success);
            else
                pendingDone_[keep++] = std::move(done);
        }
        pendingDone_.resize(keep);
    }

    // Retry deferred fills.
    if (!deferredData_.empty()) {
        std::vector<Message> retry;
        retry.swap(deferredData_);
        for (const auto &msg : retry) {
            const L1State granted = msg.type == MsgType::DataS
                ? L1State::S
                : msg.type == MsgType::DataE ? L1State::E : L1State::M;
            handleData(msg, granted);
        }
    }

    // Drain the outbox into the transport.
    while (!outbox_.empty()
           && transport_.trySend(node_, outbox_.front().dst,
                                 outbox_.front().msg)) {
        outbox_.pop_front();
    }

    // NACK retries. Issue in line-address order, not slot order: the
    // outbox order of same-cycle retries is observable downstream, and
    // slot assignment depends on allocation history (a restored table,
    // rebuilt by sorted insertion, would otherwise iterate differently
    // than the uninterrupted run's).
    {
        retryScratch_.clear();
        for (int i = 0; i < mshrs_.capacity(); ++i) {
            if (mshrs_.lineAt(i) == MshrTable::kFreeLine)
                continue;
            const Mshr &mshr = mshrs_.at(i);
            if (mshr.retry_at != kNoCycle && mshr.retry_at <= now
                && !mshr.request_outstanding) {
                retryScratch_.push_back(mshrs_.lineAt(i));
            }
        }
        if (!retryScratch_.empty()) {
            std::sort(retryScratch_.begin(), retryScratch_.end());
            for (const Addr line : retryScratch_)
                issueRequest(line, mshrs_.at(mshrs_.find(line)));
        }
    }

    drainStoreBuffer();
}

void
L1Cache::saveState(snapshot::Writer &w) const
{
    using namespace snapshot;

    const auto &lines = array_.rawLines();
    w.u64(lines.size());
    for (const auto &line : lines) {
        w.u64(line.tag);
        w.boolean(line.valid);
        w.u64(line.lru);
        w.u8(static_cast<std::uint8_t>(line.meta.state));
    }
    w.u64(array_.rawLruClock());

    std::vector<Addr> order;
    order.reserve(mshrs_.size());
    for (int i = 0; i < mshrs_.capacity(); ++i)
        if (mshrs_.lineAt(i) != MshrTable::kFreeLine)
            order.push_back(mshrs_.lineAt(i));
    std::sort(order.begin(), order.end());
    w.u64(order.size());
    for (const Addr line : order) {
        const Mshr &mshr = mshrs_.at(mshrs_.find(line));
        w.u64(line);
        w.u8(static_cast<std::uint8_t>(mshr.want));
        w.u64(mshr.loads.size());
        for (const auto &[addr, cb] : mshr.loads)
            w.u64(addr);
        w.boolean(mshr.store_pending);
        w.boolean(mshr.is_ll);
        w.boolean(mshr.is_sc);
        w.u64(mshr.sc_addr);
        w.u64(mshr.sc_value);
        w.boolean(mshr.inv_pending);
        w.boolean(mshr.dwg_pending);
        w.u64(mshr.retry_at);
        w.boolean(mshr.request_outstanding);
        w.u64(mshr.created);
    }

    w.u64(storeBuffer_.size());
    for (const StoreEntry &entry : storeBuffer_) {
        w.u64(entry.addr);
        w.u64(entry.value);
    }
    w.u64(outbox_.size());
    for (const OutMsg &out : outbox_) {
        w.u32(out.dst);
        saveMessage(w, out.msg);
    }
    w.u64(deferredData_.size());
    for (const Message &msg : deferredData_)
        saveMessage(w, msg);
    w.u64(pendingDone_.size());
    for (const PendingDone &done : pendingDone_) {
        w.u64(done.due);
        w.u64(done.value);
        w.boolean(done.success);
    }

    w.u64(linkLine_);
    w.boolean(linkValid_);
    w.u64(now_);

    saveCounter(w, stats_.loads);
    saveCounter(w, stats_.stores);
    saveCounter(w, stats_.load_hits);
    saveCounter(w, stats_.store_hits);
    saveCounter(w, stats_.misses);
    saveCounter(w, stats_.upgrades);
    saveCounter(w, stats_.writebacks);
    saveCounter(w, stats_.invalidations_received);
    saveCounter(w, stats_.downgrades_received);
    saveCounter(w, stats_.nacks);
    saveCounter(w, stats_.sc_failures);
    saveCounter(w, stats_.l1_accesses);
    saveHistogram(w, stats_.miss_latency);
}

void
L1Cache::loadState(snapshot::Reader &r, const Callback &core_cb)
{
    using namespace snapshot;

    const std::uint64_t num_lines = r.u64();
    std::vector<CacheArray<LineMeta>::Line> lines(num_lines);
    for (auto &line : lines) {
        line.tag = r.u64();
        line.valid = r.boolean();
        line.lru = r.u64();
        line.meta.state = static_cast<L1State>(r.u8());
    }
    const std::uint64_t lru_clock = r.u64();
    array_.rawRestore(std::move(lines), lru_clock);

    mshrs_.reset(config_.num_mshrs);
    const std::uint64_t num_mshrs = r.u64();
    for (std::uint64_t i = 0; i < num_mshrs; ++i) {
        const Addr line = r.u64();
        Mshr &mshr = mshrs_.at(mshrs_.alloc(line));
        mshr.want = static_cast<Mshr::Want>(r.u8());
        const std::uint64_t num_loads = r.u64();
        for (std::uint64_t j = 0; j < num_loads; ++j)
            mshr.loads.emplace_back(r.u64(), core_cb);
        mshr.store_pending = r.boolean();
        mshr.is_ll = r.boolean();
        mshr.is_sc = r.boolean();
        mshr.sc_addr = r.u64();
        mshr.sc_value = r.u64();
        if (mshr.is_sc)
            mshr.sc_cb = core_cb;
        mshr.inv_pending = r.boolean();
        mshr.dwg_pending = r.boolean();
        mshr.retry_at = r.u64();
        mshr.request_outstanding = r.boolean();
        mshr.created = r.u64();
    }

    storeBuffer_.clear();
    const std::uint64_t num_stores = r.u64();
    for (std::uint64_t i = 0; i < num_stores; ++i) {
        StoreEntry entry;
        entry.addr = r.u64();
        entry.value = r.u64();
        storeBuffer_.push_back(entry);
    }
    outbox_.clear();
    const std::uint64_t num_out = r.u64();
    for (std::uint64_t i = 0; i < num_out; ++i) {
        OutMsg out;
        out.dst = r.u32();
        out.msg = loadMessage(r);
        outbox_.push_back(out);
    }
    deferredData_.resize(r.u64());
    for (Message &msg : deferredData_)
        msg = loadMessage(r);
    pendingDone_.clear();
    const std::uint64_t num_done = r.u64();
    for (std::uint64_t i = 0; i < num_done; ++i) {
        PendingDone done;
        done.due = r.u64();
        done.value = r.u64();
        done.success = r.boolean();
        done.cb = core_cb;
        pendingDone_.push_back(std::move(done));
    }

    linkLine_ = r.u64();
    linkValid_ = r.boolean();
    now_ = r.u64();

    loadCounter(r, stats_.loads);
    loadCounter(r, stats_.stores);
    loadCounter(r, stats_.load_hits);
    loadCounter(r, stats_.store_hits);
    loadCounter(r, stats_.misses);
    loadCounter(r, stats_.upgrades);
    loadCounter(r, stats_.writebacks);
    loadCounter(r, stats_.invalidations_received);
    loadCounter(r, stats_.downgrades_received);
    loadCounter(r, stats_.nacks);
    loadCounter(r, stats_.sc_failures);
    loadCounter(r, stats_.l1_accesses);
    loadHistogram(r, stats_.miss_latency);
}

Cycle
L1Cache::nextEventCycle(Cycle now) const
{
    // Deferred installs and queued sends retry every cycle.
    if (!deferredData_.empty() || !outbox_.empty())
        return now + 1;

    Cycle next = kNoCycle;
    for (const PendingDone &done : pendingDone_)
        next = std::min(next, std::max(done.due, now + 1));

    for (int i = 0; i < mshrs_.capacity(); ++i) {
        if (mshrs_.lineAt(i) == MshrTable::kFreeLine)
            continue;
        const Mshr &mshr = mshrs_.at(i);
        if (mshr.retry_at != kNoCycle && !mshr.request_outstanding)
            next = std::min(next, std::max(mshr.retry_at, now + 1));
    }

    if (!storeBuffer_.empty()) {
        // The drain makes tick-driven progress (one head per cycle)
        // except in two delivery-driven waits: the head's miss is in
        // flight and already flagged store_pending (finishMshr or the
        // post-completion drain performs it on the delivery cycle), or
        // every MSHR is taken (the drain unblocks the cycle an MSHR
        // frees, which only happens on a delivery to this L1). A head
        // whose MSHR is not yet flagged must still get one tick so the
        // flag is set before the grant lands.
        const Addr line = array_.lineAddr(storeBuffer_.front().addr);
        const int idx = mshrs_.find(line);
        const bool parked =
            idx >= 0 ? mshrs_.at(idx).store_pending : mshrs_.full();
        if (!parked)
            next = std::min(next, now + 1);
    }
    return next;
}

bool
L1Cache::quiescent() const
{
    return mshrs_.empty() && storeBuffer_.empty() && outbox_.empty()
        && pendingDone_.empty() && deferredData_.empty();
}

} // namespace fsoi::coherence

namespace fsoi::coherence {

void
L1Cache::debugDump() const
{
    std::fprintf(stderr, "L1[%u]: %zu mshrs, %zu stores, %zu outbox, "
                 "%zu pendingDone, %zu deferred\n",
                 node_, mshrs_.size(), storeBuffer_.size(), outbox_.size(),
                 pendingDone_.size(), deferredData_.size());
    for (int i = 0; i < mshrs_.capacity(); ++i) {
        if (mshrs_.lineAt(i) == MshrTable::kFreeLine)
            continue;
        const Addr line = mshrs_.lineAt(i);
        const Mshr &mshr = mshrs_.at(i);
        std::fprintf(stderr,
                     "  mshr line=%llx want=%d outstanding=%d retry_at=%llu"
                     " inv_pend=%d dwg_pend=%d store_pend=%d sc=%d "
                     "loads=%zu\n",
                     (unsigned long long)line, (int)mshr.want,
                     (int)mshr.request_outstanding,
                     (unsigned long long)mshr.retry_at,
                     (int)mshr.inv_pending, (int)mshr.dwg_pending,
                     (int)mshr.store_pending, (int)mshr.is_sc,
                     mshr.loads.size());
    }
}

} // namespace fsoi::coherence
