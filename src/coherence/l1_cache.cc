#include "coherence/l1_cache.hh"
#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "common/logging.hh"
#include "common/trace.hh"
#include "obs/flight_recorder.hh"

namespace fsoi::coherence {

const char *
l1StateName(L1State state)
{
    switch (state) {
      case L1State::I: return "I";
      case L1State::S: return "S";
      case L1State::E: return "E";
      case L1State::M: return "M";
    }
    return "?";
}

L1Cache::L1Cache(NodeId node, const L1Config &config, Transport &transport,
                 FunctionalMemory &memory,
                 std::function<NodeId(Addr)> home_of)
    : node_(node), config_(config), transport_(transport), memory_(memory),
      homeOf_(std::move(home_of)), array_(config.geometry)
{
    FSOI_ASSERT(config_.num_mshrs >= 1 && config_.store_buffer >= 1);
}

const char *
L1Cache::wantName(std::uint8_t want)
{
    switch (static_cast<Mshr::Want>(want)) {
      case Mshr::Want::Shared: return "Shared";
      case Mshr::Want::Exclusive: return "Exclusive";
      case Mshr::Want::Upgrade: return "Upgrade";
    }
    return "?";
}

L1State
L1Cache::lineState(Addr addr) const
{
    const auto *line = array_.peek(addr);
    return line ? line->meta.state : L1State::I;
}

void
L1Cache::registerStats(const obs::Scope &scope) const
{
    scope.counter("loads", stats_.loads);
    scope.counter("stores", stats_.stores);
    scope.counter("load_hits", stats_.load_hits);
    scope.counter("store_hits", stats_.store_hits);
    scope.counter("misses", stats_.misses);
    scope.counter("upgrades", stats_.upgrades);
    scope.counter("writebacks", stats_.writebacks);
    scope.counter("invalidations_received",
                  stats_.invalidations_received);
    scope.counter("downgrades_received", stats_.downgrades_received);
    scope.counter("nacks", stats_.nacks);
    scope.counter("sc_failures", stats_.sc_failures);
    scope.counter("accesses", stats_.l1_accesses);
    scope.histogram("miss_latency", stats_.miss_latency);
    scope.derived("miss_rate", [this] {
        const auto accesses =
            stats_.loads.value() + stats_.stores.value();
        return accesses
            ? static_cast<double>(stats_.misses.value()) / accesses
            : 0.0;
    });
}

void
L1Cache::queueSend(NodeId dst, const Message &msg)
{
    outbox_.push_back(OutMsg{dst, msg});
}

void
L1Cache::scheduleDone(Cycle due, Callback cb, std::uint64_t value,
                      bool success)
{
    pendingDone_.push_back(PendingDone{due, std::move(cb), value, success});
}

void
L1Cache::clearLinkIfCovers(Addr line)
{
    if (linkValid_ && linkLine_ == line)
        linkValid_ = false;
}

void
L1Cache::issueRequest(Addr line, Mshr &mshr)
{
    Message msg{};
    msg.line = line;
    msg.requester = node_;
    switch (mshr.want) {
      case Mshr::Want::Shared:
        msg.type = MsgType::ReqSh;
        break;
      case Mshr::Want::Exclusive:
        msg.type = MsgType::ReqEx;
        break;
      case Mshr::Want::Upgrade:
        msg.type = MsgType::ReqUpg;
        break;
    }
    queueSend(homeOf_(line), msg);
    mshr.request_outstanding = true;
    mshr.retry_at = kNoCycle;
    if (mshr.created == 0) {
        mshr.created = now_;
        if (flightRec_ && flightRec_->enabled()) {
            flightRec_->beginTransaction(
                obs::FlightEventKind::MshrAlloc, now_, node_, line,
                static_cast<std::uint8_t>(mshr.want));
        }
    }
}

bool
L1Cache::load(Addr addr, Callback cb)
{
    const Addr line = array_.lineAddr(addr);

    // Store-buffer forwarding (youngest matching entry wins).
    for (auto it = storeBuffer_.rbegin(); it != storeBuffer_.rend(); ++it) {
        if (it->addr == addr) {
            stats_.loads++;
            stats_.l1_accesses++;
            stats_.load_hits++;
            scheduleDone(now_ + config_.hit_latency, std::move(cb),
                         it->value, true);
            return true;
        }
    }

    if (auto *ln = array_.find(addr); ln && ln->meta.state != L1State::I) {
        stats_.loads++;
        stats_.l1_accesses++;
        stats_.load_hits++;
        scheduleDone(now_ + config_.hit_latency, std::move(cb),
                     memory_.read(addr), true);
        return true;
    }

    if (auto it = mshrs_.find(line); it != mshrs_.end()) {
        stats_.loads++;
        stats_.l1_accesses++;
        it->second.loads.emplace_back(addr, std::move(cb));
        return true;
    }

    if (mshrs_.size() >= static_cast<std::size_t>(config_.num_mshrs))
        return false;

    stats_.loads++;
    stats_.l1_accesses++;
    stats_.misses++;
    Mshr &mshr = mshrs_[line];
    mshr.want = Mshr::Want::Shared;
    mshr.loads.emplace_back(addr, std::move(cb));
    issueRequest(line, mshr);
    return true;
}

bool
L1Cache::loadLinked(Addr addr, Callback cb)
{
    const Addr line = array_.lineAddr(addr);

    if (auto *ln = array_.find(addr); ln && ln->meta.state != L1State::I) {
        stats_.loads++;
        stats_.l1_accesses++;
        stats_.load_hits++;
        linkValid_ = true;
        linkLine_ = line;
        scheduleDone(now_ + config_.hit_latency, std::move(cb),
                     memory_.read(addr), true);
        return true;
    }

    if (auto it = mshrs_.find(line); it != mshrs_.end()) {
        stats_.loads++;
        stats_.l1_accesses++;
        it->second.is_ll = true;
        it->second.loads.emplace_back(addr, std::move(cb));
        return true;
    }
    if (mshrs_.size() >= static_cast<std::size_t>(config_.num_mshrs))
        return false;

    stats_.loads++;
    stats_.l1_accesses++;
    stats_.misses++;
    Mshr &mshr = mshrs_[line];
    mshr.want = Mshr::Want::Shared;
    mshr.is_ll = true;
    mshr.loads.emplace_back(addr, std::move(cb));
    issueRequest(line, mshr);
    return true;
}

bool
L1Cache::store(Addr addr, std::uint64_t value)
{
    if (storeBuffer_.size() >= static_cast<std::size_t>(config_.store_buffer))
        return false;
    stats_.stores++;
    storeBuffer_.push_back(StoreEntry{addr, value});
    return true;
}

bool
L1Cache::storeConditional(Addr addr, std::uint64_t value, Callback cb)
{
    const Addr line = array_.lineAddr(addr);
    stats_.l1_accesses++;

    if (!linkValid_ || linkLine_ != line) {
        stats_.sc_failures++;
        scheduleDone(now_ + 1, std::move(cb), 0, false);
        return true;
    }

    auto *ln = array_.find(addr);
    if (ln && (ln->meta.state == L1State::M
               || ln->meta.state == L1State::E)) {
        ln->meta.state = L1State::M;
        memory_.write(addr, value);
        stats_.store_hits++;
        scheduleDone(now_ + config_.hit_latency, std::move(cb), value, true);
        return true;
    }
    if (ln && ln->meta.state == L1State::S) {
        auto it = mshrs_.find(line);
        if (it == mshrs_.end()) {
            if (mshrs_.size()
                >= static_cast<std::size_t>(config_.num_mshrs))
                return false;
            Mshr &mshr = mshrs_[line];
            mshr.want = Mshr::Want::Upgrade;
            stats_.upgrades++;
            mshr.is_sc = true;
            mshr.sc_addr = addr;
            mshr.sc_value = value;
            mshr.sc_cb = std::move(cb);
            issueRequest(line, mshr);
        } else {
            it->second.is_sc = true;
            it->second.sc_addr = addr;
            it->second.sc_value = value;
            it->second.sc_cb = std::move(cb);
        }
        return true;
    }
    // Link register valid but line not readable: treat as failure.
    stats_.sc_failures++;
    linkValid_ = false;
    scheduleDone(now_ + 1, std::move(cb), 0, false);
    return true;
}

L1Cache::Line *
L1Cache::makeRoom(Addr line)
{
    Line *slot = array_.victimIf(line, [this](const Line &candidate) {
        return !lineBusy(candidate.tag);
    });
    if (!slot)
        return nullptr;
    if (slot->valid) {
        if (slot->meta.state == L1State::M) {
            Message wb{};
            wb.type = MsgType::WriteBack;
            wb.line = slot->tag;
            wb.requester = node_;
            queueSend(homeOf_(slot->tag), wb);
            stats_.writebacks++;
        }
        clearLinkIfCovers(slot->tag);
        array_.invalidate(slot);
    }
    return slot;
}

void
L1Cache::performStoreHead()
{
    FSOI_ASSERT(!storeBuffer_.empty());
    const StoreEntry entry = storeBuffer_.front();
    storeBuffer_.pop_front();
    memory_.write(entry.addr, entry.value);
    stats_.store_hits++;
}

void
L1Cache::finishMshr(Addr line, L1State granted)
{
    auto it = mshrs_.find(line);
    FSOI_ASSERT(it != mshrs_.end());
    Mshr mshr = std::move(it->second);
    mshrs_.erase(it);
    stats_.miss_latency.add(static_cast<double>(now_ - mshr.created));
    if (flightRec_ && flightRec_->enabled()) {
        flightRec_->endTransaction(
            obs::FlightEventKind::MshrFree, now_, node_, line,
            static_cast<std::uint8_t>(granted));
    }

    auto *ln = array_.find(line);
    FSOI_ASSERT(ln && ln->valid);
    ln->meta.state = granted;

    const bool writable =
        granted == L1State::E || granted == L1State::M;

    if (mshr.is_ll) {
        linkValid_ = true;
        linkLine_ = line;
    }

    if (mshr.store_pending && writable) {
        // The store-buffer head triggered this miss; complete it now.
        if (!storeBuffer_.empty()
            && array_.lineAddr(storeBuffer_.front().addr) == line) {
            performStoreHead();
            ln->meta.state = L1State::M;
        }
    }

    if (mshr.is_sc) {
        if (writable && linkValid_ && linkLine_ == line) {
            memory_.write(mshr.sc_addr, mshr.sc_value);
            ln->meta.state = L1State::M;
            scheduleDone(now_ + 1, std::move(mshr.sc_cb), mshr.sc_value,
                         true);
        } else {
            stats_.sc_failures++;
            scheduleDone(now_ + 1, std::move(mshr.sc_cb), 0, false);
        }
    }

    for (auto &[addr, cb] : mshr.loads)
        scheduleDone(now_ + 1, std::move(cb), memory_.read(addr), true);

    if (mshr.inv_pending) {
        // Read-once: the invalidation was acknowledged when it
        // arrived; the data has now been consumed exactly once, so
        // drop the line before it can become visibly stale.
        clearLinkIfCovers(line);
        array_.invalidate(ln);
    } else if (mshr.dwg_pending) {
        // Downgrade was acknowledged clean on arrival; demote the
        // freshly granted copy.
        ln->meta.state = L1State::S;
    }
}

void
L1Cache::handleData(const Message &msg, L1State granted)
{
    const Addr line = msg.line;
    auto it = mshrs_.find(line);
    FSOI_ASSERT(it != mshrs_.end(),
                "node %u: data for line %llx without MSHR", node_,
                static_cast<unsigned long long>(line));
    it->second.request_outstanding = false;

    if (!array_.peek(line)) {
        Line *slot = makeRoom(line);
        if (!slot) {
            // Every way of the set is pinned by an in-flight upgrade;
            // retry the install next cycle.
            deferredData_.push_back(msg);
            return;
        }
        array_.install(slot, line, LineMeta{granted});
    }
    finishMshr(line, granted);
}

void
L1Cache::handleExcAck(const Message &msg)
{
    const Addr line = msg.line;
    auto it = mshrs_.find(line);
    FSOI_ASSERT(it != mshrs_.end());
    it->second.request_outstanding = false;
    if (!array_.peek(line)) {
        // Race: our S copy was consumed read-once (an invalidation
        // overtook a regrant) after the directory classified this as
        // an upgrade. The directory now counts us as the owner, so a
        // full Req(Ex) fetches the current L2 copy as DataM (the
        // directory's owner-lost-its-copy path).
        it->second.want = Mshr::Want::Exclusive;
        it->second.inv_pending = false;
        issueRequest(line, it->second);
        return;
    }
    finishMshr(line, L1State::M);
}

void
L1Cache::handleInv(const Message &msg)
{
    const Addr line = msg.line;
    stats_.invalidations_received++;

    auto it = mshrs_.find(line);
    auto *ln = array_.find(line);
    FSOI_TRACE_POINT(TraceCat::Coherence, 2, "inv", now_, node_,
                     {"line", line},
                     {"mshr", it != mshrs_.end() ? 1u : 0u},
                     {"state",
                      ln ? static_cast<std::uint64_t>(ln->meta.state) + 1
                         : 0});

    Message ack{};
    ack.line = line;
    ack.requester = node_;
    ack.version = msg.version;

    if (it != mshrs_.end()) {
        if (ln && ln->meta.state == L1State::S
            && it->second.want == Mshr::Want::Upgrade) {
            // Table 2: S.MA + Inv -> InvAck / I.MD. The directory
            // reinterprets our queued upgrade as a full Req(Ex).
            clearLinkIfCovers(line);
            array_.invalidate(ln);
            it->second.want = Mshr::Want::Exclusive;
            if (!config_.confirmation_acks || msg.explicit_ack) {
                ack.type = MsgType::InvAck;
                queueSend(homeOf_(line), ack);
            }
            return;
        }
        // I.SD / I.MD (Table 2): acknowledge immediately -- the
        // request may be parked behind a directory transaction, so the
        // directory must not wait on us. If a data grant is already in
        // flight it will be consumed exactly once and dropped
        // (read-once), so no stale copy ever becomes visible.
        it->second.inv_pending = true;
        clearLinkIfCovers(line);
        if (!config_.confirmation_acks || msg.explicit_ack) {
            ack.type = MsgType::InvAck;
            queueSend(homeOf_(line), ack);
        }
        return;
    }

    if (ln) {
        const L1State state = ln->meta.state;
        clearLinkIfCovers(line);
        array_.invalidate(ln);
        if (state == L1State::M) {
            ack.type = MsgType::InvAckData;
            queueSend(homeOf_(line), ack);
        } else if (state == L1State::E) {
            ack.type = MsgType::InvAck;
            queueSend(homeOf_(line), ack);
        } else if (!config_.confirmation_acks || msg.explicit_ack) {
            ack.type = MsgType::InvAck;
            queueSend(homeOf_(line), ack);
        }
        return;
    }

    // Stale invalidation for a line we no longer hold (Table 2:
    // I + Inv -> InvAck / I).
    if (!config_.confirmation_acks || msg.explicit_ack) {
        ack.type = MsgType::InvAck;
        FSOI_TRACE_POINT(TraceCat::Coherence, 3, "stale_ack", now_,
                         node_, {"line", line}, {"home", homeOf_(line)});
        queueSend(homeOf_(line), ack);
    }
}

void
L1Cache::handleDwg(const Message &msg)
{
    const Addr line = msg.line;
    stats_.downgrades_received++;
    if (traceEnabled(TraceCat::Coherence, 2)) {
        const auto *lnp = array_.peek(line);
        tracer().instant(TraceCat::Coherence, "dwg", now_, node_,
                         {{"line", line},
                          {"mshr", mshrs_.count(line) != 0 ? 1u : 0u},
                          {"state",
                           lnp ? static_cast<std::uint64_t>(
                                     lnp->meta.state) + 1
                               : 0}});
    }

    Message ack{};
    ack.line = line;
    ack.requester = node_;
    ack.version = msg.version;

    if (auto it = mshrs_.find(line); it != mshrs_.end()) {
        auto *ln = array_.find(line);
        if (!ln) {
            // As with Inv: acknowledge immediately (clean; the L2 copy
            // is current) and downgrade the eventual grant on arrival.
            it->second.dwg_pending = true;
            ack.type = MsgType::DwgAck;
            queueSend(homeOf_(line), ack);
            return;
        }
        // Upgrade in flight on a present S line: stale downgrade.
        ack.type = MsgType::DwgAck;
        queueSend(homeOf_(line), ack);
        return;
    }

    if (auto *ln = array_.find(line); ln) {
        if (ln->meta.state == L1State::M) {
            ack.type = MsgType::DwgAckData;
            ln->meta.state = L1State::S;
        } else {
            ack.type = MsgType::DwgAck;
            if (ln->meta.state == L1State::E)
                ln->meta.state = L1State::S;
        }
        queueSend(homeOf_(line), ack);
        return;
    }

    ack.type = MsgType::DwgAck;
    queueSend(homeOf_(line), ack);
}

void
L1Cache::handleNack(const Message &msg)
{
    auto it = mshrs_.find(msg.line);
    if (it == mshrs_.end())
        return; // satisfied through another path meanwhile
    stats_.nacks++;
    it->second.request_outstanding = false;
    it->second.retry_at = now_ + config_.nack_retry_delay;
}

void
L1Cache::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::DataS:
        handleData(msg, L1State::S);
        break;
      case MsgType::DataE:
        handleData(msg, L1State::E);
        break;
      case MsgType::DataM:
        handleData(msg, L1State::M);
        break;
      case MsgType::ExcAck:
        handleExcAck(msg);
        break;
      case MsgType::Inv:
        handleInv(msg);
        break;
      case MsgType::Dwg:
        handleDwg(msg);
        break;
      case MsgType::Nack:
        handleNack(msg);
        break;
      default:
        panic("L1 %u: unexpected message %s", node_,
              msgTypeName(msg.type));
    }
}

void
L1Cache::drainStoreBuffer()
{
    if (storeBuffer_.empty())
        return;
    const StoreEntry &head = storeBuffer_.front();
    const Addr line = array_.lineAddr(head.addr);

    if (auto it = mshrs_.find(line); it != mshrs_.end()) {
        it->second.store_pending = true;
        return;
    }

    auto *ln = array_.find(head.addr);
    if (ln && ln->meta.state == L1State::M) {
        performStoreHead();
        return;
    }
    if (ln && ln->meta.state == L1State::E) {
        ln->meta.state = L1State::M;
        performStoreHead();
        return;
    }
    if (mshrs_.size() >= static_cast<std::size_t>(config_.num_mshrs))
        return;
    stats_.l1_accesses++;
    Mshr &mshr = mshrs_[line];
    if (ln && ln->meta.state == L1State::S) {
        mshr.want = Mshr::Want::Upgrade;
        stats_.upgrades++;
    } else {
        mshr.want = Mshr::Want::Exclusive;
        stats_.misses++;
    }
    mshr.store_pending = true;
    issueRequest(line, mshr);
}

void
L1Cache::tick(Cycle now)
{
    now_ = now;

    // Fire completed operations.
    {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < pendingDone_.size(); ++i) {
            auto &done = pendingDone_[i];
            if (done.due <= now)
                done.cb(done.value, done.success);
            else
                pendingDone_[keep++] = std::move(done);
        }
        pendingDone_.resize(keep);
    }

    // Retry deferred fills.
    if (!deferredData_.empty()) {
        std::vector<Message> retry;
        retry.swap(deferredData_);
        for (const auto &msg : retry) {
            const L1State granted = msg.type == MsgType::DataS
                ? L1State::S
                : msg.type == MsgType::DataE ? L1State::E : L1State::M;
            handleData(msg, granted);
        }
    }

    // Drain the outbox into the transport.
    while (!outbox_.empty()
           && transport_.trySend(node_, outbox_.front().dst,
                                 outbox_.front().msg)) {
        outbox_.pop_front();
    }

    // NACK retries.
    for (auto &[line, mshr] : mshrs_) {
        if (mshr.retry_at != kNoCycle && mshr.retry_at <= now
            && !mshr.request_outstanding) {
            issueRequest(line, mshr);
        }
    }

    drainStoreBuffer();
}

bool
L1Cache::quiescent() const
{
    return mshrs_.empty() && storeBuffer_.empty() && outbox_.empty()
        && pendingDone_.empty() && deferredData_.empty();
}

} // namespace fsoi::coherence

namespace fsoi::coherence {

void
L1Cache::debugDump() const
{
    std::fprintf(stderr, "L1[%u]: %zu mshrs, %zu stores, %zu outbox, "
                 "%zu pendingDone, %zu deferred\n",
                 node_, mshrs_.size(), storeBuffer_.size(), outbox_.size(),
                 pendingDone_.size(), deferredData_.size());
    for (const auto &[line, mshr] : mshrs_) {
        std::fprintf(stderr,
                     "  mshr line=%llx want=%d outstanding=%d retry_at=%llu"
                     " inv_pend=%d dwg_pend=%d store_pend=%d sc=%d "
                     "loads=%zu\n",
                     (unsigned long long)line, (int)mshr.want,
                     (int)mshr.request_outstanding,
                     (unsigned long long)mshr.retry_at,
                     (int)mshr.inv_pending, (int)mshr.dwg_pending,
                     (int)mshr.store_pending, (int)mshr.is_sc,
                     mshr.loads.size());
    }
}

} // namespace fsoi::coherence
