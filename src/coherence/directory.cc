#include "coherence/directory.hh"
#include <cstdio>
#include <cstdlib>

#include <bit>

#include <algorithm>

#include "common/logging.hh"
#include "common/trace.hh"
#include "coherence/message_io.hh"
#include "obs/flight_recorder.hh"
#include "snapshot/state_io.hh"

namespace fsoi::coherence {

const char *
dirStateName(DirState state)
{
    switch (state) {
      case DirState::DI: return "DI";
      case DirState::DV: return "DV";
      case DirState::DS: return "DS";
      case DirState::DM: return "DM";
    }
    return "?";
}

Directory::Directory(NodeId node, const DirConfig &config,
                     Transport &transport, FunctionalMemory &memory,
                     std::function<NodeId(Addr)> memctl_of)
    : node_(node), config_(config), transport_(transport), memory_(memory),
      memctlOf_(std::move(memctl_of)), array_(config.geometry)
{
    FSOI_ASSERT(config_.ports >= 1 && config_.request_queue >= 1);
}

DirState
Directory::lineState(Addr addr) const
{
    const auto *line = array_.peek(addr);
    return line ? line->meta.state : DirState::DI;
}

std::uint64_t
Directory::sharersOf(Addr addr) const
{
    const auto *line = array_.peek(addr);
    return line ? line->meta.sharers : 0;
}

void
Directory::registerStats(const obs::Scope &scope) const
{
    scope.counter("requests", stats_.requests);
    scope.counter("nacks_sent", stats_.nacks_sent);
    scope.counter("invalidations_sent", stats_.invalidations_sent);
    scope.counter("downgrades_sent", stats_.downgrades_sent);
    scope.counter("mem_reads", stats_.mem_reads);
    scope.counter("mem_writes", stats_.mem_writes);
    scope.counter("l2_evictions", stats_.l2_evictions);
    scope.counter("stale_acks_dropped", stats_.stale_acks_dropped);
    scope.counter("late_writebacks_merged", stats_.late_writebacks_merged);
    scope.counter("sync_updates", stats_.sync_updates);
    scope.counter("l2_accesses", stats_.l2_accesses);
}

std::uint64_t
Directory::packSyncTag(Addr word, std::uint64_t value, bool success,
                       bool direct)
{
    return ((word >> 3) << 18) | ((value & 0xffff) << 2)
        | (success ? 2u : 0u) | (direct ? 1u : 0u);
}

void
Directory::unpackSyncTag(std::uint64_t tag, Addr &word,
                         std::uint64_t &value, bool &success, bool &direct)
{
    direct = tag & 1;
    success = tag & 2;
    value = (tag >> 2) & 0xffff;
    word = (tag >> 18) << 3;
}

const char *
Directory::txnKindName(std::uint8_t kind)
{
    switch (static_cast<Txn::Kind>(kind)) {
      case Txn::Kind::FetchSh: return "FetchSh";
      case Txn::Kind::FetchEx: return "FetchEx";
      case Txn::Kind::InvForEx: return "InvForEx";
      case Txn::Kind::DwgForSh: return "DwgForSh";
      case Txn::Kind::InvForOwn: return "InvForOwn";
      case Txn::Kind::EvictShared: return "EvictShared";
      case Txn::Kind::EvictOwned: return "EvictOwned";
      case Txn::Kind::AwaitWriteBack: return "AwaitWriteBack";
      case Txn::Kind::GrantWait: return "GrantWait";
    }
    return "?";
}

void
Directory::openTxn(Addr line_addr, Txn txn)
{
    if (flightRec_ && flightRec_->enabled()) {
        flightRec_->beginTransaction(
            obs::FlightEventKind::DirTxnStart, now_, node_, line_addr,
            static_cast<std::uint8_t>(txn.kind));
    }
    const int idx = txns_.find(line_addr);
    txns_.at(idx >= 0 ? idx : txns_.alloc(line_addr)) = std::move(txn);
}

void
Directory::closeTxn(int idx)
{
    if (flightRec_ && flightRec_->enabled()) {
        flightRec_->endTransaction(
            obs::FlightEventKind::DirTxnEnd, now_, node_,
            txns_.lineAt(idx),
            static_cast<std::uint8_t>(txns_.at(idx).kind));
    }
    txns_.release(idx);
}

void
Directory::queueSend(NodeId dst, const Message &msg, int latency)
{
    outbox_.push_back(OutMsg{now_ + static_cast<Cycle>(latency), dst, msg});
}

void
Directory::sendNack(const Message &msg)
{
    Message nack{};
    nack.type = MsgType::Nack;
    nack.line = msg.line;
    nack.requester = msg.requester;
    stats_.nacks_sent++;
    queueSend(msg.requester, nack, config_.ctrl_latency);
}

void
Directory::handleMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::ReqSh:
      case MsgType::ReqEx:
      case MsgType::ReqUpg:
      case MsgType::SyncLl:
      case MsgType::SyncSc:
        if (inQueue_.size()
            >= static_cast<std::size_t>(config_.request_queue)) {
            sendNack(msg);
            return;
        }
        break;
      default:
        break; // acknowledgments, data and fills are always accepted
    }
    if (msg.type == MsgType::InvAck || msg.type == MsgType::InvAckData)
        FSOI_TRACE_POINT(TraceCat::Coherence, 3, "enq_invack", now_,
                         node_, {"line", msg.line},
                         {"queue", inQueue_.size()});
    inQueue_.push_back(msg);
}

void
Directory::dispatch(const Message &msg)
{
    switch (msg.type) {
      case MsgType::ReqSh:
      case MsgType::ReqEx:
      case MsgType::ReqUpg:
        stats_.requests++;
        FSOI_TRACE_POINT(TraceCat::Coherence, 1, "req", now_, node_,
                         {"line", msg.line},
                         {"from", msg.requester},
                         {"type", static_cast<std::uint64_t>(msg.type)});
        if (const int idx = txns_.find(msg.line); idx >= 0) {
            // Table 2 "z": the line is busy; park the request.
            Txn &txn = txns_.at(idx);
            if (txn.pending.size()
                >= static_cast<std::size_t>(config_.pending_per_line)) {
                sendNack(msg);
            } else {
                txn.pending.push_back(msg);
            }
            return;
        }
        processRequest(msg);
        return;
      case MsgType::SyncLl:
      case MsgType::SyncSc:
        handleSync(msg);
        return;
      case MsgType::WriteBack:
        handleWriteBack(msg);
        return;
      case MsgType::InvAck:
        handleInvAck(msg, false);
        return;
      case MsgType::InvAckData:
        handleInvAck(msg, true);
        return;
      case MsgType::DwgAck:
        handleDwgAck(msg, false);
        return;
      case MsgType::DwgAckData:
        handleDwgAck(msg, true);
        return;
      case MsgType::MemReply:
        handleMemReply(msg);
        return;
      default:
        panic("directory %u: unexpected message %s", node_,
              msgTypeName(msg.type));
    }
}

void
Directory::grantAndComplete(Addr line_addr, NodeId dst, MsgType type,
                            std::deque<Message> pending)
{
    Message grant{};
    grant.type = type;
    grant.line = line_addr;
    grant.requester = dst;
    const bool tag_only =
        type == MsgType::ExcAck || type == MsgType::Nack;
    if (!tag_only)
        stats_.l2_accesses++;
    FSOI_TRACE_POINT(TraceCat::Coherence, 1, "grant", now_, node_,
                     {"line", line_addr}, {"to", dst},
                     {"type", static_cast<std::uint64_t>(type)});
    queueSend(dst, grant,
              tag_only ? config_.ctrl_latency : config_.l2_latency);

    if (config_.confirmation_gating && dst != node_) {
        Txn txn{};
        txn.kind = Txn::Kind::GrantWait;
        txn.requester = dst;
        txn.grant_type = type;
        txn.pending = std::move(pending);
        openTxn(line_addr, std::move(txn));
        return;
    }
    drainPending(line_addr, std::move(pending));
}

void
Directory::drainPending(Addr line_addr, std::deque<Message> pending)
{
    while (!pending.empty()) {
        Message msg = std::move(pending.front());
        pending.pop_front();
        processRequest(msg);
        if (const int idx = txns_.find(line_addr); idx >= 0) {
            // The request re-busied the line; re-park the rest.
            Txn &txn = txns_.at(idx);
            for (auto &rest : pending)
                txn.pending.push_back(std::move(rest));
            return;
        }
    }
}

void
Directory::processRequest(const Message &msg)
{
    const Addr line_addr = msg.line;
    const NodeId req = msg.requester;
    Line *ln = array_.find(line_addr);
    const bool wants_write =
        msg.type == MsgType::ReqEx || msg.type == MsgType::ReqUpg;

    if (!ln) {
        // DI: fetch the line from memory.
        Txn txn{};
        txn.kind = wants_write ? Txn::Kind::FetchEx : Txn::Kind::FetchSh;
        txn.requester = req;
        openTxn(line_addr, std::move(txn));
        Message fetch{};
        fetch.type = MsgType::MemRead;
        fetch.line = line_addr;
        fetch.requester = node_;
        stats_.mem_reads++;
        queueSend(memctlOf_(line_addr), fetch, config_.ctrl_latency);
        return;
    }

    switch (ln->meta.state) {
      case DirState::DV:
        ln->meta.state = DirState::DM;
        ln->meta.owner = req;
        ln->meta.sharers = 0;
        grantAndComplete(line_addr, req,
                         wants_write ? MsgType::DataM : MsgType::DataE,
                         {});
        return;

      case DirState::DS: {
        if (!wants_write) {
            ln->meta.sharers |= bit(req);
            grantAndComplete(line_addr, req, MsgType::DataS, {});
            return;
        }
        const bool was_sharer = ln->meta.sharers & bit(req);
        ln->meta.sharers &= ~bit(req);
        // An upgrade from a node that silently dropped its S copy is
        // reinterpreted as a full Req(Ex) (Table 2's "(Req(Ex))").
        const bool upgrade =
            was_sharer && msg.type == MsgType::ReqUpg;
        if (ln->meta.sharers == 0) {
            ln->meta.state = DirState::DM;
            ln->meta.owner = req;
            grantAndComplete(line_addr, req,
                             upgrade ? MsgType::ExcAck : MsgType::DataM,
                             {});
            return;
        }
        Txn txn{};
        txn.kind = Txn::Kind::InvForEx;
        txn.requester = req;
        txn.upgrade = upgrade;
        txn.acks_pending = std::popcount(ln->meta.sharers);
        txn.epoch = ++epochCounter_;
        Message inv{};
        inv.type = MsgType::Inv;
        inv.line = line_addr;
        inv.requester = req;
        inv.version = txn.epoch;
        FSOI_TRACE_POINT(TraceCat::Coherence, 2, "inv_for_ex", now_,
                         node_, {"line", line_addr}, {"req", req},
                         {"sharers", ln->meta.sharers});
        for (NodeId n = 0; n < 64; ++n) {
            if (ln->meta.sharers & bit(n)) {
                stats_.invalidations_sent++;
                // Local delivery bypasses the optical layer, so no
                // confirmation will fire: demand an explicit ack.
                inv.explicit_ack = n == node_;
                queueSend(n, inv, config_.ctrl_latency);
            }
        }
        openTxn(line_addr, std::move(txn));
        return;
      }

      case DirState::DM: {
        const NodeId owner = ln->meta.owner;
        if (owner == req) {
            // The owner lost its copy (silent E eviction, or an M
            // writeback still in flight) and re-requests: serve from
            // the L2 copy; a late writeback merges harmlessly.
            grantAndComplete(line_addr, req,
                             wants_write ? MsgType::DataM : MsgType::DataE,
                             {});
            return;
        }
        Txn txn{};
        txn.requester = req;
        txn.epoch = ++epochCounter_;
        Message demand{};
        demand.line = line_addr;
        demand.requester = req;
        demand.version = txn.epoch;
        if (wants_write) {
            txn.kind = Txn::Kind::InvForOwn;
            demand.type = MsgType::Inv;
            demand.explicit_ack = true;
            stats_.invalidations_sent++;
            FSOI_TRACE_POINT(TraceCat::Coherence, 2, "inv_for_own", now_,
                             node_, {"line", line_addr}, {"owner", owner},
                             {"req", req});
        } else {
            txn.kind = Txn::Kind::DwgForSh;
            demand.type = MsgType::Dwg;
            stats_.downgrades_sent++;
            FSOI_TRACE_POINT(TraceCat::Coherence, 2, "dwg_for_sh", now_,
                             node_, {"line", line_addr}, {"owner", owner},
                             {"req", req});
        }
        queueSend(owner, demand, config_.ctrl_latency);
        openTxn(line_addr, std::move(txn));
        return;
      }

      case DirState::DI:
        panic("directory %u: resident line in DI", node_);
    }
}

void
Directory::evictLine(Line *ln)
{
    stats_.l2_evictions++;
    if (ln->meta.dirty) {
        Message wb{};
        wb.type = MsgType::MemWrite;
        wb.line = ln->tag;
        wb.requester = node_;
        stats_.mem_writes++;
        queueSend(memctlOf_(ln->tag), wb, config_.l2_latency);
    }
    array_.invalidate(ln);
}

Directory::Line *
Directory::makeRoomL2(Addr line_addr)
{
    // Prefer an invalid way, then a DV way (synchronous eviction).
    Line *slot = array_.victimIf(line_addr, [this](const Line &cand) {
        return cand.meta.state == DirState::DV
            && !txns_.contains(cand.tag);
    });
    if (slot) {
        if (slot->valid)
            evictLine(slot);
        return slot;
    }
    // Fall back to tearing down a shared or owned line -- but at most
    // one eviction per set at a time, or retried deferred fills would
    // tear the whole set down.
    bool eviction_in_progress = false;
    array_.forEachInSet(line_addr, [&](const Line &cand) {
        const int tidx = txns_.find(cand.tag);
        if (tidx >= 0
            && (txns_.at(tidx).kind == Txn::Kind::EvictShared
                || txns_.at(tidx).kind == Txn::Kind::EvictOwned)) {
            eviction_in_progress = true;
        }
    });
    if (eviction_in_progress)
        return nullptr;
    slot = array_.victimIf(line_addr, [this](const Line &cand) {
        return !txns_.contains(cand.tag);
    });
    if (!slot)
        return nullptr; // every way busy; caller defers
    FSOI_ASSERT(slot->valid);
    Txn txn{};
    txn.epoch = ++epochCounter_;
    Message demand{};
    demand.line = slot->tag;
    demand.requester = node_;
    demand.version = txn.epoch;
    if (slot->meta.state == DirState::DS) {
        txn.kind = Txn::Kind::EvictShared;
        txn.acks_pending = std::popcount(slot->meta.sharers);
        demand.type = MsgType::Inv;
        for (NodeId n = 0; n < 64; ++n) {
            if (slot->meta.sharers & bit(n)) {
                stats_.invalidations_sent++;
                demand.explicit_ack = n == node_;
                queueSend(n, demand, config_.ctrl_latency);
            }
        }
    } else {
        FSOI_ASSERT(slot->meta.state == DirState::DM);
        txn.kind = Txn::Kind::EvictOwned;
        txn.acks_pending = 1;
        demand.type = MsgType::Inv;
        demand.explicit_ack = true;
        stats_.invalidations_sent++;
        FSOI_TRACE_POINT(TraceCat::Coherence, 2, "evict_owned", now_,
                         node_, {"line", slot->tag},
                         {"owner", slot->meta.owner});
        queueSend(slot->meta.owner, demand, config_.ctrl_latency);
    }
    openTxn(slot->tag, std::move(txn));
    return nullptr;
}

void
Directory::handleWriteBack(const Message &msg)
{
    const Addr line_addr = msg.line;
    Line *ln = array_.find(line_addr);

    if (const int idx = txns_.find(line_addr); idx >= 0) {
        Txn &txn = txns_.at(idx);
        switch (txn.kind) {
          case Txn::Kind::DwgForSh: {
            // The owner evicted instead of downgrading: the requester
            // gets an exclusive-clean copy straight from L2.
            FSOI_ASSERT(ln);
            ln->meta.dirty = true;
            ln->meta.state = DirState::DM;
            ln->meta.owner = txn.requester;
            ln->meta.sharers = 0;
            const NodeId req = txn.requester;
            auto pending = std::move(txn.pending);
            closeTxn(idx);
            grantAndComplete(line_addr, req, MsgType::DataE,
                             std::move(pending));
            return;
          }
          case Txn::Kind::InvForOwn: {
            FSOI_ASSERT(ln);
            ln->meta.dirty = true;
            ln->meta.state = DirState::DM;
            ln->meta.owner = txn.requester;
            ln->meta.sharers = 0;
            const NodeId req = txn.requester;
            auto pending = std::move(txn.pending);
            closeTxn(idx);
            grantAndComplete(line_addr, req, MsgType::DataM,
                             std::move(pending));
            return;
          }
          case Txn::Kind::EvictOwned: {
            FSOI_ASSERT(ln);
            ln->meta.dirty = true;
            auto pending = std::move(txn.pending);
            closeTxn(idx);
            evictLine(ln);
            drainPending(line_addr, std::move(pending));
            return;
          }
          case Txn::Kind::AwaitWriteBack: {
            FSOI_ASSERT(ln);
            ln->meta.dirty = true;
            ln->meta.state = DirState::DV;
            ln->meta.owner = kInvalidNode;
            auto pending = std::move(txn.pending);
            closeTxn(idx);
            drainPending(line_addr, std::move(pending));
            return;
          }
          default:
            // Late writeback racing a newer transaction: merge data.
            if (ln)
                ln->meta.dirty = true;
            stats_.late_writebacks_merged++;
            return;
        }
    }

    if (ln && ln->meta.state == DirState::DM
        && ln->meta.owner == msg.requester) {
        stats_.l2_accesses++;
        ln->meta.dirty = true;
        ln->meta.state = DirState::DV;
        ln->meta.owner = kInvalidNode;
        ln->meta.sharers = 0;
        return;
    }
    // Stale writeback from a previous owner: merge.
    if (ln)
        ln->meta.dirty = true;
    stats_.late_writebacks_merged++;
}

void
Directory::handleInvAck(const Message &msg, bool with_data)
{
    const Addr line_addr = msg.line;
    const int idx = txns_.find(line_addr);
    FSOI_TRACE_POINT(TraceCat::Coherence, 3, "invack", now_, node_,
                     {"line", line_addr}, {"from", msg.requester},
                     {"data", with_data ? 1u : 0u});
    if (idx < 0) {
        FSOI_TRACE_POINT(TraceCat::Coherence, 3, "stale_invack", now_,
                         node_, {"line", line_addr});
        stats_.stale_acks_dropped++;
        return;
    }
    Txn &txn = txns_.at(idx);
    if (msg.version != txn.epoch) {
        stats_.stale_acks_dropped++;
        return;
    }
    Line *ln = array_.find(line_addr);

    switch (txn.kind) {
      case Txn::Kind::InvForEx: {
        FSOI_ASSERT(ln);
        if (with_data)
            ln->meta.dirty = true;
        if (--txn.acks_pending > 0)
            return;
        ln->meta.state = DirState::DM;
        ln->meta.owner = txn.requester;
        ln->meta.sharers = 0;
        const NodeId req = txn.requester;
        const bool upgrade = txn.upgrade;
        auto pending = std::move(txn.pending);
        closeTxn(idx);
        grantAndComplete(line_addr, req,
                         upgrade ? MsgType::ExcAck : MsgType::DataM,
                         std::move(pending));
        return;
      }
      case Txn::Kind::InvForOwn: {
        FSOI_ASSERT(ln);
        if (with_data)
            ln->meta.dirty = true;
        ln->meta.state = DirState::DM;
        ln->meta.owner = txn.requester;
        ln->meta.sharers = 0;
        const NodeId req = txn.requester;
        auto pending = std::move(txn.pending);
        closeTxn(idx);
        grantAndComplete(line_addr, req, MsgType::DataM,
                         std::move(pending));
        return;
      }
      case Txn::Kind::EvictShared:
      case Txn::Kind::EvictOwned: {
        FSOI_ASSERT(ln);
        if (with_data)
            ln->meta.dirty = true;
        if (--txn.acks_pending > 0)
            return;
        auto pending = std::move(txn.pending);
        closeTxn(idx);
        evictLine(ln);
        drainPending(line_addr, std::move(pending));
        return;
      }
      default:
        stats_.stale_acks_dropped++;
        return;
    }
}

void
Directory::handleDwgAck(const Message &msg, bool with_data)
{
    const Addr line_addr = msg.line;
    const int idx = txns_.find(line_addr);
    FSOI_TRACE_POINT(TraceCat::Coherence, 3, "dwgack", now_, node_,
                     {"line", line_addr},
                     {"data", with_data ? 1u : 0u});
    if (idx < 0 || txns_.at(idx).kind != Txn::Kind::DwgForSh) {
        stats_.stale_acks_dropped++;
        return;
    }
    Txn &txn = txns_.at(idx);
    if (msg.version != txn.epoch) {
        stats_.stale_acks_dropped++;
        return;
    }
    Line *ln = array_.find(line_addr);
    FSOI_ASSERT(ln);
    if (with_data)
        ln->meta.dirty = true;
    const NodeId old_owner = ln->meta.owner;
    ln->meta.state = DirState::DS;
    ln->meta.owner = kInvalidNode;
    ln->meta.sharers = bit(old_owner) | bit(txn.requester);
    const NodeId req = txn.requester;
    auto pending = std::move(txn.pending);
    closeTxn(idx);
    grantAndComplete(line_addr, req, MsgType::DataS, std::move(pending));
}

void
Directory::handleMemReply(const Message &msg)
{
    const Addr line_addr = msg.line;
    const int idx = txns_.find(line_addr);
    FSOI_ASSERT(idx >= 0,
                "directory %u: memory reply without transaction", node_);
    Txn &txn = txns_.at(idx);
    const auto kind = txn.kind;
    FSOI_ASSERT(kind == Txn::Kind::FetchSh || kind == Txn::Kind::FetchEx);

    if (!array_.peek(line_addr)) {
        Line *slot = makeRoomL2(line_addr);
        if (!slot) {
            deferredFills_.push_back(msg);
            return;
        }
        DirMeta meta{};
        meta.state = DirState::DM;
        meta.owner = txn.requester;
        meta.dirty = false;
        array_.install(slot, line_addr, meta);
        stats_.l2_accesses++;
    }
    const NodeId req = txn.requester;
    const MsgType grant =
        kind == Txn::Kind::FetchSh ? MsgType::DataE : MsgType::DataM;
    auto pending = std::move(txn.pending);
    closeTxn(idx);
    grantAndComplete(line_addr, req, grant, std::move(pending));
}

void
Directory::notifySubscribers(Addr word, SyncVar &var, NodeId except)
{
    FSOI_ASSERT(controlBitSender_ != nullptr);
    for (NodeId n = 0; n < 64; ++n) {
        if ((var.subscribers & bit(n)) && n != except) {
            stats_.sync_updates++;
            controlBitSender_(n,
                              packSyncTag(word, var.value, true, false));
        }
    }
}

void
Directory::handleSync(const Message &msg)
{
    FSOI_ASSERT(config_.sync_subscription,
                "sync message without subscription support");
    FSOI_ASSERT(controlBitSender_ != nullptr,
                "sync subscription requires the FSOI side channel");
    const Addr word = msg.line;
    auto [it, inserted] = syncVars_.try_emplace(word);
    SyncVar &var = it->second;
    if (inserted)
        var.value = memory_.read(word);

    if (msg.type == MsgType::SyncLl) {
        if (msg.subscribe)
            var.subscribers |= bit(msg.requester);
        syncLinks_[msg.requester] = {word, var.version};
        controlBitSender_(msg.requester,
                          packSyncTag(word, var.value, true, true));
        return;
    }

    // SyncSc: msg.success doubles as the "unconditional" flag.
    const bool unconditional = msg.success;
    bool ok = unconditional;
    if (!unconditional) {
        const auto link = syncLinks_.find(msg.requester);
        ok = link != syncLinks_.end() && link->second.first == word
            && link->second.second == var.version;
    }
    if (ok) {
        var.value = msg.value;
        var.version++;
        memory_.write(word, msg.value);
        notifySubscribers(word, var, msg.requester);
    }
    controlBitSender_(msg.requester,
                      packSyncTag(word, var.value, ok, true));
}

void
Directory::onConfirm(const Message &msg)
{
    const int idx = txns_.find(msg.line);
    if (idx < 0)
        return;
    Txn &txn = txns_.at(idx);

    if (txn.kind == Txn::Kind::GrantWait) {
        if (msg.type == txn.grant_type) {
            auto pending = std::move(txn.pending);
            closeTxn(idx);
            drainPending(msg.line, std::move(pending));
        }
        return;
    }

    if (config_.confirmation_acks && msg.type == MsgType::Inv
        && (txn.kind == Txn::Kind::InvForEx
            || txn.kind == Txn::Kind::EvictShared)) {
        // Section 5.1: the optical confirmation of Inv delivery is the
        // sharer's commitment; no InvAck packet will come.
        Message synthetic{};
        synthetic.type = MsgType::InvAck;
        synthetic.line = msg.line;
        synthetic.requester = msg.requester;
        synthetic.version = msg.version;
        handleInvAck(synthetic, false);
    }
}

void
Directory::tick(Cycle now)
{
    now_ = now;

    // Drain the outbox (entries become visible after their pipeline
    // latency; the transport may refuse when queues are full).
    {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < outbox_.size(); ++i) {
            auto &out = outbox_[i];
            if (out.ready_at <= now
                && transport_.trySend(node_, out.dst, out.msg)) {
                continue;
            }
            outbox_[keep++] = std::move(out);
        }
        outbox_.resize(keep);
    }

    // Retry deferred fills (ways may have freed).
    if (!deferredFills_.empty()) {
        std::vector<Message> retry;
        retry.swap(deferredFills_);
        for (const auto &msg : retry)
            handleMemReply(msg);
    }

    for (int p = 0; p < config_.ports && !inQueue_.empty(); ++p) {
        Message msg = std::move(inQueue_.front());
        inQueue_.pop_front();
        if (msg.type == MsgType::InvAck || msg.type == MsgType::InvAckData)
            FSOI_TRACE_POINT(TraceCat::Coherence, 3, "deq_invack", now_,
                             node_, {"line", msg.line});
        dispatch(msg);
    }
}

bool
Directory::quiescent() const
{
    return inQueue_.empty() && outbox_.empty() && txns_.empty()
        && deferredFills_.empty();
}

void
Directory::saveState(snapshot::Writer &w) const
{
    using namespace snapshot;

    const auto &lines = array_.rawLines();
    w.u64(lines.size());
    for (const auto &line : lines) {
        w.u64(line.tag);
        w.boolean(line.valid);
        w.u64(line.lru);
        w.u8(static_cast<std::uint8_t>(line.meta.state));
        w.u64(line.meta.sharers);
        w.u32(line.meta.owner);
        w.boolean(line.meta.dirty);
    }
    w.u64(array_.rawLruClock());

    std::vector<Addr> order;
    order.reserve(txns_.size());
    for (int i = 0; i < txns_.capacity(); ++i)
        if (txns_.lineAt(i) != TxnTable::kFreeLine)
            order.push_back(txns_.lineAt(i));
    std::sort(order.begin(), order.end());
    w.u64(order.size());
    for (const Addr line : order) {
        const Txn &txn = txns_.at(txns_.find(line));
        w.u64(line);
        w.u8(static_cast<std::uint8_t>(txn.kind));
        w.u32(txn.requester);
        w.boolean(txn.upgrade);
        w.i32(txn.acks_pending);
        w.u64(txn.epoch);
        w.u8(static_cast<std::uint8_t>(txn.grant_type));
        w.u64(txn.pending.size());
        for (const Message &msg : txn.pending)
            saveMessage(w, msg);
    }
    w.u64(epochCounter_);

    w.u64(inQueue_.size());
    for (const Message &msg : inQueue_)
        saveMessage(w, msg);
    w.u64(outbox_.size());
    for (const OutMsg &out : outbox_) {
        w.u64(out.ready_at);
        w.u32(out.dst);
        saveMessage(w, out.msg);
    }
    w.u64(deferredFills_.size());
    for (const Message &msg : deferredFills_)
        saveMessage(w, msg);

    std::vector<Addr> words;
    words.reserve(syncVars_.size());
    for (const auto &[word, var] : syncVars_)
        words.push_back(word);
    std::sort(words.begin(), words.end());
    w.u64(words.size());
    for (const Addr word : words) {
        const SyncVar &var = syncVars_.at(word);
        w.u64(word);
        w.u64(var.value);
        w.u64(var.version);
        w.u64(var.subscribers);
    }
    std::vector<NodeId> nodes;
    nodes.reserve(syncLinks_.size());
    for (const auto &[n, link] : syncLinks_)
        nodes.push_back(n);
    std::sort(nodes.begin(), nodes.end());
    w.u64(nodes.size());
    for (const NodeId n : nodes) {
        const auto &[word, version] = syncLinks_.at(n);
        w.u32(n);
        w.u64(word);
        w.u64(version);
    }

    w.u64(now_);
    saveCounter(w, stats_.requests);
    saveCounter(w, stats_.nacks_sent);
    saveCounter(w, stats_.invalidations_sent);
    saveCounter(w, stats_.downgrades_sent);
    saveCounter(w, stats_.mem_reads);
    saveCounter(w, stats_.mem_writes);
    saveCounter(w, stats_.l2_evictions);
    saveCounter(w, stats_.stale_acks_dropped);
    saveCounter(w, stats_.late_writebacks_merged);
    saveCounter(w, stats_.sync_updates);
    saveCounter(w, stats_.l2_accesses);
}

void
Directory::loadState(snapshot::Reader &r)
{
    using namespace snapshot;

    const std::uint64_t num_lines = r.u64();
    std::vector<CacheArray<DirMeta>::Line> lines(num_lines);
    for (auto &line : lines) {
        line.tag = r.u64();
        line.valid = r.boolean();
        line.lru = r.u64();
        line.meta.state = static_cast<DirState>(r.u8());
        line.meta.sharers = r.u64();
        line.meta.owner = r.u32();
        line.meta.dirty = r.boolean();
    }
    const std::uint64_t lru_clock = r.u64();
    array_.rawRestore(std::move(lines), lru_clock);

    txns_.clear();
    const std::uint64_t num_txns = r.u64();
    for (std::uint64_t i = 0; i < num_txns; ++i) {
        const Addr line = r.u64();
        Txn &txn = txns_.at(txns_.alloc(line));
        txn.kind = static_cast<Txn::Kind>(r.u8());
        txn.requester = r.u32();
        txn.upgrade = r.boolean();
        txn.acks_pending = r.i32();
        txn.epoch = r.u64();
        txn.grant_type = static_cast<MsgType>(r.u8());
        const std::uint64_t num_pending = r.u64();
        for (std::uint64_t j = 0; j < num_pending; ++j)
            txn.pending.push_back(loadMessage(r));
    }
    epochCounter_ = r.u64();

    inQueue_.clear();
    const std::uint64_t num_in = r.u64();
    for (std::uint64_t i = 0; i < num_in; ++i)
        inQueue_.push_back(loadMessage(r));
    outbox_.clear();
    const std::uint64_t num_out = r.u64();
    for (std::uint64_t i = 0; i < num_out; ++i) {
        OutMsg out;
        out.ready_at = r.u64();
        out.dst = r.u32();
        out.msg = loadMessage(r);
        outbox_.push_back(out);
    }
    deferredFills_.resize(r.u64());
    for (Message &msg : deferredFills_)
        msg = loadMessage(r);

    syncVars_.clear();
    const std::uint64_t num_vars = r.u64();
    for (std::uint64_t i = 0; i < num_vars; ++i) {
        const Addr word = r.u64();
        SyncVar &var = syncVars_[word];
        var.value = r.u64();
        var.version = r.u64();
        var.subscribers = r.u64();
    }
    syncLinks_.clear();
    const std::uint64_t num_links = r.u64();
    for (std::uint64_t i = 0; i < num_links; ++i) {
        const NodeId n = r.u32();
        const Addr word = r.u64();
        const std::uint64_t version = r.u64();
        syncLinks_.emplace(n, std::make_pair(word, version));
    }

    now_ = r.u64();
    loadCounter(r, stats_.requests);
    loadCounter(r, stats_.nacks_sent);
    loadCounter(r, stats_.invalidations_sent);
    loadCounter(r, stats_.downgrades_sent);
    loadCounter(r, stats_.mem_reads);
    loadCounter(r, stats_.mem_writes);
    loadCounter(r, stats_.l2_evictions);
    loadCounter(r, stats_.stale_acks_dropped);
    loadCounter(r, stats_.late_writebacks_merged);
    loadCounter(r, stats_.sync_updates);
    loadCounter(r, stats_.l2_accesses);
}

} // namespace fsoi::coherence

namespace fsoi::coherence {

void
Directory::debugDump() const
{
    std::fprintf(stderr, "Dir[%u]: %zu txns, %zu inQueue, %zu outbox, "
                 "%zu deferred\n",
                 node_, txns_.size(), inQueue_.size(), outbox_.size(),
                 deferredFills_.size());
    for (int i = 0; i < txns_.capacity(); ++i) {
        if (txns_.lineAt(i) == TxnTable::kFreeLine)
            continue;
        const Addr line = txns_.lineAt(i);
        const Txn &txn = txns_.at(i);
        std::fprintf(stderr,
                     "  txn line=%llx kind=%d req=%u acks=%d grant=%d "
                     "pending=%zu state=%s\n",
                     (unsigned long long)line, (int)txn.kind,
                     txn.requester, txn.acks_pending, (int)txn.grant_type,
                     txn.pending.size(), dirStateName(lineState(line)));
    }
}

} // namespace fsoi::coherence
