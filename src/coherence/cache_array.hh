/**
 * @file
 * Generic set-associative tag array with LRU replacement, shared by the
 * L1 caches and the L2 slices. Stores per-line metadata only (states,
 * sharer sets); data values live in the functional memory.
 */

#ifndef FSOI_COHERENCE_CACHE_ARRAY_HH
#define FSOI_COHERENCE_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace fsoi::coherence {

/** Geometry of a cache. */
struct CacheGeometry
{
    std::uint32_t size_bytes;
    std::uint32_t line_bytes;
    std::uint32_t associativity;
    /**
     * Address bits (above the line offset) to skip when computing the
     * set index. Distributed L2 slices set this to log2(num_slices) so
     * home interleaving and set indexing use disjoint bits; otherwise a
     * slice would only ever touch 1/num_slices of its sets.
     */
    std::uint32_t index_skip_bits = 0;
    /**
     * XOR-fold the set index (as real L2 designs do) so power-of-two
     * strided footprints don't collapse onto a few sets. Off for L1s,
     * which conventionally index with plain low bits.
     */
    bool hash_index = false;

    std::uint32_t
    numSets() const
    {
        return size_bytes / (line_bytes * associativity);
    }
};

/**
 * Set-associative array of lines carrying metadata @p Meta.
 * Lines are keyed by line-aligned addresses.
 */
template <typename Meta>
class CacheArray
{
  public:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lru = 0;
        Meta meta{};
    };

    explicit CacheArray(const CacheGeometry &geom)
        : geom_(geom), sets_(geom.numSets()),
          lines_(static_cast<std::size_t>(geom.numSets())
                 * geom.associativity)
    {
        FSOI_ASSERT(geom.size_bytes % (geom.line_bytes * geom.associativity)
                    == 0, "cache geometry does not divide evenly");
        FSOI_ASSERT((sets_ & (sets_ - 1)) == 0,
                    "number of sets must be a power of two");
        FSOI_ASSERT((geom.line_bytes & (geom.line_bytes - 1)) == 0);
    }

    const CacheGeometry &geometry() const { return geom_; }

    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(geom_.line_bytes - 1);
    }

    /** Find a valid line; returns nullptr on miss. Touches LRU. */
    Line *
    find(Addr addr)
    {
        const Addr la = lineAddr(addr);
        const std::size_t set = setOf(la);
        for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
            Line &line = lines_[set * geom_.associativity + w];
            if (line.valid && line.tag == la) {
                line.lru = ++lruClock_;
                return &line;
            }
        }
        return nullptr;
    }

    /** Find without touching LRU. */
    const Line *
    peek(Addr addr) const
    {
        const Addr la = lineAddr(addr);
        const std::size_t set = setOf(la);
        for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
            const Line &line = lines_[set * geom_.associativity + w];
            if (line.valid && line.tag == la)
                return &line;
        }
        return nullptr;
    }

    /**
     * Pick the victim way for @p addr: an invalid way if one exists,
     * otherwise the LRU line. The caller must handle eviction of the
     * returned line if it is valid.
     */
    Line *
    victim(Addr addr)
    {
        const std::size_t set = setOf(lineAddr(addr));
        Line *best = nullptr;
        for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
            Line &line = lines_[set * geom_.associativity + w];
            if (!line.valid)
                return &line;
            if (!best || line.lru < best->lru)
                best = &line;
        }
        return best;
    }

    /**
     * As victim(), but only lines satisfying @p evictable may be
     * chosen; returns nullptr when every valid way is pinned.
     */
    template <typename Pred>
    Line *
    victimIf(Addr addr, Pred &&evictable)
    {
        const std::size_t set = setOf(lineAddr(addr));
        Line *best = nullptr;
        for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
            Line &line = lines_[set * geom_.associativity + w];
            if (!line.valid)
                return &line;
            if (!evictable(line))
                continue;
            if (!best || line.lru < best->lru)
                best = &line;
        }
        return best;
    }

    /** Install a line in the given slot (from victim()). */
    void
    install(Line *slot, Addr addr, const Meta &meta)
    {
        slot->tag = lineAddr(addr);
        slot->valid = true;
        slot->lru = ++lruClock_;
        slot->meta = meta;
    }

    void
    invalidate(Line *slot)
    {
        slot->valid = false;
        slot->meta = Meta{};
    }

    /** Iterate the valid lines of the set covering @p addr. */
    template <typename Fn>
    void
    forEachInSet(Addr addr, Fn &&fn) const
    {
        const std::size_t set = setOf(lineAddr(addr));
        for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
            const Line &line = lines_[set * geom_.associativity + w];
            if (line.valid)
                fn(line);
        }
    }

    /** Iterate all valid lines (for invariant checks in tests). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Line &line : lines_)
            if (line.valid)
                fn(line);
    }

    // --- checkpoint/restore (snapshot/): the full way array in slot
    // order plus the LRU clock, so victim selection after a restore is
    // bit-identical to the uninterrupted run.
    const std::vector<Line> &rawLines() const { return lines_; }
    std::uint64_t rawLruClock() const { return lruClock_; }

    void
    rawRestore(std::vector<Line> lines, std::uint64_t lru_clock)
    {
        FSOI_ASSERT(lines.size() == lines_.size(),
                    "cache geometry mismatch on restore");
        lines_ = std::move(lines);
        lruClock_ = lru_clock;
    }

  private:
    std::size_t
    setOf(Addr line_addr) const
    {
        const Addr idx =
            (line_addr / geom_.line_bytes) >> geom_.index_skip_bits;
        if (!geom_.hash_index)
            return idx & (sets_ - 1);
        return (idx ^ (idx >> 8) ^ (idx >> 16)) & (sets_ - 1);
    }

    CacheGeometry geom_;
    std::size_t sets_;
    std::uint64_t lruClock_ = 0;
    std::vector<Line> lines_;
};

} // namespace fsoi::coherence

#endif // FSOI_COHERENCE_CACHE_ARRAY_HH
