/**
 * @file
 * Functional (value-carrying) memory image.
 *
 * The timing simulation tracks coherence metadata only; actual data
 * values matter solely for synchronization (lock words, barrier
 * counters, sense flags, ll/sc outcomes). This sparse word store holds
 * those values; reads of untouched words return zero.
 */

#ifndef FSOI_COHERENCE_FUNCTIONAL_MEMORY_HH
#define FSOI_COHERENCE_FUNCTIONAL_MEMORY_HH

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace fsoi::coherence {

/**
 * Sparse 64-bit word store shared by every core in a System.
 *
 * Under the parallel tick engine, L1s and directories on different
 * shards touch the store concurrently, so the System enables the
 * internal lock (guarding the container against rehash races). The
 * values themselves stay deterministic without any ordering help:
 * MESI exclusivity serializes same-word write/read pairs at the
 * protocol level, and same-cycle accesses to different words commute.
 */
class FunctionalMemory
{
  public:
    /** Turn on internal locking (threaded runs only; serial runs keep
     *  the lock-free fast path). */
    void enableLocking(bool on) { locked_ = on; }

    std::uint64_t
    read(Addr addr) const
    {
        if (locked_) {
            std::lock_guard<std::mutex> guard(mutex_);
            return readUnlocked(addr);
        }
        return readUnlocked(addr);
    }

    void
    write(Addr addr, std::uint64_t value)
    {
        if (locked_) {
            std::lock_guard<std::mutex> guard(mutex_);
            words_[addr] = value;
            return;
        }
        words_[addr] = value;
    }

    void clear() { words_.clear(); }

    /** All touched words sorted by address (checkpoint/restore: a
     *  canonical order keeps snapshot hashes stable). */
    std::vector<std::pair<Addr, std::uint64_t>>
    exportWords() const
    {
        std::vector<std::pair<Addr, std::uint64_t>> out(words_.begin(),
                                                        words_.end());
        std::sort(out.begin(), out.end());
        return out;
    }

    void
    importWords(const std::vector<std::pair<Addr, std::uint64_t>> &words)
    {
        words_.clear();
        for (const auto &[addr, value] : words)
            words_.emplace(addr, value);
    }

  private:
    std::uint64_t
    readUnlocked(Addr addr) const
    {
        const auto it = words_.find(addr);
        return it == words_.end() ? 0 : it->second;
    }

    std::unordered_map<Addr, std::uint64_t> words_;
    mutable std::mutex mutex_;
    bool locked_ = false;
};

} // namespace fsoi::coherence

#endif // FSOI_COHERENCE_FUNCTIONAL_MEMORY_HH
