/**
 * @file
 * Functional (value-carrying) memory image.
 *
 * The timing simulation tracks coherence metadata only; actual data
 * values matter solely for synchronization (lock words, barrier
 * counters, sense flags, ll/sc outcomes). This sparse word store holds
 * those values; reads of untouched words return zero.
 */

#ifndef FSOI_COHERENCE_FUNCTIONAL_MEMORY_HH
#define FSOI_COHERENCE_FUNCTIONAL_MEMORY_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace fsoi::coherence {

/** Sparse 64-bit word store shared by every core in a System. */
class FunctionalMemory
{
  public:
    std::uint64_t
    read(Addr addr) const
    {
        const auto it = words_.find(addr);
        return it == words_.end() ? 0 : it->second;
    }

    void
    write(Addr addr, std::uint64_t value)
    {
        words_[addr] = value;
    }

    void clear() { words_.clear(); }

  private:
    std::unordered_map<Addr, std::uint64_t> words_;
};

} // namespace fsoi::coherence

#endif // FSOI_COHERENCE_FUNCTIONAL_MEMORY_HH
