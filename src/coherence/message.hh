/**
 * @file
 * Coherence protocol messages exchanged between L1 controllers, the
 * distributed L2/directory slices, and the memory controllers.
 *
 * The protocol is the paper's MESI directory protocol (Table 2): stable
 * L1 states M/E/S/I, stable directory states DM/DS/DV/DI, with the
 * transient states realized as controller bookkeeping. Meta packets
 * carry requests and acknowledgments (72 bits); data packets carry
 * cache lines (360 bits).
 */

#ifndef FSOI_COHERENCE_MESSAGE_HH
#define FSOI_COHERENCE_MESSAGE_HH

#include <cstdint>
#include <cstring>

#include "common/types.hh"
#include "noc/packet.hh"

namespace fsoi::coherence {

/** Every message type of the protocol. */
enum class MsgType : std::uint8_t
{
    // L1 -> directory requests (meta packets).
    ReqSh,      //!< read miss: request shared copy
    ReqEx,      //!< write miss: request exclusive copy
    ReqUpg,     //!< write hit on S: upgrade request
    SyncLl,     //!< load-linked on a synchronization word
    SyncSc,     //!< store-conditional carrying the boolean value

    // Directory -> L1 responses.
    DataS,      //!< shared data (data packet)
    DataE,      //!< exclusive-clean data (data packet)
    DataM,      //!< modifiable data (data packet)
    ExcAck,     //!< upgrade granted without data (meta)
    Nack,       //!< resource conflict: retry later (meta)
    SyncReply,  //!< ll value / sc outcome (meta)

    // Directory -> L1 demands (meta).
    Inv,        //!< invalidate your copy
    Dwg,        //!< downgrade M/E to S

    // L1 -> directory acknowledgments.
    InvAck,     //!< invalidated (meta; clean copy)
    InvAckData, //!< invalidated, modified data enclosed (data)
    DwgAck,     //!< downgraded (meta; clean copy, L2 copy is current)
    DwgAckData, //!< downgraded, modified data enclosed (data)
    WriteBack,  //!< eviction of an M line (data)

    // Directory <-> memory controller.
    MemRead,    //!< fetch a line from DRAM (meta)
    MemWrite,   //!< write a line back to DRAM (data, posted)
    MemReply,   //!< DRAM fill (data)
};

const char *msgTypeName(MsgType type);

/** True for message types that travel as data packets. */
inline bool
isDataMessage(MsgType type)
{
    switch (type) {
      case MsgType::DataS:
      case MsgType::DataE:
      case MsgType::DataM:
      case MsgType::InvAckData:
      case MsgType::DwgAckData:
      case MsgType::WriteBack:
      case MsgType::MemWrite:
      case MsgType::MemReply:
        return true;
      default:
        return false;
    }
}

/** Packet kind used for the Figure 10 collision classification. */
noc::PacketKind packetKindOf(MsgType type);

/** The protocol message carried in a packet payload. */
struct Message
{
    MsgType type;
    Addr line = 0;               //!< line-aligned address
    NodeId requester = kInvalidNode; //!< original requester node
    /** ll/sc: value carried by SyncSc / SyncReply; link version. */
    std::uint64_t value = 0;
    std::uint64_t version = 0;
    bool success = false;        //!< SyncReply: sc outcome
    bool subscribe = false;      //!< SyncLl: subscribe to updates
    /**
     * Inv only: the receiver must acknowledge with an explicit packet
     * even when confirmation-as-ack is enabled, because the directory
     * needs to learn whether the (possibly modified) owner copy is
     * enclosed. Set for owner invalidations (DM.DMD / DM.DID flows).
     */
    bool explicit_ack = false;
};

/**
 * Padding-canonical copy for packet payloads. Message has internal
 * padding (after type, after requester, and past the bool tail), and
 * those bytes are indeterminate in stack-built messages; memcpy-based
 * marshalling (Packet::setPayload) would leak them into packet
 * payloads and make snapshot bytes differ between otherwise identical
 * runs. Zeroing the destination first and then assigning each field
 * leaves every padding byte zero.
 */
inline Message
canonicalPayload(const Message &m)
{
    Message out;
    std::memset(static_cast<void *>(&out), 0, sizeof(out));
    out.type = m.type;
    out.line = m.line;
    out.requester = m.requester;
    out.value = m.value;
    out.version = m.version;
    out.success = m.success;
    out.subscribe = m.subscribe;
    out.explicit_ack = m.explicit_ack;
    return out;
}

} // namespace fsoi::coherence

#endif // FSOI_COHERENCE_MESSAGE_HH
