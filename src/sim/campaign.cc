#include "sim/campaign.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <utility>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace fsoi::sim {

namespace {

/**
 * The slice of a RunResult that the campaign journals and reports.
 * Doubles travel as their IEEE-754 bit patterns so a record read back
 * from the journal reproduces the original value exactly — that is
 * what makes a resumed campaign's consolidated JSON byte-identical to
 * an uninterrupted one's.
 */
struct PointRecord
{
    bool completed = false;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t sync_packets = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t fault_bit_errors = 0;
    std::uint64_t blacklisted_channels = 0;
    std::uint64_t unroutable_drops = 0;
    std::uint64_t ipc_bits = 0;
    std::uint64_t latency_bits = 0;
    std::uint64_t miss_bits = 0;
    std::uint64_t power_bits = 0;
    std::string fault_diagnosis;
};

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

PointRecord
toRecord(const RunResult &r)
{
    PointRecord rec;
    rec.completed = r.completed;
    rec.cycles = r.cycles;
    rec.instructions = r.instructions;
    rec.packets_delivered = r.packets_delivered;
    rec.invalidations = r.invalidations;
    rec.sync_packets = r.sync_packets;
    rec.retransmissions = r.retransmissions;
    rec.fault_bit_errors = r.fault_bit_errors;
    rec.blacklisted_channels = r.blacklisted_channels;
    rec.unroutable_drops = r.unroutable_drops;
    rec.ipc_bits = doubleBits(r.ipc);
    rec.latency_bits = doubleBits(r.avg_packet_latency);
    rec.miss_bits = doubleBits(r.l1_miss_rate);
    rec.power_bits = doubleBits(r.avg_power_w);
    rec.fault_diagnosis = r.fault_diagnosis;
    return rec;
}

RunResult
fromRecord(const PointRecord &rec)
{
    RunResult r;
    r.completed = rec.completed;
    r.cycles = rec.cycles;
    r.instructions = rec.instructions;
    r.packets_delivered = rec.packets_delivered;
    r.invalidations = rec.invalidations;
    r.sync_packets = rec.sync_packets;
    r.retransmissions = rec.retransmissions;
    r.fault_bit_errors = rec.fault_bit_errors;
    r.blacklisted_channels = rec.blacklisted_channels;
    r.unroutable_drops = rec.unroutable_drops;
    r.ipc = bitsDouble(rec.ipc_bits);
    r.avg_packet_latency = bitsDouble(rec.latency_bits);
    r.l1_miss_rate = bitsDouble(rec.miss_bits);
    r.avg_power_w = bitsDouble(rec.power_bits);
    r.fault_diagnosis = rec.fault_diagnosis;
    return r;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * Minimal field extraction for the journal's own rigid JSONL output.
 * Returns false when @p key is absent — which also covers a final
 * line truncated by the crash that the resume is recovering from.
 */
bool
findRaw(const std::string &line, const char *key, std::string &out)
{
    const std::string pat = std::string("\"") + key + "\":";
    const std::size_t at = line.find(pat);
    if (at == std::string::npos)
        return false;
    std::size_t i = at + pat.size();
    if (i < line.size() && line[i] == '"') {
        // Quoted string; unescape the two characters jsonEscape emits.
        std::string s;
        for (++i; i < line.size() && line[i] != '"'; ++i) {
            if (line[i] == '\\' && i + 1 < line.size())
                ++i;
            s.push_back(line[i]);
        }
        if (i >= line.size())
            return false; // truncated mid-string
        out = std::move(s);
        return true;
    }
    std::size_t end = i;
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    if (end == line.size())
        return false; // truncated mid-number
    out = line.substr(i, end - i);
    return true;
}

bool
findU64(const std::string &line, const char *key, std::uint64_t &out)
{
    std::string raw;
    if (!findRaw(line, key, raw) || raw.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(raw.c_str(), &end, 10);
    return end && *end == '\0';
}

} // namespace

/**
 * The append-only JSONL journal. Every record is one line, flushed as
 * soon as it is written, so the journal survives kill -9 with at worst
 * one truncated trailing line (which the loader ignores).
 */
struct CampaignRunner::Journal
{
    struct PointState
    {
        int attempts = 0;
        bool done = false;
        PointRecord record;
    };

    std::FILE *fp = nullptr;
    std::mutex mu;      //!< serializes appends across pool workers
    std::mutex warm_mu; //!< one warmup generation per family at a time
    std::map<std::string, PointState> state;

    ~Journal()
    {
        if (fp)
            std::fclose(fp);
    }

    void load(const std::string &path)
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            std::string event, point;
            if (!findRaw(line, "event", event) ||
                !findRaw(line, "point", point))
                continue;
            PointState &ps = state[point];
            if (event == "start") {
                std::uint64_t attempt = 0;
                if (findU64(line, "attempt", attempt))
                    ps.attempts = std::max(static_cast<int>(attempt),
                                           ps.attempts);
            } else if (event == "done") {
                PointRecord rec;
                std::uint64_t completed = 0;
                // A done record is only trusted when it parses whole;
                // the string field is last, so a truncated line fails
                // one of these lookups and the point reruns instead.
                if (findU64(line, "completed", completed) &&
                    findU64(line, "cycles", rec.cycles) &&
                    findU64(line, "instructions", rec.instructions) &&
                    findU64(line, "packets", rec.packets_delivered) &&
                    findU64(line, "invalidations", rec.invalidations) &&
                    findU64(line, "sync_packets", rec.sync_packets) &&
                    findU64(line, "retransmissions",
                            rec.retransmissions) &&
                    findU64(line, "bit_errors", rec.fault_bit_errors) &&
                    findU64(line, "blacklisted",
                            rec.blacklisted_channels) &&
                    findU64(line, "unroutable", rec.unroutable_drops) &&
                    findU64(line, "ipc_bits", rec.ipc_bits) &&
                    findU64(line, "latency_bits", rec.latency_bits) &&
                    findU64(line, "miss_bits", rec.miss_bits) &&
                    findU64(line, "power_bits", rec.power_bits) &&
                    findRaw(line, "diagnosis", rec.fault_diagnosis)) {
                    rec.completed = completed != 0;
                    ps.done = true;
                    ps.record = std::move(rec);
                }
            }
        }
    }

    void appendStart(const std::string &point, int attempt)
    {
        std::lock_guard<std::mutex> lock(mu);
        std::fprintf(fp, "{\"event\":\"start\",\"point\":\"%s\","
                     "\"attempt\":%d}\n", point.c_str(), attempt);
        std::fflush(fp);
    }

    void appendDone(const std::string &point, const PointRecord &rec)
    {
        std::lock_guard<std::mutex> lock(mu);
        std::fprintf(
            fp,
            "{\"event\":\"done\",\"point\":\"%s\",\"completed\":%d,"
            "\"cycles\":%llu,\"instructions\":%llu,\"packets\":%llu,"
            "\"invalidations\":%llu,\"sync_packets\":%llu,"
            "\"retransmissions\":%llu,\"bit_errors\":%llu,"
            "\"blacklisted\":%llu,\"unroutable\":%llu,"
            "\"ipc_bits\":%llu,\"latency_bits\":%llu,"
            "\"miss_bits\":%llu,\"power_bits\":%llu,"
            "\"diagnosis\":\"%s\"}\n",
            point.c_str(), rec.completed ? 1 : 0,
            static_cast<unsigned long long>(rec.cycles),
            static_cast<unsigned long long>(rec.instructions),
            static_cast<unsigned long long>(rec.packets_delivered),
            static_cast<unsigned long long>(rec.invalidations),
            static_cast<unsigned long long>(rec.sync_packets),
            static_cast<unsigned long long>(rec.retransmissions),
            static_cast<unsigned long long>(rec.fault_bit_errors),
            static_cast<unsigned long long>(rec.blacklisted_channels),
            static_cast<unsigned long long>(rec.unroutable_drops),
            static_cast<unsigned long long>(rec.ipc_bits),
            static_cast<unsigned long long>(rec.latency_bits),
            static_cast<unsigned long long>(rec.miss_bits),
            static_cast<unsigned long long>(rec.power_bits),
            jsonEscape(rec.fault_diagnosis).c_str());
        std::fflush(fp);
    }
};

CampaignRunner::CampaignRunner(CampaignConfig config)
    : config_(std::move(config))
{
    FSOI_ASSERT(!config_.dir.empty(),
                "a campaign needs a directory for its journal");
    FSOI_ASSERT(config_.max_attempts >= 1,
                "max_attempts < 1 would quarantine every point");
    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);
    if (ec)
        fatal("campaign: cannot create directory '%s': %s",
              config_.dir.c_str(), ec.message().c_str());

    const std::string path = config_.dir + "/campaign.jsonl";
    journal_ = std::make_unique<Journal>();
    journal_->load(path);
    journal_->fp = std::fopen(path.c_str(), "ab");
    if (!journal_->fp)
        fatal("campaign: cannot append to journal '%s'", path.c_str());
}

CampaignRunner::~CampaignRunner() = default;

std::string
CampaignRunner::pointCheckpoint(const std::string &name) const
{
    return config_.dir + "/" + name + ".ckpt";
}

std::string
CampaignRunner::warmCheckpoint(const std::string &family) const
{
    return config_.dir + "/warm_" + family + ".ckpt";
}

std::string
CampaignRunner::ensureWarmState(const CampaignPoint &point)
{
    const std::string path = warmCheckpoint(point.warm_family);
    std::lock_guard<std::mutex> lock(journal_->warm_mu);
    if (std::filesystem::exists(path))
        return path;

    // First family member through: simulate just the warmup window and
    // snapshot the top-of-cycle state at its end. run() stops with
    // now_ == max_cycles when the horizon is hit, which is exactly the
    // top-of-cycle capture point the snapshot format requires.
    SystemConfig cfg = point.job.config;
    cfg.max_cycles = config_.warmup_cycles;
    System sys(cfg);
    sys.loadApp(point.job.app.scaled(point.job.scale));
    const RunResult warm = sys.run();
    if (warm.completed) {
        warn("campaign: family '%s' finished inside the %llu-cycle "
             "warmup; running its points cold",
             point.warm_family.c_str(),
             static_cast<unsigned long long>(config_.warmup_cycles));
        return "";
    }
    sys.saveCheckpoint(path);
    return path;
}

CampaignOutcome
CampaignRunner::runPoint(const CampaignPoint &point, int attempt)
{
    journal_->appendStart(point.name, attempt);

    const std::string ckpt = pointCheckpoint(point.name);
    std::string restore_from;
    if (attempt == 2 && std::filesystem::exists(ckpt)) {
        // One crash so far: trust the in-flight checkpoint and resume.
        // From the third attempt on, the checkpoint itself is suspect
        // (the crash may reproduce from it), so restart cold.
        restore_from = ckpt;
    } else if (config_.warmup_cycles > 0 && !point.warm_family.empty()) {
        restore_from = ensureWarmState(point);
    }

    System sys(point.job.config);
    sys.loadApp(point.job.app.scaled(point.job.scale));
    if (!restore_from.empty())
        sys.restoreCheckpoint(restore_from);
    sys.setCheckpoint(ckpt, config_.checkpoint_every);

    CampaignOutcome out;
    out.name = point.name;
    out.attempts = attempt;
    out.result = sys.run();

    journal_->appendDone(point.name, toRecord(out.result));
    std::error_code ec;
    std::filesystem::remove(ckpt, ec); // done; the journal is the record
    return out;
}

std::vector<CampaignOutcome>
CampaignRunner::run(std::vector<CampaignPoint> points)
{
    for (const CampaignPoint &p : points)
        FSOI_ASSERT(!p.name.empty(), "campaign points need names");

    // Decide every point's fate from the journal before any new work
    // runs, then fan the live runs out over the pool. Outcomes are
    // collected in point order, so the vector (and any report built
    // from it) is independent of the worker count.
    struct Plan
    {
        const CampaignPoint *point;
        int attempt = 0; //!< 0 = replay/quarantine, no run needed
        CampaignOutcome ready;
    };
    std::vector<Plan> plans;
    plans.reserve(points.size());
    for (const CampaignPoint &p : points) {
        Plan plan;
        plan.point = &p;
        const auto it = journal_->state.find(p.name);
        const int attempts =
            it == journal_->state.end() ? 0 : it->second.attempts;
        if (it != journal_->state.end() && it->second.done) {
            plan.ready.name = p.name;
            plan.ready.attempts = std::max(attempts, 1);
            plan.ready.result = fromRecord(it->second.record);
        } else if (attempts >= config_.max_attempts) {
            warn("campaign: quarantining point '%s' after %d failed "
                 "attempts", p.name.c_str(), attempts);
            plan.ready.name = p.name;
            plan.ready.attempts = attempts;
            plan.ready.quarantined = true;
        } else {
            plan.attempt = attempts + 1;
        }
        plans.push_back(std::move(plan));
    }

    std::vector<CampaignOutcome> outcomes(points.size());
    const int jobs =
        config_.jobs == 1 ? 1 : common::resolveJobs(config_.jobs);
    if (jobs <= 1) {
        for (std::size_t i = 0; i < plans.size(); ++i)
            outcomes[i] = plans[i].attempt == 0
                              ? std::move(plans[i].ready)
                              : runPoint(*plans[i].point,
                                         plans[i].attempt);
        return outcomes;
    }

    common::ThreadPool pool(jobs);
    std::vector<std::pair<std::size_t, std::future<CampaignOutcome>>> live;
    for (std::size_t i = 0; i < plans.size(); ++i) {
        if (plans[i].attempt == 0) {
            outcomes[i] = std::move(plans[i].ready);
            continue;
        }
        live.emplace_back(i, pool.submit([this, &plans, i] {
            return runPoint(*plans[i].point, plans[i].attempt);
        }));
    }
    for (auto &[i, fut] : live)
        outcomes[i] = fut.get();
    return outcomes;
}

void
CampaignRunner::writeJson(std::ostream &os,
                          const std::vector<CampaignOutcome> &outcomes)
{
    auto dbl = [](double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return std::string(buf);
    };
    os << "{\n  \"points\": [\n";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const CampaignOutcome &o = outcomes[i];
        const RunResult &r = o.result;
        // No attempt counts here: they are resume metadata (kept in
        // the journal), and printing them would break the byte-for-
        // byte equality of resumed vs uninterrupted reports.
        os << "    {\"name\": \"" << jsonEscape(o.name) << "\""
           << ", \"quarantined\": " << (o.quarantined ? "true" : "false")
           << ", \"completed\": " << (r.completed ? "true" : "false")
           << ", \"cycles\": " << r.cycles
           << ", \"instructions\": " << r.instructions
           << ", \"ipc\": " << dbl(r.ipc)
           << ", \"avg_packet_latency\": " << dbl(r.avg_packet_latency)
           << ", \"l1_miss_rate\": " << dbl(r.l1_miss_rate)
           << ", \"packets_delivered\": " << r.packets_delivered
           << ", \"invalidations\": " << r.invalidations
           << ", \"sync_packets\": " << r.sync_packets
           << ", \"retransmissions\": " << r.retransmissions
           << ", \"fault_bit_errors\": " << r.fault_bit_errors
           << ", \"blacklisted_channels\": " << r.blacklisted_channels
           << ", \"unroutable_drops\": " << r.unroutable_drops
           << ", \"avg_power_w\": " << dbl(r.avg_power_w)
           << ", \"fault_diagnosis\": \"" << jsonEscape(r.fault_diagnosis)
           << "\"}" << (i + 1 < outcomes.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace fsoi::sim
