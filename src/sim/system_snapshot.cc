/**
 * @file
 * System-level checkpoint/restore: assembles the per-component
 * saveState/loadState implementations into a hash-verified snapshot
 * (snapshot/archive.hh) and rebuilds the scheduler runtime around the
 * restored state.
 *
 * Capture point is the top of a cycle, before the network tick: the
 * threaded engine's staging buffers are empty there, and the wake
 * bitmaps and event calendars are memoization of per-component wake
 * cycles that are pure functions of component state
 * (Component::nextEventCycle()), so none of them are serialized and
 * snapshots are bit-identical at any --threads. Restore re-seeds the
 * scheduler by waking every component with pending work once; the
 * first tick re-arms exact wakes.
 *
 * The one piece of state that *is* partitioned by thread count — the
 * per-shard local-hop queues — is serialized in a canonical order that
 * every partitioning can reconstruct. A queue entry's insertion slot is
 * (cycle, phase, node, program order); cycle is recoverable from the
 * due stamp (the local-hop latency is constant), the node is the
 * destination (self-sends only), and the phase is recoverable from the
 * message type, because the component kinds that can send to their own
 * node emit disjoint type sets (directory grants, L1 requests/acks,
 * core sync ops). Sorting by (due, phase, dst) with ties left in FIFO
 * order therefore reproduces exactly each shard's insertion order when
 * the entries are dealt back out by nodeShard_[dst].
 */

#include "sim/system.hh"

#include <algorithm>

#include "coherence/message_io.hh"
#include "common/logging.hh"
#include "snapshot/archive.hh"

namespace fsoi::sim {

using coherence::Message;
using coherence::MsgType;

namespace {

/**
 * Which component phase issues a same-node send of this message type
 * (tickShard's phase order). Directory grants/NACKs are L1-bound,
 * sync ops come from cores, everything else self-sent is an L1
 * request/ack to its own-tile directory.
 */
int
selfSendPhase(MsgType type)
{
    switch (type) {
      case MsgType::DataS:
      case MsgType::DataE:
      case MsgType::DataM:
      case MsgType::ExcAck:
      case MsgType::Inv:
      case MsgType::Dwg:
      case MsgType::Nack:
        return 0; // directory phase
      case MsgType::SyncLl:
      case MsgType::SyncSc:
        return 2; // core phase
      default:
        return 1; // L1 phase
    }
}

} // namespace

const char *
System::netSectionPrefix() const
{
    switch (config_.network) {
      case NetKind::Mesh: return "mesh";
      case NetKind::Fsoi: return "fsoi";
      default: return "net";
    }
}

void
System::saveSnapshot(snapshot::SnapshotWriter &snap) const
{
    // Config fingerprint: restore refuses a snapshot taken under a
    // different machine shape. Thread count is deliberately absent —
    // snapshots restore across --threads values.
    snapshot::Writer &meta = snap.section("meta");
    meta.u32(static_cast<std::uint32_t>(config_.num_cores));
    meta.u32(static_cast<std::uint32_t>(config_.num_memctls));
    meta.u8(static_cast<std::uint8_t>(config_.network));
    meta.u64(config_.seed);
    meta.boolean(config_.opt_confirmation_ack);
    meta.boolean(config_.opt_sync_subscription);
    meta.boolean(config_.opt_data_collision);
    meta.boolean(fault_ != nullptr);
    meta.u64(now_);

    snapshot::Writer &mem = snap.section("memory");
    const auto words = funcMem_.exportWords();
    mem.u64(words.size());
    for (const auto &[addr, value] : words) {
        mem.u64(addr);
        mem.u64(value);
    }

    network_->saveSnapshot(snap, netSectionPrefix());
    if (fault_)
        fault_->saveState(snap.section("fault"));

    for (int n = 0; n < config_.num_cores; ++n) {
        const std::string id = std::to_string(n);
        cores_[n]->saveState(snap.section("core" + id));
        l1s_[n]->saveState(snap.section("core" + id + ".l1"));
        dirs_[n]->saveState(snap.section("dir" + id));
    }
    for (int m = 0; m < config_.num_memctls; ++m)
        memctls_[m]->saveState(snap.section("mem" + std::to_string(m)));

    // Canonical local-queue order (see file comment).
    std::vector<LocalMsg> msgs;
    for (const auto &shard : shards_) {
        msgs.insert(msgs.end(), shard.localQueue.begin(),
                    shard.localQueue.end());
    }
    std::stable_sort(msgs.begin(), msgs.end(),
                     [](const LocalMsg &a, const LocalMsg &b) {
                         if (a.due != b.due)
                             return a.due < b.due;
                         const int pa = selfSendPhase(a.msg.type);
                         const int pb = selfSendPhase(b.msg.type);
                         if (pa != pb)
                             return pa < pb;
                         return a.dst < b.dst;
                     });
    snapshot::Writer &sched = snap.section("sched");
    sched.u64(msgs.size());
    for (const LocalMsg &m : msgs) {
        sched.u64(m.due);
        sched.u32(m.dst);
        coherence::saveMessage(sched, m.msg);
    }
}

void
System::saveCheckpoint(const std::string &path) const
{
    snapshot::SnapshotWriter snap;
    saveSnapshot(snap);
    snap.writeFile(path);
}

void
System::restoreSnapshot(const snapshot::SnapshotReader &snap)
{
    snapshot::Reader meta = snap.open("meta");
    const auto cores = meta.u32();
    const auto memctls = meta.u32();
    const auto netkind = meta.u8();
    const auto seed = meta.u64();
    const bool conf_ack = meta.boolean();
    const bool sync_sub = meta.boolean();
    const bool data_coll = meta.boolean();
    const bool faulted = meta.boolean();
    if (cores != static_cast<std::uint32_t>(config_.num_cores)
        || memctls != static_cast<std::uint32_t>(config_.num_memctls)
        || netkind != static_cast<std::uint8_t>(config_.network)
        || seed != config_.seed
        || conf_ack != config_.opt_confirmation_ack
        || sync_sub != config_.opt_sync_subscription
        || data_coll != config_.opt_data_collision
        || faulted != (fault_ != nullptr)) {
        throw snapshot::SnapshotError(
            "snapshot.config_mismatch: snapshot is "
            + std::to_string(cores) + " cores / "
            + std::to_string(memctls) + " memctls / "
            + netKindName(static_cast<NetKind>(netkind)) + " / seed "
            + std::to_string(seed) + ", this system is "
            + std::to_string(config_.num_cores) + " / "
            + std::to_string(config_.num_memctls) + " / "
            + netKindName(config_.network) + " / seed "
            + std::to_string(config_.seed));
    }
    const Cycle at = meta.u64();

    {
        snapshot::Reader r = snap.open("memory");
        std::vector<std::pair<Addr, std::uint64_t>> words;
        const std::uint64_t n = r.u64();
        words.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            const Addr addr = r.u64();
            words.emplace_back(addr, r.u64());
        }
        funcMem_.importWords(words);
    }

    network_->loadSnapshot(snap, netSectionPrefix());
    if (fault_) {
        snapshot::Reader r = snap.open("fault");
        fault_->loadState(r);
    }

    for (int n = 0; n < config_.num_cores; ++n) {
        const std::string id = std::to_string(n);
        {
            snapshot::Reader r = snap.open("core" + id);
            cores_[n]->loadState(r);
        }
        {
            snapshot::Reader r = snap.open("core" + id + ".l1");
            l1s_[n]->loadState(r, cores_[n]->completionCallback());
        }
        {
            snapshot::Reader r = snap.open("dir" + id);
            dirs_[n]->loadState(r);
        }
    }
    for (int m = 0; m < config_.num_memctls; ++m) {
        snapshot::Reader r = snap.open("mem" + std::to_string(m));
        memctls_[m]->loadState(r);
    }

    for (auto &shard : shards_)
        shard.localQueue.clear();
    {
        snapshot::Reader r = snap.open("sched");
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            LocalMsg msg;
            msg.due = r.u64();
            msg.dst = static_cast<NodeId>(r.u32());
            msg.msg = coherence::loadMessage(r);
            shards_[static_cast<std::size_t>(nodeShard_[msg.dst])]
                .localQueue.push_back(std::move(msg));
        }
    }

    now_ = at;
    startCycle_ = at;
    restoredRun_ = true;
}

void
System::restoreCheckpoint(const std::string &path)
{
    const snapshot::SnapshotReader snap =
        snapshot::SnapshotReader::fromFile(path);
    restoreSnapshot(snap);
}

void
System::setCheckpoint(std::string path, Cycle every)
{
    checkpointPath_ = std::move(path);
    checkpointEvery_ = every;
}

} // namespace fsoi::sim
