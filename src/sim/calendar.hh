/**
 * @file
 * Per-shard event calendar: a bucketed timing wheel that lets the run
 * loop advance straight to the next populated cycle instead of ticking
 * cycle by cycle.
 *
 * The calendar is a pure scheduling accelerator, never the source of
 * truth: every wake cycle stored here is recomputed from component
 * state (Component::nextEventCycle()), so a stale entry — a component
 * whose work was satisfied through another path before its scheduled
 * wake — only causes a harmless spurious no-op tick. That is what
 * keeps the calendar out of snapshots: restore rebuilds it by querying
 * each component, and any scheduling difference against the
 * uninterrupted run is unobservable by construction.
 *
 * Invariants (see DESIGN.md §5e):
 *  - after popDue(now), every stored entry is in (now, now + kSlots)
 *    on the wheel or >= now + kSlots in the overflow list;
 *  - a slot holds entries for exactly one cycle (window == wheel size);
 *  - nextEventCycle(now) is exact, not a lower bound: it returns the
 *    earliest scheduled wake, or kNoCycle when the calendar is empty.
 */

#ifndef FSOI_SIM_CALENDAR_HH
#define FSOI_SIM_CALENDAR_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace fsoi::sim {

/** Which component kind a calendar entry wakes. */
enum class WakeKind : std::uint8_t { Mem, Dir, L1, Core };

/**
 * Timing wheel over a power-of-two window of upcoming cycles. Each
 * shard owns one; all scheduling happens from the owning shard's own
 * component phases (or from the main thread while workers are parked),
 * so no locking is needed anywhere.
 */
class EventCalendar
{
  public:
    /**
     * Window of 512 cycles covers the longest common in-system wait
     * (memory latency ~200 + service + delivery) without touching the
     * overflow list; anything rarer spills and is refilled in batches.
     */
    static constexpr std::uint64_t kSlots = 512;
    static constexpr std::uint64_t kMask = kSlots - 1;

    struct Entry
    {
        Cycle when;
        WakeKind kind;
        std::uint32_t index;
    };

    EventCalendar() : slots_(kSlots), occupancy_(kSlots / 64, 0) {}

    bool empty() const { return count_ == 0; }
    std::uint64_t size() const { return count_; }

    /** Drop every entry and rewind the window to cycle @p base. */
    void
    reset(Cycle base)
    {
        for (auto &slot : slots_)
            slot.clear();
        std::fill(occupancy_.begin(), occupancy_.end(), 0);
        overflow_.clear();
        overflowMin_ = kNoCycle;
        base_ = base;
        count_ = 0;
    }

    /**
     * Schedule a wake at @p when (> the popDue cursor). Duplicate and
     * later-stale entries are fine; the pop side tolerates them.
     */
    void
    schedule(Cycle when, WakeKind kind, std::uint32_t index)
    {
        FSOI_ASSERT(when >= base_, "calendar schedule in the past");
        ++count_;
        if (when < base_ + kSlots) {
            const std::uint64_t s = when & kMask;
            slots_[s].push_back(Entry{when, kind, index});
            occupancy_[s >> 6] |= 1ull << (s & 63);
            return;
        }
        overflow_.push_back(Entry{when, kind, index});
        if (when < overflowMin_)
            overflowMin_ = when;
    }

    /**
     * Deliver every entry due at or before @p now to @p fn(kind,
     * index) and advance the window to start at now + 1. Uses the
     * occupancy bitmap to jump between populated slots, so a pop
     * across a long empty stretch costs O(words), not O(cycles).
     */
    template <typename Fn>
    void
    popDue(Cycle now, Fn &&fn)
    {
        if (now < base_)
            return;
        if (count_ != 0) {
            const Cycle wheel_end = base_ + kSlots; // exclusive
            const Cycle due_end = now < wheel_end ? now + 1 : wheel_end;
            for (Cycle c = base_; c < due_end;) {
                // Scan the occupancy word at c's slot for the next
                // populated slot in this wheel pass.
                const std::uint64_t s = c & kMask;
                std::uint64_t word = occupancy_[s >> 6]
                    & ~((1ull << (s & 63)) - 1);
                if (word == 0) {
                    c = (c | 63) + 1; // next occupancy word
                    continue;
                }
                const std::uint64_t slot =
                    (s & ~63ull) + std::countr_zero(word);
                const Cycle cyc = base_ + ((slot - (base_ & kMask))
                                           & kMask);
                if (cyc >= due_end)
                    break;
                for (const Entry &e : slots_[slot])
                    fn(e.kind, e.index);
                count_ -= slots_[slot].size();
                slots_[slot].clear();
                occupancy_[slot >> 6] &= ~(1ull << (slot & 63));
                c = cyc + 1;
            }
            // Defensive: the epoch is the min over all wake sources,
            // so now can only overrun the wheel window when nothing in
            // the calendar was due — but if it ever does, deliver the
            // overrun entries instead of silently re-filing them late.
            if (now + 1 > wheel_end && !overflow_.empty()) {
                std::size_t keep = 0;
                overflowMin_ = kNoCycle;
                for (std::size_t i = 0; i < overflow_.size(); ++i) {
                    const Entry &e = overflow_[i];
                    if (e.when <= now) {
                        fn(e.kind, e.index);
                        --count_;
                        continue;
                    }
                    if (e.when < overflowMin_)
                        overflowMin_ = e.when;
                    overflow_[keep++] = e;
                }
                overflow_.resize(keep);
            }
        }
        base_ = now + 1;
        refillOverflow();
    }

    /**
     * Earliest scheduled wake strictly after the current window base
     * (entries at or before the last popDue cursor are already
     * delivered), or kNoCycle when empty.
     */
    Cycle
    nextEventCycle() const
    {
        if (count_ == 0)
            return kNoCycle;
        Cycle next = overflowMin_;
        for (Cycle c = base_; c < base_ + kSlots;) {
            const std::uint64_t s = c & kMask;
            std::uint64_t word = occupancy_[s >> 6]
                & ~((1ull << (s & 63)) - 1);
            if (word == 0) {
                c = (c | 63) + 1;
                continue;
            }
            const std::uint64_t slot = (s & ~63ull)
                + std::countr_zero(word);
            const Cycle cyc = base_ + ((slot - (base_ & kMask)) & kMask);
            if (cyc < base_ + kSlots && cyc < next)
                next = cyc;
            break;
        }
        return next;
    }

  private:
    /** Move spilled entries that now fit into the wheel window. */
    void
    refillOverflow()
    {
        if (overflow_.empty() || overflowMin_ >= base_ + kSlots)
            return;
        std::size_t keep = 0;
        overflowMin_ = kNoCycle;
        for (std::size_t i = 0; i < overflow_.size(); ++i) {
            Entry &e = overflow_[i];
            if (e.when < base_ + kSlots) {
                const std::uint64_t s = e.when & kMask;
                slots_[s].push_back(e);
                occupancy_[s >> 6] |= 1ull << (s & 63);
                continue;
            }
            if (e.when < overflowMin_)
                overflowMin_ = e.when;
            overflow_[keep++] = e;
        }
        overflow_.resize(keep);
    }

    std::vector<std::vector<Entry>> slots_;
    std::vector<std::uint64_t> occupancy_;
    std::vector<Entry> overflow_;
    Cycle overflowMin_ = kNoCycle;
    Cycle base_ = 0;
    std::uint64_t count_ = 0;
};

} // namespace fsoi::sim

#endif // FSOI_SIM_CALENDAR_HH
