/**
 * @file
 * Glue between the --stats-* command-line knobs (obs/cli.hh) and one
 * System: attaches the interval sampler before run() and writes the
 * end-of-run dumps afterwards. Owns the output file streams, so a
 * StatsIo must outlive the System's run.
 *
 * Typical use in a main():
 *
 *   auto opts = obs::parseCliOptions(argc, argv);
 *   sim::System system(cfg);
 *   sim::StatsIo stats(system, opts);   // attaches sampler if asked
 *   auto res = system.run();
 *   stats.finish();                     // end-of-run dumps
 *
 * A path of "-" means stdout. With --stats-interval the JSON/CSV file
 * carries the time series; without it, a single end-of-run snapshot.
 * Output files are opened in append mode so a main() that runs several
 * systems against the same knobs produces one concatenated series
 * (JSON dumps are one object per line, i.e. valid JSON-lines).
 */

#ifndef FSOI_SIM_STATS_IO_HH
#define FSOI_SIM_STATS_IO_HH

#include <fstream>
#include <string>

#include "obs/cli.hh"
#include "sim/system.hh"

namespace fsoi::sim {

class StatsIo
{
  public:
    StatsIo(System &system, const obs::CliOptions &opts);
    ~StatsIo();

    StatsIo(const StatsIo &) = delete;
    StatsIo &operator=(const StatsIo &) = delete;

    /** Write the end-of-run dumps; safe to call once after run(). */
    void finish();

  private:
    std::ostream &open(const std::string &path, std::ofstream &file);

    System &system_;
    obs::CliOptions opts_;
    std::ofstream jsonFile_;
    std::ofstream csvFile_;
    bool jsonSampled_ = false; //!< json sink carries the time series
    bool csvSampled_ = false;
    bool finished_ = false;
};

} // namespace fsoi::sim

#endif // FSOI_SIM_STATS_IO_HH
