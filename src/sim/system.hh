/**
 * @file
 * Top-level chip-multiprocessor assembly: N cores with private L1s, a
 * distributed shared L2 with directory slices (one per tile), memory
 * controllers, and one of five interconnects (mesh baseline, L0 / Lr1 /
 * Lr2 ideals, or the free-space optical interconnect), advanced in
 * lock-step over the populated cycles of a per-shard event calendar:
 * the run loop executes a cycle only when some component has work due,
 * and jumps straight across idle stretches (DESIGN.md §5e).
 *
 * This is the library's main entry point: configure a SystemConfig,
 * pick an application profile (or bind custom instruction streams),
 * call run(), and read the RunResult.
 */

#ifndef FSOI_SIM_SYSTEM_HH
#define FSOI_SIM_SYSTEM_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "coherence/directory.hh"
#include "coherence/functional_memory.hh"
#include "coherence/l1_cache.hh"
#include "coherence/transport.hh"
#include "common/pool.hh"
#include "cpu/core.hh"
#include "fault/fault_model.hh"
#include "fsoi/fsoi_network.hh"
#include "memory/memory_controller.hh"
#include "noc/ideal_network.hh"
#include "noc/mesh_network.hh"
#include "obs/flight_recorder.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "obs/watchdog.hh"
#include "obs/stat_registry.hh"
#include "sim/calendar.hh"
#include "sim/energy_model.hh"
#include "workload/apps.hh"

namespace fsoi::snapshot {
class SnapshotWriter;
class SnapshotReader;
} // namespace fsoi::snapshot

namespace fsoi::sim {

/** Which interconnect the system uses. */
enum class NetKind : std::uint8_t { Mesh, L0, Lr1, Lr2, Fsoi };

const char *netKindName(NetKind kind);

/** Full system configuration. */
struct SystemConfig
{
    int num_cores = 16;
    int num_memctls = 4;
    NetKind network = NetKind::Mesh;

    noc::MeshConfig mesh;
    fsoi::FsoiConfig fsoi;
    /**
     * Fault injection (dead channels/links, misalignment, BER). All
     * zero by default: no FaultInjector is constructed and every fault
     * hook in the datapaths stays on its null fast path, so a healthy
     * run is bit-identical to a build without the fault layer.
     */
    fault::FaultConfig fault;
    coherence::L1Config l1;
    coherence::DirConfig dir;
    memory::MemConfig mem;          //!< bytes_per_cycle derived below
    cpu::CoreConfig core;
    EnergyParams energy;

    double mem_gbytes_per_sec = 8.8; //!< aggregate off-chip bandwidth
    double freq_ghz = 3.3;

    /** FSOI Section 5.1: confirmations substitute invalidation acks. */
    bool opt_confirmation_ack = false;
    /** FSOI Section 5.1: ll/sc boolean subscription over mini-slots. */
    bool opt_sync_subscription = false;
    /** FSOI Section 5.2: request spacing + collision hints. */
    bool opt_data_collision = false;

    std::uint64_t seed = 1;
    Cycle max_cycles = 100'000'000;
    int local_hop_latency = 1; //!< L1 <-> same-tile directory

    /**
     * Intra-run worker threads for the parallel tick engine. The chip
     * is partitioned into contiguous tile + memory-controller ranges
     * (one shard per thread); each cycle the component phases fork to
     * the shards between two barriers while the interconnect itself
     * stays serial. Cross-shard sends are staged per shard and merged
     * in canonical (phase, shard, program) order — which equals the
     * serial loop's send order — so results are bit-identical at any
     * thread count. 1 = the serial loop (no staging, no barriers);
     * 0 = hardware concurrency. Clamped to [1, num_cores].
     */
    int threads = 1;

    /**
     * A run aborts after progress_stall_limit cycles without a retired
     * instruction. The completion and progress check cadences are
     * internal constants of the event-calendar engine (32 and 16384
     * cycles; see system.cc) — they are pure check alignments with no
     * effect on results, so they are no longer configuration. Neither
     * was ever part of the snapshot config fingerprint, so checkpoints
     * written before this change restore unchanged.
     */
    Cycle progress_stall_limit = 2'000'000;

    /**
     * Observability knobs. The flight recorder keeps the most recent
     * protocol events for post-mortem dumps (0 = off); the profiler
     * samples host wall time per tick phase every profile_stride
     * cycles (power of two, 0 = off; 256 keeps the clock reads under
     * half a percent of run time even where clock_gettime is a
     * syscall). Neither touches simulation state, so results are
     * bit-identical at any setting.
     */
    std::size_t flight_recorder_events = 1024;
    Cycle profile_stride = 256;

    /** Paper defaults for a given scale (16 or 64 cores). */
    static SystemConfig paperConfig(int cores, NetKind kind);
};

/** Everything a finished run reports. */
struct RunResult
{
    bool completed = false; //!< finished before max_cycles
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    // Network latency breakdown (Figure 6a components), in cycles.
    double avg_packet_latency = 0.0;
    double queuing = 0.0;
    double scheduling = 0.0;
    double network = 0.0;
    double collision_resolution = 0.0;

    std::uint64_t packets_delivered = 0;
    double meta_collision_rate = 0.0;
    double data_collision_rate = 0.0;
    double meta_tx_probability = 0.0; //!< per node per slot (Figure 9)
    std::uint64_t data_collisions_by_cat[5] = {0, 0, 0, 0, 0};
    double data_resolution_delay = 0.0;

    double l1_miss_rate = 0.0;
    std::uint64_t invalidations = 0;
    std::uint64_t sync_packets = 0;
    std::uint64_t control_bits = 0;

    EnergyReport energy;
    double avg_power_w = 0.0;

    // --- fault injection (all zero / empty on a healthy run) ---
    std::uint64_t retransmissions = 0;    //!< <net>.retx.packets
    std::uint64_t fault_bit_errors = 0;   //!< CRC-detected corruptions
    std::uint64_t blacklisted_channels = 0;
    std::uint64_t unroutable_drops = 0;
    /**
     * Non-empty when the run ended because the watchdog (or the eager
     * partition check) attributed the wedge to the injected faults; it
     * names the dead channels/links instead of panicking.
     */
    std::string fault_diagnosis;
};

/** A fully assembled simulated CMP. */
class System
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Bind every core to one thread of the given application. */
    void loadApp(const workload::AppProfile &profile);

    /** Bind a custom stream to one core (alternative to loadApp). */
    void bindStream(NodeId core,
                    std::unique_ptr<workload::InstrStream> stream);

    /** Run to completion (all threads done, system drained). */
    RunResult run();

    // --- component access (tests, benches) ---
    const SystemConfig &config() const { return config_; }
    noc::Network &network() { return *network_; }
    coherence::L1Cache &l1(NodeId node) { return *l1s_.at(node); }
    coherence::Directory &directory(NodeId node) { return *dirs_.at(node); }
    cpu::Core &core(NodeId node) { return *cores_.at(node); }
    memory::MemoryController &memctl(int i) { return *memctls_.at(i); }
    fsoi::FsoiNetwork *fsoiNetwork() { return fsoiNet_; }
    noc::MeshNetwork *meshNetwork() { return meshNet_; }
    fault::FaultInjector *faultInjector() { return fault_.get(); }
    const noc::MeshLayout &layout() const { return layout_; }

    /** Home directory node of a line address. */
    NodeId homeOf(Addr addr) const;
    /** Memory controller endpoint for a line address. */
    NodeId memctlOf(Addr addr) const;

    // --- observability ---

    /**
     * Every component's stats under hierarchical names
     * (system.core3.l1.miss_rate, fsoi.collisions.data, ...).
     */
    obs::StatRegistry &statRegistry() { return registry_; }
    const obs::StatRegistry &statRegistry() const { return registry_; }

    /**
     * Snapshot the registry every @p interval cycles during run(),
     * appending one record per epoch to @p os. Call before run(); the
     * stream must outlive the System.
     */
    void attachSampler(Cycle interval, std::ostream &os,
                       obs::IntervalSampler::Format format =
                           obs::IntervalSampler::Format::Jsonl);

    /** End-of-run reporting through the registry visitor. */
    void writeStatsText(std::ostream &os) const
    { obs::writeText(registry_, os); }
    void writeStatsJson(std::ostream &os) const
    { obs::writeJson(registry_, os); }
    void writeStatsCsv(std::ostream &os) const
    { obs::writeCsv(registry_, os); }

    /** Post-mortem ring of recent protocol events + in-flight misses. */
    obs::FlightRecorder &flightRecorder() { return flightRec_; }
    const obs::FlightRecorder &flightRecorder() const
    { return flightRec_; }

    /** Host-time attribution across the tick phases. */
    const obs::PhaseProfiler &profiler() const { return profiler_; }

    // --- checkpoint/restore (snapshot/) ---

    /**
     * Serialize the full simulation state into @p snap: functional
     * memory, interconnect, fault-injector runtime state, every core /
     * L1 / directory / memory controller (including statistics), and
     * the in-flight local-hop messages — one hash-guarded section per
     * component. Capture point is the top of a cycle (before the
     * network tick), where the threaded engine's staging state is
     * empty, so the snapshot is thread-count independent: identical
     * bytes at any --threads. The event calendar and wake bitmaps are
     * never serialized — wake cycles are pure functions of component
     * state, so restore re-seeds them (initShardRuntime) and the
     * resumed run stays bit-identical to the uninterrupted one.
     */
    void saveSnapshot(snapshot::SnapshotWriter &snap) const;

    /** saveSnapshot() to a hash-verified file (atomic temp + rename). */
    void saveCheckpoint(const std::string &path) const;

    /**
     * Restore state captured by saveSnapshot(). Call on a System built
     * from the same configuration, after instruction streams are bound
     * (loadApp/bindStream) and before run(); throws
     * snapshot::SnapshotError with a named diagnosis on a mismatched
     * snapshot. run() then continues from the captured cycle and is
     * bit-identical to the uninterrupted run at any thread count.
     * Host-side observability (flight recorder, profiler, watchdog
     * baseline) restarts fresh; none of it feeds simulation state.
     */
    void restoreSnapshot(const snapshot::SnapshotReader &snap);

    /** restoreSnapshot() from a checkpoint file. */
    void restoreCheckpoint(const std::string &path);

    /**
     * Periodic checkpointing: during run(), write a checkpoint to
     * @p path every @p every cycles (0 disables). Combined with
     * restoreCheckpoint() this makes a killed run resumable.
     */
    void setCheckpoint(std::string path, Cycle every);

  private:
    class LocalTransport;
    friend class LocalTransport;

    struct LocalMsg
    {
        Cycle due;
        NodeId dst;
        coherence::Message msg;
    };

    /**
     * A cross-shard send captured during a threaded component phase;
     * replayed through the network at the end-of-cycle merge.
     */
    struct StagedSend
    {
        NodeId src;
        NodeId dst;
        noc::PacketClass cls;
        coherence::Message msg;
    };

    /** A directory's FSOI control-bit broadcast, staged like a send. */
    struct StagedBit
    {
        NodeId src;
        NodeId dst;
        std::uint64_t tag;
    };

    /**
     * Staged sends are bucketed by the phase that issued them so the
     * merge can replay them in the serial loop's order: local-queue
     * drain, then memory controllers, directories, L1s, cores.
     */
    static constexpr int kNumSendBuckets = 5;

    /**
     * One spatial partition of the chip: a contiguous tile range
     * [tile_begin, tile_end) plus a contiguous memory-controller range
     * [mem_begin, mem_end), with all per-shard scheduler state. Shard
     * 0 always exists and runs on the main thread; shards 1.. run on
     * pool workers between the cycle barriers.
     *
     * The wake bitmaps index components by their *global* number but
     * each shard owns a full-size vector of which only its own range
     * is ever set — sharing one vector would race on word boundaries.
     */
    struct Shard
    {
        int tile_begin = 0;
        int tile_end = 0;
        int mem_begin = 0;
        int mem_end = 0;
        std::vector<std::uint64_t> memWake;
        std::vector<std::uint64_t> dirWake;
        std::vector<std::uint64_t> l1Wake;
        std::vector<std::uint64_t> coreWake;
        /** Future wakes for this shard's components; written only by
         *  the owning shard (or the main thread while workers park). */
        EventCalendar calendar;
        int coresRunning = 0; //!< not-done cores in the tile range
        /** Shard-local next event cycle, computed at the end of
         *  tickShard (min over wake bits, local queue, calendar). */
        Cycle nextEvent = 0;
        std::uint64_t eventsDispatched = 0; //!< host.sched telemetry
        std::deque<LocalMsg> localQueue;
        std::array<std::vector<StagedSend>, kNumSendBuckets> staged;
        std::vector<StagedBit> stagedBits;
        int bucket = 0; //!< send bucket for the phase now ticking
    };

    void routeMessage(NodeId dst, const coherence::Message &msg);
    /** Run every component phase of one shard for cycle now_. @p prof
     *  non-null (serial loop only) brackets the phases. */
    void tickShard(Shard &shard, obs::PhaseProfiler *prof);
    /** Replay staged sends + control bits in canonical serial order. */
    void mergeStaged();
    /** Reset wake bits, calendars and staging state for run(). */
    void initShardRuntime();
    bool runSerial(obs::Watchdog &watchdog);
    bool runParallel(obs::Watchdog &watchdog);
    /** Sampler + completion + watchdog tail of one cycle; true = stop
     *  the run loop. Sets @p completed on clean completion. */
    bool cycleEpilogue(obs::Watchdog &watchdog, bool &completed);
    /** Shard-local next event: wake bits due now+1, else the earliest
     *  of the local queue front and the shard calendar. */
    Cycle shardNextEvent(const Shard &shard) const;
    /**
     * The next cycle the run loop must execute: the min over every
     * shard's nextEvent, the interconnect's nextEventCycle(), the
     * sampler's next due epoch, the next periodic-checkpoint multiple,
     * the next progress-check multiple (always — the watchdog must
     * observe the same cadence the tick-every-cycle engine gave it)
     * and, once every core is done, the next completion-check
     * multiple. Clamped to [now_ + 1, max_cycles].
     */
    Cycle nextEpoch() const;
    /**
     * With fault injection active: write the post-mortem, record the
     * diagnosis in faultDiagnosis_ and return (the run ends cleanly).
     * Without it a watchdog trip is a simulator bug and panics.
     */
    void onWatchdogTrip(const obs::Watchdog::Report &report);
    void wireNetworkHandlers();
    void registerStats();
    bool quiescent() const;
    RunResult collectResult(Cycle cycles, bool completed) const;
    /** Section-name prefix the interconnect snapshots under (matches
     *  its stats scope: "mesh", "fsoi", or "net"). */
    const char *netSectionPrefix() const;

    SystemConfig config_;
    noc::MeshLayout layout_;
    coherence::FunctionalMemory funcMem_;

    // The injector must outlive the networks holding views of it.
    std::unique_ptr<fault::FaultInjector> fault_;
    std::string faultDiagnosis_;

    std::unique_ptr<noc::Network> network_;
    fsoi::FsoiNetwork *fsoiNet_ = nullptr; //!< non-owning view
    noc::MeshNetwork *meshNet_ = nullptr;  //!< non-owning view

    std::unique_ptr<LocalTransport> transport_;
    std::vector<std::unique_ptr<coherence::L1Cache>> l1s_;
    std::vector<std::unique_ptr<coherence::Directory>> dirs_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<std::unique_ptr<memory::MemoryController>> memctls_;

    int threads_ = 1;               //!< resolved worker count
    std::vector<Shard> shards_;     //!< threads_ entries; 0 = main
    std::vector<int> nodeShard_;    //!< endpoint -> owning shard
    /**
     * Per-source, per-class count of sends staged this cycle, checked
     * against Network::sendBudget() so a staging shard sees the same
     * backpressure the serial loop sees at send time. Indexed
     * [src * 2 + class]; entries are only written by the source's own
     * shard during a phase and zeroed at the merge.
     */
    std::vector<std::uint16_t> stagedCount_;
    /** True only inside the threaded fork/join region: LocalTransport
     *  stages cross-node sends instead of calling the network. */
    bool staging_ = false;
    Cycle now_ = 0;
    // host.sched.* telemetry (main-thread only; not simulation state).
    std::uint64_t schedExecuted_ = 0; //!< cycles the loop executed
    std::uint64_t schedSkipped_ = 0;  //!< cycles the calendar skipped

    // Checkpoint/restore runtime state. startCycle_ is where run()'s
    // loop begins (non-zero after a restore); restoredRun_ keeps
    // initShardRuntime() from wiping the restored local queues.
    std::string checkpointPath_;
    Cycle checkpointEvery_ = 0;
    Cycle startCycle_ = 0;
    bool restoredRun_ = false;

    obs::StatRegistry registry_;
    std::unique_ptr<obs::IntervalSampler> sampler_;
    obs::FlightRecorder flightRec_;
    obs::PhaseProfiler profiler_;
};

} // namespace fsoi::sim

#endif // FSOI_SIM_SYSTEM_HH
