/**
 * @file
 * Crash-resumable sweep campaigns over the checkpoint subsystem.
 *
 * A campaign is an ordered list of named sweep points executed inside a
 * campaign directory. Progress is journaled to an append-only JSONL
 * manifest (`campaign.jsonl`): one `start` record per attempt, one
 * `done` record per finished point carrying its result with doubles as
 * IEEE-754 bit patterns, so a resumed campaign reproduces the
 * consolidated report byte for byte. Each in-flight point also writes
 * periodic hash-verified checkpoints (`<point>.ckpt`), so a campaign
 * killed mid-run resumes with the same command line: completed points
 * are replayed from the journal, the in-flight point restores its
 * checkpoint and continues bit-identically, and a point that keeps
 * crashing is quarantined after max_attempts instead of wedging the
 * campaign forever.
 *
 * Warm-state reuse: points that share a warm family (identical config,
 * application and seed — the snapshot config fingerprint enforces it)
 * run their first warmup_cycles once, checkpoint, and every family
 * member forks from that snapshot instead of re-simulating the warmup.
 */

#ifndef FSOI_SIM_CAMPAIGN_HH
#define FSOI_SIM_CAMPAIGN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/sweep_runner.hh"

namespace fsoi::sim {

/** One named, resumable point of a campaign. */
struct CampaignPoint
{
    std::string name; //!< unique and filesystem-safe (used in paths)
    SweepJob job;
    /**
     * Non-empty = share a post-warmup snapshot with every point of the
     * same family. Family members must be identical up to the warmup
     * cycle (same config, app, seed); differing runtime horizons
     * (max_cycles) are the intended use.
     */
    std::string warm_family;
};

struct CampaignConfig
{
    std::string dir;                  //!< journal + checkpoint directory
    Cycle checkpoint_every = 500'000; //!< per-point checkpoint period
    int max_attempts = 3;             //!< quarantine threshold
    Cycle warmup_cycles = 0;          //!< 0 = no warm-state reuse
    int jobs = 1;                     //!< worker processes' thread pool
};

/** What one point contributed to the consolidated report. */
struct CampaignOutcome
{
    std::string name;
    int attempts = 0;
    bool quarantined = false;
    RunResult result; //!< meaningless when quarantined
};

class CampaignRunner
{
  public:
    explicit CampaignRunner(CampaignConfig config);
    ~CampaignRunner();

    CampaignRunner(const CampaignRunner &) = delete;
    CampaignRunner &operator=(const CampaignRunner &) = delete;

    /**
     * Run (or resume) the campaign. Outcomes come back in point order
     * regardless of jobs, and a resumed campaign's outcomes are
     * bit-identical to an uninterrupted one's.
     */
    std::vector<CampaignOutcome> run(std::vector<CampaignPoint> points);

    /**
     * Consolidated campaign report: stable field order, doubles
     * printed with %.17g from their exact bit patterns, so resumed
     * and uninterrupted campaigns emit byte-identical files.
     */
    static void writeJson(std::ostream &os,
                          const std::vector<CampaignOutcome> &outcomes);

  private:
    struct Journal;

    CampaignOutcome runPoint(const CampaignPoint &point, int attempt);
    std::string pointCheckpoint(const std::string &name) const;
    std::string warmCheckpoint(const std::string &family) const;
    /** Ensure the family's post-warmup snapshot exists; returns its
     *  path, or empty when the warmup completed the run outright. */
    std::string ensureWarmState(const CampaignPoint &point);

    CampaignConfig config_;
    std::unique_ptr<Journal> journal_;
};

} // namespace fsoi::sim

#endif // FSOI_SIM_CAMPAIGN_HH
