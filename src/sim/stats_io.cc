#include "sim/stats_io.hh"

#include <iostream>

#include "common/logging.hh"

namespace fsoi::sim {

std::ostream &
StatsIo::open(const std::string &path, std::ofstream &file)
{
    if (path == "-")
        return std::cout;
    if (!file.is_open()) {
        file.open(path, std::ios::app);
        if (!file)
            fatal("cannot open stats output '%s'", path.c_str());
    }
    return file;
}

StatsIo::StatsIo(System &system, const obs::CliOptions &opts)
    : system_(system), opts_(opts)
{
    if (opts_.stats_interval == 0)
        return;
    // The sampler writes one record per epoch; the first requested
    // format carries the series, the other still gets a final dump.
    if (!opts_.stats_json.empty()) {
        system_.attachSampler(opts_.stats_interval,
                              open(opts_.stats_json, jsonFile_),
                              obs::IntervalSampler::Format::Jsonl);
        jsonSampled_ = true;
    } else if (!opts_.stats_csv.empty()) {
        system_.attachSampler(opts_.stats_interval,
                              open(opts_.stats_csv, csvFile_),
                              obs::IntervalSampler::Format::Csv);
        csvSampled_ = true;
    }
}

void
StatsIo::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (!opts_.stats_json.empty() && !jsonSampled_)
        system_.writeStatsJson(open(opts_.stats_json, jsonFile_));
    if (!opts_.stats_csv.empty() && !csvSampled_)
        system_.writeStatsCsv(open(opts_.stats_csv, csvFile_));
    if (opts_.stats_text)
        system_.writeStatsText(std::cout);
    jsonFile_.flush();
    csvFile_.flush();
}

StatsIo::~StatsIo()
{
    finish();
}

} // namespace fsoi::sim
