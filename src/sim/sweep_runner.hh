/**
 * @file
 * Parallel sweep execution: every figure in the paper's evaluation is
 * a set of independent (SystemConfig, application, scale) points, so
 * they fan out across a worker pool, one whole System per task.
 *
 * Determinism: a System is constructed, loaded and run entirely inside
 * one worker, shares nothing with other runs (stats registries, pools
 * and RNGs are all per-System), and the simulation itself is seeded
 * and single-threaded — so a point's RunResult is a pure function of
 * its job, independent of the worker count. Callers that collect
 * futures in submission order therefore produce byte-identical output
 * at any --jobs level, including the inline jobs<=1 path.
 */

#ifndef FSOI_SIM_SWEEP_RUNNER_HH
#define FSOI_SIM_SWEEP_RUNNER_HH

#include <future>
#include <memory>

#include "common/thread_pool.hh"
#include "sim/system.hh"
#include "workload/apps.hh"

namespace fsoi::sim {

/** One independent simulation point of a sweep. */
struct SweepJob
{
    SystemConfig config;
    workload::AppProfile app;
    double scale = 1.0;
};

/** A finished run, optionally with the System kept for inspection. */
struct SweepOutcome
{
    RunResult result;
    std::unique_ptr<System> system; //!< null unless submitKeep was used
};

class SweepRunner
{
  public:
    /** @p jobs worker threads; 0 = hardware concurrency, 1 = inline. */
    explicit SweepRunner(int jobs = 1);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    int jobs() const { return jobs_; }

    /** Enqueue a run; the future yields its RunResult. */
    std::future<RunResult> submit(SweepJob job);

    /**
     * Like submit(), but the finished System rides along for benches
     * that read component state (e.g. per-L1 latency histograms).
     * The System was built and run on a worker thread; hand it back to
     * exactly one thread for inspection.
     */
    std::future<SweepOutcome> submitKeep(SweepJob job);

    /** The execution path every submission funnels through. */
    static SweepOutcome runJob(SweepJob job, bool keep_system);

  private:
    int jobs_;
    std::unique_ptr<common::ThreadPool> pool_; //!< null when jobs_ <= 1
};

} // namespace fsoi::sim

#endif // FSOI_SIM_SWEEP_RUNNER_HH
