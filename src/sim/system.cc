#include "sim/system.hh"
#include <cstdio>
#include <cstdlib>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <bit>
#include <future>

#include "analytic/backoff_model.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "obs/crash.hh"
#include "obs/watchdog.hh"

namespace fsoi::sim {

using coherence::Message;
using coherence::MsgType;
using noc::Packet;
using noc::PacketClass;

namespace {

/** Set component @p idx's bit in a shard-owned wake bitmap. */
inline void
setWakeBit(std::vector<std::uint64_t> &words, int idx)
{
    words[static_cast<std::size_t>(idx) >> 6] |= 1ull << (idx & 63);
}

/**
 * Visit every set bit (ascending), calling @p fn with the component
 * index; a false return clears the bit (the component went inactive).
 * fn never touches the bitmap it is iterating — component ticks wake
 * only *other* component kinds — so in-place clearing is safe.
 */
template <typename Fn>
inline void
forEachWake(std::vector<std::uint64_t> &words, Fn &&fn)
{
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t bits = words[w];
        while (bits) {
            const int b = std::countr_zero(bits);
            bits &= bits - 1;
            if (!fn(static_cast<int>(w << 6) + b))
                words[w] &= ~(1ull << b);
        }
    }
}

/**
 * Check-cadence constants of the run loop. Both are pure alignments —
 * a completion or progress check never mutates simulation state — so
 * they are not configuration. The progress cadence is an
 * unconditional epoch wake source (the watchdog must sample the
 * instruction/network feeds at the same cycles the tick-every-cycle
 * engine gave it); the completion cadence joins the epoch only once
 * every core is done.
 */
constexpr Cycle kCompletionStride = 32;
constexpr Cycle kProgressStride = 16384;

} // namespace

const char *
netKindName(NetKind kind)
{
    switch (kind) {
      case NetKind::Mesh: return "mesh";
      case NetKind::L0: return "L0";
      case NetKind::Lr1: return "Lr1";
      case NetKind::Lr2: return "Lr2";
      case NetKind::Fsoi: return "FSOI";
    }
    return "?";
}

SystemConfig
SystemConfig::paperConfig(int cores, NetKind kind)
{
    SystemConfig cfg;
    cfg.num_cores = cores;
    cfg.num_memctls = cores <= 16 ? 4 : 8;
    cfg.network = kind;
    if (cores > 16)
        cfg.fsoi.phase_array = true;
    if (kind == NetKind::Fsoi) {
        cfg.opt_confirmation_ack = true;
        cfg.opt_sync_subscription = true;
        cfg.opt_data_collision = true;
    }
    return cfg;
}

/** Transport gluing controllers to the network / local short-circuit. */
class System::LocalTransport : public coherence::Transport
{
  public:
    explicit LocalTransport(System &sys) : sys_(sys) {}

    bool
    trySend(NodeId src, NodeId dst, const Message &msg) override
    {
        if (src == dst) {
            // Same-node messages stay on the sender's shard, so this
            // queue is shard-private at any thread count.
            sys_.shards_[sys_.nodeShard_[src]].localQueue.push_back(
                LocalMsg{
                    sys_.now_
                        + static_cast<Cycle>(
                            sys_.config_.local_hop_latency),
                    dst, msg});
            recordSend(src, dst, msg);
            return true;
        }
        const PacketClass cls = coherence::isDataMessage(msg.type)
            ? PacketClass::Data : PacketClass::Meta;
        if (sys_.staging_)
            return stageSend(src, dst, cls, msg);
        if (!sys_.network_->canAccept(src, cls)) {
            FSOI_TRACE_POINT(TraceCat::Sim, 3, "send_blocked",
                             sys_.now_, src, {"line", msg.line},
                             {"type",
                              static_cast<std::uint64_t>(msg.type)});
            return false;
        }
        Packet pkt = noc::makePacket(
            src, dst, cls, coherence::packetKindOf(msg.type),
            coherence::canonicalPayload(msg));
        if (!sys_.network_->send(std::move(pkt)))
            return false;
        recordSend(src, dst, msg);
        return true;
    }

  private:
    /**
     * Threaded component phase: capture the send on the source's
     * shard instead of touching the (serial-only) network. Admission
     * is checked against the network's remaining send budget so a
     * shard sees exactly the backpressure the serial loop would see
     * at its send's position in the canonical order. Packets the mesh
     * would drop as unroutable never occupy queue space in the serial
     * loop either, so they are staged without consuming budget; the
     * merge-time send() performs the actual drop + count.
     */
    bool
    stageSend(NodeId src, NodeId dst, PacketClass cls,
              const Message &msg)
    {
        const std::size_t slot = static_cast<std::size_t>(src) * 2
            + static_cast<int>(cls);
        const int budget = sys_.network_->sendBudget(src, cls);
        if (static_cast<int>(sys_.stagedCount_[slot]) >= budget) {
            FSOI_TRACE_POINT(TraceCat::Sim, 3, "send_blocked",
                             sys_.now_, src, {"line", msg.line},
                             {"type",
                              static_cast<std::uint64_t>(msg.type)});
            return false;
        }
        const bool drop = sys_.meshNet_ && sys_.fault_
            && !sys_.meshNet_->reachable(src, dst);
        if (!drop)
            ++sys_.stagedCount_[slot];
        Shard &shard = sys_.shards_[sys_.nodeShard_[src]];
        shard.staged[shard.bucket].push_back(
            StagedSend{src, dst, cls, msg});
        recordSend(src, dst, msg);
        return true;
    }

    void
    recordSend(NodeId src, NodeId dst, const Message &msg)
    {
        if (sys_.flightRec_.enabled()) {
            sys_.flightRec_.record(
                obs::FlightEventKind::MsgSend, sys_.now_, src, dst,
                msg.line, static_cast<std::uint8_t>(msg.type));
        }
    }

  private:
    System &sys_;
};

System::System(const SystemConfig &config)
    : config_(config), layout_(config.num_cores, config.num_memctls),
      flightRec_(config.flight_recorder_events),
      profiler_(config.profile_stride)
{
    // Derive dependent parameters.
    config_.mem.bytes_per_cycle = config_.mem_gbytes_per_sec
        / config_.num_memctls / config_.freq_ghz;

    const bool is_fsoi = config_.network == NetKind::Fsoi;
    if (!is_fsoi
        && (config_.opt_confirmation_ack || config_.opt_sync_subscription
            || config_.opt_data_collision)) {
        fatal("FSOI optimizations enabled on a %s interconnect",
              netKindName(config_.network));
    }
    // Home interleaving consumes the low line-address bits; the L2
    // slices must index their sets with the bits above them.
    config_.dir.geometry.index_skip_bits =
        static_cast<std::uint32_t>(std::bit_width(
            static_cast<unsigned>(config_.num_cores) - 1));
    config_.dir.geometry.hash_index = true;

    config_.l1.confirmation_acks = config_.opt_confirmation_ack;
    config_.dir.confirmation_acks = config_.opt_confirmation_ack;
    config_.dir.confirmation_gating = is_fsoi;
    config_.dir.sync_subscription = config_.opt_sync_subscription;
    config_.core.sync_subscription = config_.opt_sync_subscription;
    config_.core.seed = config_.seed;
    config_.fsoi.request_spacing = config_.opt_data_collision;
    config_.fsoi.collision_hints = config_.opt_data_collision;
    config_.fsoi.seed = config_.seed * 0x9e3779b9ULL + 17;

    // A System without faults constructs no injector at all, and the
    // datapaths' null fast paths make the fault layer a true no-op.
    if (config_.fault.enabled()) {
        if (config_.fault.seed == 0)
            config_.fault.seed = config_.seed * 0x9e3779b9ULL + 29;
        fault_ = std::make_unique<fault::FaultInjector>(
            config_.fault,
            fault::FaultTopology{layout_.numEndpoints(),
                                 config_.fsoi.receivers_per_lane,
                                 layout_.side()});
    }

    switch (config_.network) {
      case NetKind::Mesh:
        network_ = std::make_unique<noc::MeshNetwork>(layout_,
                                                      config_.mesh,
                                                      fault_.get());
        meshNet_ = static_cast<noc::MeshNetwork *>(network_.get());
        break;
      case NetKind::L0:
        network_ = std::make_unique<noc::IdealNetwork>(
            layout_, noc::makeL0Config());
        break;
      case NetKind::Lr1:
        network_ = std::make_unique<noc::IdealNetwork>(
            layout_, noc::makeLr1Config());
        break;
      case NetKind::Lr2:
        network_ = std::make_unique<noc::IdealNetwork>(
            layout_, noc::makeLr2Config());
        break;
      case NetKind::Fsoi:
        network_ = std::make_unique<fsoi::FsoiNetwork>(layout_,
                                                       config_.fsoi,
                                                       fault_.get());
        fsoiNet_ = static_cast<fsoi::FsoiNetwork *>(network_.get());
        break;
    }

    transport_ = std::make_unique<LocalTransport>(*this);

    auto home_fn = [this](Addr addr) { return homeOf(addr); };
    auto memctl_fn = [this](Addr addr) { return memctlOf(addr); };

    for (int n = 0; n < config_.num_cores; ++n) {
        const NodeId node = static_cast<NodeId>(n);
        l1s_.push_back(std::make_unique<coherence::L1Cache>(
            node, config_.l1, *transport_, funcMem_, home_fn));
        dirs_.push_back(std::make_unique<coherence::Directory>(
            node, config_.dir, *transport_, funcMem_, memctl_fn));
        cores_.push_back(std::make_unique<cpu::Core>(
            node, config_.core, *l1s_.back(), *transport_, home_fn));
    }
    for (int m = 0; m < config_.num_memctls; ++m) {
        const NodeId node = static_cast<NodeId>(config_.num_cores + m);
        memctls_.push_back(std::make_unique<memory::MemoryController>(
            node, config_.mem, *transport_));
    }

    // Spatial partition for the tick engine: contiguous tile and
    // memory-controller ranges per shard, balanced to within one.
    // threads=1 degenerates to a single shard on the main thread.
    threads_ = std::max(
        1, std::min(common::resolveJobs(config_.threads),
                    config_.num_cores));
    const int num_tiles = config_.num_cores;
    const int num_mems = config_.num_memctls;
    const int tile_words = (num_tiles + 63) / 64;
    const int mem_words = (num_mems + 63) / 64;
    nodeShard_.assign(
        static_cast<std::size_t>(layout_.numEndpoints()), 0);
    shards_.resize(static_cast<std::size_t>(threads_));
    for (int s = 0; s < threads_; ++s) {
        Shard &shard = shards_[static_cast<std::size_t>(s)];
        shard.tile_begin = s * num_tiles / threads_;
        shard.tile_end = (s + 1) * num_tiles / threads_;
        shard.mem_begin = s * num_mems / threads_;
        shard.mem_end = (s + 1) * num_mems / threads_;
        shard.memWake.assign(static_cast<std::size_t>(mem_words), 0);
        shard.dirWake.assign(static_cast<std::size_t>(tile_words), 0);
        shard.l1Wake.assign(static_cast<std::size_t>(tile_words), 0);
        shard.coreWake.assign(static_cast<std::size_t>(tile_words), 0);
        for (int n = shard.tile_begin; n < shard.tile_end; ++n)
            nodeShard_[static_cast<std::size_t>(n)] = s;
        for (int m = shard.mem_begin; m < shard.mem_end; ++m)
            nodeShard_[static_cast<std::size_t>(num_tiles + m)] = s;
    }
    stagedCount_.assign(
        static_cast<std::size_t>(layout_.numEndpoints()) * 2, 0);

    // A sleeping core has no scheduled wake while it waits on a
    // delivery (completion callback or control bit); the hook queues
    // it for the core phase of the cycle the delivery lands in —
    // exactly the cycle the tick-every-cycle engine re-examined it.
    for (int n = 0; n < config_.num_cores; ++n) {
        cores_[n]->setWakeHook([this, n] {
            setWakeBit(
                shards_[static_cast<std::size_t>(nodeShard_[n])].coreWake,
                n);
        });
    }
    if (threads_ > 1) {
        // Shared-by-design structures get their internal locks; both
        // are off the determinism-relevant path (see their headers).
        funcMem_.enableLocking(true);
        flightRec_.enableLocking(true);
    }

    wireNetworkHandlers();
    registerStats();

    // Abnormal-exit diagnostics: panics, fatal asserts and signals
    // flush the trace ring and dump this recorder (see obs/crash.hh).
    obs::installCrashHooks();
    flightRec_.setDetailNamer(
        [](obs::FlightEventKind kind,
           std::uint8_t detail) -> const char * {
            switch (kind) {
              case obs::FlightEventKind::MsgSend:
              case obs::FlightEventKind::MsgRecv:
                return coherence::msgTypeName(
                    static_cast<MsgType>(detail));
              case obs::FlightEventKind::MshrAlloc:
                return coherence::L1Cache::wantName(detail);
              case obs::FlightEventKind::MshrFree:
                return coherence::l1StateName(
                    static_cast<coherence::L1State>(detail));
              case obs::FlightEventKind::DirTxnStart:
              case obs::FlightEventKind::DirTxnEnd:
                return coherence::Directory::txnKindName(detail);
            }
            return nullptr;
        });
    flightRec_.setContextWriter([this](std::ostream &os) {
        os << "\"now\":" << now_ << ",\"network\":\""
           << netKindName(config_.network) << "\",\"cores\":[";
        for (int n = 0; n < config_.num_cores; ++n) {
            os << (n ? "," : "") << "{\"node\":" << n << ",\"done\":"
               << (cores_[n]->done() ? "true" : "false")
               << ",\"outstanding_misses\":"
               << l1s_[n]->outstandingMisses() << "}";
        }
        os << "]";
        if (meshNet_) {
            os << ",\"mesh\":";
            meshNet_->writeLinkStateJson(os);
        }
        if (fsoiNet_) {
            os << ",\"fsoi\":";
            fsoiNet_->writeLaneStateJson(os);
        }
        if (fault_) {
            os << ",\"fault\":";
            fault_->writeJson(os);
        }
    });
    for (auto &l1 : l1s_)
        l1->setFlightRecorder(&flightRec_);
    for (auto &dir : dirs_)
        dir->setFlightRecorder(&flightRec_);
}

System::~System() = default;

void
System::registerStats()
{
    const obs::Scope root(registry_);
    const obs::Scope sys = root.scope("system");
    for (int n = 0; n < config_.num_cores; ++n) {
        const std::string id = std::to_string(n);
        const obs::Scope tile = sys.scope("core" + id);
        cores_[n]->registerStats(tile);
        l1s_[n]->registerStats(tile.scope("l1"));
        dirs_[n]->registerStats(sys.scope("dir" + id));
    }
    for (int m = 0; m < config_.num_memctls; ++m)
        memctls_[m]->registerStats(sys.scope("mem" + std::to_string(m)));

    // The interconnect publishes under its kind so FSOI-only series
    // (fsoi.collisions.data, ...) keep stable names across configs.
    const char *net_scope = "net";
    switch (config_.network) {
      case NetKind::Mesh: net_scope = "mesh"; break;
      case NetKind::Fsoi: net_scope = "fsoi"; break;
      default: break;
    }
    network_->registerStats(root.scope(net_scope));

    if (fault_)
        fault_->registerStats(root.scope("fault"));

    // Host-side self-profile: nondeterministic wall-clock data, so it
    // lives under its own top-level prefix that golden-stats diffs
    // ignore (tools/stats_report skips "host." by default).
    const obs::Scope host = root.scope("host");
    profiler_.registerStats(host);

    // Event-calendar telemetry. Also under "host.": the wake schedule
    // is engine bookkeeping (a restored run may execute a slightly
    // different superset of cycles than the uninterrupted one), not
    // simulation state.
    const obs::Scope sched = host.scope("sched");
    sched.derived("events_dispatched", [this] {
        std::uint64_t total = 0;
        for (const auto &shard : shards_)
            total += shard.eventsDispatched;
        return static_cast<double>(total);
    });
    sched.derived("cycles_executed", [this] {
        return static_cast<double>(schedExecuted_);
    });
    sched.derived("cycles_skipped", [this] {
        return static_cast<double>(schedSkipped_);
    });

    // Cross-tile aggregates (registry-side, not per-component).
    sys.derived("cycles",
                [this] { return static_cast<double>(now_); });
    sys.derived("instructions", [this] {
        Counter total;
        for (const auto &core : cores_)
            total += core->stats().instructions;
        return static_cast<double>(total.value());
    });
    sys.derived("l1.miss_rate", [this] {
        Counter loads, stores, misses;
        for (const auto &l1 : l1s_) {
            loads += l1->stats().loads;
            stores += l1->stats().stores;
            misses += l1->stats().misses;
        }
        const auto accesses = loads.value() + stores.value();
        return accesses
            ? static_cast<double>(misses.value()) / accesses : 0.0;
    });
    sys.derived("invalidations", [this] {
        Counter total;
        for (const auto &l1 : l1s_)
            total += l1->stats().invalidations_received;
        return static_cast<double>(total.value());
    });
}

void
System::attachSampler(Cycle interval, std::ostream &os,
                      obs::IntervalSampler::Format format)
{
    sampler_ = std::make_unique<obs::IntervalSampler>(registry_, interval,
                                                      os, format);
}

NodeId
System::homeOf(Addr addr) const
{
    const Addr line = addr / config_.l1.geometry.line_bytes;
    return static_cast<NodeId>(line % config_.num_cores);
}

NodeId
System::memctlOf(Addr addr) const
{
    const Addr line = addr / config_.l1.geometry.line_bytes;
    return static_cast<NodeId>(config_.num_cores
                               + line % config_.num_memctls);
}

void
System::routeMessage(NodeId dst, const Message &msg)
{
    if (flightRec_.enabled()) {
        flightRec_.record(obs::FlightEventKind::MsgRecv, now_, dst,
                          msg.requester, msg.line,
                          static_cast<std::uint8_t>(msg.type));
    }
    // Deliveries happen before the target's own phase in the cycle,
    // when the old tick-everything loop had last stamped component
    // clocks at now-1; sync the sleeping target to that same cycle so
    // handleMessage sees the clock it always saw. The wake bit queues
    // the target for ticking from here on (until it idles again).
    const Cycle sync = now_ ? now_ - 1 : 0;
    Shard &shard = shards_[nodeShard_[dst]];
    if (static_cast<int>(dst) >= config_.num_cores) {
        const int m = static_cast<int>(dst) - config_.num_cores;
        memctls_[m]->syncClock(sync);
        memctls_[m]->handleMessage(msg);
        setWakeBit(shard.memWake, m);
        return;
    }
    switch (msg.type) {
      case MsgType::ReqSh:
      case MsgType::ReqEx:
      case MsgType::ReqUpg:
      case MsgType::SyncLl:
      case MsgType::SyncSc:
      case MsgType::WriteBack:
      case MsgType::InvAck:
      case MsgType::InvAckData:
        FSOI_TRACE_POINT(TraceCat::Sim, 3, "route_to_dir", now_, dst,
                         {"line", msg.line},
                         {"type", static_cast<std::uint64_t>(msg.type)},
                         {"from", msg.requester});
        [[fallthrough]];
      case MsgType::DwgAck:
      case MsgType::DwgAckData:
      case MsgType::MemReply:
        dirs_[dst]->syncClock(sync);
        dirs_[dst]->handleMessage(msg);
        setWakeBit(shard.dirWake, static_cast<int>(dst));
        return;
      case MsgType::DataS:
      case MsgType::DataE:
      case MsgType::DataM:
      case MsgType::ExcAck:
      case MsgType::Inv:
      case MsgType::Dwg:
      case MsgType::Nack:
        l1s_[dst]->syncClock(sync);
        l1s_[dst]->handleMessage(msg);
        setWakeBit(shard.l1Wake, static_cast<int>(dst));
        return;
      default:
        panic("unroutable message %s to node %u",
              msgTypeName(msg.type), dst);
    }
}

void
System::wireNetworkHandlers()
{
    for (int ep = 0; ep < layout_.numEndpoints(); ++ep) {
        const NodeId node = static_cast<NodeId>(ep);
        network_->setHandler(node, [this, node](Packet &pkt) {
            routeMessage(node, pkt.payloadAs<Message>());
        });
    }
    if (!fsoiNet_)
        return;
    for (int n = 0; n < config_.num_cores; ++n) {
        const NodeId node = static_cast<NodeId>(n);
        // Confirmations go back to the *sender*; only the directory
        // cares (per-line gating + confirmation-as-ack).
        fsoiNet_->setConfirmHandler(node, [this, node](const Packet &pkt) {
            // Same clock contract as routeMessage: confirmations land
            // during the network tick, before the directory's phase.
            dirs_[node]->syncClock(now_ ? now_ - 1 : 0);
            dirs_[node]->onConfirm(pkt.payloadAs<Message>());
            setWakeBit(shards_[nodeShard_[node]].dirWake,
                       static_cast<int>(node));
        });
        fsoiNet_->setControlBitHandler(
            node, [this, node](NodeId, std::uint64_t tag) {
                cores_[node]->onControlBit(tag);
            });
        dirs_[n]->setControlBitSender(
            [this, node](NodeId dst, std::uint64_t tag) {
                if (staging_) {
                    shards_[nodeShard_[node]].stagedBits.push_back(
                        StagedBit{node, dst, tag});
                    return;
                }
                fsoiNet_->sendControlBit(node, dst, tag);
            });
    }
    for (int m = 0; m < config_.num_memctls; ++m) {
        const NodeId node = static_cast<NodeId>(config_.num_cores + m);
        fsoiNet_->setConfirmHandler(node, [](const Packet &) {});
        fsoiNet_->setControlBitHandler(node,
                                       [](NodeId, std::uint64_t) {});
    }
}

void
System::loadApp(const workload::AppProfile &profile)
{
    for (int n = 0; n < config_.num_cores; ++n) {
        cores_[n]->bind(workload::makeAppStream(
            profile, n, config_.num_cores, config_.seed));
    }
}

void
System::bindStream(NodeId core,
                   std::unique_ptr<workload::InstrStream> stream)
{
    cores_.at(core)->bind(std::move(stream));
}

bool
System::quiescent() const
{
    if (!network_->idle())
        return false;
    for (const auto &shard : shards_)
        if (!shard.localQueue.empty())
            return false;
    for (const auto &l1 : l1s_)
        if (!l1->quiescent())
            return false;
    for (const auto &dir : dirs_)
        if (!dir->quiescent())
            return false;
    for (const auto &mem : memctls_)
        if (!mem->quiescent())
            return false;
    return true;
}

RunResult
System::run()
{
    // A mesh partitioned by dead links can never satisfy every miss;
    // diagnose that up front instead of simulating into a guaranteed
    // wedge (and instead of a watchdog deadlock panic).
    if (fault_ && meshNet_ && !meshNet_->fullyConnected()) {
        faultDiagnosis_ = "partitioned mesh (unreachable routers): "
            + fault_->diagnose();
        warn("%s", faultDiagnosis_.c_str());
        return collectResult(0, false);
    }

    obs::Watchdog::Config wd_config{config_.progress_stall_limit, 0};
    if (fault_) {
        // Healthy retransmission bursts may hold the instruction feed
        // flat for the full bounded-backoff budget of every packet a
        // lane can queue; stretch the watchdog's window by that much
        // so retry traffic is not misread as a livelock storm.
        analytic::BackoffParams bp;
        bp.window = config_.fsoi.backoff_window;
        bp.base = config_.fsoi.backoff_base;
        bp.confirmation_delay = config_.fsoi.confirmation_delay;
        int queue_depth = config_.fsoi.queue_capacity;
        if (fsoiNet_) {
            bp.slot_cycles = fsoiNet_->slotCycles(PacketClass::Data);
        } else {
            // Mesh NACK round trip across the diameter plays the role
            // of the retry slot.
            bp.slot_cycles = 2 * 2 * (layout_.side() - 1)
                * (config_.mesh.router_cycles + config_.mesh.link_cycles);
            queue_depth = config_.mesh.inject_queue_capacity;
        }
        bp.slot_cycles = std::max(bp.slot_cycles, 1);
        wd_config.retry_grace =
            analytic::boundedResolutionBudget(bp, config_.fault.max_retx)
            * static_cast<Cycle>(queue_depth);
    }
    obs::Watchdog watchdog(wd_config);
    initShardRuntime();
    const bool completed = threads_ > 1 ? runParallel(watchdog)
                                        : runSerial(watchdog);

    if (!completed && faultDiagnosis_.empty())
        warn("run hit max_cycles=%llu before completing",
             static_cast<unsigned long long>(config_.max_cycles));

    // Cores asleep when the run ends still owe active/stall time for
    // the skipped tail; account through the last cycle the
    // tick-every-cycle engine would have executed.
    const Cycle last = now_ < config_.max_cycles
        ? now_
        : (config_.max_cycles ? config_.max_cycles - 1 : 0);
    for (auto &core : cores_)
        core->syncStats(last);

    if (sampler_)
        sampler_->finish(now_);
    return collectResult(now_, completed);
}

void
System::initShardRuntime()
{
    for (auto &shard : shards_) {
        std::fill(shard.memWake.begin(), shard.memWake.end(), 0);
        std::fill(shard.dirWake.begin(), shard.dirWake.end(), 0);
        std::fill(shard.l1Wake.begin(), shard.l1Wake.end(), 0);
        std::fill(shard.coreWake.begin(), shard.coreWake.end(), 0);
        shard.calendar.reset(startCycle_);
        shard.nextEvent = startCycle_ + 1;
        shard.eventsDispatched = 0;
        shard.coresRunning = 0;
        // A restored run resumes with the snapshot's in-flight local
        // messages; a fresh run starts empty either way.
        if (!restoredRun_)
            shard.localQueue.clear();
        for (auto &bucket : shard.staged)
            bucket.clear();
        shard.stagedBits.clear();
        shard.bucket = 0;

        // Seed the scheduler from component state. The calendar and
        // bitmaps are never serialized: every component with pending
        // work (and every unfinished core) is woken once at the start
        // cycle, and its first tick re-arms an exact wake through
        // nextEventCycle(). A wake the uninterrupted run would not
        // have executed is a harmless spurious tick — the cycle is one
        // the tick-every-cycle engine executed anyway, and a tick at a
        // cycle with nothing due has no observable effect (cores fold
        // the skipped span in through catchUp either way).
        for (int n = shard.tile_begin; n < shard.tile_end; ++n) {
            if (!cores_[n]->done()) {
                ++shard.coresRunning;
                setWakeBit(shard.coreWake, n);
            }
            if (dirs_[n]->active())
                setWakeBit(shard.dirWake, n);
            if (l1s_[n]->active())
                setWakeBit(shard.l1Wake, n);
        }
        for (int m = shard.mem_begin; m < shard.mem_end; ++m) {
            if (memctls_[m]->active())
                setWakeBit(shard.memWake, m);
        }
    }
    std::fill(stagedCount_.begin(), stagedCount_.end(), 0);
    staging_ = false;
    schedExecuted_ = 0;
    schedSkipped_ = 0;
}

/**
 * All component phases of one shard for cycle now_, in the serial
 * loop's phase order. Only components with a set wake bit — woken by a
 * delivery, a matured calendar entry, or their own lingering next-cycle
 * work — are visited at all, so a quiescent tile costs zero, not even
 * a clock refresh (deliveries re-sync on demand; see routeMessage).
 *
 * The re-arm protocol after every tick is what keeps the calendar
 * exact: nextEventCycle(now_) == now_ + 1 keeps the wake bit (the
 * common back-to-back case pays no calendar traffic), a later wake
 * files a calendar entry, kNoCycle means the component sleeps until a
 * delivery sets its bit again. A woken component that was satisfied
 * through another path first just no-op-ticks once — a tick at a cycle
 * with nothing due was what the tick-every-cycle engine did anyway.
 */
void
System::tickShard(Shard &shard, obs::PhaseProfiler *prof)
{
    // Calendar wakes that matured in (last executed cycle, now_]
    // become wake bits for the phases below.
    shard.calendar.popDue(
        now_, [&shard](WakeKind kind, std::uint32_t idx) {
            const int i = static_cast<int>(idx);
            switch (kind) {
              case WakeKind::Mem: setWakeBit(shard.memWake, i); break;
              case WakeKind::Dir: setWakeBit(shard.dirWake, i); break;
              case WakeKind::L1: setWakeBit(shard.l1Wake, i); break;
              case WakeKind::Core: setWakeBit(shard.coreWake, i); break;
            }
        });
    if (prof)
        prof->endPhase(obs::TickPhase::Sched);

    shard.bucket = 0;
    auto &queue = shard.localQueue;
    while (!queue.empty() && queue.front().due <= now_) {
        LocalMsg msg = std::move(queue.front());
        queue.pop_front();
        routeMessage(msg.dst, msg.msg);
    }
    if (prof)
        prof->endPhase(obs::TickPhase::LocalRoute);

    shard.bucket = 1;
    forEachWake(shard.memWake, [this, &shard](int m) {
        ++shard.eventsDispatched;
        memctls_[m]->tick(now_);
        const Cycle next = memctls_[m]->nextEventCycle(now_);
        if (next == now_ + 1)
            return true;
        if (next != kNoCycle)
            shard.calendar.schedule(next, WakeKind::Mem,
                                    static_cast<std::uint32_t>(m));
        return false;
    });
    if (prof)
        prof->endPhase(obs::TickPhase::Memory);

    shard.bucket = 2;
    forEachWake(shard.dirWake, [this, &shard](int n) {
        ++shard.eventsDispatched;
        dirs_[n]->tick(now_);
        const Cycle next = dirs_[n]->nextEventCycle(now_);
        if (next == now_ + 1)
            return true;
        if (next != kNoCycle)
            shard.calendar.schedule(next, WakeKind::Dir,
                                    static_cast<std::uint32_t>(n));
        return false;
    });
    if (prof)
        prof->endPhase(obs::TickPhase::Directory);

    shard.bucket = 3;
    forEachWake(shard.l1Wake, [this, &shard](int n) {
        ++shard.eventsDispatched;
        l1s_[n]->tick(now_);
        const Cycle next = l1s_[n]->nextEventCycle(now_);
        if (next == now_ + 1)
            return true;
        if (next != kNoCycle)
            shard.calendar.schedule(next, WakeKind::L1,
                                    static_cast<std::uint32_t>(n));
        return false;
    });
    if (prof)
        prof->endPhase(obs::TickPhase::L1);

    // Cores tick when woken (issue activity, a matured pause/compute
    // span, or a delivery through the wake hook). A core drives its L1
    // synchronously, so the L1's clock must read now_ during the
    // core's tick, and any work the access left behind re-arms the L1
    // for its next phase or a future cycle.
    shard.bucket = 4;
    forEachWake(shard.coreWake, [this, &shard](int n) {
        cpu::Core &core = *cores_[n];
        if (core.done())
            return false; // stray wake (late control bit)
        ++shard.eventsDispatched;
        l1s_[n]->syncClock(now_);
        core.tick(now_);
        const Cycle l1n = l1s_[n]->nextEventCycle(now_);
        if (l1n == now_ + 1) {
            setWakeBit(shard.l1Wake, n);
        } else if (l1n != kNoCycle) {
            shard.calendar.schedule(l1n, WakeKind::L1,
                                    static_cast<std::uint32_t>(n));
        }
        if (core.done()) {
            --shard.coresRunning;
            return false;
        }
        const Cycle next = core.nextEventCycle(now_);
        if (next == now_ + 1)
            return true;
        if (next != kNoCycle)
            shard.calendar.schedule(next, WakeKind::Core,
                                    static_cast<std::uint32_t>(n));
        return false;
    });
    if (prof)
        prof->endPhase(obs::TickPhase::Core);

    shard.nextEvent = shardNextEvent(shard);
}

Cycle
System::shardNextEvent(const Shard &shard) const
{
    std::uint64_t bits = 0;
    for (const std::uint64_t w : shard.memWake)
        bits |= w;
    for (const std::uint64_t w : shard.dirWake)
        bits |= w;
    for (const std::uint64_t w : shard.l1Wake)
        bits |= w;
    for (const std::uint64_t w : shard.coreWake)
        bits |= w;
    Cycle next = bits ? now_ + 1 : kNoCycle;
    // Local-hop dues are monotone (constant latency FIFO), so the
    // front is the earliest.
    if (!shard.localQueue.empty()) {
        next = std::min(next,
                        std::max(shard.localQueue.front().due, now_ + 1));
    }
    return std::min(next, shard.calendar.nextEventCycle());
}

/**
 * Replay the cycle's staged cross-shard traffic through the (serial)
 * network in canonical order: send bucket (the phase that issued the
 * send), then shard (ascending = component-index ascending, because
 * shards own contiguous ranges), then program order within the shard.
 * That is exactly the order the serial loop issues the same sends, so
 * packet ids, timestamps and queue contents match bit for bit.
 */
void
System::mergeStaged()
{
    for (int bucket = 0; bucket < kNumSendBuckets; ++bucket) {
        for (auto &shard : shards_) {
            for (const auto &s : shard.staged[bucket]) {
                Packet pkt = noc::makePacket(
                    s.src, s.dst, s.cls,
                    coherence::packetKindOf(s.msg.type),
                    coherence::canonicalPayload(s.msg));
                const bool sent = network_->send(std::move(pkt));
                FSOI_ASSERT(sent, "staged send rejected at merge");
            }
            shard.staged[bucket].clear();
        }
    }
    for (auto &shard : shards_) {
        for (const auto &bit : shard.stagedBits)
            fsoiNet_->sendControlBit(bit.src, bit.dst, bit.tag);
        shard.stagedBits.clear();
    }
    std::fill(stagedCount_.begin(), stagedCount_.end(), 0);
}

bool
System::cycleEpilogue(obs::Watchdog &watchdog, bool &completed)
{
    if (sampler_ && now_ >= sampler_->nextDue()) {
        // Cores asleep across the sample point have unaccounted
        // active/stall spans; fold them in so the sampled series match
        // the tick-every-cycle engine's cycle for cycle.
        for (auto &core : cores_)
            core->syncStats(now_);
        sampler_->sample(now_);
    }

    if ((now_ & (kCompletionStride - 1)) != 0)
        return false;

    bool all_done = true;
    for (const auto &shard : shards_)
        all_done &= shard.coresRunning == 0;
    // The quiescent() scan is the authoritative completion check: it
    // reads true component state, so stale wake bits or calendar
    // entries can never hold completion open or declare it early.
    if (all_done && quiescent()) {
        completed = true;
        return true;
    }

    if ((now_ & (kProgressStride - 1)) == 0) {
        std::uint64_t instr = 0;
        for (const auto &core : cores_)
            instr += core->stats().instructions.value();
        // The network feed counts deliveries *and* attempts, so a
        // retry/NACK storm that never delivers still reads as
        // network motion — that is exactly the livelock signature.
        const auto &net = network_->stats();
        const std::uint64_t net_events = net.deliveredTotal()
            + net.attempts(PacketClass::Meta)
            + net.attempts(PacketClass::Data);
        const obs::Watchdog::Report report =
            watchdog.check(now_, instr, net_events);
        if (report.verdict != obs::WatchdogVerdict::Ok) {
            // Panics without fault injection; with it, records the
            // diagnosis and lets the run end as a diagnosed fault.
            onWatchdogTrip(report);
            return true;
        }
    }
    return false;
}

Cycle
System::nextEpoch() const
{
    Cycle next = config_.max_cycles;
    bool all_done = true;
    for (const Shard &shard : shards_) {
        all_done &= shard.coresRunning == 0;
        next = std::min(next, shard.nextEvent);
    }
    next = std::min(next, network_->nextEventCycle(now_));
    if (sampler_)
        next = std::min(next, std::max(sampler_->nextDue(), now_ + 1));
    if (checkpointEvery_ != 0) {
        next = std::min(
            next, now_ + checkpointEvery_ - now_ % checkpointEvery_);
    }
    next = std::min(next, (now_ | (kProgressStride - 1)) + 1);
    if (all_done)
        next = std::min(next, (now_ | (kCompletionStride - 1)) + 1);
    return std::max(next, now_ + 1);
}

bool
System::runSerial(obs::Watchdog &watchdog)
{
    bool completed = false;

    now_ = startCycle_;
    while (now_ < config_.max_cycles) {
        if (checkpointEvery_ != 0 && now_ != startCycle_
            && now_ % checkpointEvery_ == 0) {
            // Canonical capture: core clocks/stats synced through the
            // previous cycle, exactly as the tick-every-cycle engine
            // left them at the top of a cycle (and as run() leaves
            // them for a direct end-of-run save). Exact for the
            // continuing run — catch-up spans compose.
            for (auto &core : cores_)
                core->syncStats(now_ - 1);
            saveCheckpoint(checkpointPath_);
        }

        // Self-profiling brackets each phase with a clock read on
        // sampled cycles only; `prof` is hoisted so unsampled cycles
        // pay a single branch per phase.
        const bool prof = profiler_.due(now_);
        if (prof)
            profiler_.beginCycle();

        network_->tick(now_);
        if (prof)
            profiler_.endPhase(obs::TickPhase::Network);

        tickShard(shards_[0], prof ? &profiler_ : nullptr);
        ++schedExecuted_;

        const Cycle next = nextEpoch();
        if (prof)
            profiler_.endPhase(obs::TickPhase::Sched);

        if (cycleEpilogue(watchdog, completed))
            break;

        schedSkipped_ += next - now_ - 1;
        now_ = next;
    }
    return completed;
}

/**
 * The threaded loop: the interconnect ticks serially on the main
 * thread (it is one tightly coupled machine), then every shard's
 * component phases run concurrently between two barriers with
 * cross-shard sends staged per shard, then the main thread merges the
 * staged traffic in canonical order. Workers are persistent pool
 * tasks parked on the fork barrier, so per-cycle cost is two barrier
 * crossings and no thread churn.
 */
bool
System::runParallel(obs::Watchdog &watchdog)
{
    const int num_shards = threads_;
    std::barrier<> forkBarrier(num_shards);
    std::barrier<> joinBarrier(num_shards);
    std::atomic<bool> stop{false};
    common::ThreadPool pool(num_shards - 1);
    std::vector<std::future<void>> workers;
    workers.reserve(static_cast<std::size_t>(num_shards - 1));
    for (int s = 1; s < num_shards; ++s) {
        workers.push_back(
            pool.submit([this, s, &forkBarrier, &joinBarrier, &stop] {
                Shard &shard = shards_[static_cast<std::size_t>(s)];
                for (;;) {
                    forkBarrier.arrive_and_wait();
                    if (stop.load(std::memory_order_relaxed))
                        return;
                    tickShard(shard, nullptr);
                    joinBarrier.arrive_and_wait();
                }
            }));
    }

    bool completed = false;

    now_ = startCycle_;
    while (now_ < config_.max_cycles) {
        // Checkpoints are cut at the top of the cycle, while the
        // workers are parked on the fork barrier — the main thread has
        // exclusive access to all simulation state here.
        if (checkpointEvery_ != 0 && now_ != startCycle_
            && now_ % checkpointEvery_ == 0) {
            // Same canonical capture as the serial loop.
            for (auto &core : cores_)
                core->syncStats(now_ - 1);
            saveCheckpoint(checkpointPath_);
        }

        const bool prof = profiler_.due(now_);
        if (prof)
            profiler_.beginCycle();

        network_->tick(now_);
        if (prof)
            profiler_.endPhase(obs::TickPhase::Network);

        // Fork/join region: staging_ flips only here, so delivery-time
        // sends during the network tick above stay on the direct path.
        staging_ = true;
        forkBarrier.arrive_and_wait();
        tickShard(shards_[0], nullptr);
        joinBarrier.arrive_and_wait();
        staging_ = false;
        if (prof)
            profiler_.endPhase(obs::TickPhase::Components);

        mergeStaged();
        if (prof)
            profiler_.endPhase(obs::TickPhase::LocalRoute);
        ++schedExecuted_;

        // The epoch reads each shard's nextEvent (published before the
        // join barrier) and the network's — after the merge, so staged
        // sends are visible as pending network work.
        const Cycle next = nextEpoch();
        if (prof)
            profiler_.endPhase(obs::TickPhase::Sched);

        if (cycleEpilogue(watchdog, completed))
            break;

        schedSkipped_ += next - now_ - 1;
        now_ = next;
    }

    stop.store(true, std::memory_order_relaxed);
    forkBarrier.arrive_and_wait();
    for (auto &worker : workers)
        worker.get();
    return completed;
}

/**
 * Watchdog trip: dump human-readable component state to stderr, write
 * the flight-recorder post-mortem (stuck transactions, recent protocol
 * events, per-link network state), then act on the verdict that
 * distinguishes deadlock (network quiet too) from livelock (packets
 * still moving while no instruction retires). With fault injection
 * active the wedge is the *expected* consequence of the schedule, so
 * instead of aborting the trip becomes a diagnosed-fault report naming
 * the dead channels/links, and run() ends normally.
 */
void
System::onWatchdogTrip(const obs::Watchdog::Report &report)
{
    std::size_t misses = 0, txns = 0;
    for (const auto &core : cores_) {
        if (!core->done())
            core->debugDump();
    }
    for (const auto &l1 : l1s_) {
        if (!l1->quiescent())
            l1->debugDump();
        misses += l1->outstandingMisses();
    }
    for (const auto &dir : dirs_) {
        if (!dir->quiescent())
            dir->debugDump();
        txns += dir->quiescent() ? 0 : 1;
    }
    if (meshNet_ && !meshNet_->idle())
        meshNet_->debugDump();

    char reason[64];
    std::snprintf(reason, sizeof(reason), "%s:%s",
                  fault_ ? "fault" : "watchdog",
                  obs::watchdogVerdictName(report.verdict));
    // Marks the dump done, so the fatal hook installed by
    // installCrashHooks() does not write it a second time from panic.
    obs::crashDump(reason);

    if (fault_) {
        faultDiagnosis_ = std::string(
            obs::watchdogVerdictName(report.verdict))
            + " attributed to injected faults: " + fault_->diagnose();
        warn("%s (no instruction retired for %llu cycles at cycle %llu)",
             faultDiagnosis_.c_str(),
             static_cast<unsigned long long>(report.stalled_for),
             static_cast<unsigned long long>(now_));
        return;
    }

    panic("%s: no instruction retired for %llu cycles at cycle %llu "
          "(network %s for %llu cycles; %zu outstanding misses, "
          "%zu busy directories)",
          obs::watchdogVerdictName(report.verdict),
          static_cast<unsigned long long>(report.stalled_for),
          static_cast<unsigned long long>(now_),
          report.verdict == obs::WatchdogVerdict::Livelock ? "active"
                                                           : "quiet",
          static_cast<unsigned long long>(report.net_quiet_for), misses,
          txns);
}

RunResult
System::collectResult(Cycle cycles, bool completed) const
{
    RunResult res;
    res.completed = completed;
    res.cycles = std::max<Cycle>(cycles, 1);

    const auto &net_stats = network_->stats();
    res.avg_packet_latency = net_stats.totalLatency().mean();
    res.queuing = net_stats.queuing().mean();
    res.scheduling = net_stats.scheduling().mean();
    res.network = net_stats.network().mean();
    res.collision_resolution = net_stats.collisionResolution().mean();
    res.packets_delivered = net_stats.deliveredTotal();
    res.meta_collision_rate = net_stats.collisionRate(PacketClass::Meta);
    res.data_collision_rate = net_stats.collisionRate(PacketClass::Data);

    ActivitySummary activity;
    activity.cycles = res.cycles;
    activity.nodes = config_.num_cores;

    Counter loads, stores, misses, invalidations, l1_accesses;
    for (const auto &l1 : l1s_) {
        const auto &s = l1->stats();
        loads += s.loads;
        stores += s.stores;
        misses += s.misses;
        l1_accesses += s.l1_accesses;
        invalidations += s.invalidations_received;
    }
    res.invalidations = invalidations.value();
    activity.l1_accesses += l1_accesses.value();
    const auto accesses = loads.value() + stores.value();
    res.l1_miss_rate = accesses
        ? static_cast<double>(misses.value()) / accesses : 0.0;

    Counter instructions, active, stalls, sync_packets;
    for (const auto &core : cores_) {
        const auto &s = core->stats();
        instructions += s.instructions;
        active += s.active_cycles;
        stalls += s.stall_cycles;
        sync_packets += s.sync_packets;
    }
    res.instructions = instructions.value();
    res.sync_packets = sync_packets.value();
    activity.active_cycles += active.value();
    activity.stall_cycles += stalls.value();
    res.ipc = static_cast<double>(res.instructions) / res.cycles;

    Counter l2_accesses, mem_accesses;
    for (const auto &dir : dirs_)
        l2_accesses += dir->stats().l2_accesses;
    for (const auto &mem : memctls_) {
        mem_accesses += mem->stats().reads;
        mem_accesses += mem->stats().writes;
    }
    activity.l2_accesses += l2_accesses.value();
    activity.mem_accesses += mem_accesses.value();

    if (meshNet_) {
        activity.mesh = &meshNet_->activity();
        activity.routers = layout_.side() * layout_.side();
    } else if (fsoiNet_) {
        activity.fsoi = &fsoiNet_->activity();
        res.meta_tx_probability =
            fsoiNet_->transmissionProbability(PacketClass::Meta);
        for (int c = 0; c < 5; ++c) {
            res.data_collisions_by_cat[c] = fsoiNet_->dataCollisionEvents(
                static_cast<fsoi::CollisionCategory>(c));
        }
        res.data_resolution_delay = fsoiNet_->meanDataResolutionDelay();
        res.control_bits = fsoiNet_->activity().control_bits.value();
    }
    res.retransmissions = network_->retxStats().packets();
    res.fault_diagnosis = faultDiagnosis_;
    if (fault_) {
        res.fault_bit_errors = fault_->bitErrors();
        res.blacklisted_channels = fault_->blacklists();
        res.unroutable_drops = fault_->unroutableDrops();
    }

    res.energy = computeEnergy(config_.energy, activity);
    res.avg_power_w = res.energy.averagePower(
        res.cycles, config_.energy.freq_hz);
    return res;
}

} // namespace fsoi::sim
