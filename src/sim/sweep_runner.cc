#include "sim/sweep_runner.hh"

#include <utility>

namespace fsoi::sim {

SweepRunner::SweepRunner(int jobs)
    : jobs_(jobs == 1 ? 1 : common::resolveJobs(jobs))
{
    if (jobs_ > 1)
        pool_ = std::make_unique<common::ThreadPool>(jobs_);
}

SweepRunner::~SweepRunner() = default;

SweepOutcome
SweepRunner::runJob(SweepJob job, bool keep_system)
{
    auto sys = std::make_unique<System>(job.config);
    sys->loadApp(job.app.scaled(job.scale));
    SweepOutcome out;
    out.result = sys->run();
    if (keep_system)
        out.system = std::move(sys);
    return out;
}

std::future<RunResult>
SweepRunner::submit(SweepJob job)
{
    if (!pool_) {
        // Inline: runs now, on this thread, in submission order —
        // trivially identical to the pre-pool serial drivers.
        std::promise<RunResult> done;
        done.set_value(runJob(std::move(job), false).result);
        return done.get_future();
    }
    return pool_->submit([job = std::move(job)]() mutable {
        return runJob(std::move(job), false).result;
    });
}

std::future<SweepOutcome>
SweepRunner::submitKeep(SweepJob job)
{
    if (!pool_) {
        std::promise<SweepOutcome> done;
        done.set_value(runJob(std::move(job), true));
        return done.get_future();
    }
    return pool_->submit([job = std::move(job)]() mutable {
        return runJob(std::move(job), true);
    });
}

} // namespace fsoi::sim
