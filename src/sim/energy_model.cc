#include "sim/energy_model.hh"

#include "common/logging.hh"

namespace fsoi::sim {

namespace {
constexpr double kPj = 1e-12;
constexpr double kNj = 1e-9;
constexpr double kMw = 1e-3;
} // namespace

double
EnergyReport::averagePower(std::uint64_t cycles, double freq_hz) const
{
    if (cycles == 0)
        return 0.0;
    const double seconds = static_cast<double>(cycles) / freq_hz;
    return total() / seconds;
}

EnergyReport
computeEnergy(const EnergyParams &params, const ActivitySummary &activity)
{
    FSOI_ASSERT(activity.cycles > 0 && activity.nodes > 0);
    EnergyReport report;
    const double seconds =
        static_cast<double>(activity.cycles) / params.freq_hz;

    report.core_j = activity.active_cycles * params.core_active_pj * kPj
        + activity.stall_cycles * params.core_idle_pj * kPj;
    report.cache_j = activity.l1_accesses * params.l1_access_pj * kPj
        + activity.l2_accesses * params.l2_access_pj * kPj;
    report.memory_j = activity.mem_accesses * params.mem_access_nj * kNj;
    report.leakage_j =
        activity.nodes * params.leakage_w_per_node * seconds;

    if (activity.mesh) {
        const auto &mesh = *activity.mesh;
        report.network_j =
            mesh.buffer_writes.value() * params.buffer_write_pj * kPj
            + mesh.buffer_reads.value() * params.buffer_read_pj * kPj
            + mesh.crossbar_traversals.value() * params.crossbar_pj * kPj
            + mesh.arbitrations.value() * params.arbitration_pj * kPj
            + mesh.link_traversals.value() * params.link_pj * kPj
            + activity.routers * params.router_static_w * seconds;
    } else if (activity.fsoi) {
        const auto &fsoi = *activity.fsoi;
        // Lasing energy: per VCSEL-cycle of active transmission the
        // driver + VCSEL draw vcsel_drive_mw.
        const double lase_j = fsoi.vcsel_slot_cycles.value()
            * params.vcsel_drive_mw * kMw / params.freq_hz;
        const double rx_j = activity.nodes
            * activity.fsoi_rx_bits_per_node * params.rx_mw_per_bit * kMw
            * seconds;
        const double standby_j = activity.nodes
            * activity.fsoi_vcsels_per_node * params.tx_standby_mw * kMw
            * seconds;
        const double ctrl_j =
            fsoi.control_bits.value() * params.control_bit_pj * kPj;
        report.network_j = lase_j + rx_j + standby_j + ctrl_j;
    }

    return report;
}

} // namespace fsoi::sim
