/**
 * @file
 * Activity-based energy model (Wattch/Orion-style, Section 6 "Power").
 *
 * Dynamic energy is per-event (instructions, cache accesses, router
 * micro-operations, laser slot-cycles); leakage and always-on analog
 * power accrue per cycle. Constants are representative 45 nm values
 * calibrated so the 16-node mesh baseline lands near the paper's
 * reported operating point (~156 W total, mesh interconnect tens of
 * watts, FSOI interconnect ~1.8 W).
 */

#ifndef FSOI_SIM_ENERGY_MODEL_HH
#define FSOI_SIM_ENERGY_MODEL_HH

#include <cstdint>

#include "fsoi/fsoi_network.hh"
#include "noc/mesh_network.hh"

namespace fsoi::sim {

/** Per-event energies and static powers. */
struct EnergyParams
{
    double freq_hz = 3.3e9;

    // Core + cache dynamic energy.
    double core_active_pj = 3600.0; //!< per busy core cycle (4-wide OoO)
    double core_idle_pj = 900.0;    //!< per stalled core cycle (clocking)
    double l1_access_pj = 20.0;
    double l2_access_pj = 150.0;
    double mem_access_nj = 10.0;    //!< per DRAM line transfer

    // Leakage (temperature dependence folded into the average).
    double leakage_w_per_node = 2.8; //!< core + caches + controller

    // Mesh router events (Orion-flavoured, 72-bit flits).
    double buffer_write_pj = 1.1;
    double buffer_read_pj = 0.9;
    double crossbar_pj = 1.9;
    double arbitration_pj = 0.1;
    double link_pj = 4.5;           //!< per flit per hop (5 mm wire)
    /**
     * Per-router static + clock power. Canonical 4-stage VC routers
     * carry hundreds of flit buffers and a full crossbar (the Alpha
     * 21364 router matched 20% of the core + 128 KB cache area); at
     * 45 nm / 3.3 GHz this burns watts whether or not flits flow --
     * the dominant term behind the paper's ~20x interconnect-energy
     * gap versus the always-off optical chain.
     */
    double router_static_w = 2.0;

    // FSOI optical chain (Table 1).
    double vcsel_drive_mw = 7.26;   //!< laser driver 6.3 + VCSEL 0.96
    double rx_mw_per_bit = 4.2;     //!< TIA chain, always on
    double tx_standby_mw = 0.43;    //!< per VCSEL when not lasing
    double control_bit_pj = 2.0;    //!< confirmation-lane mini-slot
};

/** Energy totals in joules plus the derived average power. */
struct EnergyReport
{
    double core_j = 0.0;     //!< core pipeline dynamic
    double cache_j = 0.0;    //!< L1 + L2 dynamic
    double memory_j = 0.0;   //!< DRAM access
    double network_j = 0.0;  //!< interconnect (dynamic + its static)
    double leakage_j = 0.0;  //!< node leakage

    double
    total() const
    {
        return core_j + cache_j + memory_j + network_j + leakage_j;
    }

    /** Average power in watts given the run length. */
    double averagePower(std::uint64_t cycles, double freq_hz) const;
};

/** Aggregated activity of a finished run. */
struct ActivitySummary
{
    std::uint64_t cycles = 0;
    int nodes = 0;              //!< core tiles (leakage, receivers)
    int routers = 0;            //!< mesh routers (0 for FSOI)
    std::uint64_t active_cycles = 0; //!< summed over cores
    std::uint64_t stall_cycles = 0;
    std::uint64_t l1_accesses = 0;
    std::uint64_t l2_accesses = 0;
    std::uint64_t mem_accesses = 0;
    const noc::MeshActivity *mesh = nullptr;   //!< when mesh-based
    const fsoi::FsoiActivity *fsoi = nullptr;  //!< when FSOI-based
    int fsoi_rx_bits_per_node = 19; //!< 2x6 data + 2x3 meta + 1 confirm
    int fsoi_vcsels_per_node = 10;  //!< 6 + 3 + 1
};

/** Evaluate the model over a run's activity. */
EnergyReport computeEnergy(const EnergyParams &params,
                           const ActivitySummary &activity);

} // namespace fsoi::sim

#endif // FSOI_SIM_ENERGY_MODEL_HH
