/**
 * @file
 * Network-only synthetic traffic: drive an interconnect directly with
 * classic NoC patterns, without the coherence stack. Used by the
 * Figure 3 experimental points, the microbenchmarks, and anywhere a
 * controlled offered load is needed (e.g. saturation studies).
 */

#ifndef FSOI_WORKLOAD_TRAFFIC_HH
#define FSOI_WORKLOAD_TRAFFIC_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "noc/network.hh"

namespace fsoi::workload {

/** Spatial traffic patterns. */
enum class TrafficPattern : std::uint8_t
{
    UniformRandom, //!< every other endpoint equally likely
    Hotspot,       //!< a fraction of traffic converges on one node
    Transpose,     //!< node (x, y) talks to node (y, x)
    Neighbor,      //!< node i talks to node (i + 1) mod N
};

const char *trafficPatternName(TrafficPattern pattern);

/** Configuration of a synthetic injector. */
struct TrafficConfig
{
    TrafficPattern pattern = TrafficPattern::UniformRandom;
    /** Per-node per-cycle injection probability. */
    double injection_rate = 0.01;
    /** Fraction of packets that are data-class (long). */
    double data_fraction = 0.3;
    /** Hotspot: the favoured destination and its traffic share. */
    NodeId hotspot = 0;
    double hotspot_fraction = 0.5;
    /** Only the first this-many endpoints inject (cores, typically). */
    int active_endpoints = 0; // 0 = all
    std::uint64_t seed = 1;
};

/** Results of a driven run. */
struct TrafficResult
{
    std::uint64_t offered = 0;   //!< packets handed to the network
    std::uint64_t refused = 0;   //!< send() rejections (backpressure)
    std::uint64_t delivered = 0;
    double avg_latency = 0.0;
    double meta_collision_rate = 0.0; //!< 0 for non-FSOI networks
    double data_collision_rate = 0.0;
};

/**
 * Synthetic traffic driver: owns the injection process for every
 * endpoint of a network. The caller still ticks the network; call
 * inject() once per cycle while load should be offered.
 */
class TrafficGenerator
{
  public:
    TrafficGenerator(noc::Network &network, const TrafficConfig &config,
                     int mesh_side);

    /** Offer one cycle's worth of load at cycle @p now. */
    void inject(Cycle now);

    /** Drive for @p warm + @p measure cycles and drain; collect stats. */
    TrafficResult run(Cycle measure_cycles, Cycle max_drain = 200000);

    std::uint64_t offered() const { return offered_; }
    std::uint64_t refused() const { return refused_; }

  private:
    NodeId pickDestination(NodeId src);

    noc::Network &network_;
    TrafficConfig config_;
    int side_;
    int active_;
    Rng rng_;
    std::uint64_t offered_ = 0;
    std::uint64_t refused_ = 0;
};

} // namespace fsoi::workload

#endif // FSOI_WORKLOAD_TRAFFIC_HH
