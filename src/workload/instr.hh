/**
 * @file
 * The abstract instruction stream a core executes.
 *
 * Workload generators (one per application profile) produce these
 * coarse-grained operations; the core expands Lock/Unlock/Barrier into
 * ll/sc spin sequences, so synchronization generates realistic
 * coherence traffic (invalidation bursts, quasi-synchronized acks).
 */

#ifndef FSOI_WORKLOAD_INSTR_HH
#define FSOI_WORKLOAD_INSTR_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace fsoi::snapshot {
class Writer;
class Reader;
} // namespace fsoi::snapshot

namespace fsoi::workload {

/** Operation kinds a stream may emit. */
enum class Op : std::uint8_t
{
    Compute, //!< cycles of ALU work (IPC 1)
    Load,    //!< read addr
    Store,   //!< write addr
    Lock,    //!< acquire the lock word at addr
    Unlock,  //!< release the lock word at addr
    Barrier, //!< barrier episode: count word at addr, sense at addr+64
    End,     //!< thread finished
};

/** One coarse-grained instruction. */
struct Instr
{
    Op op = Op::End;
    Addr addr = 0;
    std::uint32_t cycles = 0;  //!< Compute: duration
    std::uint64_t value = 0;   //!< Store: value; Barrier: thread count
};

/** A per-thread instruction source. */
class InstrStream
{
  public:
    virtual ~InstrStream() = default;

    /** Produce the next instruction (returns Op::End forever at EOS). */
    virtual Instr next() = 0;

    /**
     * Checkpoint/restore (snapshot/). The defaults fatal(): a stream
     * kind that carries generator state must override both, or runs
     * using it cannot be checkpointed.
     */
    virtual void saveState(snapshot::Writer &w) const;
    virtual void loadState(snapshot::Reader &r);
};

} // namespace fsoi::workload

#endif // FSOI_WORKLOAD_INSTR_HH
