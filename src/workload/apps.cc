#include "workload/apps.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "snapshot/state_io.hh"

namespace fsoi::workload {

void
InstrStream::saveState(snapshot::Writer &)
    const
{
    fatal("this instruction-stream kind is not checkpointable");
}

void
InstrStream::loadState(snapshot::Reader &)
{
    fatal("this instruction-stream kind is not checkpointable");
}

namespace {

constexpr int kLineBytes = 32;

void
saveInstr(snapshot::Writer &w, const Instr &instr)
{
    w.u8(static_cast<std::uint8_t>(instr.op));
    w.u64(instr.addr);
    w.u32(instr.cycles);
    w.u64(instr.value);
}

Instr
loadInstr(snapshot::Reader &r)
{
    Instr instr;
    instr.op = static_cast<Op>(r.u8());
    instr.addr = r.u64();
    instr.cycles = r.u32();
    instr.value = r.u64();
    return instr;
}

/** Generator expanding an AppProfile into a deterministic stream. */
class SyntheticStream : public InstrStream
{
  public:
    SyntheticStream(const AppProfile &profile, int thread, int num_threads,
                    std::uint64_t seed)
        : profile_(profile), thread_(thread), numThreads_(num_threads),
          rng_(seed ^ (0x51ed2701ULL * (thread + 1)))
    {
        FSOI_ASSERT(num_threads >= 1);
        privateBase_ = kPrivateBase
            + static_cast<Addr>(thread) * kPrivateStride;
    }

    Instr
    next() override
    {
        if (!queue_.empty()) {
            Instr instr = queue_.front();
            queue_.pop_front();
            return instr;
        }
        if (finished_)
            return Instr{}; // Op::End forever

        if (issued_ >= profile_.instructions) {
            finished_ = true;
            // Close with a barrier so threads end together, mirroring
            // the paper's fixed-workload measurement windows.
            queue_.push_back(barrier(0));
            queue_.push_back(Instr{Op::End, 0, 0, 0});
            return next();
        }

        generateChunk();
        return next();
    }

    /**
     * Checkpoint/restore. The profile and thread layout are
     * construction config (the restoring run rebuilds the stream from
     * the same experiment description); only generator state is
     * serialized. A fingerprint of the invariants guards against
     * restoring into a differently configured stream.
     */
    void
    saveState(snapshot::Writer &w) const override
    {
        w.u32(static_cast<std::uint32_t>(thread_));
        w.u32(static_cast<std::uint32_t>(numThreads_));
        w.u64(profile_.instructions);
        snapshot::saveRng(w, rng_);
        w.u64(privLine_);
        saveBlockStream(w, readStream_);
        saveBlockStream(w, writeStream_);
        w.u64(issued_);
        w.u64(opsDone_);
        w.u64(nextBarrierAt_);
        w.u64(nextLockAt_);
        w.u64(barSeq_);
        w.boolean(finished_);
        w.u64(queue_.size());
        for (const Instr &instr : queue_)
            saveInstr(w, instr);
    }

    void
    loadState(snapshot::Reader &r) override
    {
        const std::uint32_t thread = r.u32();
        const std::uint32_t threads = r.u32();
        const std::uint64_t budget = r.u64();
        FSOI_ASSERT(thread == static_cast<std::uint32_t>(thread_)
                        && threads == static_cast<std::uint32_t>(numThreads_)
                        && budget == profile_.instructions,
                    "snapshot stream does not match this workload config");
        snapshot::loadRng(r, rng_);
        privLine_ = r.u64();
        loadBlockStream(r, readStream_);
        loadBlockStream(r, writeStream_);
        issued_ = r.u64();
        opsDone_ = r.u64();
        nextBarrierAt_ = r.u64();
        nextLockAt_ = r.u64();
        barSeq_ = r.u64();
        finished_ = r.boolean();
        queue_.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            queue_.push_back(loadInstr(r));
    }

  private:
    Instr
    barrier(int id) const
    {
        Instr instr;
        instr.op = Op::Barrier;
        instr.addr = kBarrierBase + static_cast<Addr>(id) * 128;
        instr.value = numThreads_;
        return instr;
    }

    Addr
    privateAddr()
    {
        if (!rng_.nextBool(profile_.locality))
            privLine_ = rng_.nextBelow(profile_.private_lines);
        else
            privLine_ = (privLine_ + 1) % profile_.private_lines;
        return privateBase_ + static_cast<Addr>(privLine_) * kLineBytes;
    }

    struct BlockStream
    {
        std::uint64_t block = 0;
        std::uint64_t walk = 0;
        bool valid = false;
        /** Recently visited blocks; revisits hit in the L2. */
        std::vector<std::uint64_t> pool;
    };

    static void
    saveBlockStream(snapshot::Writer &w, const BlockStream &st)
    {
        w.u64(st.block);
        w.u64(st.walk);
        w.boolean(st.valid);
        snapshot::saveU64Vec(w, st.pool);
    }

    static void
    loadBlockStream(snapshot::Reader &r, BlockStream &st)
    {
        st.block = r.u64();
        st.walk = r.u64();
        st.valid = r.boolean();
        st.pool = snapshot::loadU64Vec(r);
    }

    /**
     * Deterministic part of the region the sharing pattern allows for
     * this access. @p moving reports whether the region drifts over
     * time (so a parked block must be abandoned when it leaves).
     */
    void
    sharedRegion(bool is_write, std::uint64_t &start, std::uint64_t &size,
                 bool &moving) const
    {
        const int total = profile_.shared_lines;
        moving = false;
        start = 0;
        size = total;
        switch (profile_.sharing) {
          case Sharing::Uniform:
            return;
          case Sharing::ReadMostly: {
            // A small per-thread hot write set at the front of the
            // space; the read-mostly bulk sits behind it, so readers
            // do not camp on lines being actively written.
            const int hot = std::max(numThreads_, total / 16);
            if (is_write) {
                const int slice = std::max(1, hot / numThreads_);
                start = static_cast<std::uint64_t>(thread_) * slice;
                size = slice;
            } else {
                start = hot;
                size = std::max(1, total - hot);
            }
            return;
          }
          case Sharing::ProducerConsumer: {
            // Phase-based: produce into the own region between one
            // barrier pair, consume the neighbour's freshly written
            // region in the next (FFT transpose / radix permute
            // style). Writers and readers never race on a region.
            const int region = std::max(1, total / numThreads_);
            const bool consume_phase = (barSeq_ % 2) == 1;
            const int owner = (!is_write && consume_phase)
                ? (thread_ + 1) % numThreads_
                : thread_;
            start = static_cast<std::uint64_t>(owner) * region;
            size = region;
            moving = consume_phase;
            return;
          }
          case Sharing::Migratory: {
            const int region = std::max(1, total / 16);
            start = ((opsDone_ / 256) % 16) * region;
            size = region;
            moving = true;
            return;
          }
        }
    }

    Addr
    sharedAddr(bool is_write)
    {
        std::uint64_t start, size;
        bool moving;
        sharedRegion(is_write, start, size, moving);

        // Writes get their own walk only when the pattern puts them in
        // a different region than reads; otherwise one combined stream
        // maximizes reuse.
        bool separate = false;
        if (is_write) {
            std::uint64_t rstart, rsize;
            bool rmoving;
            sharedRegion(false, rstart, rsize, rmoving);
            separate = rstart != start || rsize != size;
        }
        BlockStream &st = separate ? writeStream_ : readStream_;

        const std::uint64_t block_len =
            std::min<std::uint64_t>(profile_.shared_block_lines, size);
        const bool outside = moving
            && (st.block < start || st.block + block_len > start + size);
        if (!st.valid || outside
            || rng_.nextBool(profile_.shared_block_switch)) {
            // Uniform data is mostly thread-affine (each thread works
            // its own partition) with occasional cross-thread blocks;
            // this keeps two threads from camping on the same lines.
            if (profile_.sharing == Sharing::Uniform
                && !rng_.nextBool(0.25)) {
                const std::uint64_t slice = std::max<std::uint64_t>(
                    block_len, profile_.shared_lines / numThreads_);
                start = std::min<std::uint64_t>(
                    static_cast<std::uint64_t>(thread_) * slice,
                    profile_.shared_lines - slice);
                size = slice;
            }
            // Temporal reuse: revisit a recent block most of the time
            // (those lines are L2-resident), otherwise touch a fresh
            // one. Real kernels iterate over the same tiles repeatedly.
            std::uint64_t next = start
                + rng_.nextBelow(std::max<std::uint64_t>(
                    1, size - block_len + 1));
            if (!st.pool.empty() && rng_.nextBool(0.75)) {
                const std::uint64_t cand =
                    st.pool[rng_.nextBelow(st.pool.size())];
                if (cand >= start && cand + block_len <= start + size)
                    next = cand;
            }
            st.block = next;
            if (st.pool.size() < 12)
                st.pool.push_back(next);
            else
                st.pool[rng_.nextBelow(12)] = next;
            st.walk = 0;
            st.valid = true;
        }
        const std::uint64_t line = st.block + (st.walk++ % block_len);
        return kSharedBase + line * kLineBytes;
    }

    void
    emitMemOp()
    {
        const bool is_write = rng_.nextBool(profile_.write_frac);
        const bool is_shared = rng_.nextBool(profile_.shared_frac);
        Instr instr;
        instr.op = is_write ? Op::Store : Op::Load;
        instr.addr = is_shared ? sharedAddr(is_write) : privateAddr();
        instr.value = rng_.next() & 0xff;
        queue_.push_back(instr);
        opsDone_++;
    }

    void
    generateChunk()
    {
        // Compute burst sized so memory ops arrive at mem_ratio.
        const double mean_gap =
            std::max(0.0, 1.0 / profile_.mem_ratio - 1.0);
        const std::uint32_t gap = static_cast<std::uint32_t>(
            std::lround(std::min(200.0,
                                 rng_.nextExponential(mean_gap + 1e-9))));
        if (gap > 0) {
            queue_.push_back(Instr{Op::Compute, 0, gap, 0});
            issued_ += gap;
        }

        // Periodic barrier? Only thresholds strictly inside the budget
        // count, so every thread emits the same barrier sequence no
        // matter how its random compute bursts land around the end.
        if (profile_.barrier_period > 0
            && nextBarrierAt_ < profile_.instructions
            && issued_ >= nextBarrierAt_) {
            nextBarrierAt_ += profile_.barrier_period;
            queue_.push_back(barrier(1 + (barSeq_++ % 3)));
            issued_ += 1;
            return;
        }

        // Critical section?
        if (profile_.lock_period > 0
            && opsDone_ >= nextLockAt_) {
            nextLockAt_ += profile_.lock_period;
            const std::uint64_t lock_id =
                rng_.nextBelow(profile_.num_locks);
            const Addr lock = kLockBase + lock_id * 64;
            queue_.push_back(Instr{Op::Lock, lock, 0, 0});
            // Each lock protects a small shared object (4 lines) just
            // past the regular shared space.
            const Addr object = kSharedBase
                + (static_cast<Addr>(profile_.shared_lines)
                   + lock_id * 4) * kLineBytes;
            for (int i = 0; i < profile_.critical_ops; ++i) {
                Instr instr;
                instr.op = i == 0 ? Op::Load : Op::Store;
                instr.addr = object + (i % 4) * kLineBytes;
                instr.value = rng_.next() & 0xff;
                queue_.push_back(instr);
                opsDone_++;
            }
            queue_.push_back(Instr{Op::Unlock, lock, 0, 0});
            issued_ += 2 + profile_.critical_ops;
            return;
        }

        emitMemOp();
        issued_ += 1;
    }

    AppProfile profile_;
    int thread_;
    int numThreads_;
    Rng rng_;
    Addr privateBase_;
    std::uint64_t privLine_ = 0;
    BlockStream readStream_;
    BlockStream writeStream_;
    std::uint64_t issued_ = 0;
    std::uint64_t opsDone_ = 0;
    std::uint64_t nextBarrierAt_ = 1000;
    std::uint64_t nextLockAt_ = 50;
    std::uint64_t barSeq_ = 0;
    bool finished_ = false;
    std::deque<Instr> queue_;
};

AppProfile
make(const char *name, double mem_ratio, double write_frac,
     double shared_frac, int private_lines, int shared_lines,
     double locality, double block_switch, Sharing sharing,
     int lock_period, int barrier_period)
{
    AppProfile profile;
    profile.name = name;
    profile.mem_ratio = mem_ratio;
    profile.write_frac = write_frac;
    profile.shared_frac = shared_frac;
    profile.private_lines = private_lines;
    profile.shared_lines = shared_lines;
    profile.locality = locality;
    profile.shared_block_switch = block_switch;
    profile.sharing = sharing;
    profile.lock_period = lock_period;
    profile.barrier_period = barrier_period;
    return profile;
}

} // namespace

AppProfile
AppProfile::scaled(double factor) const
{
    AppProfile copy = *this;
    copy.instructions = static_cast<std::uint64_t>(
        std::max(1.0, instructions * factor));
    return copy;
}

std::vector<AppProfile>
paperApps()
{
    // name          mem   wr    shr   priv shared  loc  blkSw  sharing            lockP barP
    return {
        make("barnes",    0.30, 0.25, 0.35, 120, 4096, 0.85, 0.0030, Sharing::Uniform,          400, 0),
        make("cholesky",  0.28, 0.30, 0.30, 112, 3072, 0.88, 0.0025, Sharing::Uniform,          250, 0),
        make("fmm",       0.27, 0.25, 0.30, 116, 3072, 0.86, 0.0030, Sharing::Uniform,          350, 0),
        make("fft",       0.38, 0.40, 0.55, 120, 8192, 0.80, 0.0040, Sharing::ProducerConsumer, 0,   2500),
        make("lu",        0.30, 0.30, 0.35, 104, 2048, 0.92, 0.0010, Sharing::ReadMostly,       0,   2000),
        make("ocean",     0.40, 0.35, 0.50, 120, 8192, 0.78, 0.0050, Sharing::Uniform,          0,   1500),
        make("radiosity", 0.28, 0.30, 0.40, 116, 3072, 0.84, 0.0035, Sharing::Uniform,          120, 0),
        make("radix",     0.36, 0.50, 0.55, 120, 8192, 0.75, 0.0050, Sharing::ProducerConsumer, 0,   2500),
        make("raytrace",  0.32, 0.15, 0.50, 120, 8192, 0.78, 0.0030, Sharing::ReadMostly,       150, 0),
        make("ws",        0.26, 0.25, 0.25, 104, 2048, 0.92, 0.0015, Sharing::Uniform,          500, 4000),
        make("em3d",      0.36, 0.30, 0.60, 120, 6144, 0.76, 0.0040, Sharing::ProducerConsumer, 0,   2000),
        make("ilink",     0.30, 0.25, 0.40, 112, 4096, 0.85, 0.0030, Sharing::ReadMostly,       0,   3000),
        make("jacobi",    0.33, 0.25, 0.50, 112, 6144, 0.86, 0.0030, Sharing::ProducerConsumer, 0,   1800),
        make("mp3d",      0.42, 0.45, 0.60, 120, 8192, 0.70, 0.0060, Sharing::Migratory,        0,   3000),
        make("shallow",   0.36, 0.35, 0.50, 116, 6144, 0.80, 0.0040, Sharing::Uniform,          0,   2000),
        make("tsp",       0.30, 0.35, 0.25, 112, 2048, 0.82, 0.0020, Sharing::Migratory,        300, 0),
    };
}

AppProfile
idleHeavyProfile()
{
    // mem_ratio 0.005 -> mean compute gap of 199 cycles between
    // memory ops (most draws hit the 200-cycle cap), so the cores sit
    // in long busyUntil_ stretches the event calendar skips over
    // wholesale. No locks/barriers: the point is quiescent-system
    // throughput, not contention. The larger instruction budget keeps
    // the timed run long enough that System construction does not
    // dominate the wall time.
    AppProfile profile =
        make("idle", 0.005, 0.25, 0.25, 104, 2048, 0.92, 0.0015,
             Sharing::Uniform, 0, 0);
    profile.instructions = 320000;
    return profile;
}

AppProfile
appByName(const std::string &name)
{
    for (const auto &app : paperApps())
        if (app.name == name)
            return app;
    if (name == "idle")
        return idleHeavyProfile();
    fatal("unknown application '%s'", name.c_str());
}

std::unique_ptr<InstrStream>
makeAppStream(const AppProfile &profile, int thread, int num_threads,
              std::uint64_t seed)
{
    return std::make_unique<SyntheticStream>(profile, thread, num_threads,
                                             seed);
}

} // namespace fsoi::workload
