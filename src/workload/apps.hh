/**
 * @file
 * Synthetic application profiles standing in for the paper's workload
 * suite (SPLASH-2 subset plus em3d, ilink, jacobi, mp3d, shallow, tsp).
 *
 * Each profile is a deterministic per-thread instruction-stream
 * generator parameterized by memory intensity, working-set sizes,
 * sharing pattern and synchronization structure. The parameters are
 * calibrated so the scaled-down 8 KB L1 produces miss rates in the
 * paper's reported 0.8-15.6% range (average ~4.8%) and the sync-heavy
 * applications spend a comparable fraction of traffic on
 * synchronization.
 */

#ifndef FSOI_WORKLOAD_APPS_HH
#define FSOI_WORKLOAD_APPS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/instr.hh"

namespace fsoi::workload {

/** Data-sharing pattern of an application's shared accesses. */
enum class Sharing : std::uint8_t
{
    Uniform,          //!< uniformly random shared lines
    ReadMostly,       //!< wide read set, small hot write set
    ProducerConsumer, //!< write own region, read a neighbour's
    Migratory,        //!< all threads chase the same moving region
};

/** Parameters defining one synthetic application. */
struct AppProfile
{
    std::string name;
    double mem_ratio = 0.3;    //!< memory ops per instruction
    double write_frac = 0.3;   //!< fraction of memory ops that write
    double shared_frac = 0.4;  //!< fraction of memory ops to shared data
    int private_lines = 512;   //!< per-thread private footprint (lines)
    int shared_lines = 4096;   //!< global shared footprint (lines)
    double locality = 0.7;     //!< P(next private access is sequential)
    /** Shared accesses walk blocks of this many lines... */
    int shared_block_lines = 16;
    /** ...switching to a fresh block with this probability. */
    double shared_block_switch = 0.02;
    Sharing sharing = Sharing::Uniform;
    int lock_period = 0;       //!< memory ops between critical sections
    int num_locks = 16;
    int critical_ops = 3;      //!< shared accesses inside a section
    int barrier_period = 0;    //!< instructions between barriers
    std::uint64_t instructions = 40000; //!< per-thread work

    /** Return a copy with the instruction budget scaled. */
    AppProfile scaled(double factor) const;
};

/** The 16 applications of the paper's evaluation (Section 6). */
std::vector<AppProfile> paperApps();

/**
 * Compute-bound stress profile ("idle"): long compute bursts between
 * rare memory operations, so almost every simulated cycle is
 * calendar-skippable. Exercises the scheduler's skip path in the perf
 * harness; deliberately NOT part of paperApps() so the paper-figure
 * sweeps stay the 16-app matrix.
 */
AppProfile idleHeavyProfile();

/** Look up a profile by name (paper apps + "idle"); fatal() when
 *  unknown. */
AppProfile appByName(const std::string &name);

/**
 * Create the instruction stream for one thread of an application.
 *
 * @param profile     the application
 * @param thread      thread id (= core node id)
 * @param num_threads total threads in the run
 * @param seed        experiment seed (streams are decorrelated per
 *                    thread internally)
 */
std::unique_ptr<InstrStream> makeAppStream(const AppProfile &profile,
                                           int thread, int num_threads,
                                           std::uint64_t seed);

/** Address-space bases used by the generators (and tests). */
inline constexpr Addr kPrivateBase = 0x10000000;
inline constexpr Addr kPrivateStride = 0x01000000; //!< per thread
inline constexpr Addr kSharedBase = 0x80000000;
inline constexpr Addr kLockBase = 0xF0000000;
inline constexpr Addr kBarrierBase = 0xF1000000;

} // namespace fsoi::workload

#endif // FSOI_WORKLOAD_APPS_HH
