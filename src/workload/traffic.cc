#include "workload/traffic.hh"

#include "common/logging.hh"

namespace fsoi::workload {

const char *
trafficPatternName(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::UniformRandom: return "uniform";
      case TrafficPattern::Hotspot: return "hotspot";
      case TrafficPattern::Transpose: return "transpose";
      case TrafficPattern::Neighbor: return "neighbor";
    }
    return "?";
}

TrafficGenerator::TrafficGenerator(noc::Network &network,
                                   const TrafficConfig &config,
                                   int mesh_side)
    : network_(network), config_(config), side_(mesh_side),
      active_(config.active_endpoints > 0
                  ? config.active_endpoints
                  : network.numEndpoints()),
      rng_(config.seed)
{
    FSOI_ASSERT(active_ > 1 && active_ <= network.numEndpoints());
    FSOI_ASSERT(config_.injection_rate >= 0.0
                && config_.injection_rate <= 1.0);
}

NodeId
TrafficGenerator::pickDestination(NodeId src)
{
    switch (config_.pattern) {
      case TrafficPattern::Hotspot:
        if (src != config_.hotspot
            && rng_.nextBool(config_.hotspot_fraction))
            return config_.hotspot;
        [[fallthrough]];
      case TrafficPattern::UniformRandom: {
        NodeId dst = static_cast<NodeId>(rng_.nextBelow(active_ - 1));
        if (dst >= src)
            ++dst;
        return dst;
      }
      case TrafficPattern::Transpose: {
        const int x = src % side_;
        const int y = (src / side_) % side_;
        const NodeId dst = static_cast<NodeId>(x * side_ + y);
        if (dst == src || static_cast<int>(dst) >= active_)
            return (src + 1) % active_;
        return dst;
      }
      case TrafficPattern::Neighbor:
        return (src + 1) % active_;
    }
    return (src + 1) % active_;
}

void
TrafficGenerator::inject(Cycle now)
{
    (void)now;
    for (NodeId src = 0; src < static_cast<NodeId>(active_); ++src) {
        if (!rng_.nextBool(config_.injection_rate))
            continue;
        const noc::PacketClass cls = rng_.nextBool(config_.data_fraction)
            ? noc::PacketClass::Data : noc::PacketClass::Meta;
        const NodeId dst = pickDestination(src);
        ++offered_;
        if (!network_.send(noc::makePacket(
                src, dst, cls,
                cls == noc::PacketClass::Data ? noc::PacketKind::Reply
                                              : noc::PacketKind::Request)))
            ++refused_;
    }
}

TrafficResult
TrafficGenerator::run(Cycle measure_cycles, Cycle max_drain)
{
    Cycle t = 0;
    for (; t < measure_cycles; ++t) {
        network_.tick(t);
        inject(t);
    }
    const Cycle deadline = t + max_drain;
    while (t < deadline && !network_.idle())
        network_.tick(t++);
    FSOI_ASSERT(network_.idle(), "traffic did not drain in %llu cycles",
                static_cast<unsigned long long>(max_drain));

    TrafficResult res;
    res.offered = offered_;
    res.refused = refused_;
    res.delivered = network_.stats().deliveredTotal();
    res.avg_latency = network_.stats().totalLatency().mean();
    res.meta_collision_rate =
        network_.stats().collisionRate(noc::PacketClass::Meta);
    res.data_collision_rate =
        network_.stats().collisionRate(noc::PacketClass::Data);
    return res;
}

} // namespace fsoi::workload
