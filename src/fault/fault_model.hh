/**
 * @file
 * Deterministic, config-driven fault injection for the interconnects.
 *
 * Three fault classes, all scheduled up front from a dedicated RNG
 * stream so a (config, seed) pair always produces the same fault set:
 *
 *   Permanent   — dead FSOI transmit lanes (failed VCSEL arrays), dead
 *                 FSOI receiver channels (failed photodetectors), and
 *                 failed mesh links (both directions of an edge die
 *                 together, the booksim InsertRandomFaults idiom).
 *   Degradation — a beam-misalignment offset mapped through the
 *                 photonics link budget: the received power fraction
 *                 exp(-2 d^2 / w^2) of a Gaussian beam displaced by d
 *                 at spot radius w scales the reference link's Q
 *                 factor, and the degraded Q yields a per-bit error
 *                 rate via the standard OOK BER(Q) expression.
 *   Transient   — per-packet bit errors drawn from the combined BER on
 *                 a second dedicated RNG stream (so the fault schedule
 *                 is identical whether or not transient errors are
 *                 enabled).
 *
 * Fractional fault rates select victims as a prefix of one deterministic
 * permutation per fault class, so the dead set at fraction f1 < f2 is a
 * subset of the dead set at f2 ("nested" schedules): degradation sweeps
 * are monotone by construction, never confounded by re-rolled victims.
 *
 * The injector also owns the runtime fault state the datapaths consult:
 * per-channel consecutive-failure counts, the blacklist of FSOI
 * receiver channels that exhausted their retry budget, and the fault.*
 * counters published to the stat registry. It never touches the
 * simulation unless the config enables at least one fault, and a System
 * without faults does not construct one at all — the disabled path is
 * a true no-op.
 */

#ifndef FSOI_FAULT_FAULT_MODEL_HH
#define FSOI_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/stat_registry.hh"

namespace fsoi::snapshot {
class Writer;
class Reader;
} // namespace fsoi::snapshot

namespace fsoi::fault {

/** Packet-class index shared with the networks (0 = meta, 1 = data). */
inline const char *
classLaneName(int cls)
{
    return cls == 0 ? "meta" : "data";
}

/** What to break. Defaults leave everything healthy. */
struct FaultConfig
{
    // --- permanent faults, as fractions of the respective populations
    double dead_rx_fraction = 0.0;   //!< FSOI receiver channels
    double dead_tx_fraction = 0.0;   //!< FSOI transmit lanes
    double dead_link_fraction = 0.0; //!< mesh links (bidirectional edges)

    // --- degradation / transient faults
    double ber = 0.0;             //!< uniform per-bit error rate
    double misalignment_m = 0.0;  //!< lateral beam offset at the receiver

    // --- recovery policy
    /**
     * Consecutive delivery failures on one FSOI receiver channel before
     * the senders give up on it: the channel is blacklisted and traffic
     * redistributes to the surviving receivers of that (node, lane).
     * Also bounds the exponential-backoff window growth of faulty-
     * channel retransmissions.
     */
    int max_retx = 16;

    /** Fault RNG stream seed; 0 = derive from the system seed. */
    std::uint64_t seed = 0;

    // --- explicit kill lists (targeted tests / post-mortem replay) ---
    std::vector<std::uint32_t> kill_rx;   //!< encoded rx channel ids
    std::vector<std::uint32_t> kill_tx;   //!< encoded tx lane ids
    std::vector<std::uint32_t> kill_link; //!< encoded mesh edge ids

    /** Kill receiver @p rx of node @p dst's @p cls lane. */
    void killRx(NodeId dst, int cls, int rx, int receivers_per_lane)
    {
        kill_rx.push_back(static_cast<std::uint32_t>(
            (static_cast<int>(dst) * 2 + cls) * receivers_per_lane + rx));
    }

    /** Kill node @p node's @p cls transmit lane (its VCSEL array). */
    void killTx(NodeId node, int cls)
    {
        kill_tx.push_back(
            static_cast<std::uint32_t>(static_cast<int>(node) * 2 + cls));
    }

    /**
     * Kill the mesh edge leaving router @p router in @p direction
     * (0=east, 1=west, 2=north, 3=south); the reverse direction dies
     * with it. Encoding matches FaultInjector::meshEdgeId().
     */
    void killLink(int router, int direction, int mesh_side);

    bool
    enabled() const
    {
        return dead_rx_fraction > 0.0 || dead_tx_fraction > 0.0
            || dead_link_fraction > 0.0 || ber > 0.0
            || misalignment_m > 0.0 || !kill_rx.empty()
            || !kill_tx.empty() || !kill_link.empty();
    }
};

/** The shape of the system the injector schedules faults over. */
struct FaultTopology
{
    int num_endpoints = 0;      //!< network endpoints (cores + memctls)
    int receivers_per_lane = 2; //!< FSOI receivers per node per lane
    int mesh_side = 0;          //!< mesh grid side (side^2 routers)
};

/** Scheduled faults + runtime fault state + fault.* statistics. */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &config, const FaultTopology &topo);

    const FaultConfig &config() const { return config_; }
    const FaultTopology &topology() const { return topo_; }

    // --- fault schedule queries (hot path; plain array lookups) ---

    /** Dead FSOI transmit lane (node's @p cls VCSEL array failed). */
    bool
    txDead(NodeId node, int cls) const
    {
        return deadTx_[static_cast<std::size_t>(node) * 2 + cls] != 0;
    }

    /** Dead FSOI receiver channel (photodetector @p rx at @p dst). */
    bool
    rxDead(NodeId dst, int cls, int rx) const
    {
        return deadRx_[rxChannelId(dst, cls, rx)] != 0;
    }

    /** Dead mesh link out of @p router in @p direction (0..3). */
    bool
    linkDead(int router, int direction) const
    {
        const int edge = meshEdgeId(router, direction);
        return edge >= 0 && deadLink_[edge] != 0;
    }

    bool anyDeadMeshLinks() const { return deadLinkCount_ > 0; }
    std::uint64_t deadRxCount() const { return deadRxCount_; }
    std::uint64_t deadTxCount() const { return deadTxCount_; }
    std::uint64_t deadLinkCount() const { return deadLinkCount_; }

    // --- transient bit errors ---

    /** Per-bit error rate after folding in misalignment degradation. */
    double effectiveBer() const { return effectiveBer_; }

    /**
     * One CRC check: true when a packet of class @p cls picked up at
     * least one bit error in transit. Draws from the dedicated
     * transient stream only when the corruption probability is
     * nonzero, so a dead-channel-only schedule consumes no entropy.
     */
    bool
    corrupts(int cls)
    {
        if (corruptProb_[cls] <= 0.0)
            return false;
        if (!transientRng_.nextBool(corruptProb_[cls]))
            return false;
        bitErrors_++;
        return true;
    }

    // --- FSOI channel health tracking / blacklist ---

    /** A fault (dead channel or CRC drop) ate a reception on @p rx. */
    void noteChannelFailure(NodeId dst, int cls, int rx);

    /** A clean delivery on @p rx; resets its failure streak. */
    void
    noteChannelSuccess(NodeId dst, int cls, int rx)
    {
        failStreak_[rxChannelId(dst, cls, rx)] = 0;
    }

    bool
    blacklisted(NodeId dst, int cls, int rx) const
    {
        return blacklist_[rxChannelId(dst, cls, rx)] != 0;
    }

    /**
     * Receiver index sender @p src should target at @p dst: the static
     * partition (src mod R) unless that channel is blacklisted, in
     * which case traffic redistributes to the lowest live receiver.
     * Falls back to the static choice when every receiver is dead --
     * the sender keeps failing and the watchdog diagnoses the wedge.
     */
    int redirectRx(NodeId src, NodeId dst, int cls);

    // --- fault event counters (shared by both datapaths) ---

    void countDeadChannelLoss() { deadChannelLosses_++; }
    void countUnroutableDrop() { unroutableDrops_++; }
    void countRetxExhausted() { retxExhausted_++; }

    std::uint64_t bitErrors() const { return bitErrors_.value(); }
    std::uint64_t blacklists() const { return blacklists_.value(); }
    std::uint64_t unroutableDrops() const
    { return unroutableDrops_.value(); }

    /** Publish fault.* counters under @p scope. */
    void registerStats(const obs::Scope &scope) const;

    /**
     * One-line post-mortem naming every scheduled fault and every
     * blacklisted channel, e.g.
     * "2 dead fsoi rx channels (n3.meta.rx0, n7.data.rx1); ...".
     */
    std::string diagnose() const;

    /** Fault section of the flight recorder's "context" object. */
    void writeJson(std::ostream &os) const;

    /**
     * Checkpoint/restore (snapshot/): the mutable runtime state only —
     * the transient RNG cursor, failure streaks, the blacklist, and the
     * fault.* counters. The schedule (dead tables, effective BER) is
     * reconstructed deterministically from (config, topology) at
     * construction and is not serialized.
     */
    void saveState(snapshot::Writer &w) const;
    void loadState(snapshot::Reader &r);

    /** Encoded rx channel id (see FaultConfig::killRx). */
    std::size_t
    rxChannelId(NodeId dst, int cls, int rx) const
    {
        return (static_cast<std::size_t>(dst) * 2 + cls)
            * topo_.receivers_per_lane + rx;
    }

    /**
     * Canonical mesh edge id for (router, direction), or -1 when the
     * edge does not exist (grid boundary). Horizontal edges first
     * (y * (side-1) + x for the edge east of (x, y)), then vertical.
     */
    int meshEdgeId(int router, int direction) const;

  private:
    /**
     * Mark the first ceil(fraction * total) entries of a deterministic
     * permutation of [0, total) dead, plus the explicit kills. The
     * permutation is always drawn (even at fraction 0) so schedules
     * for the three fault classes stay independent of each other's
     * fractions.
     */
    void schedule(std::vector<char> &dead, std::size_t total,
                  double fraction,
                  const std::vector<std::uint32_t> &kills,
                  std::uint64_t &count, Rng &rng);

    FaultConfig config_;
    FaultTopology topo_;
    Rng transientRng_; //!< bit-error draws only

    std::vector<char> deadTx_;   //!< [node * 2 + cls]
    std::vector<char> deadRx_;   //!< [rxChannelId]
    std::vector<char> deadLink_; //!< [meshEdgeId]
    std::uint64_t deadTxCount_ = 0;
    std::uint64_t deadRxCount_ = 0;
    std::uint64_t deadLinkCount_ = 0;

    double effectiveBer_ = 0.0;
    double misalignmentBer_ = 0.0;
    double corruptProb_[2] = {0.0, 0.0}; //!< per class, per packet

    std::vector<std::uint16_t> failStreak_; //!< per rx channel
    std::vector<char> blacklist_;           //!< per rx channel

    Counter bitErrors_;         //!< CRC-detected corrupted packets
    Counter deadChannelLosses_; //!< receptions eaten by dead hardware
    Counter blacklists_;        //!< channels retired by the retry budget
    Counter redirects_;         //!< transmissions steered off a blacklisted rx
    Counter unroutableDrops_;   //!< mesh packets with no live route
    Counter retxExhausted_;     //!< retries past the bounded budget
};

} // namespace fsoi::fault

#endif // FSOI_FAULT_FAULT_MODEL_HH
