#include "fault/fault_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "photonics/link_budget.hh"
#include "snapshot/state_io.hh"

namespace fsoi::fault {

namespace {

/** Mesh direction indices (match noc/mesh_network.cc). */
enum Direction { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

int
edgeIdFor(int router, int direction, int side)
{
    if (side <= 1)
        return -1;
    const int x = router % side;
    const int y = router / side;
    const int h_edges = side * (side - 1); // per-row horizontal edges
    switch (direction) {
      case kEast:
        return x + 1 < side ? y * (side - 1) + x : -1;
      case kWest:
        return x > 0 ? y * (side - 1) + (x - 1) : -1;
      case kSouth:
        return y + 1 < side ? h_edges + y * side + x : -1;
      case kNorth:
        return y > 0 ? h_edges + (y - 1) * side + x : -1;
      default:
        return -1;
    }
}

/** Human name of an edge: "r5-east(r6)". */
std::string
edgeName(int edge, int side)
{
    const int h_edges = side * (side - 1);
    std::ostringstream os;
    if (edge < h_edges) {
        const int y = edge / (side - 1);
        const int x = edge % (side - 1);
        os << "r" << (y * side + x) << "-east(r" << (y * side + x + 1)
           << ")";
    } else {
        const int v = edge - h_edges;
        const int y = v / side;
        const int x = v % side;
        os << "r" << (y * side + x) << "-south(r"
           << ((y + 1) * side + x) << ")";
    }
    return os.str();
}

} // namespace

void
FaultConfig::killLink(int router, int direction, int mesh_side)
{
    const int edge = edgeIdFor(router, direction, mesh_side);
    FSOI_ASSERT(edge >= 0, "router %d has no %d-direction link", router,
                direction);
    kill_link.push_back(static_cast<std::uint32_t>(edge));
}

int
FaultInjector::meshEdgeId(int router, int direction) const
{
    return edgeIdFor(router, direction, topo_.mesh_side);
}

FaultInjector::FaultInjector(const FaultConfig &config,
                             const FaultTopology &topo)
    : config_(config), topo_(topo),
      transientRng_(config.seed * 0x9e3779b97f4a7c15ULL + 2)
{
    FSOI_ASSERT(topo_.num_endpoints > 0);
    FSOI_ASSERT(topo_.receivers_per_lane >= 1);
    FSOI_ASSERT(config_.max_retx >= 1);
    FSOI_ASSERT(config_.dead_rx_fraction >= 0.0
                && config_.dead_rx_fraction <= 1.0);
    FSOI_ASSERT(config_.dead_tx_fraction >= 0.0
                && config_.dead_tx_fraction <= 1.0);
    FSOI_ASSERT(config_.dead_link_fraction >= 0.0
                && config_.dead_link_fraction <= 1.0);
    FSOI_ASSERT(config_.ber >= 0.0 && config_.ber < 0.5);
    FSOI_ASSERT(config_.misalignment_m >= 0.0);

    const std::size_t lanes =
        static_cast<std::size_t>(topo_.num_endpoints) * 2;
    const std::size_t rx_channels = lanes * topo_.receivers_per_lane;
    const int side = topo_.mesh_side;
    const std::size_t links =
        side > 1 ? static_cast<std::size_t>(2 * side * (side - 1)) : 0;

    // The schedule stream is separate from the transient stream: the
    // same seed picks the same victims whether or not BER is enabled.
    Rng schedule_rng(config_.seed * 0x9e3779b97f4a7c15ULL + 1);
    schedule(deadRx_, rx_channels, config_.dead_rx_fraction,
             config_.kill_rx, deadRxCount_, schedule_rng);
    schedule(deadTx_, lanes, config_.dead_tx_fraction, config_.kill_tx,
             deadTxCount_, schedule_rng);
    schedule(deadLink_, links, config_.dead_link_fraction,
             config_.kill_link, deadLinkCount_, schedule_rng);

    failStreak_.assign(rx_channels, 0);
    blacklist_.assign(rx_channels, 0);

    // Beam misalignment -> BER through the photonics link budget: a
    // Gaussian beam displaced laterally by d at spot radius w delivers
    // the power fraction exp(-2 d^2 / w^2); the photocurrent swing (and
    // with it the Q factor) scales by the same fraction, and the
    // degraded Q gives the error rate of the misaligned channel.
    if (config_.misalignment_m > 0.0) {
        const photonics::OpticalLink link; // Table 1 reference link
        const auto report = link.evaluate();
        const double w = link.path().beamRadiusAt(
            link.path().params().distance_m);
        const double d = config_.misalignment_m;
        const double power_frac = std::exp(-2.0 * d * d / (w * w));
        misalignmentBer_ =
            photonics::OpticalLink::qToBer(report.q_factor * power_frac);
    }
    // Independent error sources combine as 1 - (1-p1)(1-p2).
    effectiveBer_ = 1.0
        - (1.0 - config_.ber) * (1.0 - misalignmentBer_);
    if (effectiveBer_ > 0.0) {
        // P(packet corrupt) = 1 - (1 - ber)^bits, computed stably.
        for (int cls = 0; cls < 2; ++cls) {
            const double bits = cls == 0 ? 72.0 : 360.0;
            corruptProb_[cls] =
                -std::expm1(bits * std::log1p(-effectiveBer_));
        }
    }
}

void
FaultInjector::schedule(std::vector<char> &dead, std::size_t total,
                        double fraction,
                        const std::vector<std::uint32_t> &kills,
                        std::uint64_t &count, Rng &rng)
{
    dead.assign(total, 0);
    if (total == 0)
        return;
    // Fisher-Yates permutation; the first ceil(f * total) entries die.
    // Prefix selection makes dead sets nested across fractions.
    std::vector<std::uint32_t> perm(total);
    for (std::size_t i = 0; i < total; ++i)
        perm[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = total - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.nextBelow(i + 1)]);
    const auto victims = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(total) - 1e-12));
    for (std::size_t i = 0; i < std::min(victims, total); ++i)
        dead[perm[i]] = 1;
    for (const auto id : kills) {
        FSOI_ASSERT(id < total, "fault kill id %u out of range %zu", id,
                    total);
        dead[id] = 1;
    }
    count = static_cast<std::uint64_t>(
        std::count(dead.begin(), dead.end(), 1));
}

void
FaultInjector::noteChannelFailure(NodeId dst, int cls, int rx)
{
    const std::size_t id = rxChannelId(dst, cls, rx);
    if (blacklist_[id])
        return;
    if (++failStreak_[id] >= config_.max_retx) {
        blacklist_[id] = 1;
        blacklists_++;
    }
}

int
FaultInjector::redirectRx(NodeId src, NodeId dst, int cls)
{
    const int r = topo_.receivers_per_lane;
    const int def = static_cast<int>(src) % r;
    if (!blacklist_[rxChannelId(dst, cls, def)])
        return def;
    for (int rx = 0; rx < r; ++rx) {
        if (rx != def && !blacklist_[rxChannelId(dst, cls, rx)]) {
            redirects_++;
            return rx;
        }
    }
    return def; // every receiver is gone; keep failing on the default
}

void
FaultInjector::registerStats(const obs::Scope &scope) const
{
    scope.counter("bit_errors", bitErrors_);
    scope.counter("dead_channel_losses", deadChannelLosses_);
    scope.counter("blacklists", blacklists_);
    scope.counter("redirects", redirects_);
    scope.counter("unroutable_drops", unroutableDrops_);
    scope.counter("retx_exhausted", retxExhausted_);
    const obs::Scope sched = scope.scope("schedule");
    sched.derived("dead_rx", [this] {
        return static_cast<double>(deadRxCount_);
    });
    sched.derived("dead_tx", [this] {
        return static_cast<double>(deadTxCount_);
    });
    sched.derived("dead_links", [this] {
        return static_cast<double>(deadLinkCount_);
    });
    sched.derived("effective_ber",
                  [this] { return effectiveBer_; });
}

std::string
FaultInjector::diagnose() const
{
    std::ostringstream os;
    bool any = false;
    auto section = [&](const char *what, std::uint64_t n) {
        os << (any ? "; " : "") << n << " " << what;
        any = true;
    };
    if (deadTxCount_ > 0) {
        section("dead fsoi tx lanes", deadTxCount_);
        os << " (";
        int listed = 0;
        for (std::size_t id = 0; id < deadTx_.size() && listed < 8; ++id)
            if (deadTx_[id]) {
                os << (listed++ ? ", " : "") << "n" << id / 2 << "."
                   << classLaneName(static_cast<int>(id % 2));
            }
        os << (deadTxCount_ > 8 ? ", ..." : "") << ")";
    }
    if (deadRxCount_ > 0) {
        section("dead fsoi rx channels", deadRxCount_);
        os << " (";
        int listed = 0;
        const int r = topo_.receivers_per_lane;
        for (std::size_t id = 0; id < deadRx_.size() && listed < 8; ++id)
            if (deadRx_[id]) {
                const std::size_t lane = id / r;
                os << (listed++ ? ", " : "") << "n" << lane / 2 << "."
                   << classLaneName(static_cast<int>(lane % 2)) << ".rx"
                   << id % r;
            }
        os << (deadRxCount_ > 8 ? ", ..." : "") << ")";
    }
    if (deadLinkCount_ > 0) {
        section("dead mesh links", deadLinkCount_);
        os << " (";
        int listed = 0;
        for (std::size_t id = 0; id < deadLink_.size() && listed < 8;
             ++id)
            if (deadLink_[id]) {
                os << (listed++ ? ", " : "")
                   << edgeName(static_cast<int>(id), topo_.mesh_side);
            }
        os << (deadLinkCount_ > 8 ? ", ..." : "") << ")";
    }
    if (blacklists_.value() > 0)
        section("blacklisted rx channels", blacklists_.value());
    if (effectiveBer_ > 0.0) {
        os << (any ? "; " : "") << "effective ber " << effectiveBer_;
        any = true;
    }
    if (!any)
        os << "no faults scheduled";
    return os.str();
}

void
FaultInjector::writeJson(std::ostream &os) const
{
    const int r = topo_.receivers_per_lane;
    os << "{\"effective_ber\":" << effectiveBer_ << ",\"dead_tx\":[";
    bool sep = false;
    for (std::size_t id = 0; id < deadTx_.size(); ++id)
        if (deadTx_[id]) {
            os << (sep ? "," : "") << "{\"node\":" << id / 2
               << ",\"class\":\""
               << classLaneName(static_cast<int>(id % 2)) << "\"}";
            sep = true;
        }
    os << "],\"dead_rx\":[";
    sep = false;
    for (std::size_t id = 0; id < deadRx_.size(); ++id)
        if (deadRx_[id]) {
            const std::size_t lane = id / r;
            os << (sep ? "," : "") << "{\"node\":" << lane / 2
               << ",\"class\":\""
               << classLaneName(static_cast<int>(lane % 2))
               << "\",\"rx\":" << id % r << "}";
            sep = true;
        }
    os << "],\"dead_links\":[";
    sep = false;
    for (std::size_t id = 0; id < deadLink_.size(); ++id)
        if (deadLink_[id]) {
            os << (sep ? "," : "") << "\""
               << edgeName(static_cast<int>(id), topo_.mesh_side)
               << "\"";
            sep = true;
        }
    os << "],\"blacklisted\":[";
    sep = false;
    for (std::size_t id = 0; id < blacklist_.size(); ++id)
        if (blacklist_[id]) {
            const std::size_t lane = id / r;
            os << (sep ? "," : "") << "{\"node\":" << lane / 2
               << ",\"class\":\""
               << classLaneName(static_cast<int>(lane % 2))
               << "\",\"rx\":" << id % r << "}";
            sep = true;
        }
    os << "],\"bit_errors\":" << bitErrors_.value()
       << ",\"dead_channel_losses\":" << deadChannelLosses_.value()
       << ",\"unroutable_drops\":" << unroutableDrops_.value() << "}";
}

void
FaultInjector::saveState(snapshot::Writer &w) const
{
    using namespace snapshot;
    saveRng(w, transientRng_);
    w.u64(failStreak_.size());
    for (const std::uint16_t streak : failStreak_)
        w.u16(streak);
    w.u64(blacklist_.size());
    for (const char b : blacklist_)
        w.u8(static_cast<std::uint8_t>(b));
    saveCounter(w, bitErrors_);
    saveCounter(w, deadChannelLosses_);
    saveCounter(w, blacklists_);
    saveCounter(w, redirects_);
    saveCounter(w, unroutableDrops_);
    saveCounter(w, retxExhausted_);
}

void
FaultInjector::loadState(snapshot::Reader &r)
{
    using namespace snapshot;
    loadRng(r, transientRng_);
    const std::uint64_t num_streaks = r.u64();
    FSOI_ASSERT(num_streaks == failStreak_.size(),
                "fault topology mismatch on restore");
    for (std::uint16_t &streak : failStreak_)
        streak = r.u16();
    const std::uint64_t num_bl = r.u64();
    FSOI_ASSERT(num_bl == blacklist_.size(),
                "fault topology mismatch on restore");
    for (char &b : blacklist_)
        b = static_cast<char>(r.u8());
    loadCounter(r, bitErrors_);
    loadCounter(r, deadChannelLosses_);
    loadCounter(r, blacklists_);
    loadCounter(r, redirects_);
    loadCounter(r, unroutableDrops_);
    loadCounter(r, retxExhausted_);
}

} // namespace fsoi::fault
