file(REMOVE_RECURSE
  "CMakeFiles/microbench_networks.dir/microbench_networks.cc.o"
  "CMakeFiles/microbench_networks.dir/microbench_networks.cc.o.d"
  "microbench_networks"
  "microbench_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
