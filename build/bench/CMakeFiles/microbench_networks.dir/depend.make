# Empty dependencies file for microbench_networks.
# This may be replaced when dependencies are built.
