file(REMOVE_RECURSE
  "CMakeFiles/ablation_fsoi_design.dir/ablation_fsoi_design.cc.o"
  "CMakeFiles/ablation_fsoi_design.dir/ablation_fsoi_design.cc.o.d"
  "ablation_fsoi_design"
  "ablation_fsoi_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fsoi_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
