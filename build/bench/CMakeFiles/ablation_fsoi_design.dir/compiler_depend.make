# Empty compiler generated dependencies file for ablation_fsoi_design.
# This may be replaced when dependencies are built.
