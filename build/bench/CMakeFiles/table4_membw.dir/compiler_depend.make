# Empty compiler generated dependencies file for table4_membw.
# This may be replaced when dependencies are built.
