file(REMOVE_RECURSE
  "CMakeFiles/table4_membw.dir/table4_membw.cc.o"
  "CMakeFiles/table4_membw.dir/table4_membw.cc.o.d"
  "table4_membw"
  "table4_membw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_membw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
