# Empty dependencies file for table4_membw.
# This may be replaced when dependencies are built.
