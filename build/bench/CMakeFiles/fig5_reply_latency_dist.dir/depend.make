# Empty dependencies file for fig5_reply_latency_dist.
# This may be replaced when dependencies are built.
