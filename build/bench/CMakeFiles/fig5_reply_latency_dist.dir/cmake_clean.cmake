file(REMOVE_RECURSE
  "CMakeFiles/fig5_reply_latency_dist.dir/fig5_reply_latency_dist.cc.o"
  "CMakeFiles/fig5_reply_latency_dist.dir/fig5_reply_latency_dist.cc.o.d"
  "fig5_reply_latency_dist"
  "fig5_reply_latency_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_reply_latency_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
