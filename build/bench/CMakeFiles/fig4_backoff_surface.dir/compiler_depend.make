# Empty compiler generated dependencies file for fig4_backoff_surface.
# This may be replaced when dependencies are built.
