file(REMOVE_RECURSE
  "CMakeFiles/fig4_backoff_surface.dir/fig4_backoff_surface.cc.o"
  "CMakeFiles/fig4_backoff_surface.dir/fig4_backoff_surface.cc.o.d"
  "fig4_backoff_surface"
  "fig4_backoff_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_backoff_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
