# Empty dependencies file for fig10_data_collisions.
# This may be replaced when dependencies are built.
