file(REMOVE_RECURSE
  "CMakeFiles/fig10_data_collisions.dir/fig10_data_collisions.cc.o"
  "CMakeFiles/fig10_data_collisions.dir/fig10_data_collisions.cc.o.d"
  "fig10_data_collisions"
  "fig10_data_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_data_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
