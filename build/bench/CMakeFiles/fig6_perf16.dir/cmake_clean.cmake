file(REMOVE_RECURSE
  "CMakeFiles/fig6_perf16.dir/fig6_perf16.cc.o"
  "CMakeFiles/fig6_perf16.dir/fig6_perf16.cc.o.d"
  "fig6_perf16"
  "fig6_perf16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_perf16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
