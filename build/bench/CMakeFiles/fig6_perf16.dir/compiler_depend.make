# Empty compiler generated dependencies file for fig6_perf16.
# This may be replaced when dependencies are built.
