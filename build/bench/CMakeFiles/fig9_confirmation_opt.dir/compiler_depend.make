# Empty compiler generated dependencies file for fig9_confirmation_opt.
# This may be replaced when dependencies are built.
