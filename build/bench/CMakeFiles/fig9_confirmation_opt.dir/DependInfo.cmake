
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_confirmation_opt.cc" "bench/CMakeFiles/fig9_confirmation_opt.dir/fig9_confirmation_opt.cc.o" "gcc" "bench/CMakeFiles/fig9_confirmation_opt.dir/fig9_confirmation_opt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fsoi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/fsoi_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fsoi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/fsoi_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/fsoi_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/fsoi/CMakeFiles/fsoi_fsoi.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/fsoi_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/photonics/CMakeFiles/fsoi_photonics.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/fsoi_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fsoi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
