file(REMOVE_RECURSE
  "CMakeFiles/fig9_confirmation_opt.dir/fig9_confirmation_opt.cc.o"
  "CMakeFiles/fig9_confirmation_opt.dir/fig9_confirmation_opt.cc.o.d"
  "fig9_confirmation_opt"
  "fig9_confirmation_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_confirmation_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
