file(REMOVE_RECURSE
  "CMakeFiles/table1_link_budget.dir/table1_link_budget.cc.o"
  "CMakeFiles/table1_link_budget.dir/table1_link_budget.cc.o.d"
  "table1_link_budget"
  "table1_link_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_link_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
