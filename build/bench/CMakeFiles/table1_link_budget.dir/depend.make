# Empty dependencies file for table1_link_budget.
# This may be replaced when dependencies are built.
