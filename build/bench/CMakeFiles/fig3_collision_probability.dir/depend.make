# Empty dependencies file for fig3_collision_probability.
# This may be replaced when dependencies are built.
