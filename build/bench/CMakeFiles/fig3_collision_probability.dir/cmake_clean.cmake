file(REMOVE_RECURSE
  "CMakeFiles/fig3_collision_probability.dir/fig3_collision_probability.cc.o"
  "CMakeFiles/fig3_collision_probability.dir/fig3_collision_probability.cc.o.d"
  "fig3_collision_probability"
  "fig3_collision_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_collision_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
