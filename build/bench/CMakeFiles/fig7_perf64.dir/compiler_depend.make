# Empty compiler generated dependencies file for fig7_perf64.
# This may be replaced when dependencies are built.
