file(REMOVE_RECURSE
  "CMakeFiles/fig7_perf64.dir/fig7_perf64.cc.o"
  "CMakeFiles/fig7_perf64.dir/fig7_perf64.cc.o.d"
  "fig7_perf64"
  "fig7_perf64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_perf64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
