file(REMOVE_RECURSE
  "CMakeFiles/test_fsoi.dir/test_fsoi.cc.o"
  "CMakeFiles/test_fsoi.dir/test_fsoi.cc.o.d"
  "test_fsoi"
  "test_fsoi.pdb"
  "test_fsoi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsoi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
