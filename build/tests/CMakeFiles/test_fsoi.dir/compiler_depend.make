# Empty compiler generated dependencies file for test_fsoi.
# This may be replaced when dependencies are built.
