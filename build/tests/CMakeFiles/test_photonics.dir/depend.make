# Empty dependencies file for test_photonics.
# This may be replaced when dependencies are built.
