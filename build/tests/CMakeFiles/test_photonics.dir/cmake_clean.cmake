file(REMOVE_RECURSE
  "CMakeFiles/test_photonics.dir/test_photonics.cc.o"
  "CMakeFiles/test_photonics.dir/test_photonics.cc.o.d"
  "test_photonics"
  "test_photonics.pdb"
  "test_photonics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_photonics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
