file(REMOVE_RECURSE
  "CMakeFiles/test_directory_evictions.dir/test_directory_evictions.cc.o"
  "CMakeFiles/test_directory_evictions.dir/test_directory_evictions.cc.o.d"
  "test_directory_evictions"
  "test_directory_evictions.pdb"
  "test_directory_evictions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directory_evictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
