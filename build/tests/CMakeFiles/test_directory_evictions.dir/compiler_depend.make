# Empty compiler generated dependencies file for test_directory_evictions.
# This may be replaced when dependencies are built.
