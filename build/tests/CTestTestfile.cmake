# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_photonics[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_cache_array[1]_include.cmake")
include("/root/repo/build/tests/test_networks[1]_include.cmake")
include("/root/repo/build/tests/test_fsoi[1]_include.cmake")
include("/root/repo/build/tests/test_coherence[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_directory_evictions[1]_include.cmake")
