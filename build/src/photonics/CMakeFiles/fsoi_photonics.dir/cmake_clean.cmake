file(REMOVE_RECURSE
  "CMakeFiles/fsoi_photonics.dir/free_space_path.cc.o"
  "CMakeFiles/fsoi_photonics.dir/free_space_path.cc.o.d"
  "CMakeFiles/fsoi_photonics.dir/link_budget.cc.o"
  "CMakeFiles/fsoi_photonics.dir/link_budget.cc.o.d"
  "CMakeFiles/fsoi_photonics.dir/receiver.cc.o"
  "CMakeFiles/fsoi_photonics.dir/receiver.cc.o.d"
  "CMakeFiles/fsoi_photonics.dir/vcsel.cc.o"
  "CMakeFiles/fsoi_photonics.dir/vcsel.cc.o.d"
  "libfsoi_photonics.a"
  "libfsoi_photonics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsoi_photonics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
