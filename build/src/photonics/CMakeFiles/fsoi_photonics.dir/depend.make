# Empty dependencies file for fsoi_photonics.
# This may be replaced when dependencies are built.
