file(REMOVE_RECURSE
  "libfsoi_photonics.a"
)
