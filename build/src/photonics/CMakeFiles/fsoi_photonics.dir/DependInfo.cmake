
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/photonics/free_space_path.cc" "src/photonics/CMakeFiles/fsoi_photonics.dir/free_space_path.cc.o" "gcc" "src/photonics/CMakeFiles/fsoi_photonics.dir/free_space_path.cc.o.d"
  "/root/repo/src/photonics/link_budget.cc" "src/photonics/CMakeFiles/fsoi_photonics.dir/link_budget.cc.o" "gcc" "src/photonics/CMakeFiles/fsoi_photonics.dir/link_budget.cc.o.d"
  "/root/repo/src/photonics/receiver.cc" "src/photonics/CMakeFiles/fsoi_photonics.dir/receiver.cc.o" "gcc" "src/photonics/CMakeFiles/fsoi_photonics.dir/receiver.cc.o.d"
  "/root/repo/src/photonics/vcsel.cc" "src/photonics/CMakeFiles/fsoi_photonics.dir/vcsel.cc.o" "gcc" "src/photonics/CMakeFiles/fsoi_photonics.dir/vcsel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fsoi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
