
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/memory_controller.cc" "src/memory/CMakeFiles/fsoi_memory.dir/memory_controller.cc.o" "gcc" "src/memory/CMakeFiles/fsoi_memory.dir/memory_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coherence/CMakeFiles/fsoi_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/fsoi_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fsoi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
