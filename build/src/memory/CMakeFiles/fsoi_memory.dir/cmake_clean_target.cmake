file(REMOVE_RECURSE
  "libfsoi_memory.a"
)
