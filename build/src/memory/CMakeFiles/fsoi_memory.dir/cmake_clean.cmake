file(REMOVE_RECURSE
  "CMakeFiles/fsoi_memory.dir/memory_controller.cc.o"
  "CMakeFiles/fsoi_memory.dir/memory_controller.cc.o.d"
  "libfsoi_memory.a"
  "libfsoi_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsoi_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
