# Empty compiler generated dependencies file for fsoi_memory.
# This may be replaced when dependencies are built.
