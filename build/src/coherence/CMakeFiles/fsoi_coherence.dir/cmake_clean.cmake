file(REMOVE_RECURSE
  "CMakeFiles/fsoi_coherence.dir/directory.cc.o"
  "CMakeFiles/fsoi_coherence.dir/directory.cc.o.d"
  "CMakeFiles/fsoi_coherence.dir/l1_cache.cc.o"
  "CMakeFiles/fsoi_coherence.dir/l1_cache.cc.o.d"
  "CMakeFiles/fsoi_coherence.dir/message.cc.o"
  "CMakeFiles/fsoi_coherence.dir/message.cc.o.d"
  "libfsoi_coherence.a"
  "libfsoi_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsoi_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
