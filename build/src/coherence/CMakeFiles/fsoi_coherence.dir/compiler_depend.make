# Empty compiler generated dependencies file for fsoi_coherence.
# This may be replaced when dependencies are built.
