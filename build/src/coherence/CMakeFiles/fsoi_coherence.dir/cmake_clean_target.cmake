file(REMOVE_RECURSE
  "libfsoi_coherence.a"
)
