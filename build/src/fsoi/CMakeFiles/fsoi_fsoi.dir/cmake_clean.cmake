file(REMOVE_RECURSE
  "CMakeFiles/fsoi_fsoi.dir/fsoi_network.cc.o"
  "CMakeFiles/fsoi_fsoi.dir/fsoi_network.cc.o.d"
  "libfsoi_fsoi.a"
  "libfsoi_fsoi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsoi_fsoi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
