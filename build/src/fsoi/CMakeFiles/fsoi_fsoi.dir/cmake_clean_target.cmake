file(REMOVE_RECURSE
  "libfsoi_fsoi.a"
)
