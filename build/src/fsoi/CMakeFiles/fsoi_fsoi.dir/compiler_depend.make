# Empty compiler generated dependencies file for fsoi_fsoi.
# This may be replaced when dependencies are built.
