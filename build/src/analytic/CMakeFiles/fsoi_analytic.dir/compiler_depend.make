# Empty compiler generated dependencies file for fsoi_analytic.
# This may be replaced when dependencies are built.
