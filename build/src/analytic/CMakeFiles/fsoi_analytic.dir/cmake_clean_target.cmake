file(REMOVE_RECURSE
  "libfsoi_analytic.a"
)
