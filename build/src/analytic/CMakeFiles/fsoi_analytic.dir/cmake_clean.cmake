file(REMOVE_RECURSE
  "CMakeFiles/fsoi_analytic.dir/backoff_model.cc.o"
  "CMakeFiles/fsoi_analytic.dir/backoff_model.cc.o.d"
  "CMakeFiles/fsoi_analytic.dir/bandwidth_alloc.cc.o"
  "CMakeFiles/fsoi_analytic.dir/bandwidth_alloc.cc.o.d"
  "CMakeFiles/fsoi_analytic.dir/collision_model.cc.o"
  "CMakeFiles/fsoi_analytic.dir/collision_model.cc.o.d"
  "libfsoi_analytic.a"
  "libfsoi_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsoi_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
