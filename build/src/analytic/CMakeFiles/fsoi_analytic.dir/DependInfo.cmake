
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/backoff_model.cc" "src/analytic/CMakeFiles/fsoi_analytic.dir/backoff_model.cc.o" "gcc" "src/analytic/CMakeFiles/fsoi_analytic.dir/backoff_model.cc.o.d"
  "/root/repo/src/analytic/bandwidth_alloc.cc" "src/analytic/CMakeFiles/fsoi_analytic.dir/bandwidth_alloc.cc.o" "gcc" "src/analytic/CMakeFiles/fsoi_analytic.dir/bandwidth_alloc.cc.o.d"
  "/root/repo/src/analytic/collision_model.cc" "src/analytic/CMakeFiles/fsoi_analytic.dir/collision_model.cc.o" "gcc" "src/analytic/CMakeFiles/fsoi_analytic.dir/collision_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fsoi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
