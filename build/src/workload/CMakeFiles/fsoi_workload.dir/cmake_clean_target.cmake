file(REMOVE_RECURSE
  "libfsoi_workload.a"
)
