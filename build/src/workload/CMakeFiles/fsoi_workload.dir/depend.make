# Empty dependencies file for fsoi_workload.
# This may be replaced when dependencies are built.
