file(REMOVE_RECURSE
  "CMakeFiles/fsoi_workload.dir/apps.cc.o"
  "CMakeFiles/fsoi_workload.dir/apps.cc.o.d"
  "CMakeFiles/fsoi_workload.dir/traffic.cc.o"
  "CMakeFiles/fsoi_workload.dir/traffic.cc.o.d"
  "libfsoi_workload.a"
  "libfsoi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsoi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
