file(REMOVE_RECURSE
  "CMakeFiles/fsoi_common.dir/logging.cc.o"
  "CMakeFiles/fsoi_common.dir/logging.cc.o.d"
  "CMakeFiles/fsoi_common.dir/rng.cc.o"
  "CMakeFiles/fsoi_common.dir/rng.cc.o.d"
  "CMakeFiles/fsoi_common.dir/stats.cc.o"
  "CMakeFiles/fsoi_common.dir/stats.cc.o.d"
  "CMakeFiles/fsoi_common.dir/table.cc.o"
  "CMakeFiles/fsoi_common.dir/table.cc.o.d"
  "libfsoi_common.a"
  "libfsoi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsoi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
