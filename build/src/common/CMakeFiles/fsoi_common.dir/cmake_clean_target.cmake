file(REMOVE_RECURSE
  "libfsoi_common.a"
)
