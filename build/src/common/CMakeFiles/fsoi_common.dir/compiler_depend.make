# Empty compiler generated dependencies file for fsoi_common.
# This may be replaced when dependencies are built.
