file(REMOVE_RECURSE
  "libfsoi_noc.a"
)
