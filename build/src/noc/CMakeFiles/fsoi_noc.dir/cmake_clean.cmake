file(REMOVE_RECURSE
  "CMakeFiles/fsoi_noc.dir/ideal_network.cc.o"
  "CMakeFiles/fsoi_noc.dir/ideal_network.cc.o.d"
  "CMakeFiles/fsoi_noc.dir/mesh_network.cc.o"
  "CMakeFiles/fsoi_noc.dir/mesh_network.cc.o.d"
  "CMakeFiles/fsoi_noc.dir/network.cc.o"
  "CMakeFiles/fsoi_noc.dir/network.cc.o.d"
  "libfsoi_noc.a"
  "libfsoi_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsoi_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
