# Empty dependencies file for fsoi_noc.
# This may be replaced when dependencies are built.
