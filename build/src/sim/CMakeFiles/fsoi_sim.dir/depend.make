# Empty dependencies file for fsoi_sim.
# This may be replaced when dependencies are built.
