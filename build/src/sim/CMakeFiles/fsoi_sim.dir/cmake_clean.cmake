file(REMOVE_RECURSE
  "CMakeFiles/fsoi_sim.dir/energy_model.cc.o"
  "CMakeFiles/fsoi_sim.dir/energy_model.cc.o.d"
  "CMakeFiles/fsoi_sim.dir/system.cc.o"
  "CMakeFiles/fsoi_sim.dir/system.cc.o.d"
  "libfsoi_sim.a"
  "libfsoi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsoi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
