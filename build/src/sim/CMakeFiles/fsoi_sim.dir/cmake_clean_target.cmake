file(REMOVE_RECURSE
  "libfsoi_sim.a"
)
