# Empty compiler generated dependencies file for fsoi_sim.
# This may be replaced when dependencies are built.
