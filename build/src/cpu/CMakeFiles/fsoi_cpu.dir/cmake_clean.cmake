file(REMOVE_RECURSE
  "CMakeFiles/fsoi_cpu.dir/core.cc.o"
  "CMakeFiles/fsoi_cpu.dir/core.cc.o.d"
  "libfsoi_cpu.a"
  "libfsoi_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsoi_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
