file(REMOVE_RECURSE
  "libfsoi_cpu.a"
)
