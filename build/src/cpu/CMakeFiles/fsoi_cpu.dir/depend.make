# Empty dependencies file for fsoi_cpu.
# This may be replaced when dependencies are built.
