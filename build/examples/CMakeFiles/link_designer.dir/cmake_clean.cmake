file(REMOVE_RECURSE
  "CMakeFiles/link_designer.dir/link_designer.cpp.o"
  "CMakeFiles/link_designer.dir/link_designer.cpp.o.d"
  "link_designer"
  "link_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
