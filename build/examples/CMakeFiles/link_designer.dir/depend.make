# Empty dependencies file for link_designer.
# This may be replaced when dependencies are built.
